//! Quickstart: size the paper's 12-bit current-steering DAC in five steps.
//!
//! Run with `cargo run --release --example quickstart`.

use ctsdac::core::explore::{DesignSpace, Objective};
use ctsdac::core::report::ComparisonReport;
use ctsdac::core::saturation::SaturationCondition;
use ctsdac::core::{CsSizing, DacSpec};
use ctsdac::circuit::cell::CellTopology;

fn main() {
    // 1. The specification: 12 bits, 4+8 segmentation, 99.7 % INL yield,
    //    0.35 µm CMOS, 3.3 V supply, 1 V swing into 50 Ω.
    let spec = DacSpec::paper_12bit();
    println!("spec      : {spec}");
    println!(
        "I_LSB     : {:.3} uA, unary cell: {:.1} uA",
        spec.i_lsb() * 1e6,
        spec.i_unary() * 1e6
    );

    // 2. The INL-yield mismatch budget (paper eq. (1)).
    println!(
        "eq. (1)   : sigma(I)/I <= {:.4} %  (C = {:.3})",
        spec.sigma_unit_spec() * 100.0,
        spec.yield_constant()
    );

    // 3. CS sizing at a trial overdrive (paper eq. (2)).
    let cs = CsSizing::for_spec(&spec, 0.5);
    println!("eq. (2)   : {cs}");

    // 4. The statistical saturation condition (paper eq. (9)) vs the old
    //    0.5 V arbitrary margin.
    let stat_margin = SaturationCondition::Statistical.margin_simple(&spec, 0.5, 0.6);
    println!(
        "eq. (9)   : statistical margin = {:.0} mV (prior art used 500 mV)",
        stat_margin * 1e3
    );

    // 5. Optimise over the constrained design space and report the area
    //    recovered from the arbitrary margin.
    let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(24);
    let best = space
        .optimize(Objective::MinArea)
        .expect("the paper's spec has a feasible design space");
    println!("optimum   : {best}");
    let report = ComparisonReport::compute(&spec, CellTopology::Simple, 24)
        .expect("the paper's spec has a feasible design space");
    println!("{report}");
}
