//! Full methodology walkthrough for the paper's 12-bit 400 MS/s design:
//! architecture → mismatch budget → cascoded cell sizing over the
//! statistically constrained space → pole/settling verification.
//!
//! Run with `cargo run --release --example size_12bit_dac`.

use ctsdac::circuit::impedance::{required_output_impedance, rout_at_optimum};
use ctsdac::circuit::poles::PoleModel;
use ctsdac::circuit::settling::settling_time_two_pole;
use ctsdac::core::cascode::CascodeSpace;
use ctsdac::core::saturation::SaturationCondition;
use ctsdac::core::segmentation::optimal_segmentation;
use ctsdac::core::sizing::build_cascoded_cell;
use ctsdac::core::DacSpec;

fn main() {
    let spec = DacSpec::paper_12bit();
    println!("=== 12-bit current-steering DAC design flow ===\n{spec}\n");

    // Architecture: check the paper's 4+8 segmentation against the model.
    let seg = optimal_segmentation(&spec, 0.5, 0.6);
    println!(
        "architecture : model optimum b = {} (paper chose b = 4)",
        seg.binary_bits
    );

    // Topology: a 12-bit design needs the cascode for output impedance.
    let r_needed = required_output_impedance(spec.n_bits, spec.env.rl, 0.25);
    println!(
        "impedance    : need >= {:.2e} Ohm per LSB source for 0.25 LSB INL",
        r_needed
    );

    // Size over the statistically constrained cascode volume (eq. (11)).
    let space = CascodeSpace::new(&spec, SaturationCondition::Statistical).with_grid(10);
    let fast = space
        .max_speed_point()
        .expect("feasible cascoded design space");
    println!(
        "speed optimum: Vov = ({:.2}, {:.2}, {:.2}) V, array area = {:.0} kum2",
        fast.vov_cs,
        fast.vov_cas,
        fast.vov_sw,
        fast.total_area * 1e12 / 1e3
    );

    // Build the unary cell and verify the dynamic targets.
    let cell = build_cascoded_cell(&spec, fast.vov_cs, fast.vov_cas, fast.vov_sw, 16);
    println!("unary cell   : {cell}");
    let rout = rout_at_optimum(&cell, &spec.env).expect("sized cell biases");
    println!(
        "output Z     : {:.2e} Ohm (x16 weight -> {:.2e} per LSB, need {:.2e})",
        rout,
        rout * 16.0,
        r_needed
    );

    let poles = PoleModel::new(spec.cells_at_output())
        .poles(&cell, &spec.env)
        .expect("sized cell biases");
    let t_settle = settling_time_two_pole(&poles, spec.n_bits);
    println!("poles        : {poles}");
    println!(
        "settling     : {:.2} ns to +-0.5 LSB  => up to {:.0} MS/s (paper: 2.5 ns, 400 MS/s)",
        t_settle * 1e9,
        1e-9 / t_settle * 1e3
    );
}
