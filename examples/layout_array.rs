//! Layout-phase compensation of systematic mismatch (paper §4): compare
//! switching schemes on the 16×16 unary array, propagate gradient errors
//! through the full 12-bit converter, and emit LEF/DEF for the array.
//!
//! Run with `cargo run --release --example layout_array`.

use ctsdac::core::DacSpec;
use ctsdac::dac::architecture::SegmentedDac;
use ctsdac::dac::errors::CellErrors;
use ctsdac::dac::static_metrics::TransferFunction;
use ctsdac::layout::gradient::GradientModel;
use ctsdac::layout::lefdef::{write_def, write_lef, CellGeometry};
use ctsdac::layout::schemes::Scheme;
use ctsdac::layout::Floorplan;

/// Builds the full 12-bit converter with the floorplan's switching order
/// and gradient-induced systematic errors, and returns its worst INL.
fn inl_with_scheme(spec: &DacSpec, scheme: Scheme, gradient: &GradientModel) -> f64 {
    let floorplan = Floorplan::paper_fig5(spec.unary_source_count(), 4, scheme, 7);
    let (bin_err, unary_err) = floorplan.systematic_errors(gradient, 16.0);

    // The floorplan's switching order becomes the DAC's unary order; the
    // per-rank errors map onto the cells in rank order, so the identity
    // order on the DAC side keeps rank == cell index.
    let dac = SegmentedDac::new(spec);
    let mut rel = bin_err;
    rel.extend(unary_err);
    let errors = CellErrors::from_rel(&dac, rel);
    TransferFunction::compute_fast(&dac, &errors).inl_max_abs()
}

fn main() {
    let spec = DacSpec::paper_12bit();
    let gradient = GradientModel::combined(0.01, 0.6, 0.01, (0.3, -0.2));
    println!("=== systematic-gradient compensation ({gradient}) ===");
    println!("{:<24} {:>12}", "scheme", "INL [LSB]");
    for scheme in Scheme::ALL {
        let inl = inl_with_scheme(&spec, scheme, &gradient);
        println!("{:<24} {:>12.4}", scheme.to_string(), inl);
    }

    // Emit the physical views for the optimised floorplan.
    let floorplan = Floorplan::paper_fig5(255, 4, Scheme::GradientOptimized, 7);
    let lef = write_lef("CSCELL", CellGeometry::default());
    let def = write_def("DAC12_CSARRAY", &floorplan, CellGeometry::default());
    println!(
        "\n{floorplan}\nLEF: {} bytes, DEF: {} bytes (first lines below)",
        lef.len(),
        def.len()
    );
    for line in def.lines().take(8) {
        println!("  {line}");
    }
}
