//! Dynamic characterisation: mismatch Monte Carlo of the sine-test SFDR and
//! the clock-jitter SNR wall (paper Fig. 8 + ref. [6]).
//!
//! Run with `cargo run --release --example spectrum_analysis`.

use ctsdac::circuit::poles::TwoPoles;
use ctsdac::core::DacSpec;
use ctsdac::dac::architecture::SegmentedDac;
use ctsdac::dac::errors::CellErrors;
use ctsdac::dac::jitter::{critical_jitter, jitter_snr_theory_db};
use ctsdac::dac::sine::SineTest;
use ctsdac::dac::transient::TransientConfig;
use ctsdac::stats::sample::seeded_rng;
use ctsdac::stats::Summary;

fn main() {
    let spec = DacSpec::paper_12bit();
    let dac = SegmentedDac::new(&spec);
    let test = SineTest::new(2048, 53e6, 0.98);
    let fs = 300e6;

    // Mismatch-limited SFDR across Monte-Carlo realisations at the sizing
    // budget of eq. (1).
    let sigma = spec.sigma_unit_spec();
    let mut rng = seeded_rng(2003);
    let sfdrs: Summary = (0..20)
        .map(|_| {
            let errors = CellErrors::random(&dac, sigma, &mut rng);
            test.run_static(&dac, &errors, fs).sfdr_db()
        })
        .collect();
    println!(
        "mismatch-limited SFDR at sigma = {:.3} % over 20 seeds: mean = {:.1} dB, min = {:.1} dB, max = {:.1} dB",
        sigma * 100.0,
        sfdrs.mean(),
        sfdrs.min(),
        sfdrs.max()
    );

    // The jitter wall for this 53 MHz test tone.
    let t_crit = critical_jitter(53e6, spec.n_bits);
    println!(
        "clock jitter: 12-bit operation at 53 MHz needs sigma_t <= {:.2} ps",
        t_crit * 1e12
    );
    for ps in [0.1, 1.0, 10.0] {
        println!(
            "  sigma_t = {ps:>5.1} ps -> jitter-limited SNR = {:.1} dB",
            jitter_snr_theory_db(53e6, ps * 1e-12)
        );
    }

    // One full dynamic run with everything enabled.
    let poles = TwoPoles {
        p1_hz: 968e6,
        p2_hz: 921e6,
    };
    let config = TransientConfig::from_poles(fs, &poles)
        .with_binary_skew(30e-12)
        .with_feedthrough(0.05);
    let errors = CellErrors::random(&dac, sigma, &mut rng);
    let mut rng2 = seeded_rng(8);
    let dense = test.run_dense(&dac, &errors, config, &mut rng2);
    println!(
        "full dynamic model: SFDR = {:.1} dB in the 150 MHz band",
        dense.sfdr_in_band_db(fs / 2.0)
    );
}
