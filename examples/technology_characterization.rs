//! Technology-facing workflows around the sizing methodology: extract the
//! Pelgrom constants from (synthetic) silicon data, verify a sized design
//! across process corners, and explore the calibration alternative.
//!
//! Run with `cargo run --release --example technology_characterization`.

use ctsdac::core::corners::{corner_derating, verify_corners_simple};
use ctsdac::core::saturation::SaturationCondition;
use ctsdac::core::DacSpec;
use ctsdac::dac::architecture::SegmentedDac;
use ctsdac::dac::calibration::{residual_sigma_prediction, CalibrationConfig};
use ctsdac::dac::static_metrics::inl_yield_mc;
use ctsdac::process::extract::{extract_pelgrom, MismatchSample};
use ctsdac::process::{Pelgrom, Technology};
use ctsdac::stats::sample::seeded_rng;

fn main() {
    // 1. Extract matching constants from "measured" mismatch data.
    let truth = Pelgrom::new(&Technology::c035().nmos);
    let samples: Vec<MismatchSample> = [
        (0.5e-12, 0.15),
        (1e-12, 0.3),
        (4e-12, 0.5),
        (16e-12, 0.9),
        (30e-12, 1.5),
    ]
    .iter()
    .map(|&(wl, vov)| MismatchSample {
        wl,
        vov,
        sigma_id_rel: truth.sigma_id_rel(wl, vov),
    })
    .collect();
    let fit = extract_pelgrom(&samples).expect("well-posed sample set");
    println!("extracted matching constants: {fit}");

    // 2. Corner-verify a statistically sized design point.
    let spec = DacSpec::paper_12bit();
    let cond = SaturationCondition::Statistical;
    let vov_cs = 0.9;
    let vov_sw = cond.max_vov_sw(&spec, vov_cs).expect("feasible") * 0.95;
    println!("\ncorner check at Vov = ({vov_cs:.2}, {vov_sw:.2}) V:");
    for check in verify_corners_simple(&spec, cond, vov_cs, vov_sw) {
        println!("  {check}");
    }
    let derating = corner_derating(&spec, cond, vov_cs, vov_sw);
    println!("  corner derating needed: {:.0} mV", derating * 1e3);

    // 3. The calibration alternative: shrink the array 16x and trim.
    let dac = SegmentedDac::new(&spec);
    let sigma_small = spec.sigma_unit_spec() * 4.0; // area / 16
    let config = CalibrationConfig::new(6, 4.0 * sigma_small, sigma_small / 50.0);
    let residual = residual_sigma_prediction(&config);
    let mut rng = seeded_rng(3);
    let yield_raw = inl_yield_mc(&dac, sigma_small, 0.5, 100, &mut rng).expect("valid MC setup");
    let mut rng2 = seeded_rng(3);
    let yield_cal = inl_yield_mc(&dac, residual, 0.5, 100, &mut rng2).expect("valid MC setup");
    println!(
        "\ncalibration: area/16 intrinsic yield {:.2} -> trimmed yield {:.2} \
         (residual sigma {:.4} %)",
        yield_raw.estimate(),
        yield_cal.estimate(),
        residual * 100.0
    );
}
