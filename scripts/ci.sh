#!/usr/bin/env sh
# Offline CI gate for the ctsdac workspace.
#
# 1. Hermetic build + tests: everything runs with --offline; a network
#    dependency creeping back into the tree fails the build here.
# 2. Property suites: the proptest-backed suites are feature-gated so the
#    default build stays dependency-free; CI opts in explicitly. A
#    dedicated lane-differential stage then re-runs the lane-equivalence
#    suite on its own line: the SoA kernels must match their scalar
#    oracles bitwise at W = 4 and 8, every remainder lane count, and
#    --jobs 1 vs 8.
# 3. Panic-freedom gate: the solver/exploration/statistics/runtime/DAC/
#    layout/service layers report failures as typed errors. Any
#    `.unwrap()`, `.expect(` or `panic!` re-introduced in non-test,
#    non-comment library code under crates/core/src, crates/circuit/src,
#    crates/stats/src, crates/runtime/src, crates/dac/src,
#    crates/layout/src, crates/service/src, crates/store/src or
#    crates/failpoint/src fails the gate.
# 4. Fault-injection smoke: the supervised runtime must absorb injected
#    panics and survive a kill + resume from a truncated checkpoint
#    journal while reproducing the clean single-threaded results
#    bit-for-bit (crates/bench/src/bin/fault_smoke.rs).
# 5. Bench smoke: sweep_bench on a reduced grid must emit a
#    schema-complete BENCH_sweep.json (reference, warm and lanes arms)
#    and stay within the Newton iteration budget recorded in the
#    checked-in baseline — a solver-effort regression fails here before
#    it shows up as wall-clock noise. The checked-in baseline must also
#    keep the lane kernel's recorded speedup over the reference kernel
#    at or above its validated floor.
# 6. MC bench smoke: mc_bench with reduced trials must emit a
#    schema-complete BENCH_mc.json, prove batched-vs-reference and
#    lanes-vs-reference bit-identity, and stay within the per-trial work
#    budget recorded in the checked-in baseline — a yield-engine
#    regression that re-walks the full transfer curve per trial fails
#    here deterministically. The checked-in lane speedup baseline is
#    floor-gated like the sweep's.
# 7. Quarantine gate: no test may be `#[ignore]`d. The count is reported
#    so a deliberate quarantine (which must carry a reason string) shows
#    up here and forces this gate to be relaxed in the same diff.
# 8. Observability smoke: dacsizer under fault injection with
#    `--trace=json` must exit cleanly and emit a well-formed metrics
#    snapshot; the snapshot's deterministic section must be byte-identical
#    between --jobs 1 and --jobs 8 at the same seed.
# 9. Service smoke: a real `dacd` process with chaos armed must serve a
#    computed sizing request, re-serve an identical repeat bit-for-bit
#    from the cache, turn a too-short deadline into a typed 504 via
#    runtime cancellation, absorb the injected worker panics, and drain
#    cleanly on POST /v1/shutdown with exit code 0 — no orphaned pool
#    workers (a stuck chunk would hang the drain and fail the stage).
# 10. Durable-store crash smoke: `dacd --store` with a deterministic
#    short_write failpoint armed is loaded, SIGKILLed mid-write, and
#    restarted on the same directory. The restarted daemon must serve
#    the surviving entries as cache hits bit-identical to the pre-crash
#    responses and report the torn tail in store.records_discarded.
#
# Run from the repository root: sh scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "==> build (offline)"
cargo build --offline --workspace

echo "==> tests (offline)"
cargo test --offline --workspace -q

echo "==> property suites (offline, --features proptests)"
cargo test --offline -q --features proptests \
    -p ctsdac-circuit -p ctsdac-dac -p ctsdac-dsp \
    -p ctsdac-layout -p ctsdac-process -p ctsdac-stats

echo "==> lane-differential gate (SoA kernels vs scalar oracles, W=4 and W=8)"
# The lane-equivalence suite certifies the SIMD-width SoA kernels: MC
# yield lanes and sweep lanes must reproduce their scalar oracles bit
# for bit at lane widths 4 and 8, at every remainder lane count
# n % W in 0..W, at --jobs 1 vs 8, with jobs- and width-invariant work
# counters. It runs inside the workspace tests too; this explicit stage
# keeps the certification visible and failing on its own line.
cargo test --offline -q --test lane_equivalence

echo "==> quarantine gate (no #[ignore]d tests)"
ignored=$(grep -rn '#\[ignore' --include='*.rs' crates src tests 2>/dev/null | wc -l | tr -d ' ')
echo "ignored tests: $ignored"
if [ "$ignored" -ne 0 ]; then
    echo "FAIL: quarantined tests found; fix them or relax this gate in the same diff:"
    grep -rn '#\[ignore' --include='*.rs' crates src tests
    exit 1
fi

echo "==> panic-freedom gate (core, circuit, stats, runtime, dac, layout, obs, service, store, failpoint)"
# For each library source file, consider only the code before the first
# `#[cfg(test)]` module, drop comment lines, and reject panic escape
# hatches. A line may carry an explicit `ci-gate: allow` waiver when the
# panic is the deliberate behaviour (e.g. scripted fault injection).
status=0
for f in crates/core/src/*.rs crates/circuit/src/*.rs \
         crates/stats/src/*.rs crates/runtime/src/*.rs \
         crates/dac/src/*.rs crates/layout/src/*.rs \
         crates/obs/src/*.rs crates/service/src/*.rs \
         crates/store/src/*.rs crates/failpoint/src/*.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} {print NR": "$0}' "$f" \
        | grep -vE '^[0-9]+: *(//|///|//!)' \
        | grep -v 'ci-gate: allow' \
        | grep -E '\.unwrap\(\)|\.expect\(|panic!' || true)
    if [ -n "$hits" ]; then
        echo "panic escape hatch in $f:"
        echo "$hits"
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "FAIL: library code in the sizing flow must return typed errors"
    exit 1
fi

echo "==> fault-injection smoke (supervised runtime)"
cargo run --offline -q -p ctsdac-bench --bin fault_smoke

echo "==> bench smoke (sweep kernel, reduced grid)"
# The iteration budget comes from the checked-in baseline, so the gate
# tightens automatically when the kernel improves and the baseline is
# regenerated. The reduced-grid debug run only checks solver effort and
# schema, not throughput.
budget=$(sed -n 's/.*"iteration_budget_per_solve": \([0-9.]*\).*/\1/p' BENCH_sweep.json)
if [ -z "$budget" ]; then
    echo "FAIL: no iteration_budget_per_solve in the checked-in BENCH_sweep.json"
    exit 1
fi
smoke_json="${TMPDIR:-/tmp}/ctsdac_bench_smoke.json"
cargo run --offline -q -p ctsdac-bench --bin sweep_bench -- \
    --grid 8 --reps 2 --out "$smoke_json" --budget "$budget"
for key in '"schema": "ctsdac-sweep-bench-v1"' '"reference"' '"warm"' \
           '"lanes"' '"adaptive"' '"speedup_warm_over_reference"' \
           '"speedup_lanes_over_reference"' \
           '"iteration_budget_per_solve"' '"warm_hits"'; do
    if ! grep -q "$key" "$smoke_json"; then
        echo "FAIL: $smoke_json is missing $key"
        exit 1
    fi
done
rm -f "$smoke_json"

# Baseline floor: the checked-in BENCH_sweep.json must keep the lane
# kernel's recorded speedup at or above the validated margin. Wall-clock
# ratios are only trusted inside one bench process (the baseline is
# regenerated release-mode on a quiet host), so the gate reads the
# committed number instead of re-timing in CI.
lanes_speedup=$(sed -n 's/.*"speedup_lanes_over_reference": \([0-9.]*\).*/\1/p' BENCH_sweep.json)
if [ -z "$lanes_speedup" ]; then
    echo "FAIL: no speedup_lanes_over_reference in the checked-in BENCH_sweep.json"
    exit 1
fi
if ! awk "BEGIN { exit !($lanes_speedup >= 13.0) }"; then
    echo "FAIL: BENCH_sweep.json records speedup_lanes_over_reference = $lanes_speedup, below the 13.0 floor"
    exit 1
fi

echo "==> MC bench smoke (yield engine, reduced trials)"
# The per-trial work budget comes from the checked-in baseline: the
# screened classifier scans one block (~272 code-equivalents at 12 bits)
# per trial, so the half-curve budget catches a regression back to full
# 4096-code walks. The reduced-trial debug run checks deterministic work,
# bit-identity and schema, not throughput.
mc_budget=$(sed -n 's/.*"per_trial_work_budget": \([0-9.]*\).*/\1/p' BENCH_mc.json)
if [ -z "$mc_budget" ]; then
    echo "FAIL: no per_trial_work_budget in the checked-in BENCH_mc.json"
    exit 1
fi
mc_smoke_json="${TMPDIR:-/tmp}/ctsdac_mc_smoke.json"
cargo run --offline -q -p ctsdac-bench --bin mc_bench -- \
    --trials 200 --reps 1 --out "$mc_smoke_json" --budget "$mc_budget"
for key in '"schema": "ctsdac-mc-bench-v1"' \
           '"bit_identical_batched_vs_reference": true' \
           '"bit_identical_lanes_vs_reference": true' '"legacy"' \
           '"reference"' '"batched"' '"lanes"' '"codes_per_trial"' \
           '"per_trial_work_budget"' '"speedup_batched_over_reference"' \
           '"speedup_lanes_over_reference"'; do
    if ! grep -q "$key" "$mc_smoke_json"; then
        echo "FAIL: $mc_smoke_json is missing $key"
        exit 1
    fi
done
rm -f "$mc_smoke_json"

# Baseline floor for the lane yield engine, mirroring the sweep gate:
# the committed release-mode measurement must stay at or above the
# validated margin.
mc_lanes_speedup=$(sed -n 's/.*"speedup_lanes_over_reference": \([0-9.]*\).*/\1/p' BENCH_mc.json)
if [ -z "$mc_lanes_speedup" ]; then
    echo "FAIL: no speedup_lanes_over_reference in the checked-in BENCH_mc.json"
    exit 1
fi
if ! awk "BEGIN { exit !($mc_lanes_speedup >= 12.0) }"; then
    echo "FAIL: BENCH_mc.json records speedup_lanes_over_reference = $mc_lanes_speedup, below the 12.0 floor"
    exit 1
fi

echo "==> observability smoke (trace + metrics under fault injection)"
# A supervised run with injected panics, tracing to stderr and a metrics
# snapshot to disk: the run must succeed, the snapshot must carry the
# schema header and both sections, and every injected fault must show up
# in the nondeterministic counters.
obs_json="${TMPDIR:-/tmp}/ctsdac_obs_smoke.json"
cargo run --offline -q -p ctsdac --bin dacsizer -- \
    --topology simple --grid 8 --jobs 4 --faults panic@1,nan@3 \
    --trace=json --metrics-out "$obs_json" >/dev/null 2>&1
for key in '"schema": "ctsdac-metrics-v1"' '"deterministic"' \
           '"nondeterministic"' '"mc.trials"' '"circuit.dc.solves"' \
           '"hist.circuit.dc.iterations_per_solve"' '"spans"' \
           '"pool.faults_absorbed"'; do
    if ! grep -q "$key" "$obs_json"; then
        echo "FAIL: $obs_json is missing $key"
        exit 1
    fi
done
rm -f "$obs_json"

echo "==> metrics determinism (deterministic section, --jobs 1 vs --jobs 8)"
# The deterministic section counts work, not scheduling: it must be
# byte-identical across worker counts at the same seed. Fault-free run,
# forced simple topology so the sweep and MC paths both execute.
det1="${TMPDIR:-/tmp}/ctsdac_metrics_j1.json"
det8="${TMPDIR:-/tmp}/ctsdac_metrics_j8.json"
cargo run --offline -q -p ctsdac --bin dacsizer -- \
    --topology simple --grid 8 --jobs 1 --seed 7 --metrics-out "$det1" >/dev/null
cargo run --offline -q -p ctsdac --bin dacsizer -- \
    --topology simple --grid 8 --jobs 8 --seed 7 --metrics-out "$det8" >/dev/null
sed -n '/"deterministic": {/,/^  },$/p' "$det1" > "$det1.det"
sed -n '/"deterministic": {/,/^  },$/p' "$det8" > "$det8.det"
if ! cmp -s "$det1.det" "$det8.det"; then
    echo "FAIL: deterministic metrics differ between --jobs 1 and --jobs 8:"
    diff "$det1.det" "$det8.det" || true
    exit 1
fi
if ! grep -q '"mc.trials"' "$det1.det"; then
    echo "FAIL: deterministic section lost its work counters"
    exit 1
fi
rm -f "$det1" "$det8" "$det1.det" "$det8.det"

echo "==> service smoke (dacd: admission -> cache -> breaker -> runtime)"
# A real dacd process on an ephemeral port with chaos armed: chunk 0 of
# every supervised run panics on its first attempt (the retry must absorb
# it) and chunk 1 stalls 120 ms (so a 50 ms deadline provably cannot
# finish). The request sequence walks the whole pipeline: computed miss,
# bit-identical cached repeat, typed 504 via runtime cancellation, live
# metrics, graceful drain.
cargo build --offline -q -p ctsdac --bin dacd
dacd_log="${TMPDIR:-/tmp}/ctsdac_dacd_smoke.log"
./target/debug/dacd --addr 127.0.0.1:0 --workers 2 \
    --faults panic@0,delay@1:120 > "$dacd_log" 2>&1 &
dacd_pid=$!
dacd_addr=""
for _ in $(seq 1 100); do
    dacd_addr=$(sed -n 's/^listening on //p' "$dacd_log")
    [ -n "$dacd_addr" ] && break
    sleep 0.1
done
if [ -z "$dacd_addr" ]; then
    echo "FAIL: dacd never announced its listen address"
    cat "$dacd_log"
    exit 1
fi
svc="${TMPDIR:-/tmp}/ctsdac_svc_smoke"
post() { curl -sS -o "$2" -w '%{http_code}' -X POST "http://$dacd_addr$1" -d "$3"; }

code=$(post /v1/sizing "$svc.miss" '{"grid":8}')
if [ "$code" != 200 ] || ! grep -q '"cache":"miss"' "$svc.miss" \
    || ! grep -q '"feasible":true' "$svc.miss"; then
    echo "FAIL: fault-injected sizing was not a computed feasible miss ($code)"
    cat "$svc.miss"; exit 1
fi
code=$(post /v1/sizing "$svc.hit" '{"grid":8}')
if [ "$code" != 200 ] || ! grep -q '"cache":"hit"' "$svc.hit"; then
    echo "FAIL: identical repeat did not hit the cache ($code)"
    cat "$svc.hit"; exit 1
fi
# Bit-identity: the two bodies may differ only in the cache marker.
sed 's/"cache":"[a-z]*"/"cache":"_"/' "$svc.miss" > "$svc.miss.n"
sed 's/"cache":"[a-z]*"/"cache":"_"/' "$svc.hit" > "$svc.hit.n"
if ! cmp -s "$svc.miss.n" "$svc.hit.n"; then
    echo "FAIL: cache hit is not bit-identical to the computed result"
    diff "$svc.miss.n" "$svc.hit.n" || true
    exit 1
fi
code=$(post /v1/sizing "$svc.dl" '{"grid":9,"deadline_ms":50}')
if [ "$code" != 504 ] || ! grep -q '"kind":"deadline_exceeded"' "$svc.dl"; then
    echo "FAIL: short deadline did not become a typed 504 (got $code)"
    cat "$svc.dl"; exit 1
fi
code=$(curl -sS -o "$svc.metrics" -w '%{http_code}' "http://$dacd_addr/v1/metrics")
if [ "$code" != 200 ] || ! grep -q 'pool.faults_absorbed' "$svc.metrics"; then
    echo "FAIL: /v1/metrics lost the absorbed-fault counters ($code)"
    cat "$svc.metrics"; exit 1
fi
code=$(post /v1/shutdown "$svc.bye" '')
if [ "$code" != 200 ]; then
    echo "FAIL: shutdown returned $code"
    cat "$svc.bye"; exit 1
fi
if ! wait "$dacd_pid"; then
    echo "FAIL: dacd exited nonzero after drain"
    cat "$dacd_log"; exit 1
fi
if ! grep -q 'drained; goodbye' "$dacd_log"; then
    echo "FAIL: dacd did not report a clean drain"
    cat "$dacd_log"; exit 1
fi
rm -f "$svc.miss" "$svc.hit" "$svc.miss.n" "$svc.hit.n" \
      "$svc.dl" "$svc.metrics" "$svc.bye" "$dacd_log"

echo "==> durable-store crash smoke (dacd --store, kill -9 mid-write, recover)"
# A dacd with the segment-log store and a deterministic torn-write
# failpoint: the third append is cut mid-record exactly as a crash
# inside write(2) would, the process is SIGKILLed, and a clean restart
# on the same directory must re-serve the two surviving results as
# bit-identical cache hits while counting the torn tail.
store_dir="${TMPDIR:-/tmp}/ctsdac_store_smoke_dir"
store_log="${TMPDIR:-/tmp}/ctsdac_store_smoke.log"
sv="${TMPDIR:-/tmp}/ctsdac_store_smoke"
rm -rf "$store_dir"
./target/debug/dacd --addr 127.0.0.1:0 --workers 2 \
    --store "$store_dir" --fsync-ms 5 \
    --failpoints short_write@store.append:3 --failpoint-seed 7 \
    > "$store_log" 2>&1 &
store_pid=$!
dacd_addr=""
for _ in $(seq 1 100); do
    dacd_addr=$(sed -n 's/^listening on //p' "$store_log")
    [ -n "$dacd_addr" ] && break
    sleep 0.1
done
if [ -z "$dacd_addr" ]; then
    echo "FAIL: store-backed dacd never announced its listen address"
    cat "$store_log"; exit 1
fi
for g in 8 9 10; do
    code=$(post /v1/sizing "$sv.pre$g" "{\"grid\":$g}")
    if [ "$code" != 200 ]; then
        echo "FAIL: pre-crash sizing grid $g returned $code"
        cat "$sv.pre$g"; exit 1
    fi
done
# Wait for the two whole records to be durably appended (the snapshot
# arrives JSON-escaped, hence the \" in the pattern), give the torn
# third append a moment to sync its half-record, then pull the plug.
appended=no
for _ in $(seq 1 100); do
    if curl -sS "http://$dacd_addr/v1/metrics" \
        | grep -q 'store.records_appended\\": 2'; then
        appended=yes; break
    fi
    sleep 0.1
done
if [ "$appended" != yes ]; then
    echo "FAIL: store never reported two durable appends"
    curl -sS "http://$dacd_addr/v1/metrics"; exit 1
fi
sleep 0.3
kill -9 "$store_pid"
wait "$store_pid" 2>/dev/null || true

./target/debug/dacd --addr 127.0.0.1:0 --workers 2 \
    --store "$store_dir" --fsync-ms 5 > "$store_log" 2>&1 &
store_pid=$!
dacd_addr=""
for _ in $(seq 1 100); do
    dacd_addr=$(sed -n 's/^listening on //p' "$store_log")
    [ -n "$dacd_addr" ] && break
    sleep 0.1
done
if [ -z "$dacd_addr" ]; then
    echo "FAIL: recovered dacd never announced its listen address"
    cat "$store_log"; exit 1
fi
curl -sS -o "$sv.metrics" "http://$dacd_addr/v1/metrics"
if ! grep -q 'store.records_recovered\\": 2' "$sv.metrics" \
    || ! grep -q 'store.records_discarded\\": 1' "$sv.metrics"; then
    echo "FAIL: recovery counters wrong (want 2 recovered, 1 discarded):"
    cat "$sv.metrics"; exit 1
fi
for g in 8 9; do
    code=$(post /v1/sizing "$sv.post$g" "{\"grid\":$g}")
    if [ "$code" != 200 ] || ! grep -q '"cache":"hit"' "$sv.post$g"; then
        echo "FAIL: grid $g not served from the recovered store ($code)"
        cat "$sv.post$g"; exit 1
    fi
    sed 's/"cache":"[a-z]*"/"cache":"_"/' "$sv.pre$g" > "$sv.pre$g.n"
    sed 's/"cache":"[a-z]*"/"cache":"_"/' "$sv.post$g" > "$sv.post$g.n"
    if ! cmp -s "$sv.pre$g.n" "$sv.post$g.n"; then
        echo "FAIL: recovered grid $g is not bit-identical to the pre-crash bytes"
        diff "$sv.pre$g.n" "$sv.post$g.n" || true
        exit 1
    fi
done
# The torn grid-10 entry must be gone: a recompute, not a hit.
code=$(post /v1/sizing "$sv.post10" '{"grid":10}')
if [ "$code" != 200 ] || ! grep -q '"cache":"miss"' "$sv.post10"; then
    echo "FAIL: torn grid-10 entry should have been discarded ($code)"
    cat "$sv.post10"; exit 1
fi
code=$(post /v1/shutdown "$sv.bye" '')
if [ "$code" != 200 ] || ! wait "$store_pid"; then
    echo "FAIL: recovered dacd did not drain cleanly"
    cat "$store_log"; exit 1
fi
rm -rf "$store_dir"
rm -f "$sv.pre8" "$sv.pre9" "$sv.pre10" "$sv.post8" "$sv.post9" "$sv.post10" \
      "$sv.pre8.n" "$sv.pre9.n" "$sv.post8.n" "$sv.post9.n" \
      "$sv.metrics" "$sv.bye" "$store_log"

echo "CI gate passed"
