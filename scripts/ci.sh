#!/usr/bin/env sh
# Offline CI gate for the ctsdac workspace.
#
# 1. Hermetic build + tests: everything runs with --offline; a network
#    dependency creeping back into the tree fails the build here.
# 2. Property suites: the proptest-backed suites are feature-gated so the
#    default build stays dependency-free; CI opts in explicitly.
# 3. Panic-freedom gate: the solver/exploration/statistics/runtime layers
#    report failures as typed errors. Any `.unwrap()`, `.expect(` or
#    `panic!` re-introduced in non-test, non-comment library code under
#    crates/core/src, crates/circuit/src, crates/stats/src or
#    crates/runtime/src fails the gate.
# 4. Fault-injection smoke: the supervised runtime must absorb injected
#    panics and survive a kill + resume from a truncated checkpoint
#    journal while reproducing the clean single-threaded results
#    bit-for-bit (crates/bench/src/bin/fault_smoke.rs).
#
# Run from the repository root: sh scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "==> build (offline)"
cargo build --offline --workspace

echo "==> tests (offline)"
cargo test --offline --workspace -q

echo "==> property suites (offline, --features proptests)"
cargo test --offline -q --features proptests \
    -p ctsdac-circuit -p ctsdac-dac -p ctsdac-dsp \
    -p ctsdac-layout -p ctsdac-process -p ctsdac-stats

echo "==> panic-freedom gate (crates/core, crates/circuit, crates/stats, crates/runtime)"
# For each library source file, consider only the code before the first
# `#[cfg(test)]` module, drop comment lines, and reject panic escape
# hatches. A line may carry an explicit `ci-gate: allow` waiver when the
# panic is the deliberate behaviour (e.g. scripted fault injection).
status=0
for f in crates/core/src/*.rs crates/circuit/src/*.rs \
         crates/stats/src/*.rs crates/runtime/src/*.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} {print NR": "$0}' "$f" \
        | grep -vE '^[0-9]+: *(//|///|//!)' \
        | grep -v 'ci-gate: allow' \
        | grep -E '\.unwrap\(\)|\.expect\(|panic!' || true)
    if [ -n "$hits" ]; then
        echo "panic escape hatch in $f:"
        echo "$hits"
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "FAIL: library code in the sizing flow must return typed errors"
    exit 1
fi

echo "==> fault-injection smoke (supervised runtime)"
cargo run --offline -q -p ctsdac-bench --bin fault_smoke

echo "CI gate passed"
