#!/usr/bin/env sh
# Offline CI gate for the ctsdac workspace.
#
# 1. Hermetic build + tests: everything runs with --offline; a network
#    dependency creeping back into the tree fails the build here.
# 2. Property suites: the proptest-backed suites are feature-gated so the
#    default build stays dependency-free; CI opts in explicitly.
# 3. Panic-freedom gate: the solver/exploration/statistics/runtime/DAC/
#    layout layers report failures as typed errors. Any `.unwrap()`,
#    `.expect(` or `panic!` re-introduced in non-test, non-comment
#    library code under crates/core/src, crates/circuit/src,
#    crates/stats/src, crates/runtime/src, crates/dac/src or
#    crates/layout/src fails the gate.
# 4. Fault-injection smoke: the supervised runtime must absorb injected
#    panics and survive a kill + resume from a truncated checkpoint
#    journal while reproducing the clean single-threaded results
#    bit-for-bit (crates/bench/src/bin/fault_smoke.rs).
# 5. Bench smoke: sweep_bench on a reduced grid must emit a
#    schema-complete BENCH_sweep.json and stay within the Newton
#    iteration budget recorded in the checked-in baseline — a
#    solver-effort regression fails here before it shows up as
#    wall-clock noise.
# 6. MC bench smoke: mc_bench with reduced trials must emit a
#    schema-complete BENCH_mc.json, prove batched-vs-reference
#    bit-identity, and stay within the per-trial work budget recorded in
#    the checked-in baseline — a yield-engine regression that re-walks
#    the full transfer curve per trial fails here deterministically.
# 7. Quarantine gate: no test may be `#[ignore]`d. The count is reported
#    so a deliberate quarantine (which must carry a reason string) shows
#    up here and forces this gate to be relaxed in the same diff.
# 8. Observability smoke: dacsizer under fault injection with
#    `--trace=json` must exit cleanly and emit a well-formed metrics
#    snapshot; the snapshot's deterministic section must be byte-identical
#    between --jobs 1 and --jobs 8 at the same seed.
#
# Run from the repository root: sh scripts/ci.sh

set -eu

cd "$(dirname "$0")/.."

echo "==> build (offline)"
cargo build --offline --workspace

echo "==> tests (offline)"
cargo test --offline --workspace -q

echo "==> property suites (offline, --features proptests)"
cargo test --offline -q --features proptests \
    -p ctsdac-circuit -p ctsdac-dac -p ctsdac-dsp \
    -p ctsdac-layout -p ctsdac-process -p ctsdac-stats

echo "==> quarantine gate (no #[ignore]d tests)"
ignored=$(grep -rn '#\[ignore' --include='*.rs' crates src tests 2>/dev/null | wc -l | tr -d ' ')
echo "ignored tests: $ignored"
if [ "$ignored" -ne 0 ]; then
    echo "FAIL: quarantined tests found; fix them or relax this gate in the same diff:"
    grep -rn '#\[ignore' --include='*.rs' crates src tests
    exit 1
fi

echo "==> panic-freedom gate (core, circuit, stats, runtime, dac, layout, obs)"
# For each library source file, consider only the code before the first
# `#[cfg(test)]` module, drop comment lines, and reject panic escape
# hatches. A line may carry an explicit `ci-gate: allow` waiver when the
# panic is the deliberate behaviour (e.g. scripted fault injection).
status=0
for f in crates/core/src/*.rs crates/circuit/src/*.rs \
         crates/stats/src/*.rs crates/runtime/src/*.rs \
         crates/dac/src/*.rs crates/layout/src/*.rs \
         crates/obs/src/*.rs; do
    hits=$(awk '/#\[cfg\(test\)\]/{exit} {print NR": "$0}' "$f" \
        | grep -vE '^[0-9]+: *(//|///|//!)' \
        | grep -v 'ci-gate: allow' \
        | grep -E '\.unwrap\(\)|\.expect\(|panic!' || true)
    if [ -n "$hits" ]; then
        echo "panic escape hatch in $f:"
        echo "$hits"
        status=1
    fi
done
if [ "$status" -ne 0 ]; then
    echo "FAIL: library code in the sizing flow must return typed errors"
    exit 1
fi

echo "==> fault-injection smoke (supervised runtime)"
cargo run --offline -q -p ctsdac-bench --bin fault_smoke

echo "==> bench smoke (sweep kernel, reduced grid)"
# The iteration budget comes from the checked-in baseline, so the gate
# tightens automatically when the kernel improves and the baseline is
# regenerated. The reduced-grid debug run only checks solver effort and
# schema, not throughput.
budget=$(sed -n 's/.*"iteration_budget_per_solve": \([0-9.]*\).*/\1/p' BENCH_sweep.json)
if [ -z "$budget" ]; then
    echo "FAIL: no iteration_budget_per_solve in the checked-in BENCH_sweep.json"
    exit 1
fi
smoke_json="${TMPDIR:-/tmp}/ctsdac_bench_smoke.json"
cargo run --offline -q -p ctsdac-bench --bin sweep_bench -- \
    --grid 8 --reps 2 --out "$smoke_json" --budget "$budget"
for key in '"schema": "ctsdac-sweep-bench-v1"' '"reference"' '"warm"' \
           '"adaptive"' '"speedup_warm_over_reference"' \
           '"iteration_budget_per_solve"' '"warm_hits"'; do
    if ! grep -q "$key" "$smoke_json"; then
        echo "FAIL: $smoke_json is missing $key"
        exit 1
    fi
done
rm -f "$smoke_json"

echo "==> MC bench smoke (yield engine, reduced trials)"
# The per-trial work budget comes from the checked-in baseline: the
# screened classifier scans one block (~272 code-equivalents at 12 bits)
# per trial, so the half-curve budget catches a regression back to full
# 4096-code walks. The reduced-trial debug run checks deterministic work,
# bit-identity and schema, not throughput.
mc_budget=$(sed -n 's/.*"per_trial_work_budget": \([0-9.]*\).*/\1/p' BENCH_mc.json)
if [ -z "$mc_budget" ]; then
    echo "FAIL: no per_trial_work_budget in the checked-in BENCH_mc.json"
    exit 1
fi
mc_smoke_json="${TMPDIR:-/tmp}/ctsdac_mc_smoke.json"
cargo run --offline -q -p ctsdac-bench --bin mc_bench -- \
    --trials 200 --reps 1 --out "$mc_smoke_json" --budget "$mc_budget"
for key in '"schema": "ctsdac-mc-bench-v1"' \
           '"bit_identical_batched_vs_reference": true' '"legacy"' \
           '"reference"' '"batched"' '"codes_per_trial"' \
           '"per_trial_work_budget"' '"speedup_batched_over_reference"'; do
    if ! grep -q "$key" "$mc_smoke_json"; then
        echo "FAIL: $mc_smoke_json is missing $key"
        exit 1
    fi
done
rm -f "$mc_smoke_json"

echo "==> observability smoke (trace + metrics under fault injection)"
# A supervised run with injected panics, tracing to stderr and a metrics
# snapshot to disk: the run must succeed, the snapshot must carry the
# schema header and both sections, and every injected fault must show up
# in the nondeterministic counters.
obs_json="${TMPDIR:-/tmp}/ctsdac_obs_smoke.json"
cargo run --offline -q -p ctsdac --bin dacsizer -- \
    --topology simple --grid 8 --jobs 4 --faults panic@1,nan@3 \
    --trace=json --metrics-out "$obs_json" >/dev/null 2>&1
for key in '"schema": "ctsdac-metrics-v1"' '"deterministic"' \
           '"nondeterministic"' '"mc.trials"' '"circuit.dc.solves"' \
           '"hist.circuit.dc.iterations_per_solve"' '"spans"' \
           '"pool.faults_absorbed"'; do
    if ! grep -q "$key" "$obs_json"; then
        echo "FAIL: $obs_json is missing $key"
        exit 1
    fi
done
rm -f "$obs_json"

echo "==> metrics determinism (deterministic section, --jobs 1 vs --jobs 8)"
# The deterministic section counts work, not scheduling: it must be
# byte-identical across worker counts at the same seed. Fault-free run,
# forced simple topology so the sweep and MC paths both execute.
det1="${TMPDIR:-/tmp}/ctsdac_metrics_j1.json"
det8="${TMPDIR:-/tmp}/ctsdac_metrics_j8.json"
cargo run --offline -q -p ctsdac --bin dacsizer -- \
    --topology simple --grid 8 --jobs 1 --seed 7 --metrics-out "$det1" >/dev/null
cargo run --offline -q -p ctsdac --bin dacsizer -- \
    --topology simple --grid 8 --jobs 8 --seed 7 --metrics-out "$det8" >/dev/null
sed -n '/"deterministic": {/,/^  },$/p' "$det1" > "$det1.det"
sed -n '/"deterministic": {/,/^  },$/p' "$det8" > "$det8.det"
if ! cmp -s "$det1.det" "$det8.det"; then
    echo "FAIL: deterministic metrics differ between --jobs 1 and --jobs 8:"
    diff "$det1.det" "$det8.det" || true
    exit 1
fi
if ! grep -q '"mc.trials"' "$det1.det"; then
    echo "FAIL: deterministic section lost its work counters"
    exit 1
fi
rm -f "$det1" "$det8" "$det1.det" "$det8.det"

echo "CI gate passed"
