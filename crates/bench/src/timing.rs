//! Minimal wall-clock timing harness for the `[[bench]]` targets.
//!
//! The workspace builds hermetically (no registry access), so the benches
//! cannot depend on an external benchmarking framework. This module provides
//! the small subset actually needed: per-iteration timing with automatic
//! iteration-count calibration, batched setup excluded from the measurement,
//! and a plain-text report.
//!
//! The harness is intentionally simple — median-of-batches wall-clock timing
//! with `std::hint::black_box` around inputs and outputs — and is meant for
//! relative comparisons across commits on the same machine, not absolute
//! microbenchmark truth.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured batch.
const TARGET_BATCH: Duration = Duration::from_millis(10);
/// Number of measured batches per benchmark.
const BATCHES: usize = 15;
/// Hard cap on calibrated iterations per batch.
const MAX_ITERS: u64 = 1 << 24;

/// Summary of one benchmark's measured batches.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark label.
    pub name: String,
    /// Iterations per measured batch.
    pub iters_per_batch: u64,
    /// Median per-iteration time across batches, in nanoseconds.
    pub median_ns: f64,
    /// Fastest per-iteration time across batches, in nanoseconds.
    pub min_ns: f64,
}

impl BenchResult {
    fn from_samples(name: &str, iters: u64, mut per_iter_ns: Vec<f64>) -> Self {
        per_iter_ns.sort_by(f64::total_cmp);
        let median_ns = per_iter_ns[per_iter_ns.len() / 2];
        let min_ns = per_iter_ns[0];
        Self {
            name: name.to_string(),
            iters_per_batch: iters,
            median_ns,
            min_ns,
        }
    }
}

/// Collects and reports a suite of wall-clock benchmarks.
#[derive(Debug, Default)]
pub struct Harness {
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates an empty harness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `routine` (no per-iteration setup).
    pub fn bench<T>(&mut self, name: &str, mut routine: impl FnMut() -> T) {
        let iters = calibrate(&mut routine);
        let samples: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        self.push(BenchResult::from_samples(name, iters, samples));
    }

    /// Times `routine` with a fresh `setup()` value per iteration; the setup
    /// cost is excluded from the measurement by timing each call separately.
    ///
    /// Per-call timing has more overhead than batch timing, so use this only
    /// when the routine consumes its input (the `iter_batched` pattern).
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        // Calibrate against routine + setup, then time only the routine.
        let iters = calibrate(&mut || routine(setup()));
        let samples: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let input = setup();
                    let start = Instant::now();
                    black_box(routine(black_box(input)));
                    total += start.elapsed();
                }
                total.as_nanos() as f64 / iters as f64
            })
            .collect();
        self.push(BenchResult::from_samples(name, iters, samples));
    }

    fn push(&mut self, result: BenchResult) {
        println!(
            "{:<40} {:>14}  (min {:>12}, {} iters/batch)",
            result.name,
            format_ns(result.median_ns),
            format_ns(result.min_ns),
            result.iters_per_batch,
        );
        self.results.push(result);
    }

    /// All results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Prints a closing summary table.
    pub fn report(&self) {
        println!("\n{} benchmarks completed", self.results.len());
    }
}

/// Doubles the iteration count until one batch takes at least
/// [`TARGET_BATCH`], so that timer granularity is negligible.
fn calibrate<T>(routine: &mut impl FnMut() -> T) -> u64 {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET_BATCH || iters >= MAX_ITERS {
            return iters;
        }
        iters = match elapsed.as_nanos() {
            // Too fast to resolve: jump an order of magnitude.
            0..=100 => iters * 16,
            _ => (iters * 2).min(MAX_ITERS),
        };
    }
}

/// Human-readable nanosecond formatting (ns/µs/ms/s).
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_result() {
        let mut h = Harness::new();
        h.bench("noop_add", || std::hint::black_box(1u64) + 1);
        assert_eq!(h.results().len(), 1);
        let r = &h.results()[0];
        assert_eq!(r.name, "noop_add");
        assert!(r.median_ns >= 0.0);
        assert!(r.min_ns <= r.median_ns);
    }

    #[test]
    fn bench_with_setup_excludes_setup() {
        let mut h = Harness::new();
        h.bench_with_setup("vec_sum", || vec![1.0f64; 64], |v| v.iter().sum::<f64>());
        assert_eq!(h.results().len(), 1);
        assert!(h.results()[0].iters_per_batch >= 1);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
