//! Experiment harness: one function per figure of the DATE 2003 paper.
//!
//! Each experiment prints the series the paper plots and writes the raw
//! data as CSV under `experiments/`. The binaries in `src/bin` are thin
//! wrappers; `all_experiments` runs everything and is what EXPERIMENTS.md
//! is produced from.

pub mod timing;

use std::fmt::Write as _;
use std::path::PathBuf;

use ctsdac_circuit::cell::CellTopology;
use ctsdac_circuit::poles::PoleModel;
use ctsdac_core::cascode::CascodeSpace;
use ctsdac_core::explore::{DesignSpace, Objective};
use ctsdac_core::report::{ComparisonReport, SizingTable};
use ctsdac_core::saturation::SaturationCondition;
use ctsdac_core::segmentation::segmentation_sweep;
use ctsdac_core::sizing::build_cascoded_cell;
use ctsdac_core::DacSpec;
use ctsdac_dac::architecture::SegmentedDac;
use ctsdac_dac::errors::CellErrors;
use ctsdac_dac::jitter::{jitter_snr_measured_db, jitter_snr_theory_db};
use ctsdac_dac::sine::SineTest;
use ctsdac_dac::static_metrics::inl_yield_mc;
use ctsdac_dac::transient::{TransientConfig, TransientSim};
use ctsdac_layout::centroid::array_errors_with_split;
use ctsdac_layout::gradient::GradientModel;
use ctsdac_layout::grid::ArrayGrid;
use ctsdac_layout::inl::unary_inl_max;
use ctsdac_layout::lefdef::{write_def, write_lef, CellGeometry};
use ctsdac_layout::schemes::{canonical_gradients, Scheme};
use ctsdac_layout::Floorplan;
use ctsdac_runtime::{run_chunks, ExecPolicy, McPlan, PoolConfig};
use ctsdac_stats::sample::seeded_rng;

/// Parses a bench binary's argv for `--jobs N` (default 1). Unknown flags
/// and malformed values are reported on stderr and fall back to 1, so the
/// regeneration harness never aborts on argv trouble.
pub fn jobs_from_args(argv: impl Iterator<Item = String>) -> usize {
    let mut argv = argv.peekable();
    let mut jobs = 1usize;
    while let Some(flag) = argv.next() {
        if flag == "--jobs" {
            match argv.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => jobs = n,
                other => eprintln!("ignoring bad --jobs value {other:?}; using 1"),
            }
        } else {
            eprintln!("ignoring unknown flag {flag:?}");
        }
    }
    jobs
}

/// Output directory for CSV series (`experiments/` at the workspace root).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../experiments");
    std::fs::create_dir_all(&dir).expect("create experiments directory");
    dir
}

fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = out_dir().join(name);
    let mut content = String::from(header);
    content.push('\n');
    for row in rows {
        content.push_str(row);
        content.push('\n');
    }
    std::fs::write(&path, content).expect("write CSV");
}

/// FIG3-SAT — the saturation constraint curves of Fig. 3 (upper):
/// maximum admissible `V_OD,SW` vs `V_OD,CS` under the exact (eq. 4),
/// legacy 0.5 V margin, and statistical (eq. 9) conditions.
pub fn fig3_saturation() -> String {
    let spec = DacSpec::paper_12bit();
    let mut report = String::new();
    writeln!(report, "== FIG3-SAT: saturation constraint curves ==").expect("write");
    writeln!(report, "{spec}").expect("write");
    writeln!(
        report,
        "V_out,min = {:.3} V, S = {:.3}",
        spec.env.v_out_min(),
        SaturationCondition::s_factor(&spec)
    )
    .expect("write");
    writeln!(
        report,
        "{:>8} {:>12} {:>12} {:>12}  (max V_OD,SW [V])",
        "V_OD,CS", "exact", "margin0.5", "statistical"
    )
    .expect("write");
    let mut rows = Vec::new();
    let conds = [
        SaturationCondition::Exact,
        SaturationCondition::legacy(),
        SaturationCondition::Statistical,
    ];
    for i in 1..=40 {
        let vov_cs = 0.05 * i as f64;
        if vov_cs >= spec.env.v_out_min() {
            break;
        }
        let vals: Vec<Option<f64>> = conds.iter().map(|c| c.max_vov_sw(&spec, vov_cs)).collect();
        let fmt = |v: &Option<f64>| match v {
            Some(x) => format!("{x:>12.4}"),
            None => format!("{:>12}", "-"),
        };
        writeln!(
            report,
            "{vov_cs:>8.2} {} {} {}",
            fmt(&vals[0]),
            fmt(&vals[1]),
            fmt(&vals[2])
        )
        .expect("write");
        rows.push(format!(
            "{vov_cs},{},{},{}",
            vals[0].map_or(String::new(), |v| v.to_string()),
            vals[1].map_or(String::new(), |v| v.to_string()),
            vals[2].map_or(String::new(), |v| v.to_string()),
        ));
    }
    write_csv(
        "fig3_saturation.csv",
        "vov_cs,exact_max_sw,legacy_max_sw,statistical_max_sw",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: statistical curve sits between exact and the 0.5 V margin, \
         recovering most of the arbitrary margin."
    )
    .expect("write");
    report
}

/// FIG3-POLE — the min(p1, p2) map of Fig. 3 (lower) over the statistically
/// constrained plane, plus the max-speed and min-area optimum points.
pub fn fig3_poles() -> String {
    let spec = DacSpec::paper_12bit();
    let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(28);
    let mut report = String::new();
    writeln!(report, "== FIG3-POLE: pole-frequency map and optima ==").expect("write");
    let mut rows = Vec::new();
    for p in space.sweep() {
        rows.push(format!(
            "{},{},{},{},{},{}",
            p.vov_cs, p.vov_sw, p.feasible as u8, p.min_pole_hz, p.total_area, p.settling_s
        ));
    }
    write_csv(
        "fig3_poles.csv",
        "vov_cs,vov_sw,feasible,min_pole_hz,total_area_m2,settling_s",
        &rows,
    );
    let fast = space
        .optimize(Objective::MaxSpeed)
        .expect("feasible region");
    let small = space.optimize(Objective::MinArea).expect("feasible region");
    writeln!(report, "max-speed point : {fast}").expect("write");
    writeln!(
        report,
        "  sizing: {}",
        SizingTable::for_simple(&spec, fast.vov_cs, fast.vov_sw)
    )
    .expect("write");
    writeln!(report, "min-area  point : {small}").expect("write");
    writeln!(
        report,
        "  sizing: {}",
        SizingTable::for_simple(&spec, small.vov_cs, small.vov_sw)
    )
    .expect("write");
    writeln!(
        report,
        "Expected shape: speed optimum in the interior/edge of the admissible \
         region; area optimum hugging the constraint at large overdrives."
    )
    .expect("write");
    report
}

/// FIG4-CAS — the cascoded design-space limit surface of Fig. 4 and the
/// admissible volume under each condition.
pub fn fig4_design_space() -> String {
    fig4_design_space_jobs(1)
}

/// [`fig4_design_space`] with the cascode surface evaluated on the
/// supervised worker pool, one chunk per `(condition, grid row)` pair.
/// The surface is a pure function of the chunk index, so the output is
/// identical for every `jobs` value.
pub fn fig4_design_space_jobs(jobs: usize) -> String {
    const GRID: usize = 14;
    let spec = DacSpec::paper_12bit();
    let mut report = String::new();
    writeln!(report, "== FIG4-CAS: cascoded design space ==").expect("write");
    let conditions = [
        ("exact", SaturationCondition::Exact),
        ("legacy", SaturationCondition::legacy()),
        ("statistical", SaturationCondition::Statistical),
    ];
    let total = (conditions.len() * GRID) as u64;
    let run = run_chunks(
        &PoolConfig::with_jobs(jobs),
        total,
        std::collections::BTreeMap::new(),
        |ctx| {
            let (cond_idx, row) = (ctx.chunk as usize / GRID, ctx.chunk as usize % GRID);
            let (name, cond) = conditions[cond_idx];
            let space = CascodeSpace::new(&spec, cond).with_grid(GRID);
            Ok(space
                .surface_row(row)
                .into_iter()
                .map(|p| {
                    format!(
                        "{name},{},{},{}",
                        p.vov_sw,
                        p.vov_cas,
                        p.max_vov_cs.map_or(String::new(), |v| v.to_string())
                    )
                })
                .collect::<Vec<_>>())
        },
        |_, _| Ok(()),
    )
    .expect("pure surface evaluation cannot exhaust retries");
    let rows: Vec<String> = run.results.into_iter().flatten().collect();
    let mut volumes = Vec::new();
    for (name, cond) in conditions {
        let space = CascodeSpace::new(&spec, cond).with_grid(GRID);
        let vol = space.admissible_volume();
        volumes.push((name, vol));
        writeln!(report, "{name:>12}: admissible volume = {vol:.4} V^3").expect("write");
    }
    write_csv(
        "fig4_design_space.csv",
        "condition,vov_sw,vov_cas,max_vov_cs",
        &rows,
    );
    let legacy = volumes[1].1;
    let stat = volumes[2].1;
    writeln!(
        report,
        "volume recovered by the statistical condition vs 0.5 V margin: {:+.1} %",
        (stat / legacy - 1.0) * 100.0
    )
    .expect("write");
    report
}

/// FIG4-ADAPT — coarse-to-fine adaptive refinement of the simple-topology
/// overdrive plane: how many lattice points the boundary-hugging sweep
/// evaluates versus the dense grid, and the optimum it lands on. Emitted
/// as `# adaptive:` summary lines appended to the FIG4 report when the
/// `fig4_design_space` binary runs with `--adaptive`.
pub fn fig4_adaptive_summary() -> String {
    const GRID: usize = 33;
    let spec = DacSpec::paper_12bit();
    let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(GRID);
    let mut report = String::new();
    for (name, objective) in [
        ("min-area", Objective::MinArea),
        ("max-speed", Objective::MaxSpeed),
    ] {
        let sweep = space.sweep_adaptive(objective);
        let best = space
            .optimize_adaptive(objective, f64::INFINITY)
            .expect("paper design space is feasible");
        writeln!(
            report,
            "# adaptive: {name} evaluated {}/{} lattice points over {} levels \
             ({:.1} Newton iters/solve); optimum Vov_CS = {:.3} V, Vov_SW = {:.3} V",
            sweep.evaluated,
            sweep.dense_equivalent,
            sweep.levels,
            sweep.stats.iterations_per_solve(),
            best.vov_cs,
            best.vov_sw
        )
        .expect("write");
    }
    report
}

/// AREA-CMP — the §5 area-saving claim, for both topologies, plus the
/// σ-combination ablation.
pub fn area_comparison() -> String {
    let spec = DacSpec::paper_12bit();
    let mut report = String::new();
    writeln!(report, "== AREA-CMP: statistical vs 0.5 V margin ==").expect("write");
    let simple = ComparisonReport::compute(&spec, CellTopology::Simple, 40)
        .expect("paper design space is feasible");
    writeln!(report, "{simple}").expect("write");
    let cascoded = ComparisonReport::compute(&spec, CellTopology::Cascoded, 12)
        .expect("paper design space is feasible");
    writeln!(report, "{cascoded}").expect("write");
    // Ablation: sigma-combination rule.
    use ctsdac_core::saturation::SigmaCombine;
    let m_max = SaturationCondition::Statistical.margin_simple_with(
        &spec,
        simple.statistical_overdrives.0,
        simple.statistical_overdrives.2,
        SigmaCombine::Max,
    );
    let m_rss = SaturationCondition::Statistical.margin_simple_with(
        &spec,
        simple.statistical_overdrives.0,
        simple.statistical_overdrives.2,
        SigmaCombine::Rss,
    );
    writeln!(
        report,
        "ablation sigma-combine at the simple optimum: max = {:.1} mV, rss = {:.1} mV",
        m_max * 1e3,
        m_rss * 1e3
    )
    .expect("write");
    write_csv(
        "area_comparison.csv",
        "topology,legacy_area_m2,statistical_area_m2,saving_frac",
        &[
            format!(
                "simple,{},{},{}",
                simple.legacy_area,
                simple.statistical_area,
                simple.area_saving_fraction()
            ),
            format!(
                "cascoded,{},{},{}",
                cascoded.legacy_area,
                cascoded.statistical_area,
                cascoded.area_saving_fraction()
            ),
        ],
    );
    report
}

/// The sized cascoded design the dynamic experiments run on: the max-speed
/// cascoded point of the statistical space (the paper's final design is a
/// cascoded cell sized for 400 MS/s operation).
pub fn paper_design() -> (DacSpec, ctsdac_circuit::cell::SizedCell) {
    let spec = DacSpec::paper_12bit();
    let point = CascodeSpace::new(&spec, SaturationCondition::Statistical)
        .with_grid(10)
        .max_speed_point()
        .expect("feasible cascoded design");
    let cell = build_cascoded_cell(
        &spec,
        point.vov_cs,
        point.vov_cas,
        point.vov_sw,
        spec.unary_weight(),
    );
    (spec, cell)
}

/// FIG6-SETTLE — full-scale settling transient (Fig. 6): waveform CSV,
/// settling time, maximum update rate.
pub fn fig6_transient() -> String {
    let (spec, cell) = paper_design();
    let poles = PoleModel::new(spec.cells_at_output())
        .poles(&cell, &spec.env)
        .expect("paper design is feasible");
    let config = TransientConfig::from_poles(400e6, &poles).with_oversample(32);
    let dac = SegmentedDac::new(&spec);
    let errors = CellErrors::ideal(&dac);
    let sim = TransientSim::new(&dac, &errors, config);
    let mut rng = seeded_rng(6);
    let (wave, t_settle) = sim.full_scale_settling(&mut rng);
    let dt = config.period() / config.oversample as f64;
    let rows: Vec<String> = wave
        .iter()
        .enumerate()
        .map(|(i, &y)| format!("{},{}", (i + 1) as f64 * dt, y))
        .collect();
    write_csv("fig6_transient.csv", "t_s,output_lsb", &rows);
    let mut report = String::new();
    writeln!(report, "== FIG6-SETTLE: full-scale settling ==").expect("write");
    writeln!(report, "design cell: {cell}").expect("write");
    writeln!(report, "poles: {poles}").expect("write");
    writeln!(
        report,
        "settling time to +-0.5 LSB: {:.3} ns (paper: ~2.5 ns)",
        t_settle * 1e9
    )
    .expect("write");
    writeln!(
        report,
        "max update rate at this settling: {:.0} MS/s (paper: 400 MS/s)",
        1e-6 / t_settle
    )
    .expect("write");
    report
}

/// FIG8-SFDR — the 53 MHz @ 300 MS/s spectrum of Fig. 8, with random
/// mismatch at the sizing budget plus dynamic effects.
pub fn fig8_spectrum() -> String {
    let (spec, cell) = paper_design();
    let poles = PoleModel::new(spec.cells_at_output())
        .poles(&cell, &spec.env)
        .expect("paper design is feasible");
    let config = TransientConfig::from_poles(300e6, &poles)
        .with_binary_skew(30e-12)
        .with_feedthrough(0.05);
    let dac = SegmentedDac::new(&spec);
    let mut rng = seeded_rng(8);
    let errors = CellErrors::random(&dac, spec.sigma_unit_spec(), &mut rng);
    let test = SineTest::paper_fig8();

    let static_spec = test.run_static(&dac, &errors, config.fs);
    let mut rng2 = seeded_rng(88);
    let dynamic_spec = test.run_dense(&dac, &errors, config, &mut rng2);
    let mut rng3 = seeded_rng(88);
    let diff_spec = test.run_dense_differential(&dac, &errors, config, &mut rng3);
    let in_band = config.fs / 2.0;

    let rows: Vec<String> = dynamic_spec
        .power()
        .iter()
        .enumerate()
        .take_while(|&(k, _)| dynamic_spec.bin_frequency(k) <= in_band)
        .map(|(k, &p)| {
            format!(
                "{},{},{}",
                dynamic_spec.bin_frequency(k),
                10.0 * (p / dynamic_spec.fundamental_power()).log10(),
                p
            )
        })
        .collect();
    write_csv("fig8_spectrum.csv", "freq_hz,dbc,power", &rows);

    let mut report = String::new();
    writeln!(report, "== FIG8-SFDR: 53 MHz @ 300 MS/s spectrum ==").expect("write");
    writeln!(
        report,
        "mismatch sigma(I)/I = {:.4} %",
        spec.sigma_unit_spec() * 100.0
    )
    .expect("write");
    writeln!(
        report,
        "static  (mismatch only)           : SFDR = {:.1} dB, SNR = {:.1} dB, ENOB = {:.2}",
        static_spec.sfdr_db(),
        static_spec.snr_db(),
        static_spec.enob()
    )
    .expect("write");
    writeln!(
        report,
        "dynamic single-ended (dense DFT)  : SFDR = {:.1} dB in [0, {:.0} MHz]",
        dynamic_spec.sfdr_in_band_db(in_band),
        in_band / 1e6
    )
    .expect("write");
    writeln!(
        report,
        "dynamic differential (paper Fig.8): SFDR = {:.1} dB in [0, {:.0} MHz]",
        diff_spec.sfdr_in_band_db(in_band),
        in_band / 1e6
    )
    .expect("write");
    writeln!(
        report,
        "paper reports SFDR ~ tens of dB at this frequency (OCR shows \"40dB\"; \
         the mismatch-limited bound for this sigma is ~75-85 dB at low frequency)."
    )
    .expect("write");
    report
}

/// EQ1-YIELD — Monte-Carlo INL yield across σ for several resolutions,
/// validating eq. (1).
pub fn inl_yield() -> String {
    let base = DacSpec::paper_12bit();
    let mut report = String::new();
    writeln!(report, "== EQ1-YIELD: Monte-Carlo validation of eq. (1) ==").expect("write");
    let mut rows = Vec::new();
    for n in [8u32, 10, 12] {
        let spec = DacSpec::new(n, 4.min(n), 0.997, base.env, base.tech);
        let dac = SegmentedDac::new(&spec);
        let sigma_spec = spec.sigma_unit_spec();
        writeln!(
            report,
            "n = {n:2}: sigma_spec = {:.4} %  (C = {:.3})",
            sigma_spec * 100.0,
            spec.yield_constant()
        )
        .expect("write");
        for factor in [0.5, 1.0, 1.5, 2.0] {
            let sigma = sigma_spec * factor;
            let trials = if n <= 10 { 600 } else { 300 };
            let mut rng = seeded_rng(1000 + n as u64 * 10 + (factor * 10.0) as u64);
            let y = inl_yield_mc(&dac, sigma, 0.5, trials, &mut rng)
                .expect("positive limit and non-zero trials");
            writeln!(report, "    sigma = {factor:.1} x spec: yield = {y}").expect("write");
            rows.push(format!("{n},{sigma},{factor},{},{}", y.estimate(), trials));
        }
    }
    write_csv(
        "inl_yield.csv",
        "n_bits,sigma_unit,sigma_over_spec,mc_yield,trials",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: yield >= target (99.7 %) at 1.0x spec (the eq. (1) \
         bound is conservative), collapsing as sigma grows."
    )
    .expect("write");
    report
}

/// FIG5-LAYOUT — switching-scheme comparison under gradients, double
/// centroid ablation, and LEF/DEF emission.
pub fn switching_schemes() -> String {
    let grid = ArrayGrid::new(16, 16);
    let n_sources = 255;
    let mut report = String::new();
    writeln!(
        report,
        "== FIG5-LAYOUT: switching schemes under gradients =="
    )
    .expect("write");
    let gradients = canonical_gradients();
    writeln!(
        report,
        "{:<24} {}",
        "scheme",
        gradients
            .iter()
            .enumerate()
            .map(|(i, _)| format!("{:>10}", format!("grad{i}")))
            .collect::<String>()
    )
    .expect("write");
    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let order = scheme.order(&grid, n_sources, 7);
        let mut line = format!("{:<24}", scheme.to_string());
        let mut csv = scheme.to_string();
        for g in &gradients {
            let inl = unary_inl_max(&order, &g.sample_grid(&grid)).unwrap_or(f64::NAN);
            line.push_str(&format!("{:>10.4}", inl));
            csv.push_str(&format!(",{inl}"));
        }
        writeln!(report, "{line}").expect("write");
        rows.push(csv);
    }
    write_csv(
        "switching_schemes.csv",
        "scheme,lin0,lin90,lin45,quad_centered,quad_offset",
        &rows,
    );

    // Converter-level INL yield with gradient + random mismatch combined,
    // per scheme (the end-to-end payoff of the switching sequence).
    let spec = DacSpec::paper_12bit();
    // A 0.3 % residual gradient (the double-centroid splitting absorbs most
    // of the raw 1 % die gradient) — at 12 bits even this sinks the naive
    // sequences while the optimised one keeps the INL budget.
    writeln!(
        report,
        "\nconverter INL<0.5 LSB yield (0.3% combined gradient + spec mismatch, 60 trials):"
    )
    .expect("write");
    let gradient = GradientModel::combined(0.003, 0.6, 0.003, (0.3, -0.2));
    for scheme in [
        Scheme::Sequential,
        Scheme::CentroSymmetric,
        Scheme::GradientOptimized,
    ] {
        let floorplan = Floorplan::paper_fig5(spec.unary_source_count(), 4, scheme, 7);
        let (bin_err, unary_err) = floorplan.systematic_errors(&gradient, 16.0);
        let dac = SegmentedDac::new(&spec);
        let mut rel = bin_err;
        rel.extend(unary_err);
        let systematic = CellErrors::from_rel(&dac, rel);
        let mut rng = seeded_rng(303);
        let trials = 60;
        let mut passes = 0;
        for _ in 0..trials {
            let combined =
                systematic.add(&CellErrors::random(&dac, spec.sigma_unit_spec(), &mut rng));
            let tf = ctsdac_dac::static_metrics::TransferFunction::compute_fast(&dac, &combined);
            if tf.inl_max_abs() < 0.5 {
                passes += 1;
            }
        }
        writeln!(report, "  {:<24} {passes}/{trials}", scheme.to_string()).expect("write");
    }

    // Double-centroid ablation: residual error spread with/without split.
    let positions: Vec<(f64, f64)> = (0..grid.n_sites()).map(|i| grid.coords(i)).collect();
    writeln!(report, "\ndouble-centroid ablation (max |residual error|):").expect("write");
    let mut dc_rows = Vec::new();
    for (name, g) in [
        ("linear 1%", GradientModel::linear(0.01, 0.6)),
        (
            "quad 1% off-centre",
            GradientModel::quadratic(0.01, (0.4, -0.3)),
        ),
    ] {
        let (split, unsplit) = array_errors_with_split(&g, &positions, 0.02);
        let max = |v: &[f64]| v.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        writeln!(
            report,
            "  {name:<20}: unsplit = {:.5}, 16-subunit split = {:.7}",
            max(&unsplit),
            max(&split)
        )
        .expect("write");
        dc_rows.push(format!("{name},{},{}", max(&unsplit), max(&split)));
    }
    write_csv(
        "double_centroid.csv",
        "gradient,max_err_unsplit,max_err_split",
        &dc_rows,
    );

    // Emit the physical views.
    let floorplan = Floorplan::paper_fig5(n_sources, 4, Scheme::GradientOptimized, 7);
    let lef = write_lef("CSCELL", CellGeometry::default());
    let def = write_def("DAC12_CSARRAY", &floorplan, CellGeometry::default());
    std::fs::write(out_dir().join("cs_array.lef"), &lef).expect("write LEF");
    std::fs::write(out_dir().join("cs_array.def"), &def).expect("write DEF");
    writeln!(
        report,
        "\nemitted {} bytes LEF and {} bytes DEF to experiments/",
        lef.len(),
        def.len()
    )
    .expect("write");
    report
}

/// SEG-SWEEP — the §1 segmentation trade-off.
pub fn segmentation() -> String {
    let spec = DacSpec::paper_12bit();
    let mut report = String::new();
    writeln!(report, "== SEG-SWEEP: segmentation trade-off ==").expect("write");
    let mut rows = Vec::new();
    for p in segmentation_sweep(&spec, 0.5, 0.6) {
        writeln!(report, "{p}").expect("write");
        rows.push(format!(
            "{},{},{},{},{}",
            p.binary_bits,
            p.analog_area,
            p.digital_area,
            p.glitch_rel,
            p.normalized_cost(spec.n_bits, 4.0)
        ));
    }
    write_csv(
        "segmentation.csv",
        "binary_bits,analog_area_m2,digital_area_m2,glitch_rel,cost",
        &rows,
    );
    let best = ctsdac_core::segmentation::optimal_segmentation(&spec, 0.5, 0.6);
    writeln!(
        report,
        "optimum at b = {} (paper picked b = 4, m = 8)",
        best.binary_bits
    )
    .expect("write");
    report
}

/// SFDR-BW — SFDR vs signal frequency from the frequency-dependent output
/// impedance (the van den Bosch \[8] analysis behind the topology choice).
pub fn sfdr_bandwidth() -> String {
    use ctsdac_circuit::distortion::sfdr_vs_frequency;
    use ctsdac_core::sizing::{build_cascoded_cell, build_simple_cell};
    let spec = DacSpec::paper_12bit();
    let simple = build_simple_cell(&spec, 0.5, 0.6, spec.unary_weight());
    let cascoded = build_cascoded_cell(&spec, 0.5, 0.3, 0.6, spec.unary_weight());
    let freqs: Vec<f64> = (0..=24).map(|i| 10f64.powf(4.0 + i as f64 * 0.2)).collect();
    let s_pts = sfdr_vs_frequency(&simple, &spec.env, spec.unary_weight(), spec.n_bits, &freqs)
        .expect("paper design is feasible");
    let c_pts = sfdr_vs_frequency(
        &cascoded,
        &spec.env,
        spec.unary_weight(),
        spec.n_bits,
        &freqs,
    )
    .expect("paper design is feasible");
    let mut report = String::new();
    writeln!(report, "== SFDR-BW: impedance-limited SFDR vs frequency ==").expect("write");
    writeln!(
        report,
        "{:>12} {:>10} {:>10} {:>10} {:>10}  (differential / single-ended, dB)",
        "f [Hz]", "simple_d", "casc_d", "simple_se", "casc_se"
    )
    .expect("write");
    let mut rows = Vec::new();
    for (s, c) in s_pts.iter().zip(&c_pts) {
        writeln!(
            report,
            "{:>12.3e} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            s.f_hz, s.sfdr_diff_db, c.sfdr_diff_db, s.sfdr_se_db, c.sfdr_se_db
        )
        .expect("write");
        rows.push(format!(
            "{},{},{},{},{}",
            s.f_hz, s.sfdr_diff_db, c.sfdr_diff_db, s.sfdr_se_db, c.sfdr_se_db
        ));
    }
    write_csv(
        "sfdr_bandwidth.csv",
        "f_hz,simple_diff_db,cascoded_diff_db,simple_se_db,cascoded_se_db",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: cascode dominates at DC/low frequency; both collapse \
         with the internal-node capacitance (-40 dB/dec differential), which is \
         why measured SFDR at 53 MHz sits far below the mismatch-limited value."
    )
    .expect("write");
    report
}

/// SAT-YIELD — Monte-Carlo validation of the statistical saturation
/// condition (eq. (8)/(9)).
pub fn saturation_yield() -> String {
    saturation_yield_jobs(1)
}

/// [`saturation_yield`] with the past-the-line Monte-Carlo runs executed on
/// the supervised worker pool. The supervised estimator draws per-chunk
/// random streams, so its numbers are deterministic in (seed, trials) and
/// identical for every `jobs` value.
pub fn saturation_yield_jobs(jobs: usize) -> String {
    use ctsdac_core::validate::{saturation_yield_supervised, yield_on_constraint};
    let spec = DacSpec::paper_12bit();
    let mut report = String::new();
    writeln!(report, "== SAT-YIELD: MC validation of eq. (9) ==").expect("write");
    let mut rows = Vec::new();
    // On the constraint line at several CS overdrives (sequential: this
    // pins the historical single-stream draw sequence).
    for vov_cs in [0.5, 0.8, 1.2] {
        let mut rng = seeded_rng(900 + (vov_cs * 10.0) as u64);
        if let Some(r) = yield_on_constraint(&spec, vov_cs, 4000, &mut rng) {
            writeln!(report, "on eq.(9) line at Vov_CS = {vov_cs:.1}: {r}").expect("write");
            rows.push(format!(
                "on_line,{vov_cs},{},{}",
                r.mc.estimate(),
                r.predicted
            ));
        }
    }
    // Past the line: yield collapse, on the supervised pool.
    let cond = SaturationCondition::Statistical;
    let vov_cs = 0.8;
    let limit = cond.max_vov_sw(&spec, vov_cs).expect("feasible");
    for frac in [0.3, 0.6, 0.9] {
        let vov_sw = limit + frac * (spec.env.v_out_min() - vov_cs - limit);
        let seed = 950 + (frac * 10.0) as u64;
        let plan = McPlan::new(seed, 4000, 500).expect("non-zero trials");
        let policy = ExecPolicy::with_jobs(jobs);
        let r = saturation_yield_supervised(&spec, vov_cs, vov_sw, &plan, &policy)
            .expect("nominally feasible past-the-line point")
            .value;
        writeln!(report, "beyond the line (Vov_SW = {vov_sw:.3}): {r}").expect("write");
        rows.push(format!(
            "beyond,{vov_sw},{},{}",
            r.mc.estimate(),
            r.predicted
        ));
    }
    write_csv(
        "saturation_yield.csv",
        "where,vov,mc_yield,predicted",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: >= 99.7 % on the constraint line, collapsing beyond \
         it; the Gaussian prediction tracks the MC estimate."
    )
    .expect("write");
    report
}

/// CAL-EXT — calibration extension: area vs trim trade-off.
pub fn calibration_tradeoff() -> String {
    use ctsdac_dac::calibration::{calibrate, residual_sigma_prediction, CalibrationConfig};
    use ctsdac_dac::static_metrics::TransferFunction;
    let spec = DacSpec::paper_12bit();
    let dac = SegmentedDac::new(&spec);
    let mut report = String::new();
    writeln!(report, "== CAL-EXT: intrinsic accuracy vs calibration ==").expect("write");
    let mut rows = Vec::new();
    for oversize in [1.0, 2.0, 4.0, 8.0] {
        let sigma = spec.sigma_unit_spec() * oversize;
        let config = CalibrationConfig::new(6, 4.0 * sigma, sigma / 50.0);
        let mut rng = seeded_rng(777 + oversize as u64);
        let trials = 40;
        let mut pass_raw = 0;
        let mut pass_cal = 0;
        for _ in 0..trials {
            let raw = CellErrors::random(&dac, sigma, &mut rng);
            if TransferFunction::compute_fast(&dac, &raw).inl_max_abs() < 0.5 {
                pass_raw += 1;
            }
            let fixed = calibrate(&dac, &raw, &config, &mut rng);
            if TransferFunction::compute_fast(&dac, &fixed).inl_max_abs() < 0.5 {
                pass_cal += 1;
            }
        }
        writeln!(
            report,
            "sigma = {oversize:.0}x spec (area /{:.0}): raw yield {pass_raw}/{trials}, \
             calibrated {pass_cal}/{trials} (residual sigma {:.4} %)",
            oversize * oversize,
            residual_sigma_prediction(&config) * 100.0
        )
        .expect("write");
        rows.push(format!(
            "{oversize},{},{}",
            pass_raw as f64 / trials as f64,
            pass_cal as f64 / trials as f64
        ));
    }
    write_csv(
        "calibration.csv",
        "sigma_over_spec,raw_yield,calibrated_yield",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: intrinsic yield collapses as the array shrinks \
         (sigma grows); the 6-bit trim restores it — the area-vs-calibration \
         trade the self-calibrated-DAC literature exploits."
    )
    .expect("write");
    report
}

/// LATCH-XING — crossing-point design study of the latch/driver (§2).
pub fn latch_crossing() -> String {
    use ctsdac_core::sizing::build_simple_cell;
    use ctsdac_dac::latch::crossing_sweep;
    let spec = DacSpec::paper_12bit();
    let cell = build_simple_cell(&spec, 0.5, 0.4, spec.unary_weight());
    let opt =
        ctsdac_circuit::bias::OptimumBias::of(&cell, &spec.env).expect("paper design is feasible");
    let v_low = opt.v_node_b * 0.5;
    let v_high = opt.v_gate_sw;
    let sweep = crossing_sweep(&cell, &spec.env, v_low, v_high, 100e-12, 21)
        .expect("paper design is feasible");
    let mut report = String::new();
    writeln!(report, "== LATCH-XING: switch-drive crossing point ==").expect("write");
    writeln!(
        report,
        "driver {v_low:.2}-{v_high:.2} V, tr = 100 ps; total glitch charge vs crossing:"
    )
    .expect("write");
    let mut rows = Vec::new();
    for &(x, q) in &sweep {
        writeln!(report, "  crossing {:>5.2}: {:.3e} C", x, q).expect("write");
        rows.push(format!("{x},{q}"));
    }
    write_csv("latch_crossing.csv", "crossing,glitch_charge_c", &rows);
    let best = sweep
        .iter()
        .copied()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    writeln!(
        report,
        "optimum crossing = {:.2} (interior, as §2 prescribes: low starves the \
         cell, high smears the switching instant)",
        best.0
    )
    .expect("write");
    report
}

/// IMD3 — two-tone intermodulation vs mismatch level.
pub fn two_tone_imd() -> String {
    use ctsdac_dac::sine::TwoToneTest;
    let spec = DacSpec::paper_12bit();
    let dac = SegmentedDac::new(&spec);
    let test = TwoToneTest::new(4096, 50e6, 55e6, 0.45);
    let mut report = String::new();
    writeln!(report, "== IMD3: two-tone intermodulation vs mismatch ==").expect("write");
    let mut rows = Vec::new();
    for factor in [0.0, 1.0, 4.0, 16.0] {
        let sigma = spec.sigma_unit_spec() * factor;
        // Average the random-mismatch metrics over several seeds — a single
        // realisation's IMD3 bins are one sample of a random spectrum.
        let seeds: &[u64] = if factor == 0.0 {
            &[0]
        } else {
            &[1, 2, 3, 4, 5]
        };
        let mut imd_sum = 0.0;
        let mut spur_sum = 0.0;
        for &s in seeds {
            let mut rng = seeded_rng(600 + factor as u64 * 10 + s);
            let errors = if sigma > 0.0 {
                CellErrors::random(&dac, sigma, &mut rng)
            } else {
                CellErrors::ideal(&dac)
            };
            let (spectrum, imd) = test.run_static(&dac, &errors, 300e6);
            imd_sum += imd;
            // Worst spur anywhere except the two carriers.
            let (k1, k2) = test.coherent_bins(300e6);
            let p_carrier = spectrum.power()[k1].max(spectrum.power()[k2]);
            let worst = spectrum
                .power()
                .iter()
                .enumerate()
                .skip(1)
                .filter(|&(k, _)| k != k1 && k != k2)
                .map(|(_, &p)| p)
                .fold(0.0f64, f64::max);
            spur_sum += 10.0 * (worst / p_carrier).log10();
        }
        let imd = imd_sum / seeds.len() as f64;
        let spur = spur_sum / seeds.len() as f64;
        writeln!(
            report,
            "sigma = {factor:>4.0} x spec: mean IMD3 = {imd:>7.1} dBc, mean worst spur = {spur:>7.1} dBc"
        )
        .expect("write");
        rows.push(format!("{factor},{imd},{spur}"));
    }
    write_csv(
        "two_tone_imd.csv",
        "sigma_over_spec,imd3_dbc,worst_spur_dbc",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: quantisation-limited floor for the ideal converter; \
         the worst spur rises steadily with mismatch (mismatch spreads error \
         across the band rather than concentrating it at the IMD3 bins)."
    )
    .expect("write");
    report
}

/// DECODER — gate-level decoder cost vs width (supports the §1 segmentation
/// argument with measured gate counts instead of a calibrated constant).
pub fn decoder_cost() -> String {
    use ctsdac_dac::decoder::{flat_thermometer, row_column};
    let mut report = String::new();
    writeln!(report, "== DECODER: gate-level thermometer decoder cost ==").expect("write");
    writeln!(
        report,
        "{:>4} {:>12} {:>10} {:>12} {:>10}",
        "m", "flat gates", "flat depth", "rc gates", "rc depth"
    )
    .expect("write");
    let mut rows = Vec::new();
    for m in 2..=8u32 {
        let flat = flat_thermometer(m);
        let rc = row_column(m / 2, m - m / 2);
        writeln!(
            report,
            "{m:>4} {:>12} {:>10} {:>12} {:>10}",
            flat.gate_count(),
            flat.depth(),
            rc.gate_count(),
            rc.depth()
        )
        .expect("write");
        rows.push(format!(
            "{m},{},{},{},{}",
            flat.gate_count(),
            flat.depth(),
            rc.gate_count(),
            rc.depth()
        ));
    }
    write_csv(
        "decoder_cost.csv",
        "m,flat_gates,flat_depth,rc_gates,rc_depth",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: gate count ~doubles per added bit (the decoder-area \
         term of the segmentation trade-off); the 2-D decoder wins above m ~ 4."
    )
    .expect("write");
    report
}

/// GLITCH-SEG — worst carry glitch energy vs binary bits, measured with
/// the transient simulator (the §1 claim "glitch energy is determined by
/// the number of binary bits b").
pub fn glitch_segmentation() -> String {
    use ctsdac_dac::glitch::worst_carry_glitch;
    let base = DacSpec::paper_12bit();
    let poles = ctsdac_circuit::poles::TwoPoles {
        p1_hz: 968e6,
        p2_hz: 921e6,
    };
    let config = TransientConfig::from_poles(400e6, &poles)
        .with_oversample(64)
        .with_binary_skew(200e-12);
    let mut report = String::new();
    writeln!(
        report,
        "== GLITCH-SEG: carry glitch energy vs binary bits =="
    )
    .expect("write");
    writeln!(
        report,
        "{:>4} {:>16} {:>12}",
        "b", "energy [LSB^2*s]", "vs b-1"
    )
    .expect("write");
    let mut rows = Vec::new();
    let mut prev: Option<f64> = None;
    for b in 2..=6u32 {
        let spec = DacSpec::new(12, b, 0.997, base.env, base.tech);
        let dac = SegmentedDac::new(&spec);
        let errors = CellErrors::ideal(&dac);
        let mut rng = seeded_rng(500 + b as u64);
        let (_, energy) = worst_carry_glitch(&dac, &errors, config, &mut rng);
        let ratio = prev.map_or(String::from("-"), |p| format!("{:.2}x", energy / p));
        writeln!(report, "{b:>4} {energy:>16.3e} {ratio:>12}").expect("write");
        rows.push(format!("{b},{energy}"));
        prev = Some(energy);
    }
    write_csv(
        "glitch_segmentation.csv",
        "binary_bits,energy_lsb2_s",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: the transient code error at the carry is ~2^b LSB \
         for a fixed skew, so the *energy* grows ~4x per added binary bit — \
         the quantitative form of the paper's glitch argument for unary-heavy \
         segmentation."
    )
    .expect("write");
    report
}

/// PARETO — the admissible area–speed front (the menu Fig. 3 implies).
pub fn pareto() -> String {
    let spec = DacSpec::paper_12bit();
    let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(28);
    let front = space.pareto_front();
    let mut report = String::new();
    writeln!(
        report,
        "== PARETO: area-speed front of the admissible region =="
    )
    .expect("write");
    writeln!(
        report,
        "{:>10} {:>10} {:>12} {:>12} {:>10}",
        "Vov_CS", "Vov_SW", "area [kum2]", "f_min [MHz]", "ts [ns]"
    )
    .expect("write");
    let mut rows = Vec::new();
    for p in &front {
        writeln!(
            report,
            "{:>10.3} {:>10.3} {:>12.1} {:>12.1} {:>10.2}",
            p.vov_cs,
            p.vov_sw,
            p.total_area * 1e12 / 1e3,
            p.min_pole_hz / 1e6,
            p.settling_s * 1e9
        )
        .expect("write");
        rows.push(format!(
            "{},{},{},{},{}",
            p.vov_cs, p.vov_sw, p.total_area, p.min_pole_hz, p.settling_s
        ));
    }
    write_csv(
        "pareto.csv",
        "vov_cs,vov_sw,total_area_m2,min_pole_hz,settling_s",
        &rows,
    );
    writeln!(
        report,
        "{} non-dominated points; the 400 MS/s design needs ts <= 2.5 ns, \
         which prunes the small-area end of the menu.",
        front.len()
    )
    .expect("write");
    report
}

/// SENS — technology-sensitivity sweep: when does the statistical
/// condition pay off?
pub fn sensitivity() -> String {
    use ctsdac_core::sensitivity::{sweep_a_vt, sweep_sigma_rl, sweep_yield};
    let base = DacSpec::paper_12bit();
    let mut report = String::new();
    writeln!(report, "== SENS: sensitivity of the area saving ==").expect("write");
    let mut rows = Vec::new();
    writeln!(report, "A_VT sweep (mV.um):").expect("write");
    for p in sweep_a_vt(&base, &[5e-9, 9.5e-9, 20e-9, 30e-9], 14) {
        writeln!(
            report,
            "  A_VT = {:>5.1}: margin(0.5/0.6) = {:>4.0} mV, saving = {:>5.1} %",
            p.value * 1e9,
            p.margin * 1e3,
            p.saving * 100.0
        )
        .expect("write");
        rows.push(format!("a_vt,{},{},{}", p.value, p.margin, p.saving));
    }
    writeln!(report, "load tolerance sweep:").expect("write");
    for p in sweep_sigma_rl(&base, &[0.0, 0.01, 0.03, 0.05], 14) {
        writeln!(
            report,
            "  sigma_RL = {:>4.1} %: margin = {:>4.0} mV, saving = {:>5.1} %",
            p.value * 100.0,
            p.margin * 1e3,
            p.saving * 100.0
        )
        .expect("write");
        rows.push(format!("sigma_rl,{},{},{}", p.value, p.margin, p.saving));
    }
    writeln!(report, "yield-target sweep:").expect("write");
    for p in sweep_yield(&base, &[0.90, 0.997, 0.9999], 14) {
        writeln!(
            report,
            "  yield = {:>7.4}: margin = {:>4.0} mV, saving = {:>5.1} %",
            p.value,
            p.margin * 1e3,
            p.saving * 100.0
        )
        .expect("write");
        rows.push(format!("yield,{},{},{}", p.value, p.margin, p.saving));
    }
    write_csv("sensitivity.csv", "sweep,value,margin_v,saving_frac", &rows);
    writeln!(
        report,
        "Finding: the saving *grows* with A_VT — in poorly matched technologies \
         the CS area is most sensitive to the admissible overdrive, so removing \
         the arbitrary margin pays off more."
    )
    .expect("write");
    report
}

/// JITTER-EXT — SNR vs clock jitter (ref. \[6] extension).
pub fn jitter_sweep() -> String {
    let spec = DacSpec::paper_12bit();
    let dac = SegmentedDac::new(&spec);
    let poles = ctsdac_circuit::poles::TwoPoles {
        p1_hz: 2e9,
        p2_hz: 6e9,
    };
    let config = TransientConfig::from_poles(300e6, &poles);
    let test = SineTest::new(2048, 53e6, 0.98);
    let (_, f0) = test.coherent(config.fs);
    let mut report = String::new();
    writeln!(report, "== JITTER-EXT: SNR vs clock jitter ==").expect("write");
    writeln!(
        report,
        "{:>12} {:>12} {:>12}",
        "jitter [ps]", "theory [dB]", "measured [dB]"
    )
    .expect("write");
    let mut rows = Vec::new();
    for &ps in &[0.1, 0.3, 1.0, 3.0, 10.0, 30.0] {
        let sigma_t = ps * 1e-12;
        let theory = jitter_snr_theory_db(f0, sigma_t);
        let mut rng = seeded_rng(42 + ps as u64);
        let measured = jitter_snr_measured_db(&dac, &test, config, sigma_t, &mut rng);
        writeln!(report, "{ps:>12.1} {theory:>12.1} {measured:>12.1}").expect("write");
        rows.push(format!("{sigma_t},{theory},{measured}"));
    }
    write_csv(
        "jitter_sweep.csv",
        "sigma_t_s,snr_theory_db,snr_measured_db",
        &rows,
    );
    writeln!(
        report,
        "Expected shape: measured saturates at the quantisation floor (~74 dB) \
         for small jitter and follows the -20 dB/decade theory once jitter dominates."
    )
    .expect("write");
    report
}
