//! Regenerates the decoder_cost experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::decoder_cost());
}
