//! `sweep_bench` — throughput benchmark of the design-space sweep kernel.
//!
//! ```text
//! sweep_bench [--grid N] [--reps R] [--out PATH] [--budget ITERS]
//! ```
//!
//! Times three evaluation strategies on the same overdrive plane and writes
//! the measurements as `BENCH_sweep.json`:
//!
//! * `reference` — the pre-overhaul cold-start kernel: central-difference
//!   Jacobians, no warm starts, fixed-depth bisection settling, every
//!   spec-level invariant recomputed per point ([`SweepMode::Reference`]);
//! * `warm` — the scalar fast kernel: analytic Jacobians, row-chained warm
//!   starts, memoized per-sweep/per-row invariants ([`SweepMode::Warm`]);
//! * `lanes` — the production kernel: the same row evaluation restructured
//!   into eight-wide structure-of-arrays lanes with batched DC solves
//!   ([`SweepMode::Lanes`]);
//! * `adaptive` — the coarse-to-fine sweep that densifies only near the
//!   feasibility boundary and the objective optimum.
//!
//! `--budget ITERS` turns the run into a regression gate: if the warm
//! kernel's mean Newton iterations per DC solve exceed the budget, the JSON
//! is still written but the process exits non-zero. The CI `bench-smoke`
//! stage uses this with the budget stored in the checked-in
//! `BENCH_sweep.json`.
//!
//! Wall times are best-of-`reps` (minimum over repetitions), the standard
//! way to suppress scheduler noise when benchmarking a deterministic
//! kernel.

use ctsdac_core::explore::{DesignSpace, Objective, SweepMode, SweepStats};
use ctsdac_core::saturation::SaturationCondition;
use ctsdac_core::DacSpec;
use ctsdac_obs as obs;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Default per-axis grid: the Fig. 4 experiment resolution.
const DEFAULT_GRID: usize = 14;
/// Default repetitions per timed strategy.
const DEFAULT_REPS: u32 = 20;

/// Pre-overhaul closed-form sweep throughput on this container (commit
/// b795c12, release build, grid 14), kept as context in the JSON so later
/// readings can be compared against the era before the sweep verified its
/// points with a DC solve at all.
const PRE_PR_CLOSED_FORM_PPS_GRID14: f64 = 211_937.0;
/// Same context constant at grid 32.
const PRE_PR_CLOSED_FORM_PPS_GRID32: f64 = 201_848.0;

/// One timed dense sweep: best-of-reps wall seconds plus the (identical
/// across reps) point count and solver statistics.
struct DenseTiming {
    wall_s: f64,
    points: usize,
    stats: SweepStats,
}

fn time_dense(space: &DesignSpace, reps: u32) -> DenseTiming {
    let mut best = f64::INFINITY;
    let mut points = 0;
    let mut stats = SweepStats::default();
    for _ in 0..reps {
        let t0 = Instant::now();
        let (grid, s) = space.sweep_with_stats();
        let dt = t0.elapsed().as_secs_f64();
        points = grid.len();
        stats = s;
        if dt < best {
            best = dt;
        }
    }
    DenseTiming {
        wall_s: best,
        points,
        stats,
    }
}

/// Formats one strategy's measurements as a JSON object body.
fn dense_json(t: &DenseTiming) -> String {
    format!(
        "{{\n      \"wall_s\": {:.6e},\n      \"points\": {},\n      \
         \"points_per_sec\": {:.1},\n      \"dc_solves\": {},\n      \
         \"iters_per_solve\": {:.3},\n      \"warm_hits\": {},\n      \
         \"dc_failures\": {}\n    }}",
        t.wall_s,
        t.points,
        t.points as f64 / t.wall_s,
        t.stats.dc_solves,
        t.stats.iterations_per_solve(),
        t.stats.warm_hits,
        t.stats.dc_failures,
    )
}

struct Args {
    grid: usize,
    reps: u32,
    out: Option<PathBuf>,
    budget: Option<f64>,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        grid: DEFAULT_GRID,
        reps: DEFAULT_REPS,
        out: None,
        budget: None,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = || -> Result<String, String> {
            it.next().ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--grid" => {
                args.grid = value()?.parse().map_err(|e| format!("--grid: {e}"))?;
                if args.grid < 2 {
                    return Err("--grid must be at least 2".into());
                }
            }
            "--reps" => {
                args.reps = value()?.parse().map_err(|e| format!("--reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--budget" => {
                let b: f64 = value()?.parse().map_err(|e| format!("--budget: {e}"))?;
                if !(b.is_finite() && b > 0.0) {
                    return Err("--budget must be a positive number".into());
                }
                args.budget = Some(b);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: sweep_bench [--grid N] [--reps R] [--out PATH] [--budget ITERS]");
            return ExitCode::from(2);
        }
    };
    let spec = DacSpec::paper_12bit();
    let base = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(args.grid);

    let reference = time_dense(&base.clone().with_mode(SweepMode::Reference), args.reps);
    let warm = time_dense(&base.clone().with_mode(SweepMode::Warm), args.reps);
    let lanes = time_dense(&base.clone().with_mode(SweepMode::Lanes), args.reps);

    // Adaptive: best-of-reps wall time on the MinArea refinement.
    let mut adaptive_wall = f64::INFINITY;
    let mut sweep = base.sweep_adaptive(Objective::MinArea);
    for _ in 0..args.reps {
        let t0 = Instant::now();
        sweep = base.sweep_adaptive(Objective::MinArea);
        let dt = t0.elapsed().as_secs_f64();
        if dt < adaptive_wall {
            adaptive_wall = dt;
        }
    }

    // Observability overhead: the lanes dense sweep with the metrics
    // registry live versus the default compiled-in-but-disabled hooks.
    // The arms are interleaved rep by rep and both taken min-of-reps, so
    // a host frequency shift mid-run biases both sides alike and the
    // ratio isolates the atomic counter/histogram updates (timing one
    // arm's reps before the other's once produced a negative "overhead").
    let obs_space = base.clone().with_mode(SweepMode::Lanes);
    let mut obs_disabled_wall = f64::INFINITY;
    let mut obs_enabled_wall = f64::INFINITY;
    obs::set_metrics(false);
    for _ in 0..args.reps {
        obs::set_metrics(false);
        let t0 = Instant::now();
        let _ = obs_space.sweep_with_stats();
        obs_disabled_wall = obs_disabled_wall.min(t0.elapsed().as_secs_f64());
        obs::set_metrics(true);
        let t0 = Instant::now();
        let _ = obs_space.sweep_with_stats();
        obs_enabled_wall = obs_enabled_wall.min(t0.elapsed().as_secs_f64());
    }
    obs::set_metrics(false);
    obs::reset();
    let obs_overhead = obs_enabled_wall / obs_disabled_wall - 1.0;

    let speedup = (warm.points as f64 / warm.wall_s) / (reference.points as f64 / reference.wall_s);
    let speedup_lanes =
        (lanes.points as f64 / lanes.wall_s) / (reference.points as f64 / reference.wall_s);
    let warm_iters = warm.stats.iterations_per_solve();
    // The regression budget recorded in the JSON: the caller's --budget if
    // given, else a round number comfortably above today's reading.
    let recorded_budget = args
        .budget
        .unwrap_or_else(|| (warm_iters * 2.0).ceil().max(8.0));

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"ctsdac-sweep-bench-v1\",");
    let _ = writeln!(json, "  \"grid\": {},", args.grid);
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"dense\": {{");
    let _ = writeln!(json, "    \"reference\": {},", dense_json(&reference));
    let _ = writeln!(json, "    \"warm\": {},", dense_json(&warm));
    let _ = writeln!(json, "    \"lanes\": {}", dense_json(&lanes));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"adaptive\": {{");
    let _ = writeln!(json, "    \"wall_s\": {:.6e},", adaptive_wall);
    let _ = writeln!(json, "    \"evaluated\": {},", sweep.evaluated);
    let _ = writeln!(
        json,
        "    \"dense_equivalent\": {},",
        sweep.dense_equivalent
    );
    let _ = writeln!(json, "    \"levels\": {},", sweep.levels);
    let _ = writeln!(
        json,
        "    \"points_per_sec\": {:.1},",
        sweep.evaluated as f64 / adaptive_wall
    );
    let _ = writeln!(
        json,
        "    \"iters_per_solve\": {:.3}",
        sweep.stats.iterations_per_solve()
    );
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"obs\": {{");
    let _ = writeln!(json, "    \"disabled_wall_s\": {obs_disabled_wall:.6e},");
    let _ = writeln!(json, "    \"enabled_wall_s\": {obs_enabled_wall:.6e},");
    let _ = writeln!(json, "    \"relative_overhead\": {:.4}", obs_overhead);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"speedup_warm_over_reference\": {:.3},", speedup);
    let _ = writeln!(
        json,
        "  \"speedup_lanes_over_reference\": {:.3},",
        speedup_lanes
    );
    let _ = writeln!(
        json,
        "  \"iteration_budget_per_solve\": {:.3},",
        recorded_budget
    );
    let _ = writeln!(json, "  \"context\": {{");
    let _ = writeln!(
        json,
        "    \"pre_pr_closed_form_points_per_sec_grid14\": {:.1},",
        PRE_PR_CLOSED_FORM_PPS_GRID14
    );
    let _ = writeln!(
        json,
        "    \"pre_pr_closed_form_points_per_sec_grid32\": {:.1}",
        PRE_PR_CLOSED_FORM_PPS_GRID32
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    let out = args.out.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json")
    });
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {}: {e}", out.display());
        return ExitCode::from(2);
    }

    println!(
        "dense reference: {} points in {:.3} ms -> {:.0} points/sec ({:.1} iters/solve)",
        reference.points,
        reference.wall_s * 1e3,
        reference.points as f64 / reference.wall_s,
        reference.stats.iterations_per_solve(),
    );
    println!(
        "dense warm     : {} points in {:.3} ms -> {:.0} points/sec ({:.1} iters/solve, {} warm hits)",
        warm.points,
        warm.wall_s * 1e3,
        warm.points as f64 / warm.wall_s,
        warm_iters,
        warm.stats.warm_hits,
    );
    println!(
        "dense lanes    : {} points in {:.3} ms -> {:.0} points/sec ({:.1} iters/solve)",
        lanes.points,
        lanes.wall_s * 1e3,
        lanes.points as f64 / lanes.wall_s,
        lanes.stats.iterations_per_solve(),
    );
    println!(
        "adaptive       : {} of {} lattice points in {:.3} ms over {} levels",
        sweep.evaluated,
        sweep.dense_equivalent,
        adaptive_wall * 1e3,
        sweep.levels,
    );
    println!("speedup warm/reference : {speedup:.2}x");
    println!("speedup lanes/reference: {speedup_lanes:.2}x");
    println!(
        "obs overhead (metrics on vs off): {:+.2}%",
        obs_overhead * 100.0
    );
    println!("wrote {}", out.display());

    if let Some(budget) = args.budget {
        if warm_iters > budget {
            eprintln!(
                "error: warm kernel spends {warm_iters:.2} Newton iterations per solve, \
                 over the budget of {budget:.2}"
            );
            return ExitCode::from(1);
        }
        let lanes_iters = lanes.stats.iterations_per_solve();
        if lanes_iters > budget {
            eprintln!(
                "error: lane kernel spends {lanes_iters:.2} Newton iterations per solve, \
                 over the budget of {budget:.2}"
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
