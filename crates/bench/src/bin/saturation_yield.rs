//! Regenerates the saturation_yield experiment (see DESIGN.md experiment
//! index). `--jobs N` runs the past-the-line Monte-Carlo on the supervised
//! worker pool; the output is identical for every job count.
fn main() {
    let jobs = ctsdac_bench::jobs_from_args(std::env::args().skip(1));
    print!("{}", ctsdac_bench::saturation_yield_jobs(jobs));
}
