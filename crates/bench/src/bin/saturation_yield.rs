//! Regenerates the saturation_yield experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::saturation_yield());
}
