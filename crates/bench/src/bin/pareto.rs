//! Regenerates the pareto experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::pareto());
}
