//! Regenerates the fig8_spectrum experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::fig8_spectrum());
}
