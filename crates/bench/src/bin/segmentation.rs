//! Regenerates the segmentation experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::segmentation());
}
