//! Regenerates the latch_crossing experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::latch_crossing());
}
