//! Regenerates the calibration_tradeoff experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::calibration_tradeoff());
}
