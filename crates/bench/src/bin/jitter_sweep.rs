//! Regenerates the jitter_sweep experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::jitter_sweep());
}
