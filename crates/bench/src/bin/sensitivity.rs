//! Regenerates the sensitivity experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::sensitivity());
}
