//! Regenerates the fig3_saturation experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::fig3_saturation());
}
