//! Regenerates the two_tone_imd experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::two_tone_imd());
}
