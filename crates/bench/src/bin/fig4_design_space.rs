//! Regenerates the fig4_design_space experiment (see DESIGN.md experiment
//! index). `--jobs N` evaluates the cascode surface on the supervised
//! worker pool; the output is identical for every job count.
fn main() {
    let jobs = ctsdac_bench::jobs_from_args(std::env::args().skip(1));
    print!("{}", ctsdac_bench::fig4_design_space_jobs(jobs));
}
