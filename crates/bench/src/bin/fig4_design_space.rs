//! Regenerates the fig4_design_space experiment (see DESIGN.md experiment
//! index). `--jobs N` evaluates the cascode surface on the supervised
//! worker pool; the output is identical for every job count. `--adaptive`
//! appends `# adaptive:` summary lines comparing the coarse-to-fine
//! simple-topology sweep against the dense grid.
fn main() {
    let (adaptive, rest): (Vec<String>, Vec<String>) =
        std::env::args().skip(1).partition(|a| a == "--adaptive");
    let jobs = ctsdac_bench::jobs_from_args(rest.into_iter());
    print!("{}", ctsdac_bench::fig4_design_space_jobs(jobs));
    if !adaptive.is_empty() {
        print!("{}", ctsdac_bench::fig4_adaptive_summary());
    }
}
