//! Regenerates the fig4_design_space experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::fig4_design_space());
}
