//! CI fault-injection smoke: proves the supervised runtime is transparent.
//!
//! Runs the statistical design-space sweep three ways and diffs the
//! results bit-for-bit:
//!
//! 1. clean, single-threaded, no supervision features;
//! 2. 4 workers with injected panics, a delayed chunk, and an injected
//!    NaN — every fault must be absorbed by retry;
//! 3. checkpointed run whose journal is truncated mid-entry ("killed"
//!    while writing), then resumed — restored + recomputed chunks must
//!    reproduce the clean result.
//!
//! Exits 0 when all three agree and the faults actually fired; exits 1
//! with a one-line diagnostic otherwise, so `scripts/ci.sh` can gate on it.

use ctsdac_bench::out_dir;
use ctsdac_core::explore::DesignSpace;
use ctsdac_core::saturation::SaturationCondition;
use ctsdac_core::DacSpec;
use ctsdac_runtime::{truncate_tail, ExecPolicy, FaultPlan};
use std::process::ExitCode;
use std::sync::Arc;

const GRID: usize = 10;

fn fail(msg: &str) -> ExitCode {
    eprintln!("fault_smoke: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let spec = DacSpec::paper_12bit();
    let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(GRID);

    // 1. Clean reference, sequential.
    let clean = match space.sweep_supervised(&ExecPolicy::sequential()) {
        Ok(s) => s.value,
        Err(e) => return fail(&format!("clean sweep failed: {e}")),
    };

    // 2. Parallel with injected faults: panics (one persisting a retry),
    //    a stall, and a NaN result — all must be absorbed.
    let plan = Arc::new(
        FaultPlan::new()
            .panic_at(1)
            .panic_at_for(4, 2)
            .delay_ms_at(2, 30)
            .nan_at(7),
    );
    let mut policy = ExecPolicy::with_jobs(4);
    policy.pool.faults = Some(plan.clone());
    let faulty = match space.sweep_supervised(&policy) {
        Ok(s) => s,
        Err(e) => return fail(&format!("faulty sweep failed: {e}")),
    };
    if plan.fired() < 4 {
        return fail(&format!("only {} injected faults fired", plan.fired()));
    }
    if faulty.faults.is_empty() {
        return fail("no faults were recorded despite injection");
    }
    if faulty.value != clean {
        return fail("faulty run diverged from the clean reference");
    }

    // 3. Kill-and-resume: checkpoint a run, corrupt the journal tail (as
    //    a crash mid-append would), then resume from it.
    let journal = out_dir().join("fault_smoke.jsonl");
    let _ = std::fs::remove_file(&journal);
    let first = space.sweep_supervised(&ExecPolicy::with_jobs(2).checkpoint_at(&journal));
    if let Err(e) = first {
        return fail(&format!("checkpointed sweep failed: {e}"));
    }
    if let Err(e) = truncate_tail(&journal, 11) {
        return fail(&format!("journal truncation failed: {e}"));
    }
    let resumed = match space
        .sweep_supervised(&ExecPolicy::with_jobs(2).checkpoint_at(&journal).resuming())
    {
        Ok(s) => s,
        Err(e) => return fail(&format!("resumed sweep failed: {e}")),
    };
    if resumed.restored == 0 {
        return fail("resume restored nothing from the journal");
    }
    if resumed.computed == 0 {
        return fail("truncation should have forced at least one recompute");
    }
    if resumed.value != clean {
        return fail("resumed run diverged from the clean reference");
    }
    let _ = std::fs::remove_file(&journal);

    println!(
        "fault_smoke: OK ({} chunks; {} faults absorbed; resume restored {} / recomputed {})",
        GRID,
        faulty.faults.len(),
        resumed.restored,
        resumed.computed
    );
    ExitCode::SUCCESS
}
