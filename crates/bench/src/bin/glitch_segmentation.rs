//! Regenerates the glitch_segmentation experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::glitch_segmentation());
}
