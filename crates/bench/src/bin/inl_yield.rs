//! Regenerates the inl_yield experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::inl_yield());
}
