//! Regenerates the area_comparison experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::area_comparison());
}
