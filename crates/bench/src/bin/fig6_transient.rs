//! Regenerates the fig6_transient experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::fig6_transient());
}
