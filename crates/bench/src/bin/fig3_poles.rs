//! Regenerates the fig3_poles experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::fig3_poles());
}
