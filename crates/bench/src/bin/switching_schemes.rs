//! Regenerates the switching_schemes experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::switching_schemes());
}
