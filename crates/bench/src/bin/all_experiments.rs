//! Runs every experiment of the DESIGN.md index and prints all reports.
fn main() {
    for (name, f) in [
        ("FIG3-SAT", ctsdac_bench::fig3_saturation as fn() -> String),
        ("FIG3-POLE", ctsdac_bench::fig3_poles),
        ("FIG4-CAS", ctsdac_bench::fig4_design_space),
        ("AREA-CMP", ctsdac_bench::area_comparison),
        ("FIG6-SETTLE", ctsdac_bench::fig6_transient),
        ("FIG8-SFDR", ctsdac_bench::fig8_spectrum),
        ("EQ1-YIELD", ctsdac_bench::inl_yield),
        ("FIG5-LAYOUT", ctsdac_bench::switching_schemes),
        ("SEG-SWEEP", ctsdac_bench::segmentation),
        ("SFDR-BW", ctsdac_bench::sfdr_bandwidth),
        ("LATCH-XING", ctsdac_bench::latch_crossing),
        ("IMD3", ctsdac_bench::two_tone_imd),
        ("DECODER", ctsdac_bench::decoder_cost),
        ("SAT-YIELD", ctsdac_bench::saturation_yield),
        ("CAL-EXT", ctsdac_bench::calibration_tradeoff),
        ("SENS", ctsdac_bench::sensitivity),
        ("PARETO", ctsdac_bench::pareto),
        ("GLITCH-SEG", ctsdac_bench::glitch_segmentation),
        ("JITTER-EXT", ctsdac_bench::jitter_sweep),
    ] {
        eprintln!(">> running {name}");
        println!("{}", f());
    }
}
