//! Regenerates the sfdr_bandwidth experiment (see DESIGN.md experiment index).
fn main() {
    print!("{}", ctsdac_bench::sfdr_bandwidth());
}
