//! `mc_bench` — throughput benchmark of the Monte-Carlo yield engine.
//!
//! ```text
//! mc_bench [--trials N] [--reps R] [--out PATH] [--budget CODES]
//! ```
//!
//! Times three yield-estimation strategies on the paper's 12-bit segmented
//! spec at the spec unit-source sigma and writes the measurements as
//! `BENCH_mc.json`:
//!
//! * `legacy` — the pre-engine flow: three independent MC loops
//!   (`inl_yield_mc`, `dnl_yield_mc`, `monotonicity_yield_mc`), each with
//!   its own draws and its own allocating transfer-curve rebuild;
//! * `reference` — one engine run through [`YieldMode::Reference`]: common
//!   random numbers across the three metrics but still the scalar
//!   allocating chain per trial;
//! * `batched` — the scalar fused path ([`YieldMode::Batched`]): one
//!   allocation-free screened classification per trial, falling back to
//!   the exact fused pass only for limit-grazing trials;
//! * `lanes` — the production path: the same screened classification
//!   evaluated eight trials at a time through the structure-of-arrays
//!   lane kernel (`run_lanes::<8>`).
//!
//! Before timing, the run cross-checks that `batched`, `lanes` and
//! `reference` produce identical yield counts on the same seed (the
//! engine's bit-identity guarantee) and records the verdicts in the JSON.
//!
//! `--budget CODES` turns the run into a regression gate on *deterministic
//! work*, not wall-clock: if the batched engine scans more than CODES
//! transfer-curve code-equivalents per trial (the screened classifier does
//! one ~272-code block scan; a full curve is 4096 at 12 bits), the JSON is
//! still written but the process exits non-zero. The CI `mc-bench-smoke`
//! stage uses this with the budget stored in the checked-in
//! `BENCH_mc.json`, so a change that quietly re-walks the full curve per
//! trial fails CI even on noisy machines.
//!
//! Wall times are best-of-`reps` (minimum over repetitions).

use ctsdac_core::DacSpec;
use ctsdac_dac::architecture::SegmentedDac;
use ctsdac_dac::static_metrics::{dnl_yield_mc, inl_yield_mc, monotonicity_yield_mc};
use ctsdac_dac::yield_engine::{FusedYields, YieldEngine, YieldLimits, YieldMode};
use ctsdac_obs as obs;
use ctsdac_stats::sample::seeded_rng;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

/// Default trial count: the acceptance point of the engine PR.
const DEFAULT_TRIALS: u64 = 10_000;
/// Default repetitions per timed strategy.
const DEFAULT_REPS: u32 = 5;
/// Seed shared by every strategy so the draws are comparable.
const SEED: u64 = 2003;

struct Args {
    trials: u64,
    reps: u32,
    out: Option<PathBuf>,
    budget: Option<f64>,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<Args, String> {
    let mut args = Args {
        trials: DEFAULT_TRIALS,
        reps: DEFAULT_REPS,
        out: None,
        budget: None,
    };
    let mut it = argv;
    while let Some(flag) = it.next() {
        let mut value = || -> Result<String, String> {
            it.next().ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--trials" => {
                args.trials = value()?.parse().map_err(|e| format!("--trials: {e}"))?;
                if args.trials == 0 {
                    return Err("--trials must be at least 1".into());
                }
            }
            "--reps" => {
                args.reps = value()?.parse().map_err(|e| format!("--reps: {e}"))?;
                if args.reps == 0 {
                    return Err("--reps must be at least 1".into());
                }
            }
            "--out" => args.out = Some(PathBuf::from(value()?)),
            "--budget" => {
                let b: f64 = value()?.parse().map_err(|e| format!("--budget: {e}"))?;
                if !(b.is_finite() && b > 0.0) {
                    return Err("--budget must be a positive number".into());
                }
                args.budget = Some(b);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

/// Best-of-reps wall seconds of one strategy closure.
fn time_best<F: FnMut()>(reps: u32, mut run: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}


fn strategy_json(wall_s: f64, trials: u64, yields: &FusedYields) -> String {
    format!(
        "{{\n      \"wall_s\": {:.6e},\n      \"trials\": {},\n      \
         \"trials_per_sec\": {:.1},\n      \"inl_yield\": {:.6},\n      \
         \"dnl_yield\": {:.6},\n      \"monotonicity_yield\": {:.6}\n    }}",
        wall_s,
        trials,
        trials as f64 / wall_s,
        yields.inl.estimate(),
        yields.dnl.estimate(),
        yields.monotonicity.estimate(),
    )
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: mc_bench [--trials N] [--reps R] [--out PATH] [--budget CODES]");
            return ExitCode::from(2);
        }
    };
    let spec = DacSpec::paper_12bit();
    let dac = SegmentedDac::new(&spec);
    let sigma = spec.sigma_unit_spec();
    let limits = YieldLimits::half_lsb();
    let trials = args.trials;
    let codes_per_curve = dac.max_code() + 1;

    // Bit-identity cross-check on a shared seed before any timing.
    let mut engine = match YieldEngine::new(&dac, sigma, limits) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: building engine: {e}");
            return ExitCode::from(2);
        }
    };
    let check_trials = trials.min(500);
    let mut rng = seeded_rng(SEED);
    let batched_check = engine.run(YieldMode::Batched, check_trials, &mut rng);
    let mut rng = seeded_rng(SEED);
    let reference_check = engine.run(YieldMode::Reference, check_trials, &mut rng);
    let mut rng = seeded_rng(SEED);
    let lanes_check = engine.run_lanes::<8, _>(check_trials, &mut rng);
    let bit_identical = match (&batched_check, &reference_check) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    };
    let lanes_identical = match (&lanes_check, &reference_check) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    };
    if !bit_identical {
        eprintln!("error: batched and reference paths disagree on seed {SEED}");
        return ExitCode::from(1);
    }
    if !lanes_identical {
        eprintln!("error: lane and reference paths disagree on seed {SEED}");
        return ExitCode::from(1);
    }

    // legacy: three independent single-metric loops, each drawing its own
    // mismatch stream (the pre-engine cost of "all three yields").
    let mut legacy_yields = None;
    let legacy_wall = time_best(args.reps, || {
        let mut rng = seeded_rng(SEED);
        let inl = inl_yield_mc(&dac, sigma, limits.inl, trials, &mut rng).expect("inl loop");
        let mut rng = seeded_rng(SEED);
        let dnl = dnl_yield_mc(&dac, sigma, limits.dnl, trials, &mut rng).expect("dnl loop");
        let mut rng = seeded_rng(SEED);
        let mono = monotonicity_yield_mc(&dac, sigma, trials, &mut rng).expect("mono loop");
        legacy_yields = Some(FusedYields {
            inl,
            dnl,
            monotonicity: mono,
        });
    });
    let legacy_yields = legacy_yields.expect("reps >= 1");

    // reference: one engine run through the scalar allocating chain.
    let mut reference_yields = None;
    let reference_wall = time_best(args.reps, || {
        let mut rng = seeded_rng(SEED);
        reference_yields = Some(
            engine
                .run(YieldMode::Reference, trials, &mut rng)
                .expect("reference run"),
        );
    });
    let reference_yields = reference_yields.expect("reps >= 1");

    // batched: the fused allocation-free pass, instrumented for the
    // deterministic work budget.
    let mut batched_engine = YieldEngine::new(&dac, sigma, limits).expect("validated above");
    let mut batched_yields = None;
    let batched_wall = time_best(args.reps, || {
        let mut rng = seeded_rng(SEED);
        batched_yields = Some(
            batched_engine
                .run(YieldMode::Batched, trials, &mut rng)
                .expect("batched run"),
        );
    });
    let batched_yields = batched_yields.expect("reps >= 1");
    let codes_per_trial = batched_engine.codes_scanned() as f64 / batched_engine.trials_run() as f64;

    // lanes: the production SoA kernel, eight trials per group.
    let mut lanes_engine = YieldEngine::new(&dac, sigma, limits).expect("validated above");
    let mut lanes_yields = None;
    let lanes_wall = time_best(args.reps, || {
        let mut rng = seeded_rng(SEED);
        lanes_yields = Some(
            lanes_engine
                .run_lanes::<8, _>(trials, &mut rng)
                .expect("lanes run"),
        );
    });
    let lanes_yields = lanes_yields.expect("reps >= 1");
    let lanes_codes_per_trial =
        lanes_engine.codes_scanned() as f64 / lanes_engine.trials_run() as f64;

    // Observability overhead: the lane engine with the metrics registry
    // live versus the default compiled-in-but-disabled hooks. Same seed
    // and trial count on both sides, arms interleaved rep by rep and both
    // taken min-of-reps, so the ratio isolates the cost of the atomic
    // counter updates from host noise.
    let mut obs_disabled_wall = f64::INFINITY;
    let mut obs_enabled_wall = f64::INFINITY;
    obs::set_metrics(false);
    for _ in 0..args.reps {
        obs::set_metrics(false);
        let mut rng = seeded_rng(SEED);
        let t0 = Instant::now();
        lanes_engine
            .run_lanes::<8, _>(trials, &mut rng)
            .expect("obs-off run");
        obs_disabled_wall = obs_disabled_wall.min(t0.elapsed().as_secs_f64());
        obs::set_metrics(true);
        let mut rng = seeded_rng(SEED);
        let t0 = Instant::now();
        lanes_engine
            .run_lanes::<8, _>(trials, &mut rng)
            .expect("obs-on run");
        obs_enabled_wall = obs_enabled_wall.min(t0.elapsed().as_secs_f64());
    }
    obs::set_metrics(false);
    obs::reset();
    let obs_overhead = obs_enabled_wall / obs_disabled_wall - 1.0;

    let speedup_ref = reference_wall / batched_wall;
    let speedup_legacy = legacy_wall / batched_wall;
    let speedup_lanes_ref = reference_wall / lanes_wall;
    let speedup_lanes_legacy = legacy_wall / lanes_wall;
    // The work budget recorded in the JSON: the caller's --budget if given,
    // else half a transfer curve per trial. The screened classifier does one
    // block scan (~272 code-equivalents at 12 bits), so a regression that
    // re-walks the full 4096-code curve per trial blows the budget.
    let recorded_budget = args.budget.unwrap_or(codes_per_curve as f64 / 2.0);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"ctsdac-mc-bench-v1\",");
    let _ = writeln!(json, "  \"n_bits\": {},", spec.n_bits);
    let _ = writeln!(json, "  \"trials\": {trials},");
    let _ = writeln!(json, "  \"reps\": {},", args.reps);
    let _ = writeln!(json, "  \"sigma_unit\": {sigma:.8e},");
    let _ = writeln!(json, "  \"codes_per_curve\": {codes_per_curve},");
    let _ = writeln!(json, "  \"bit_identical_batched_vs_reference\": {bit_identical},");
    let _ = writeln!(json, "  \"bit_identical_lanes_vs_reference\": {lanes_identical},");
    let _ = writeln!(
        json,
        "  \"legacy\": {},",
        strategy_json(legacy_wall, trials, &legacy_yields)
    );
    let _ = writeln!(
        json,
        "  \"reference\": {},",
        strategy_json(reference_wall, trials, &reference_yields)
    );
    let _ = writeln!(
        json,
        "  \"batched\": {},",
        strategy_json(batched_wall, trials, &batched_yields)
    );
    let _ = writeln!(
        json,
        "  \"lanes\": {},",
        strategy_json(lanes_wall, trials, &lanes_yields)
    );
    let _ = writeln!(json, "  \"obs\": {{");
    let _ = writeln!(json, "    \"disabled_wall_s\": {obs_disabled_wall:.6e},");
    let _ = writeln!(json, "    \"enabled_wall_s\": {obs_enabled_wall:.6e},");
    let _ = writeln!(json, "    \"relative_overhead\": {obs_overhead:.4}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"codes_per_trial\": {codes_per_trial:.1},");
    let _ = writeln!(
        json,
        "  \"per_trial_work_budget\": {recorded_budget:.1},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_batched_over_reference\": {speedup_ref:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_batched_over_legacy\": {speedup_legacy:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_lanes_over_reference\": {speedup_lanes_ref:.3},"
    );
    let _ = writeln!(
        json,
        "  \"speedup_lanes_over_legacy\": {speedup_lanes_legacy:.3}"
    );
    let _ = writeln!(json, "}}");

    let out = args
        .out
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_mc.json"));
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: writing {}: {e}", out.display());
        return ExitCode::from(2);
    }

    println!(
        "legacy (3 loops): {trials} trials in {:.3} ms -> {:.0} trials/sec",
        legacy_wall * 1e3,
        trials as f64 / legacy_wall,
    );
    println!(
        "reference (CRN) : {trials} trials in {:.3} ms -> {:.0} trials/sec",
        reference_wall * 1e3,
        trials as f64 / reference_wall,
    );
    println!(
        "batched (fused) : {trials} trials in {:.3} ms -> {:.0} trials/sec \
         ({codes_per_trial:.0} codes/trial)",
        batched_wall * 1e3,
        trials as f64 / batched_wall,
    );
    println!(
        "lanes (SoA x8)  : {trials} trials in {:.3} ms -> {:.0} trials/sec \
         ({lanes_codes_per_trial:.0} codes/trial)",
        lanes_wall * 1e3,
        trials as f64 / lanes_wall,
    );
    println!("speedup batched/reference: {speedup_ref:.2}x");
    println!("speedup batched/legacy   : {speedup_legacy:.2}x");
    println!("speedup lanes/reference  : {speedup_lanes_ref:.2}x");
    println!("speedup lanes/legacy     : {speedup_lanes_legacy:.2}x");
    println!(
        "obs overhead (metrics on vs off): {:+.2}%",
        obs_overhead * 100.0
    );
    println!("wrote {}", out.display());

    if let Some(budget) = args.budget {
        if codes_per_trial > budget {
            eprintln!(
                "error: batched engine scans {codes_per_trial:.1} codes per trial, \
                 over the budget of {budget:.1}"
            );
            return ExitCode::from(1);
        }
        if lanes_codes_per_trial > budget {
            eprintln!(
                "error: lane engine scans {lanes_codes_per_trial:.1} codes per trial, \
                 over the budget of {budget:.1}"
            );
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
