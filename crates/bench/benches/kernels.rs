//! Wall-clock benches of the simulation kernels: FFT, transfer function,
//! Monte-Carlo yield, switching-sequence INL, and DEF emission.
//!
//! Runs on the in-tree timing harness (`ctsdac_bench::timing`) so the
//! workspace builds with no registry access. Invoke with `cargo bench`.

use ctsdac_bench::timing::Harness;
use ctsdac_core::DacSpec;
use ctsdac_dac::architecture::SegmentedDac;
use ctsdac_dac::errors::CellErrors;
use ctsdac_dac::static_metrics::{inl_yield_mc, TransferFunction};
use ctsdac_dsp::{fft, Complex};
use ctsdac_layout::gradient::GradientModel;
use ctsdac_layout::grid::ArrayGrid;
use ctsdac_layout::inl::unary_inl_max;
use ctsdac_layout::lefdef::{write_def, CellGeometry};
use ctsdac_layout::schemes::Scheme;
use ctsdac_layout::Floorplan;
use ctsdac_stats::sample::seeded_rng;

fn bench_fft(h: &mut Harness) {
    h.bench_with_setup(
        "fft_4096",
        || {
            (0..4096)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), 0.0))
                .collect::<Vec<_>>()
        },
        |mut data| fft(&mut data),
    );
}

fn bench_transfer_function(h: &mut Harness) {
    let spec = DacSpec::paper_12bit();
    let dac = SegmentedDac::new(&spec);
    let mut rng = seeded_rng(1);
    let errors = CellErrors::random(&dac, 0.003, &mut rng);
    h.bench("transfer_function_12bit_fast", || {
        TransferFunction::compute_fast(std::hint::black_box(&dac), &errors)
    });
}

fn bench_inl_yield_mc(h: &mut Harness) {
    let base = DacSpec::paper_12bit();
    let spec = DacSpec::new(10, 4, 0.997, base.env, base.tech);
    let dac = SegmentedDac::new(&spec);
    h.bench_with_setup(
        "inl_yield_mc_10bit_50trials",
        || seeded_rng(9),
        |mut rng| inl_yield_mc(&dac, spec.sigma_unit_spec(), 0.5, 50, &mut rng).expect("valid"),
    );
}

fn bench_scheme_inl(h: &mut Harness) {
    let grid = ArrayGrid::new(16, 16);
    let order = Scheme::CentroSymmetric.order(&grid, 255, 0);
    let errors = GradientModel::linear(0.01, 0.5).sample_grid(&grid);
    h.bench("unary_inl_max_255", || {
        unary_inl_max(std::hint::black_box(&order), &errors).expect("valid order")
    });
}

fn bench_def_emission(h: &mut Harness) {
    let floorplan = Floorplan::paper_fig5(255, 4, Scheme::Snake, 0);
    h.bench("write_def_259_cells", || {
        write_def(
            "D",
            std::hint::black_box(&floorplan),
            CellGeometry::default(),
        )
    });
}

fn bench_dc_solve(h: &mut Harness) {
    use ctsdac_circuit::bias::OptimumBias;
    use ctsdac_circuit::cell::{CellEnvironment, SizedCell};
    use ctsdac_circuit::dc::solve_simple;
    use ctsdac_process::Technology;
    let tech = Technology::c035();
    let env = CellEnvironment::paper_12bit();
    let cell = SizedCell::simple_from_overdrives(&tech, 78.1e-6, 0.5, 0.6, 400e-12, None);
    let opt = OptimumBias::of(&cell, &env).expect("paper cell is feasible");
    h.bench("dc_solve_simple", || {
        solve_simple(std::hint::black_box(&cell), &env, opt.v_gate_sw)
    });
}

fn bench_welch(h: &mut Harness) {
    use ctsdac_dsp::spectrum::welch;
    use ctsdac_dsp::Window;
    let x: Vec<f64> = (0..8192).map(|i| (i as f64 * 0.31).sin()).collect();
    h.bench("welch_8192_seg512", || {
        welch(std::hint::black_box(&x), 512, Window::Hann)
    });
}

fn bench_measurement(h: &mut Harness) {
    use ctsdac_dac::measurement::{measure_linearity, MeterConfig};
    let base = DacSpec::paper_12bit();
    let spec = DacSpec::new(8, 4, 0.99, base.env, base.tech);
    let dac = SegmentedDac::new(&spec);
    let errors = CellErrors::ideal(&dac);
    let meter = MeterConfig::new(0.1, 16);
    h.bench_with_setup(
        "measure_linearity_8bit_16avg",
        || seeded_rng(3),
        |mut rng| measure_linearity(&dac, &errors, &meter, &mut rng),
    );
}

fn main() {
    let mut h = Harness::new();
    bench_fft(&mut h);
    bench_transfer_function(&mut h);
    bench_inl_yield_mc(&mut h);
    bench_scheme_inl(&mut h);
    bench_def_emission(&mut h);
    bench_dc_solve(&mut h);
    bench_welch(&mut h);
    bench_measurement(&mut h);
    h.report();
}
