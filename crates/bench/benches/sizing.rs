//! Criterion benches of the methodology kernels: sizing, statistical
//! margins, design-space sweeps and the comparison report.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ctsdac_core::explore::{DesignSpace, Objective};
use ctsdac_core::saturation::SaturationCondition;
use ctsdac_core::sizing::build_simple_cell;
use ctsdac_core::{CsSizing, DacSpec};

fn bench_cs_sizing(c: &mut Criterion) {
    let spec = DacSpec::paper_12bit();
    c.bench_function("cs_sizing_eq2", |b| {
        b.iter(|| CsSizing::for_spec(std::hint::black_box(&spec), 0.5))
    });
}

fn bench_statistical_margin(c: &mut Criterion) {
    let spec = DacSpec::paper_12bit();
    c.bench_function("statistical_margin_eq9", |b| {
        b.iter(|| {
            SaturationCondition::Statistical.margin_simple(
                std::hint::black_box(&spec),
                0.5,
                0.6,
            )
        })
    });
}

fn bench_cell_build(c: &mut Criterion) {
    let spec = DacSpec::paper_12bit();
    c.bench_function("build_simple_cell", |b| {
        b.iter(|| build_simple_cell(std::hint::black_box(&spec), 0.5, 0.6, 16))
    });
}

fn bench_design_space_sweep(c: &mut Criterion) {
    let spec = DacSpec::paper_12bit();
    c.bench_function("design_space_sweep_12x12", |b| {
        b.iter_batched(
            || DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(12),
            |space| space.optimize(Objective::MinArea),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_cs_sizing,
    bench_statistical_margin,
    bench_cell_build,
    bench_design_space_sweep
);
criterion_main!(benches);
