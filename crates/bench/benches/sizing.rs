//! Wall-clock benches of the methodology kernels: sizing, statistical
//! margins, design-space sweeps and the comparison report.
//!
//! Runs on the in-tree timing harness (`ctsdac_bench::timing`) so the
//! workspace builds with no registry access. Invoke with `cargo bench`.

use ctsdac_bench::timing::Harness;
use ctsdac_core::explore::{DesignSpace, Objective};
use ctsdac_core::saturation::SaturationCondition;
use ctsdac_core::sizing::build_simple_cell;
use ctsdac_core::{CsSizing, DacSpec};

fn bench_cs_sizing(h: &mut Harness) {
    let spec = DacSpec::paper_12bit();
    h.bench("cs_sizing_eq2", || {
        CsSizing::for_spec(std::hint::black_box(&spec), 0.5)
    });
}

fn bench_statistical_margin(h: &mut Harness) {
    let spec = DacSpec::paper_12bit();
    h.bench("statistical_margin_eq9", || {
        SaturationCondition::Statistical.margin_simple(std::hint::black_box(&spec), 0.5, 0.6)
    });
}

fn bench_cell_build(h: &mut Harness) {
    let spec = DacSpec::paper_12bit();
    h.bench("build_simple_cell", || {
        build_simple_cell(std::hint::black_box(&spec), 0.5, 0.6, 16)
    });
}

fn bench_design_space_sweep(h: &mut Harness) {
    let spec = DacSpec::paper_12bit();
    h.bench_with_setup(
        "design_space_sweep_12x12",
        || DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(12),
        |space| space.optimize(Objective::MinArea),
    );
}

fn main() {
    let mut h = Harness::new();
    bench_cs_sizing(&mut h);
    bench_statistical_margin(&mut h);
    bench_cell_build(&mut h);
    bench_design_space_sweep(&mut h);
    h.report();
}
