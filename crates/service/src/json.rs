//! Minimal recursive-descent JSON, hand-rolled for the zero-dependency
//! request surface.
//!
//! Parsing is defensive by construction: input length is capped by the
//! HTTP layer before it reaches the parser, nesting depth is bounded
//! ([`MAX_DEPTH`]), and every malformation is a typed [`JsonError`] — the
//! daemon must answer garbage with a 400, never a panic. Serialisation
//! goes through [`escape`] so response bodies are always well-formed.
//!
//! Numbers are `f64` (JSON's own model); integer-valued fields are
//! range-checked at the protocol layer, not here.

use std::fmt;

/// Maximum nesting depth accepted by the parser. Request bodies are flat
/// objects; anything deeper is hostile or broken.
pub const MAX_DEPTH: usize = 16;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members
                .iter()
                .rev()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Typed parse failure; always one line, safe to echo back to a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// Unexpected byte or premature end at `offset`.
    Syntax {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        detail: String,
    },
    /// Nesting exceeded [`MAX_DEPTH`].
    TooDeep,
    /// Bytes remained after the first complete value.
    TrailingData {
        /// Offset of the first trailing byte.
        offset: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { offset, detail } => {
                write!(f, "JSON syntax error at byte {offset}: {detail}")
            }
            Self::TooDeep => write!(f, "JSON nesting exceeds {MAX_DEPTH} levels"),
            Self::TrailingData { offset } => {
                write!(f, "trailing data after JSON value at byte {offset}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON value; trailing whitespace is allowed,
/// trailing data is not.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::TrailingData { offset: pos });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn syntax(pos: usize, detail: impl Into<String>) -> JsonError {
    JsonError::Syntax {
        offset: pos,
        detail: detail.into(),
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    if depth > MAX_DEPTH {
        return Err(JsonError::TooDeep);
    }
    match bytes.get(*pos) {
        None => Err(syntax(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&b) => Err(syntax(*pos, format!("unexpected byte 0x{b:02x}"))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(syntax(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(bytes.get(*pos), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| syntax(start, "non-UTF-8 number"))?;
    let n: f64 = text
        .parse()
        .map_err(|_| syntax(start, format!("invalid number `{text}`")))?;
    if !n.is_finite() {
        return Err(syntax(start, "number overflows f64"));
    }
    Ok(JsonValue::Num(n))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(syntax(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let cp = parse_hex4(bytes, pos)?;
                        let ch = if (0xd800..0xdc00).contains(&cp) {
                            // High surrogate: require the paired low half.
                            if bytes.get(*pos) == Some(&b'\\')
                                && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(syntax(*pos, "invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(c)
                            } else {
                                return Err(syntax(*pos, "unpaired surrogate"));
                            }
                        } else if (0xdc00..0xe000).contains(&cp) {
                            return Err(syntax(*pos, "unpaired low surrogate"));
                        } else {
                            char::from_u32(cp)
                        };
                        match ch {
                            Some(c) => out.push(c),
                            None => return Err(syntax(*pos, "invalid code point")),
                        }
                        // parse_hex4 already advanced past the digits.
                        continue;
                    }
                    _ => return Err(syntax(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => {
                return Err(syntax(*pos, "raw control byte in string"));
            }
            Some(_) => {
                // Copy one UTF-8 scalar (the input is a &str, so this is
                // always a valid boundary walk).
                let rest = &bytes[*pos..];
                let len = utf8_len(rest[0]);
                match std::str::from_utf8(rest.get(..len).unwrap_or_default()) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(syntax(*pos, "invalid UTF-8")),
                }
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let mut cp = 0u32;
    for _ in 0..4 {
        let d = match bytes.get(*pos) {
            Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
            Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
            Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
            _ => return Err(syntax(*pos, "invalid \\u escape")),
        };
        cp = cp * 16 + d;
        *pos += 1;
    }
    Ok(cp)
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(syntax(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(syntax(*pos, "expected string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(syntax(*pos, "expected `:`"));
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(syntax(*pos, "expected `,` or `}`")),
        }
    }
}

/// Escapes a string for embedding in a JSON document (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request_shape() {
        let v = parse(
            r#"{"mode": "sizing", "spec": {"n_bits": 12, "binary_bits": 4,
               "inl_yield": 0.997}, "grid": 16, "adaptive": false,
               "tenant": "alice", "deadline_ms": 2500.0}"#,
        )
        .expect("parses");
        assert_eq!(v.get("mode").and_then(JsonValue::as_str), Some("sizing"));
        let spec = v.get("spec").expect("spec");
        assert_eq!(spec.get("n_bits").and_then(JsonValue::as_num), Some(12.0));
        assert_eq!(
            spec.get("inl_yield").and_then(JsonValue::as_num),
            Some(0.997)
        );
        assert_eq!(v.get("adaptive").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(r#"{"a": 1, "a": 2}"#).expect("parses");
        assert_eq!(v.get("a").and_then(JsonValue::as_num), Some(2.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).expect("parses");
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let escaped = escape("a\"b\\c\nd\u{1}");
        assert_eq!(escaped, "a\\\"b\\\\c\\nd\\u0001");
        // Escaped output re-parses to the original.
        let round = parse(&format!("\"{escaped}\"")).expect("round trips");
        assert_eq!(round.as_str(), Some("a\"b\\c\nd\u{1}"));
    }

    #[test]
    fn numbers_parse_and_reject_overflow() {
        assert_eq!(parse("-12.5e2").expect("num").as_num(), Some(-1250.0));
        assert_eq!(parse("0").expect("num").as_num(), Some(0.0));
        assert!(parse("1e999").is_err(), "overflow must be rejected");
        assert!(parse("01x").is_err());
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "{} extra",
            "\"\\q\"",
            "\"\\ud800\"",
            "\"\u{0009}ok\"",
        ] {
            let err = parse(bad).expect_err(bad);
            assert!(!err.to_string().is_empty());
        }
        // Raw control byte inside a string.
        assert!(parse("\"a\u{0000}b\"").is_err());
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(parse(&deep), Err(JsonError::TooDeep));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn arrays_and_nested_objects() {
        let v = parse(r#"{"points": [{"x": 1}, {"x": 2}], "empty": [], "eo": {}}"#)
            .expect("parses");
        match v.get("points") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items.len(), 2);
                assert_eq!(items[1].get("x").and_then(JsonValue::as_num), Some(2.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("empty"), Some(&JsonValue::Arr(Vec::new())));
        assert_eq!(v.get("eo"), Some(&JsonValue::Obj(Vec::new())));
    }

    #[test]
    fn errors_display_one_line() {
        for e in [
            JsonError::Syntax {
                offset: 3,
                detail: "x".into(),
            },
            JsonError::TooDeep,
            JsonError::TrailingData { offset: 9 },
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
    }
}
