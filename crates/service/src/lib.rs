//! Sizing-as-a-service: a zero-dependency daemon over the `ctsdac`
//! design flow.
//!
//! The daemon (`dacd`) accepts sizing, sweep, and Monte-Carlo yield
//! requests over a hand-rolled HTTP/1.1 + JSON surface and schedules
//! them on the supervised runtime pool. The pipeline for every request
//! is **admission → cache → breaker → runtime**:
//!
//! * [`admission`] — per-tenant token-bucket fairness plus a global
//!   in-flight watermark; past either, the request is shed with a typed
//!   429 and `Retry-After` instead of queueing unboundedly.
//! * [`cache`] — content-addressed result cache keyed by the canonical
//!   request identity, with single-flight deduplication: N identical
//!   concurrent requests cost one computation, and a cache hit re-serves
//!   the exact bytes of the first response.
//! * [`breaker`] — a circuit breaker that trips after consecutive
//!   supervision failures and half-opens on the runtime's jittered
//!   exponential [`RetryPolicy`](ctsdac_runtime::RetryPolicy) ladder.
//! * [`engine`] — deadline propagation: the request deadline becomes a
//!   deadline-carrying [`CancelToken`](ctsdac_runtime::CancelToken) on
//!   the pool, so expired requests cancel their remaining chunks and
//!   answer with a typed 504.
//!
//! Supporting layers: [`json`] (recursive-descent parser, no deps),
//! [`http`] (request codec with slow-client timeouts and size caps),
//! [`protocol`] (typed requests/errors, canonical rendering), and
//! [`server`] (acceptor, bounded connection queue, worker pool, graceful
//! drain).
//!
//! # Quickstart
//!
//! ```no_run
//! use ctsdac_service::server::{start, ServerConfig};
//!
//! let handle = start(ServerConfig::default()).expect("bind");
//! println!("dacd listening on {}", handle.local_addr());
//! // ... POST /v1/sizing, /v1/sweep, /v1/yield ...
//! handle.shutdown();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod breaker;
pub mod cache;
pub mod engine;
pub mod http;
pub mod json;
pub mod protocol;
pub mod server;

pub use admission::{Admission, AdmissionConfig};
pub use breaker::{Breaker, BreakerConfig, BreakerPermit};
pub use cache::ResultCache;
pub use engine::{Engine, EngineConfig};
pub use protocol::{ApiError, ErrorKind, Mode, ServiceRequest};
pub use server::{start, ServerConfig, ServerHandle};
