//! Content-addressed result cache with single-flight deduplication.
//!
//! Keys are the full [`cache_key`](crate::protocol::cache_key) canonical
//! request identity strings — not hashes of them, so two distinct
//! requests can never collide into serving each other's bytes; values
//! are the *rendered result bytes*, so a cache hit re-serves the exact
//! byte string of the first computation — bit-identical responses for
//! identical requests, by construction.
//!
//! **Single-flight**: when N identical requests arrive concurrently, the
//! first becomes the *leader* and computes; the other N−1 become
//! *followers* and block on a condvar until the leader fulfills the key.
//! A leader that fails (or dies — see [`LeaderGuard`]) wakes the
//! followers, and the next one promotes itself to leader rather than
//! serving a stale error: only successful results are ever cached.
//!
//! Capacity is bounded two ways, both FIFO: an entry count and a **byte
//! budget** over `key + rendered value` sizes, so one pathological sweep
//! response cannot blow the daemon's memory. The byte high-water mark is
//! surfaced as `service.cache.bytes_high_water`. The cache is a
//! dedup/latency device, not a store, so recency bookkeeping is not
//! worth the locking.
//!
//! For durability the cache is persistence-agnostic: the server *primes*
//! it from the store's recovery scan ([`ResultCache::prime`]) and
//! registers an eviction hook ([`ResultCache::set_evict_hook`]) that
//! writes tombstones, keeping disk and memory in sync without the cache
//! knowing what a disk is.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use ctsdac_obs::{self as obs, Counter};

/// Called with each evicted key, outside the cache lock.
type EvictHook = Box<dyn Fn(&str) + Send + Sync>;

#[derive(Debug, Default)]
struct CacheInner {
    ready: BTreeMap<String, String>,
    order: VecDeque<String>,
    pending: Vec<String>,
    /// Sum of `key.len() + value.len()` over `ready`.
    bytes: usize,
}

/// The shared cache.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    wake: Condvar,
    capacity: usize,
    max_bytes: usize,
    evict_hook: Mutex<Option<EvictHook>>,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("max_bytes", &self.max_bytes)
            .finish_non_exhaustive()
    }
}

/// Outcome of [`ResultCache::claim`].
#[derive(Debug, PartialEq, Eq)]
pub enum Claim {
    /// The rendered result was cached; serve these bytes.
    Hit(String),
    /// This caller is the leader: compute, then call
    /// [`ResultCache::fulfill`] (the [`LeaderGuard`] enforces it).
    Lead,
    /// The caller's deadline expired while waiting for a leader.
    TimedOut,
}

/// Leadership obligation: fulfilled explicitly with a result, or on drop
/// with "no result" — so a panicking leader still wakes its followers
/// instead of wedging them until their deadlines.
#[derive(Debug)]
pub struct LeaderGuard<'a> {
    cache: &'a ResultCache,
    key: String,
    done: bool,
}

impl LeaderGuard<'_> {
    /// Publishes a successful result (cached + followers woken), or
    /// withdraws leadership on failure (followers woken; the next one
    /// promotes itself).
    pub fn fulfill(mut self, result: Option<&str>) {
        self.done = true;
        self.cache.fulfill(&self.key, result);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.cache.fulfill(&self.key, None);
        }
    }
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` rendered results with
    /// no byte budget (tests; the server always sets one).
    pub fn new(capacity: usize) -> Self {
        Self::with_byte_limit(capacity, usize::MAX)
    }

    /// Creates a cache bounded by `capacity` entries **and** `max_bytes`
    /// of `key + value` payload, whichever bites first.
    pub fn with_byte_limit(capacity: usize, max_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            max_bytes: max_bytes.max(1),
            evict_hook: Mutex::new(None),
        }
    }

    /// Registers the eviction hook, called with each evicted key after
    /// the cache lock is released. The server points this at the durable
    /// store's tombstone writer. Register *after* [`ResultCache::prime`]:
    /// entries that do not fit at prime time should stay on disk, not be
    /// tombstoned.
    pub fn set_evict_hook(&self, hook: impl Fn(&str) + Send + Sync + 'static) {
        let mut g = self
            .evict_hook
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *g = Some(Box::new(hook));
    }

    /// Inserts recovered `(key, value)` entries directly (no leader
    /// protocol), respecting both bounds; returns how many were
    /// inserted. Used once at startup to warm the cache from the store.
    pub fn prime(&self, entries: impl IntoIterator<Item = (String, String)>) -> usize {
        let mut evicted = Vec::new();
        let mut n = 0;
        {
            let mut inner = self.lock();
            for (key, value) in entries {
                if inner.ready.contains_key(&key) {
                    continue;
                }
                self.insert_locked(&mut inner, &key, &value, &mut evicted);
                n += 1;
            }
        }
        self.run_evict_hook(&evicted);
        n
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resolves `key` to a hit, a leadership claim, or a timeout.
    ///
    /// `deadline` bounds how long a follower may wait for its leader;
    /// `None` waits indefinitely (only sensible in tests).
    pub fn claim(&self, key: &str, deadline: Option<Instant>) -> (Claim, Option<LeaderGuard<'_>>) {
        let mut inner = self.lock();
        loop {
            if let Some(hit) = inner.ready.get(key) {
                return (Claim::Hit(hit.clone()), None);
            }
            if !inner.pending.iter().any(|k| k == key) {
                inner.pending.push(key.to_string());
                let guard = LeaderGuard {
                    cache: self,
                    key: key.to_string(),
                    done: false,
                };
                return (Claim::Lead, Some(guard));
            }
            // Follower: wait for the leader, bounded by the deadline.
            inner = match deadline {
                None => self
                    .wake
                    .wait(inner)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return (Claim::TimedOut, None);
                    }
                    self.wake
                        .wait_timeout(inner, d - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
            };
        }
    }

    /// Completes a pending key (used by [`LeaderGuard`]).
    fn fulfill(&self, key: &str, result: Option<&str>) {
        let mut evicted = Vec::new();
        {
            let mut inner = self.lock();
            inner.pending.retain(|k| k != key);
            if let Some(body) = result {
                if !inner.ready.contains_key(key) {
                    self.insert_locked(&mut inner, key, body, &mut evicted);
                }
            }
        }
        self.wake.notify_all();
        self.run_evict_hook(&evicted);
    }

    /// Inserts and then evicts FIFO until both bounds hold, collecting
    /// evicted keys for the (lock-free) hook call.
    fn insert_locked(
        &self,
        inner: &mut CacheInner,
        key: &str,
        value: &str,
        evicted: &mut Vec<String>,
    ) {
        inner.order.push_back(key.to_string());
        inner.bytes += key.len() + value.len();
        inner.ready.insert(key.to_string(), value.to_string());
        while inner.ready.len() > self.capacity || inner.bytes > self.max_bytes {
            let Some(old) = inner.order.pop_front() else {
                break;
            };
            if let Some(v) = inner.ready.remove(&old) {
                inner.bytes -= old.len() + v.len();
                evicted.push(old);
            }
        }
        obs::record_max(Counter::ServiceCacheBytesHighWater, inner.bytes as u64);
    }

    fn run_evict_hook(&self, evicted: &[String]) {
        if evicted.is_empty() {
            return;
        }
        let hook = self
            .evict_hook
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(hook) = hook.as_ref() {
            for key in evicted {
                hook(key);
            }
        }
    }

    /// Cached result count (tests / metrics).
    pub fn len(&self) -> usize {
        self.lock().ready.len()
    }

    /// Resident payload bytes (`key + value` over all cached entries).
    pub fn bytes(&self) -> usize {
        self.lock().bytes
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn leader_fulfills_and_hits_are_byte_identical() {
        let cache = ResultCache::new(8);
        let (claim, guard) = cache.claim("k1", None);
        assert_eq!(claim, Claim::Lead);
        guard.expect("leader").fulfill(Some("{\"r\":0.125}"));
        for _ in 0..3 {
            let (claim, guard) = cache.claim("k1", None);
            assert!(guard.is_none());
            assert_eq!(claim, Claim::Hit("{\"r\":0.125}".into()));
        }
    }

    #[test]
    fn failed_leader_promotes_a_follower_not_a_stale_error() {
        let cache = Arc::new(ResultCache::new(8));
        let (claim, guard) = cache.claim("k9", None);
        assert_eq!(claim, Claim::Lead);

        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.claim("k9", None).0)
        };
        std::thread::sleep(Duration::from_millis(30));
        // Leader fails: nothing cached, follower must take over.
        guard.expect("leader").fulfill(None);
        let promoted = follower.join().expect("join");
        assert_eq!(promoted, Claim::Lead);
        assert!(cache.is_empty());
    }

    #[test]
    fn dropped_leader_guard_wakes_followers() {
        let cache = Arc::new(ResultCache::new(8));
        let (_, guard) = cache.claim("k5", None);
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.claim("k5", None).0)
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(guard); // leader "panicked": obligation discharged by Drop
        assert_eq!(follower.join().expect("join"), Claim::Lead);
    }

    #[test]
    fn follower_times_out_on_a_stuck_leader() {
        let cache = ResultCache::new(8);
        let (_, guard) = cache.claim("k3", None);
        let deadline = Instant::now() + Duration::from_millis(50);
        let (claim, _) = cache.claim("k3", Some(deadline));
        assert_eq!(claim, Claim::TimedOut);
        drop(guard);
    }

    #[test]
    fn single_flight_computes_once_under_contention() {
        let cache = Arc::new(ResultCache::new(8));
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                let (claim, guard) = cache.claim("k77", None);
                match claim {
                    Claim::Lead => {
                        computed.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        guard.expect("lead").fulfill(Some("{\"v\":1}"));
                        "{\"v\":1}".to_string()
                    }
                    Claim::Hit(body) => body,
                    Claim::TimedOut => panic!("no deadline set"),
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("join"), "{\"v\":1}");
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
    }

    #[test]
    fn byte_budget_evicts_fifo_and_reports_evicted_keys() {
        let cache = Arc::new(ResultCache::with_byte_limit(64, 24));
        let evicted = Arc::new(Mutex::new(Vec::<String>::new()));
        {
            let evicted = Arc::clone(&evicted);
            cache.set_evict_hook(move |k| evicted.lock().expect("hook lock").push(k.to_string()));
        }
        // Each entry is 1 (key) + 9 (value) = 10 bytes; the 3rd pushes the
        // total to 30 > 24 and must evict the oldest.
        for key in ["a", "b", "c"] {
            let (_, guard) = cache.claim(key, None);
            guard.expect("lead").fulfill(Some("123456789"));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.bytes(), 20);
        assert_eq!(*evicted.lock().expect("lock"), vec!["a".to_string()]);
        let (claim, _guard) = cache.claim("a", None);
        assert_eq!(claim, Claim::Lead, "evicted key misses");
    }

    #[test]
    fn oversized_single_entry_does_not_wedge_the_cache() {
        let cache = ResultCache::with_byte_limit(8, 16);
        let (_, guard) = cache.claim("big", None);
        guard.expect("lead").fulfill(Some(&"x".repeat(100)));
        // Too large to retain: evicted immediately, cache stays sane.
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.bytes(), 0);
        let (_, guard) = cache.claim("small", None);
        guard.expect("lead").fulfill(Some("ok"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn prime_warms_the_cache_without_leader_protocol() {
        let cache = ResultCache::with_byte_limit(2, 1024);
        let n = cache.prime(vec![
            ("k1".to_string(), "v1".to_string()),
            ("k2".to_string(), "v2".to_string()),
            ("k1".to_string(), "dup-ignored".to_string()),
            ("k3".to_string(), "v3".to_string()), // overflows capacity 2 → k1 evicted
        ]);
        assert_eq!(n, 3);
        assert_eq!(cache.len(), 2);
        let (claim, _) = cache.claim("k3", None);
        assert_eq!(claim, Claim::Hit("v3".into()));
        let (claim, _) = cache.claim("k2", None);
        assert_eq!(claim, Claim::Hit("v2".into()));
        let (claim, _guard) = cache.claim("k1", None);
        assert_eq!(claim, Claim::Lead, "FIFO-oldest primed entry evicted");
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = ResultCache::new(2);
        for key in ["a", "b", "c", "d"] {
            let (_, guard) = cache.claim(key, None);
            guard.expect("lead").fulfill(Some("x"));
        }
        assert_eq!(cache.len(), 2);
        // Oldest keys evicted: claiming them yields leadership again.
        let (claim, _guard) = cache.claim("a", None);
        assert_eq!(claim, Claim::Lead);
        let (claim, _) = cache.claim("d", None);
        assert!(matches!(claim, Claim::Hit(_)));
    }
}
