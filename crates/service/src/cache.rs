//! Content-addressed result cache with single-flight deduplication.
//!
//! Keys are the full [`cache_key`](crate::protocol::cache_key) canonical
//! request identity strings — not hashes of them, so two distinct
//! requests can never collide into serving each other's bytes; values
//! are the *rendered result bytes*, so a cache hit re-serves the exact
//! byte string of the first computation — bit-identical responses for
//! identical requests, by construction.
//!
//! **Single-flight**: when N identical requests arrive concurrently, the
//! first becomes the *leader* and computes; the other N−1 become
//! *followers* and block on a condvar until the leader fulfills the key.
//! A leader that fails (or dies — see [`LeaderGuard`]) wakes the
//! followers, and the next one promotes itself to leader rather than
//! serving a stale error: only successful results are ever cached.
//!
//! Capacity is bounded with FIFO eviction — the cache is a dedup/latency
//! device, not a store, so recency bookkeeping is not worth the locking.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

#[derive(Debug, Default)]
struct CacheInner {
    ready: BTreeMap<String, String>,
    order: VecDeque<String>,
    pending: Vec<String>,
}

/// The shared cache.
#[derive(Debug)]
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    wake: Condvar,
    capacity: usize,
}

/// Outcome of [`ResultCache::claim`].
#[derive(Debug, PartialEq, Eq)]
pub enum Claim {
    /// The rendered result was cached; serve these bytes.
    Hit(String),
    /// This caller is the leader: compute, then call
    /// [`ResultCache::fulfill`] (the [`LeaderGuard`] enforces it).
    Lead,
    /// The caller's deadline expired while waiting for a leader.
    TimedOut,
}

/// Leadership obligation: fulfilled explicitly with a result, or on drop
/// with "no result" — so a panicking leader still wakes its followers
/// instead of wedging them until their deadlines.
#[derive(Debug)]
pub struct LeaderGuard<'a> {
    cache: &'a ResultCache,
    key: String,
    done: bool,
}

impl LeaderGuard<'_> {
    /// Publishes a successful result (cached + followers woken), or
    /// withdraws leadership on failure (followers woken; the next one
    /// promotes itself).
    pub fn fulfill(mut self, result: Option<&str>) {
        self.done = true;
        self.cache.fulfill(&self.key, result);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.cache.fulfill(&self.key, None);
        }
    }
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` rendered results.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner::default()),
            wake: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resolves `key` to a hit, a leadership claim, or a timeout.
    ///
    /// `deadline` bounds how long a follower may wait for its leader;
    /// `None` waits indefinitely (only sensible in tests).
    pub fn claim(&self, key: &str, deadline: Option<Instant>) -> (Claim, Option<LeaderGuard<'_>>) {
        let mut inner = self.lock();
        loop {
            if let Some(hit) = inner.ready.get(key) {
                return (Claim::Hit(hit.clone()), None);
            }
            if !inner.pending.iter().any(|k| k == key) {
                inner.pending.push(key.to_string());
                let guard = LeaderGuard {
                    cache: self,
                    key: key.to_string(),
                    done: false,
                };
                return (Claim::Lead, Some(guard));
            }
            // Follower: wait for the leader, bounded by the deadline.
            inner = match deadline {
                None => self
                    .wake
                    .wait(inner)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return (Claim::TimedOut, None);
                    }
                    self.wake
                        .wait_timeout(inner, d - now)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
            };
        }
    }

    /// Completes a pending key (used by [`LeaderGuard`]).
    fn fulfill(&self, key: &str, result: Option<&str>) {
        let mut inner = self.lock();
        inner.pending.retain(|k| k != key);
        if let Some(body) = result {
            if !inner.ready.contains_key(key) {
                inner.order.push_back(key.to_string());
                inner.ready.insert(key.to_string(), body.to_string());
                while inner.ready.len() > self.capacity {
                    if let Some(evicted) = inner.order.pop_front() {
                        inner.ready.remove(&evicted);
                    } else {
                        break;
                    }
                }
            }
        }
        drop(inner);
        self.wake.notify_all();
    }

    /// Cached result count (tests / metrics).
    pub fn len(&self) -> usize {
        self.lock().ready.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn leader_fulfills_and_hits_are_byte_identical() {
        let cache = ResultCache::new(8);
        let (claim, guard) = cache.claim("k1", None);
        assert_eq!(claim, Claim::Lead);
        guard.expect("leader").fulfill(Some("{\"r\":0.125}"));
        for _ in 0..3 {
            let (claim, guard) = cache.claim("k1", None);
            assert!(guard.is_none());
            assert_eq!(claim, Claim::Hit("{\"r\":0.125}".into()));
        }
    }

    #[test]
    fn failed_leader_promotes_a_follower_not_a_stale_error() {
        let cache = Arc::new(ResultCache::new(8));
        let (claim, guard) = cache.claim("k9", None);
        assert_eq!(claim, Claim::Lead);

        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.claim("k9", None).0)
        };
        std::thread::sleep(Duration::from_millis(30));
        // Leader fails: nothing cached, follower must take over.
        guard.expect("leader").fulfill(None);
        let promoted = follower.join().expect("join");
        assert_eq!(promoted, Claim::Lead);
        assert!(cache.is_empty());
    }

    #[test]
    fn dropped_leader_guard_wakes_followers() {
        let cache = Arc::new(ResultCache::new(8));
        let (_, guard) = cache.claim("k5", None);
        let follower = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || cache.claim("k5", None).0)
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(guard); // leader "panicked": obligation discharged by Drop
        assert_eq!(follower.join().expect("join"), Claim::Lead);
    }

    #[test]
    fn follower_times_out_on_a_stuck_leader() {
        let cache = ResultCache::new(8);
        let (_, guard) = cache.claim("k3", None);
        let deadline = Instant::now() + Duration::from_millis(50);
        let (claim, _) = cache.claim("k3", Some(deadline));
        assert_eq!(claim, Claim::TimedOut);
        drop(guard);
    }

    #[test]
    fn single_flight_computes_once_under_contention() {
        let cache = Arc::new(ResultCache::new(8));
        let computed = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let cache = Arc::clone(&cache);
            let computed = Arc::clone(&computed);
            handles.push(std::thread::spawn(move || {
                let (claim, guard) = cache.claim("k77", None);
                match claim {
                    Claim::Lead => {
                        computed.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(20));
                        guard.expect("lead").fulfill(Some("{\"v\":1}"));
                        "{\"v\":1}".to_string()
                    }
                    Claim::Hit(body) => body,
                    Claim::TimedOut => panic!("no deadline set"),
                }
            }));
        }
        for h in handles {
            assert_eq!(h.join().expect("join"), "{\"v\":1}");
        }
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one compute");
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let cache = ResultCache::new(2);
        for key in ["a", "b", "c", "d"] {
            let (_, guard) = cache.claim(key, None);
            guard.expect("lead").fulfill(Some("x"));
        }
        assert_eq!(cache.len(), 2);
        // Oldest keys evicted: claiming them yields leadership again.
        let (claim, _guard) = cache.claim("a", None);
        assert_eq!(claim, Claim::Lead);
        let (claim, _) = cache.claim("d", None);
        assert!(matches!(claim, Claim::Hit(_)));
    }
}
