//! Request execution: a validated [`ServiceRequest`] in, rendered result
//! bytes (or a typed [`ApiError`]) out.
//!
//! The engine owns deadline propagation: the request deadline becomes a
//! deadline-carrying [`CancelToken`] armed on the supervised pool, so an
//! expired request cancels its remaining chunks cooperatively instead of
//! burning the pool for a client that already gave up. When supervision
//! reports `Cancelled` and the token is expired, the engine maps it to a
//! typed [`ErrorKind::DeadlineExceeded`]; domain failures (empty feasible
//! region, bias-point rejection) map to 422s and are never confused with
//! runtime trouble, which is what the circuit breaker feeds on.

use crate::protocol::{render_num, ApiError, ErrorKind, Mode, ServiceRequest};
use ctsdac_core::explore::SweepError;
use ctsdac_core::validate::{saturation_yield_supervised, SaturationYield, ValidateError};
use ctsdac_core::{DacSpec, DesignPoint, DesignSpace};
use ctsdac_obs as obs;
use ctsdac_runtime::{CancelToken, ExecPolicy, FaultPlan, McPlan, RuntimeError};
use std::sync::Arc;
use std::time::Duration;

/// Engine parameters (per-daemon, shared by all requests).
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Deadline applied when a request does not carry one.
    pub default_deadline: Option<Duration>,
    /// Scripted runtime fault plan (chaos testing); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
    /// Hard cap on per-request pool width (requests ask via `jobs`).
    pub max_jobs: usize,
}

/// The execution engine.
#[derive(Debug, Default)]
pub struct Engine {
    cfg: EngineConfig,
}

impl Engine {
    /// Creates an engine.
    pub fn new(cfg: EngineConfig) -> Self {
        Self { cfg }
    }

    /// True when `kind` indicates *runtime* trouble that should count
    /// toward the circuit breaker (as opposed to a domain rejection or
    /// the client's own deadline).
    pub fn counts_toward_breaker(kind: ErrorKind) -> bool {
        matches!(kind, ErrorKind::Internal)
    }

    /// Executes a request end to end, arming a fresh deadline token.
    ///
    /// # Errors
    ///
    /// Typed [`ApiError`]: 422 for domain rejections, 504 when the
    /// deadline expired mid-run, 500 for supervision failures.
    pub fn execute(&self, req: &ServiceRequest) -> Result<String, ApiError> {
        let deadline = req
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.cfg.default_deadline);
        let token = match deadline {
            Some(d) => CancelToken::expiring_in(d),
            None => CancelToken::new(),
        };
        self.execute_with_token(req, token)
    }

    /// Executes with an externally supplied token (tests arm pre-expired
    /// tokens to pin down the 504 path without racing wall clocks).
    pub fn execute_with_token(
        &self,
        req: &ServiceRequest,
        token: CancelToken,
    ) -> Result<String, ApiError> {
        let _span = obs::span("service.execute");
        if token.is_cancelled() {
            return Err(deadline_error(&token));
        }
        let jobs = req.jobs.min(self.cfg.max_jobs.max(1));
        let mut policy = ExecPolicy::with_jobs(jobs);
        policy.pool.cancel = token.clone();
        policy.pool.faults = self.cfg.faults.clone();

        // Validated by the protocol layer, so `DacSpec::new` cannot panic.
        let spec = DacSpec::new(
            req.n_bits,
            req.binary_bits,
            req.inl_yield,
            ctsdac_circuit::cell::CellEnvironment::paper_12bit(),
            ctsdac_process::Technology::c035(),
        );
        let condition = req.condition.to_condition();

        match req.mode {
            Mode::Sizing => {
                let space = DesignSpace::new(&spec, condition).with_grid(req.grid);
                let out = space
                    .optimize_supervised(req.objective, f64::INFINITY, &policy)
                    .map_err(|e| map_sweep_error(e, &token))?;
                Ok(format!("{{\"point\":{}}}", render_point(&out.value)))
            }
            Mode::Sweep => {
                let space = DesignSpace::new(&spec, condition).with_grid(req.grid);
                let out = space
                    .sweep_supervised(&policy)
                    .map_err(|e| map_sweep_error(e, &token))?;
                Ok(render_sweep(&out.value))
            }
            Mode::Yield => {
                // `point` is `Some` for yield mode by protocol validation.
                let (vov_cs, vov_sw) = req.point.unwrap_or((0.0, 0.0));
                let plan = McPlan::new(req.seed, req.trials, req.chunk_trials)
                    .map_err(|e| map_runtime_error(e, &token))?;
                let out = saturation_yield_supervised(&spec, vov_cs, vov_sw, &plan, &policy)
                    .map_err(|e| map_validate_error(e, &token))?;
                Ok(render_yield(vov_cs, vov_sw, &out.value))
            }
        }
    }
}

fn deadline_error(token: &CancelToken) -> ApiError {
    debug_assert!(token.is_cancelled());
    obs::incr(obs::Counter::ServiceDeadlineExceeded);
    ApiError::new(
        ErrorKind::DeadlineExceeded,
        "request deadline expired before the result",
    )
}

fn map_runtime_error(e: RuntimeError, token: &CancelToken) -> ApiError {
    match e {
        RuntimeError::Cancelled { .. } if token.is_expired() => deadline_error(token),
        other => ApiError::new(ErrorKind::Internal, format!("supervised runtime: {other}")),
    }
}

fn map_sweep_error(e: SweepError, token: &CancelToken) -> ApiError {
    match e {
        SweepError::Explore(ctsdac_core::explore::ExploreError::EmptyFeasibleRegion {
            evaluated,
        }) => ApiError::new(
            ErrorKind::Infeasible,
            format!("empty feasible region over {evaluated} grid points"),
        ),
        SweepError::Explore(e) => ApiError::new(ErrorKind::Numerical, e.to_string()),
        SweepError::Runtime(e) => map_runtime_error(e, token),
    }
}

fn map_validate_error(e: ValidateError, token: &CancelToken) -> ApiError {
    match e {
        ValidateError::Bias(e) => ApiError::new(
            ErrorKind::Infeasible,
            format!("design point has no bias point: {e}"),
        ),
        ValidateError::Stats(e) => ApiError::new(ErrorKind::Numerical, e.to_string()),
        ValidateError::Runtime(e) => map_runtime_error(e, token),
    }
}

/// Renders one design point. Field order is fixed; floats use shortest
/// round-trip formatting — the bytes are the cache contract.
fn render_point(p: &DesignPoint) -> String {
    format!(
        "{{\"vov_cs\":{},\"vov_sw\":{},\"feasible\":{},\"total_area_m2\":{},\"min_pole_hz\":{},\"settling_s\":{},\"rout_ohm\":{},\"dc_i_out_a\":{}}}",
        render_num(p.vov_cs),
        render_num(p.vov_sw),
        p.feasible,
        render_num(p.total_area),
        render_num(p.min_pole_hz),
        render_num(p.settling_s),
        render_num(p.rout),
        render_num(p.dc_i_out),
    )
}

fn render_sweep(points: &[DesignPoint]) -> String {
    let feasible: Vec<&DesignPoint> = points.iter().filter(|p| p.feasible).collect();
    let best_area = feasible
        .iter()
        .copied()
        .reduce(|a, b| if b.total_area < a.total_area { b } else { a });
    let best_speed = feasible
        .iter()
        .copied()
        .reduce(|a, b| if b.min_pole_hz > a.min_pole_hz { b } else { a });
    let opt = |p: Option<&DesignPoint>| p.map_or_else(|| "null".to_string(), render_point);
    format!(
        "{{\"evaluated\":{},\"feasible\":{},\"best_area\":{},\"best_speed\":{}}}",
        points.len(),
        feasible.len(),
        opt(best_area),
        opt(best_speed),
    )
}

fn render_yield(vov_cs: f64, vov_sw: f64, sy: &SaturationYield) -> String {
    format!(
        "{{\"vov_cs\":{},\"vov_sw\":{},\"passes\":{},\"trials\":{},\"estimate\":{},\"predicted\":{},\"margin_lo_v\":{},\"margin_up_v\":{}}}",
        render_num(vov_cs),
        render_num(vov_sw),
        sy.mc.passes(),
        sy.mc.trials(),
        render_num(sy.mc.estimate()),
        render_num(sy.predicted),
        render_num(sy.margins.0),
        render_num(sy.margins.1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            default_deadline: None,
            faults: None,
            max_jobs: 8,
        })
    }

    #[test]
    fn sizing_result_is_deterministic_and_jobs_invariant() {
        let e = engine();
        let req1 = parse_request(Mode::Sizing, "{\"grid\":8}").expect("req");
        let req8 = parse_request(Mode::Sizing, "{\"grid\":8,\"jobs\":8}").expect("req");
        let a = e.execute(&req1).expect("sizing");
        let b = e.execute(&req1).expect("sizing again");
        let c = e.execute(&req8).expect("sizing wide");
        assert_eq!(a, b, "identical requests render identical bytes");
        assert_eq!(a, c, "result bytes are jobs-invariant");
        assert!(a.contains("\"feasible\":true"), "{a}");
    }

    #[test]
    fn sweep_summary_counts_and_yield_estimate_render() {
        let e = engine();
        let sweep = parse_request(Mode::Sweep, "{\"grid\":8}").expect("req");
        let body = e.execute(&sweep).expect("sweep");
        assert!(body.starts_with("{\"evaluated\":64,"), "{body}");

        // Validate the yield path at the sizing optimum.
        let sizing = parse_request(Mode::Sizing, "{\"grid\":8}").expect("req");
        let point = e.execute(&sizing).expect("sizing");
        let vov_cs = extract(&point, "\"vov_cs\":");
        let vov_sw = extract(&point, "\"vov_sw\":");
        let yreq = parse_request(
            Mode::Yield,
            &format!("{{\"vov_cs\":{vov_cs},\"vov_sw\":{vov_sw},\"trials\":500,\"chunk_trials\":250}}"),
        )
        .expect("yield req");
        let ybody = e.execute(&yreq).expect("yield");
        assert!(ybody.contains("\"trials\":500"), "{ybody}");
        assert!(ybody.contains("\"estimate\":"), "{ybody}");
    }

    fn extract(body: &str, key: &str) -> f64 {
        let start = body.find(key).expect(key) + key.len();
        let rest = &body[start..];
        let end = rest.find([',', '}']).expect("terminator");
        rest[..end].parse().expect("number")
    }

    #[test]
    fn expired_deadline_is_a_typed_504() {
        let e = engine();
        let req = parse_request(Mode::Sizing, "{\"grid\":16}").expect("req");
        let token = CancelToken::expiring_in(Duration::ZERO);
        let err = e.execute_with_token(&req, token).expect_err("expired");
        assert_eq!(err.kind, ErrorKind::DeadlineExceeded);
        assert_eq!(err.kind.status(), 504);
    }

    #[test]
    fn infeasible_point_and_region_map_to_422() {
        let e = engine();
        // No headroom at 1.5 V overdrives under a 3.3 V supply.
        let req = parse_request(
            Mode::Yield,
            "{\"vov_cs\":1.5,\"vov_sw\":1.5,\"trials\":100}",
        )
        .expect("req");
        let err = e.execute(&req).expect_err("no bias point");
        assert_eq!(err.kind, ErrorKind::Infeasible);
        assert_eq!(err.kind.status(), 422);

        // An absurd fixed margin empties the whole feasible region.
        let req = parse_request(
            Mode::Sizing,
            "{\"grid\":8,\"condition\":\"fixed_margin\",\"margin_v\":2.9}",
        )
        .expect("req");
        let err = e.execute(&req).expect_err("empty region");
        assert_eq!(err.kind, ErrorKind::Infeasible);
    }

    #[test]
    fn exhausted_fault_retries_map_to_internal_500() {
        let e = Engine::new(EngineConfig {
            default_deadline: None,
            // Panic every attempt of chunk 0: exhausts the retry budget.
            faults: Some(Arc::new(FaultPlan::new().panic_at_for(0, 16))),
            max_jobs: 2,
        });
        let req = parse_request(Mode::Sizing, "{\"grid\":8}").expect("req");
        let err = e.execute(&req).expect_err("retry exhaustion");
        assert_eq!(err.kind, ErrorKind::Internal);
        assert!(Engine::counts_toward_breaker(err.kind));
        assert!(!Engine::counts_toward_breaker(ErrorKind::Infeasible));
        assert!(!Engine::counts_toward_breaker(ErrorKind::DeadlineExceeded));
    }
}
