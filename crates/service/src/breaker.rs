//! Circuit breaker over the supervised runtime.
//!
//! After `threshold` *consecutive* supervision failures the breaker trips
//! open and sheds runtime-bound work with a typed
//! [`ErrorKind::BreakerOpen`](crate::protocol::ErrorKind::BreakerOpen)
//! until a backoff interval elapses. The open interval grows with the
//! trip count on the runtime's jittered exponential
//! [`RetryPolicy`](ctsdac_runtime::RetryPolicy) — the same typed ladder
//! the worker pool uses between chunk re-attempts, so the whole stack
//! backs off with one policy.
//!
//! State machine:
//!
//! ```text
//! Closed --(threshold consecutive failures)--> Open --(interval)--> HalfOpen
//!   ^                                            ^                     |
//!   |                                            '-(probe fails or-----|
//!   |                                               probe aborts)
//!   '-------------------(probe succeeds)------------------------------'
//! ```
//!
//! Half-open admits exactly one probe; concurrent callers keep shedding
//! until the probe resolves. [`Breaker::check`] hands the admitted caller
//! a [`BreakerPermit`] that *must* resolve the probe on every exit path:
//! explicitly via [`BreakerPermit::on_success`] /
//! [`BreakerPermit::on_failure`] / [`BreakerPermit::on_uncounted`], or —
//! if the permit unwinds out of a panicking handler — on `Drop`, which
//! aborts the probe back to `Open` so the next interval gets a fresh one.
//! Without that guarantee a probe that dies resolving nothing would leave
//! the breaker `HalfOpen` forever, shedding every request with "probe in
//! flight" and no recovery path.
//!
//! Domain failures (infeasible spec, numerical rejection, a client's own
//! deadline) are *not* runtime trouble and must not count toward the
//! breaker — but a probe that completes with one *has* proven the runtime
//! round trip healthy, so `on_uncounted` closes a half-open breaker while
//! leaving the closed-state failure streak untouched.

use crate::protocol::{ApiError, ErrorKind};
use ctsdac_obs as obs;
use ctsdac_runtime::RetryPolicy;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive: u32 },
    Open { until: Instant, trips: u32 },
    HalfOpen { trips: u32 },
}

/// Breaker parameters.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive supervision failures that trip the breaker.
    pub threshold: u32,
    /// Backoff ladder for the open interval: trip `k` stays open for
    /// `policy.delay_for(0, k)`.
    pub policy: RetryPolicy,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            policy: RetryPolicy::jittered(Duration::from_millis(250), 2.0, Duration::from_secs(30)),
        }
    }
}

/// The breaker. Shared across server workers.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

/// Obligation handed out by [`Breaker::check`]: the holder must report
/// how the runtime round trip ended. If the holder was the half-open
/// probe and the permit is dropped unresolved (a panic unwinding through
/// the handler), `Drop` aborts the probe back to `Open` — the breaker can
/// never wedge in `HalfOpen`.
#[derive(Debug)]
#[must_use = "an unresolved probe permit re-opens the breaker on drop"]
pub struct BreakerPermit<'a> {
    breaker: &'a Breaker,
    probe: bool,
    resolved: bool,
}

impl BreakerPermit<'_> {
    /// True when this permit is the single half-open probe (tests).
    pub fn is_probe(&self) -> bool {
        self.probe
    }

    /// The runtime round trip succeeded: closes the breaker.
    pub fn on_success(mut self) {
        self.resolved = true;
        self.breaker.on_success();
    }

    /// The runtime round trip hit a supervision failure: feeds the
    /// breaker (trips, or re-opens a half-open probe with a longer
    /// interval).
    pub fn on_failure(mut self, now: Instant) {
        self.resolved = true;
        self.breaker.on_failure(now);
    }

    /// The round trip completed with an outcome that does not count
    /// toward the breaker (domain rejection, client deadline). A probe
    /// still proved the runtime healthy, so this closes a half-open
    /// breaker; in the closed state it leaves the failure streak alone.
    pub fn on_uncounted(mut self) {
        self.resolved = true;
        if self.probe {
            self.breaker.on_success();
        }
    }
}

impl Drop for BreakerPermit<'_> {
    fn drop(&mut self) {
        if self.probe && !self.resolved {
            self.breaker.abort_probe(Instant::now());
        }
    }
}

impl Breaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(State::Closed { consecutive: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Gate called before runtime-bound work. The returned permit must be
    /// resolved with the round trip's outcome (see [`BreakerPermit`]).
    ///
    /// # Errors
    ///
    /// [`ErrorKind::BreakerOpen`] (with a `Retry-After` of the remaining
    /// open interval, rounded up) while the breaker is open or while a
    /// half-open probe is already in flight.
    pub fn check(&self, now: Instant) -> Result<BreakerPermit<'_>, ApiError> {
        let mut state = self.lock();
        let permit = |probe| BreakerPermit {
            breaker: self,
            probe,
            resolved: false,
        };
        match *state {
            State::Closed { .. } => Ok(permit(false)),
            State::Open { until, trips } => {
                if now >= until {
                    // This caller becomes the half-open probe.
                    *state = State::HalfOpen { trips };
                    Ok(permit(true))
                } else {
                    let secs = (until - now).as_secs_f64().ceil().max(1.0) as u64;
                    Err(ApiError::new(
                        ErrorKind::BreakerOpen,
                        format!("circuit breaker open after {trips} trip(s)"),
                    )
                    .with_retry_after(secs))
                }
            }
            State::HalfOpen { .. } => Err(ApiError::new(
                ErrorKind::BreakerOpen,
                "circuit breaker half-open; probe in flight",
            )
            .with_retry_after(1)),
        }
    }

    /// Reports a successful runtime round trip: closes from any state.
    pub fn on_success(&self) {
        *self.lock() = State::Closed { consecutive: 0 };
    }

    /// Reports a supervision failure. Call *only* for runtime trouble
    /// (panic retry exhaustion, journal failure), never for domain or
    /// client-deadline errors.
    pub fn on_failure(&self, now: Instant) {
        let mut state = self.lock();
        let trip = |trips: u32| {
            obs::incr(obs::Counter::ServiceBreakerTrips);
            State::Open {
                until: now + self.cfg.policy.delay_for(0, trips.max(1)),
                trips,
            }
        };
        *state = match *state {
            State::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.threshold {
                    trip(1)
                } else {
                    State::Closed { consecutive }
                }
            }
            // A failed half-open probe re-opens with a longer interval.
            State::HalfOpen { trips } => trip(trips + 1),
            // Concurrent failure while already open: keep the later until.
            State::Open { until, trips } => State::Open { until, trips },
        };
    }

    /// Aborts an unresolved half-open probe (the permit unwound without
    /// reporting): back to `Open` for another interval at the same trip
    /// count, so the next interval elects a fresh probe instead of
    /// shedding "probe in flight" forever.
    fn abort_probe(&self, now: Instant) {
        let mut state = self.lock();
        if let State::HalfOpen { trips } = *state {
            *state = State::Open {
                until: now + self.cfg.policy.delay_for(0, trips.max(1)),
                trips,
            };
        }
    }

    /// True when the breaker currently sheds (tests / metrics).
    pub fn is_open(&self, now: Instant) -> bool {
        matches!(*self.lock(), State::Open { until, .. } if now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, base_ms: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            threshold,
            // Deterministic (jitter-free) ladder for exact assertions.
            policy: RetryPolicy {
                base: Duration::from_millis(base_ms),
                factor: 2.0,
                max: Duration::from_secs(10),
                jitter: 0.0,
                seed: 0,
            },
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures_only() {
        let b = breaker(3, 100);
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.check(t0).is_ok(), "two failures stay closed");
        b.on_success(); // success resets the streak
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.check(t0).is_ok(), "streak was reset");
        b.on_failure(t0);
        let err = b.check(t0).expect_err("third consecutive trips");
        assert_eq!(err.kind, ErrorKind::BreakerOpen);
        assert!(err.retry_after_s.is_some());
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let b = breaker(1, 50);
        let t0 = Instant::now();
        b.on_failure(t0);
        assert!(b.is_open(t0));
        let later = t0 + Duration::from_millis(60);
        let probe = b.check(later).expect("first caller is the probe");
        assert!(probe.is_probe());
        let err = b.check(later).expect_err("second caller sheds");
        assert_eq!(err.kind, ErrorKind::BreakerOpen);
        probe.on_success();
        assert!(b.check(later).is_ok(), "probe success closes");
    }

    #[test]
    fn failed_probe_reopens_with_longer_interval() {
        let b = breaker(1, 100);
        let t0 = Instant::now();
        b.on_failure(t0); // trip 1: open 100 ms
        let t1 = t0 + Duration::from_millis(110);
        let probe = b.check(t1).expect("probe admitted");
        probe.on_failure(t1); // trip 2: open 200 ms
        assert!(b.is_open(t1 + Duration::from_millis(150)), "still open at +150 ms");
        assert!(!b.is_open(t1 + Duration::from_millis(210)), "expired at +210 ms");
    }

    #[test]
    fn dropped_probe_permit_aborts_to_open_and_recovers() {
        let b = breaker(1, 30);
        let t0 = Instant::now();
        b.on_failure(t0);
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.check(Instant::now()).expect("probe admitted");
        assert!(probe.is_probe());
        // The handler panicked: the permit unwinds unresolved. The probe
        // must abort back to Open — not wedge HalfOpen forever.
        drop(probe);
        let err = b.check(Instant::now()).expect_err("open again after abort");
        assert_eq!(err.kind, ErrorKind::BreakerOpen);
        // And the breaker still recovers: a later probe can close it.
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.check(Instant::now()).expect("fresh probe after abort");
        probe.on_success();
        assert!(b.check(Instant::now()).is_ok(), "closed again");
    }

    #[test]
    fn uncounted_probe_outcome_closes_without_resetting_closed_streak() {
        // Probe side: a domain error still proves the runtime healthy.
        let b = breaker(1, 30);
        let t0 = Instant::now();
        b.on_failure(t0);
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.check(Instant::now()).expect("probe admitted");
        probe.on_uncounted();
        assert!(b.check(Instant::now()).is_ok(), "uncounted probe closes");

        // Closed side: an uncounted outcome must not reset the streak.
        let b = breaker(2, 30);
        let t1 = Instant::now();
        b.on_failure(t1);
        b.check(t1).expect("still closed").on_uncounted();
        b.on_failure(t1);
        assert!(b.is_open(t1), "streak survived the uncounted outcome");
    }

    #[test]
    fn open_interval_follows_the_retry_ladder() {
        let b = breaker(1, 100);
        let t0 = Instant::now();
        b.on_failure(t0);
        // Trip 1 → delay_for(0, 1) = base = 100 ms.
        assert!(b.is_open(t0 + Duration::from_millis(90)));
        assert!(!b.is_open(t0 + Duration::from_millis(101)));
    }
}
