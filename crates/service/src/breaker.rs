//! Circuit breaker over the supervised runtime.
//!
//! After `threshold` *consecutive* supervision failures the breaker trips
//! open and sheds runtime-bound work with a typed
//! [`ErrorKind::BreakerOpen`](crate::protocol::ErrorKind::BreakerOpen)
//! until a backoff interval elapses. The open interval grows with the
//! trip count on the runtime's jittered exponential
//! [`RetryPolicy`](ctsdac_runtime::RetryPolicy) — the same typed ladder
//! the worker pool uses between chunk re-attempts, so the whole stack
//! backs off with one policy.
//!
//! State machine:
//!
//! ```text
//! Closed --(threshold consecutive failures)--> Open --(interval)--> HalfOpen
//!   ^                                            ^                     |
//!   |                                            '---(probe fails)-----|
//!   '-------------------(probe succeeds)------------------------------'
//! ```
//!
//! Half-open admits exactly one probe; concurrent callers keep shedding
//! until the probe resolves. Domain failures (infeasible spec, numerical
//! rejection, a client's own deadline) are *not* runtime trouble and must
//! not be reported to the breaker.

use crate::protocol::{ApiError, ErrorKind};
use ctsdac_obs as obs;
use ctsdac_runtime::RetryPolicy;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { consecutive: u32 },
    Open { until: Instant, trips: u32 },
    HalfOpen { trips: u32 },
}

/// Breaker parameters.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive supervision failures that trip the breaker.
    pub threshold: u32,
    /// Backoff ladder for the open interval: trip `k` stays open for
    /// `policy.delay_for(0, k)`.
    pub policy: RetryPolicy,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            threshold: 3,
            policy: RetryPolicy::jittered(Duration::from_millis(250), 2.0, Duration::from_secs(30)),
        }
    }
}

/// The breaker. Shared across server workers.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl Breaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(State::Closed { consecutive: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Gate called before runtime-bound work.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::BreakerOpen`] (with a `Retry-After` of the remaining
    /// open interval, rounded up) while the breaker is open or while a
    /// half-open probe is already in flight.
    pub fn check(&self, now: Instant) -> Result<(), ApiError> {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } => Ok(()),
            State::Open { until, trips } => {
                if now >= until {
                    // This caller becomes the half-open probe.
                    *state = State::HalfOpen { trips };
                    Ok(())
                } else {
                    let secs = (until - now).as_secs_f64().ceil().max(1.0) as u64;
                    Err(ApiError::new(
                        ErrorKind::BreakerOpen,
                        format!("circuit breaker open after {trips} trip(s)"),
                    )
                    .with_retry_after(secs))
                }
            }
            State::HalfOpen { .. } => Err(ApiError::new(
                ErrorKind::BreakerOpen,
                "circuit breaker half-open; probe in flight",
            )
            .with_retry_after(1)),
        }
    }

    /// Reports a successful runtime round trip: closes from any state.
    pub fn on_success(&self) {
        *self.lock() = State::Closed { consecutive: 0 };
    }

    /// Reports a supervision failure. Call *only* for runtime trouble
    /// (panic retry exhaustion, journal failure), never for domain or
    /// client-deadline errors.
    pub fn on_failure(&self, now: Instant) {
        let mut state = self.lock();
        let trip = |trips: u32| {
            obs::incr(obs::Counter::ServiceBreakerTrips);
            State::Open {
                until: now + self.cfg.policy.delay_for(0, trips.max(1)),
                trips,
            }
        };
        *state = match *state {
            State::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.cfg.threshold {
                    trip(1)
                } else {
                    State::Closed { consecutive }
                }
            }
            // A failed half-open probe re-opens with a longer interval.
            State::HalfOpen { trips } => trip(trips + 1),
            // Concurrent failure while already open: keep the later until.
            State::Open { until, trips } => State::Open { until, trips },
        };
    }

    /// True when the breaker currently sheds (tests / metrics).
    pub fn is_open(&self, now: Instant) -> bool {
        matches!(*self.lock(), State::Open { until, .. } if now < until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, base_ms: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            threshold,
            // Deterministic (jitter-free) ladder for exact assertions.
            policy: RetryPolicy {
                base: Duration::from_millis(base_ms),
                factor: 2.0,
                max: Duration::from_secs(10),
                jitter: 0.0,
                seed: 0,
            },
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures_only() {
        let b = breaker(3, 100);
        let t0 = Instant::now();
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.check(t0).is_ok(), "two failures stay closed");
        b.on_success(); // success resets the streak
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.check(t0).is_ok(), "streak was reset");
        b.on_failure(t0);
        let err = b.check(t0).expect_err("third consecutive trips");
        assert_eq!(err.kind, ErrorKind::BreakerOpen);
        assert!(err.retry_after_s.is_some());
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let b = breaker(1, 50);
        let t0 = Instant::now();
        b.on_failure(t0);
        assert!(b.is_open(t0));
        let later = t0 + Duration::from_millis(60);
        assert!(b.check(later).is_ok(), "first caller is the probe");
        let err = b.check(later).expect_err("second caller sheds");
        assert_eq!(err.kind, ErrorKind::BreakerOpen);
        b.on_success();
        assert!(b.check(later).is_ok(), "probe success closes");
    }

    #[test]
    fn failed_probe_reopens_with_longer_interval() {
        let b = breaker(1, 100);
        let t0 = Instant::now();
        b.on_failure(t0); // trip 1: open 100 ms
        let t1 = t0 + Duration::from_millis(110);
        assert!(b.check(t1).is_ok(), "probe admitted");
        b.on_failure(t1); // trip 2: open 200 ms
        assert!(b.is_open(t1 + Duration::from_millis(150)), "still open at +150 ms");
        assert!(!b.is_open(t1 + Duration::from_millis(210)), "expired at +210 ms");
    }

    #[test]
    fn open_interval_follows_the_retry_ladder() {
        let b = breaker(1, 100);
        let t0 = Instant::now();
        b.on_failure(t0);
        // Trip 1 → delay_for(0, 1) = base = 100 ms.
        assert!(b.is_open(t0 + Duration::from_millis(90)));
        assert!(!b.is_open(t0 + Duration::from_millis(101)));
    }
}
