//! The daemon: acceptor thread, bounded connection queue, worker pool,
//! and the request pipeline **admission → cache → breaker → runtime**.
//!
//! Overload behaviour is explicit at every stage:
//!
//! * the acceptor sheds with a typed 429 when the connection queue is
//!   full (never unbounded buffering) — but never writes the response
//!   itself: shed connections go to a bounded reject queue drained by a
//!   dedicated shed thread (and opportunistically by idle workers), so a
//!   slow client on the shed path can never stall `accept()`;
//! * admission sheds past the in-flight watermark or a tenant's rate;
//! * cache hits are served even with the breaker open — they cost no
//!   runtime work;
//! * the breaker sheds runtime-bound work with a 503 + `Retry-After`
//!   after consecutive supervision failures.
//!
//! Shutdown is a drain, not an abort: [`ServerHandle::shutdown`] stops
//! accepting, in-flight requests run to completion, queued-but-unserved
//! connections get a typed 503 `shutting_down`, and
//! [`ServerHandle::join`] returns once every worker has exited. A
//! panicking handler is confined to its connection (typed 500); the
//! daemon itself never goes down with a request.

use crate::admission::{Admission, AdmissionConfig};
use crate::breaker::{Breaker, BreakerConfig};
use crate::cache::{Claim, ResultCache};
use crate::engine::{Engine, EngineConfig};
use crate::http::{read_request, write_response, HttpError, HttpRequest};
use crate::json::escape;
use crate::protocol::{cache_key, parse_request, render_ok, ApiError, ErrorKind, Mode};
use ctsdac_obs as obs;
use ctsdac_store::{Store, StoreConfig};
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Full daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Connection-handling worker threads.
    pub workers: usize,
    /// Bound on accepted-but-unserved connections; beyond it the
    /// acceptor sheds with 429.
    pub queue_cap: usize,
    /// Admission-control parameters.
    pub admission: AdmissionConfig,
    /// Circuit-breaker parameters.
    pub breaker: BreakerConfig,
    /// Engine parameters (default deadline, fault plan, jobs cap).
    pub engine: EngineConfig,
    /// Socket read timeout (slow-client defense).
    pub read_timeout: Duration,
    /// Rendered results kept by the cache.
    pub cache_capacity: usize,
    /// Byte budget over cached `key + rendered result` payloads; FIFO
    /// eviction keeps the cache under whichever bound bites first.
    pub cache_bytes: usize,
    /// Service-level fault injection: sleep this long before writing any
    /// response (lets chaos suites exercise client-side timeouts).
    pub response_lag: Option<Duration>,
    /// Durable result store; `None` keeps the cache memory-only. With a
    /// store, startup primes the cache from the recovery scan and every
    /// miss-fill is persisted write-behind (the hot path never waits on
    /// fsync).
    pub store: Option<StoreConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            admission: AdmissionConfig::default(),
            breaker: BreakerConfig::default(),
            engine: EngineConfig {
                default_deadline: Some(Duration::from_secs(30)),
                faults: None,
                max_jobs: 8,
            },
            read_timeout: Duration::from_secs(5),
            cache_capacity: 256,
            cache_bytes: 32 << 20,
            response_lag: None,
            store: None,
        }
    }
}

/// Accepted connections awaiting a thread. `serve` is bounded by
/// `queue_cap`; `reject` holds shed connections whose typed response is
/// written off the acceptor thread, bounded by [`reject_cap`] (overflow
/// is closed without a response rather than buffered unboundedly).
#[derive(Debug, Default)]
struct ConnQueue {
    serve: VecDeque<TcpStream>,
    reject: VecDeque<(TcpStream, ApiError)>,
}

/// Bound on queued shed responses. Generous relative to `queue_cap`: a
/// reject entry costs one fd and a small struct, comparable to what the
/// kernel accept backlog already holds, and dropping a shed connection
/// unanswered is strictly worse than answering it late.
fn reject_cap(queue_cap: usize) -> usize {
    (queue_cap * 8).max(256)
}

struct Shared {
    cfg: ServerConfig,
    addr: SocketAddr,
    admission: Admission,
    breaker: Breaker,
    cache: ResultCache,
    engine: Engine,
    store: Option<Arc<Store>>,
    shutdown: AtomicBool,
    queue: Mutex<ConnQueue>,
    wake: Condvar,
}

impl Shared {
    /// Begins the drain: stop accepting, wake everyone. Idempotent.
    fn trigger_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Self-connect so a blocked `accept()` observes the flag.
        let _ = TcpStream::connect(self.addr);
        self.wake.notify_all();
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, ConnQueue> {
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A running daemon. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`] then [`ServerHandle::join`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Initiates the graceful drain and returns immediately.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// True once the drain has been triggered (by [`Self::shutdown`] or
    /// a `POST /v1/shutdown`).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// A detached trigger for the drain, for stdin-EOF or signal
    /// watchers that outlive the borrow of the handle.
    pub fn clone_shutdown_trigger(&self) -> impl Fn() + Send + 'static {
        let shared = Arc::clone(&self.shared);
        move || shared.trigger_shutdown()
    }

    /// Waits for the acceptor and every worker to exit. In-flight
    /// requests complete; queued connections receive typed 503s. The
    /// durable store (if any) is drained and synced last, so every
    /// response served before the drain is on disk when this returns.
    pub fn join(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(store) = &self.shared.store {
            store.close();
        }
    }

    /// Whether the durable store has degraded (stopped persisting after
    /// an I/O failure). Always `false` without a store.
    pub fn store_degraded(&self) -> bool {
        self.shared
            .store
            .as_ref()
            .is_some_and(|s| s.is_degraded())
    }
}

/// Starts the daemon: binds, spawns the acceptor and workers, returns.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start(cfg: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    let cache = ResultCache::with_byte_limit(cfg.cache_capacity, cfg.cache_bytes);
    let store = match &cfg.store {
        None => None,
        Some(store_cfg) => {
            let (store, recovery) = Store::open(store_cfg.clone())
                .map_err(|e| io::Error::new(io::ErrorKind::Other, e.to_string()))?;
            // Prime before registering the hook: recovered entries that
            // do not fit in memory stay on disk instead of being
            // tombstoned away.
            cache.prime(recovery.entries);
            let store = Arc::new(store);
            let hook_store = Arc::clone(&store);
            cache.set_evict_hook(move |key| hook_store.evict(key));
            Some(store)
        }
    };
    let shared = Arc::new(Shared {
        admission: Admission::new(cfg.admission),
        breaker: Breaker::new(cfg.breaker),
        cache,
        engine: Engine::new(cfg.engine.clone()),
        store,
        shutdown: AtomicBool::new(false),
        queue: Mutex::new(ConnQueue::default()),
        wake: Condvar::new(),
        addr,
        cfg,
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &shared))
    };
    let mut worker_handles: Vec<std::thread::JoinHandle<()>> = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    // Dedicated shed thread: typed 429/503s keep flowing even while every
    // worker is deep in engine work — exactly the moment shedding matters.
    worker_handles.push({
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || shed_loop(&shared))
    });

    Ok(ServerHandle {
        shared,
        acceptor: Some(acceptor),
        workers: worker_handles,
    })
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept failures (EMFILE/ENFILE under fd
                // exhaustion) must back off, not busy-spin a core.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake connection (or a late client) during drain. The
            // drainers may already be gone, so answer inline — this is a
            // one-time exit path and respond_error is wall-clock-bounded.
            respond_error(
                stream,
                &ApiError::new(ErrorKind::ShuttingDown, "daemon is draining")
                    .with_retry_after(1),
                None,
            );
            return;
        }
        let mut queue = shared.lock_queue();
        if queue.serve.len() >= shared.cfg.queue_cap {
            obs::incr(obs::Counter::ServiceShed);
            // Never write from the acceptor: a slow client would stall
            // every accept. Queue the typed 429 for the shed thread.
            if queue.reject.len() < reject_cap(shared.cfg.queue_cap) {
                queue.reject.push_back((
                    stream,
                    ApiError::new(ErrorKind::Shed, "connection queue full").with_retry_after(1),
                ));
            } else {
                // Reject queue full too: close unanswered rather than
                // buffer without bound. `stream` drops here.
            }
            drop(queue);
            shared.wake.notify_one();
            continue;
        }
        queue.serve.push_back(stream);
        drop(queue);
        shared.wake.notify_one();
    }
}

enum Job {
    Serve(TcpStream),
    Reject(TcpStream, ApiError),
}

fn worker_loop(shared: &Shared) {
    loop {
        let mut queue = shared.lock_queue();
        let job = loop {
            // Rejects first: they are cheap and latency-sensitive, and
            // this backstops the shed thread when a trickling client has
            // it tied up in a (bounded) drain.
            if let Some((stream, err)) = queue.reject.pop_front() {
                break Some(Job::Reject(stream, err));
            }
            if let Some(s) = queue.serve.pop_front() {
                break Some(Job::Serve(s));
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break None;
            }
            queue = shared
                .wake
                .wait_timeout(queue, Duration::from_millis(100))
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        };
        drop(queue);
        match job {
            None => return, // drained and shut down
            Some(Job::Reject(stream, err)) => respond_error(stream, &err, None),
            Some(Job::Serve(stream)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    // Queued before the drain began, never served.
                    respond_error(
                        stream,
                        &ApiError::new(ErrorKind::ShuttingDown, "daemon is draining")
                            .with_retry_after(1),
                        None,
                    );
                    continue;
                }
                serve_connection(shared, stream);
            }
        }
    }
}

/// Drains the reject queue only — never picks up engine work, so typed
/// sheds stay fast while all workers are busy.
fn shed_loop(shared: &Shared) {
    loop {
        let mut queue = shared.lock_queue();
        let job = loop {
            if let Some(j) = queue.reject.pop_front() {
                break Some(j);
            }
            // No new rejects can arrive once the drain starts (the
            // acceptor answers its last connection inline), so an empty
            // reject queue at shutdown means this thread is done.
            if shared.shutdown.load(Ordering::SeqCst) {
                break None;
            }
            queue = shared
                .wake
                .wait_timeout(queue, Duration::from_millis(100))
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        };
        drop(queue);
        match job {
            None => return,
            Some((stream, err)) => respond_error(stream, &err, None),
        }
    }
}

/// Wall-clock cap on [`respond_error`]'s post-response drain: bounds the
/// damage a byte-trickling client can do to whichever thread answers it.
const DRAIN_DEADLINE: Duration = Duration::from_secs(1);

fn respond_error(mut stream: TcpStream, err: &ApiError, status_override: Option<u16>) {
    let status = status_override.unwrap_or_else(|| err.kind.status());
    // The peer may already be gone; nothing useful to do about it.
    let _ = write_response(&mut stream, status, err.retry_after_s, &err.render());
    // This path answers without reading the request (acceptor shed,
    // drain 503). Closing with unread bytes in the receive buffer makes
    // the kernel RST the connection and destroy the response in flight —
    // so signal end-of-response and drain what the client sent first,
    // bounded by bytes *and* wall clock (a client trickling one byte per
    // read-timeout window would otherwise hold this thread for hours).
    let deadline = Instant::now() + DRAIN_DEADLINE;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let mut budget = crate::http::MAX_HEAD_BYTES + crate::http::MAX_BODY_BYTES;
    while Instant::now() < deadline {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) if n >= budget => break,
            Ok(n) => budget -= n,
        }
    }
}

/// Handles exactly one request on `stream`. A panic anywhere in the
/// routed handler is confined here and answered with a typed 500.
fn serve_connection(shared: &Shared, mut stream: TcpStream) {
    let request = match read_request(&mut stream, shared.cfg.read_timeout) {
        Ok(r) => r,
        Err(HttpError::Disconnected) => return, // nobody left to answer
        Err(e @ (HttpError::Timeout | HttpError::Io { .. })) => {
            respond_error(stream, &ApiError::new(ErrorKind::BadRequest, e.to_string()), None);
            return;
        }
        Err(e) => {
            respond_error(stream, &ApiError::new(ErrorKind::BadRequest, e.to_string()), None);
            return;
        }
    };
    let (status, retry_after, body) =
        match catch_unwind(AssertUnwindSafe(|| route(shared, &request))) {
            Ok(resp) => resp,
            Err(_) => {
                let e = ApiError::new(ErrorKind::Internal, "request handler panicked");
                (e.kind.status(), None, e.render())
            }
        };
    if let Some(lag) = shared.cfg.response_lag {
        std::thread::sleep(lag);
    }
    let _ = write_response(&mut stream, status, retry_after, &body);
}

type Response = (u16, Option<u64>, String);

fn error_response(e: &ApiError) -> Response {
    (e.kind.status(), e.retry_after_s, e.render())
}

fn route(shared: &Shared, req: &HttpRequest) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => {
            let draining = shared.shutdown.load(Ordering::SeqCst);
            (
                200,
                None,
                format!(
                    "{{\"status\":\"ok\",\"result\":{{\"draining\":{draining},\"in_flight\":{}}}}}",
                    shared.admission.in_flight()
                ),
            )
        }
        ("GET", "/v1/metrics") => (
            200,
            None,
            format!(
                "{{\"status\":\"ok\",\"result\":{{\"metrics\":\"{}\"}}}}",
                escape(&obs::snapshot())
            ),
        ),
        ("POST", "/v1/shutdown") => {
            shared.trigger_shutdown();
            (
                200,
                None,
                "{\"status\":\"ok\",\"result\":{\"draining\":true}}".into(),
            )
        }
        ("POST", "/v1/sizing") => handle_api(shared, Mode::Sizing, &req.body),
        ("POST", "/v1/sweep") => handle_api(shared, Mode::Sweep, &req.body),
        ("POST", "/v1/yield") => handle_api(shared, Mode::Yield, &req.body),
        ("GET" | "POST", _) => (
            404,
            None,
            ApiError::new(ErrorKind::BadRequest, format!("no such endpoint `{}`", req.path))
                .render(),
        ),
        (method, _) => (
            405,
            None,
            ApiError::new(ErrorKind::BadRequest, format!("unsupported method `{method}`"))
                .render(),
        ),
    }
}

/// The pipeline: parse → admission → cache (single-flight) → breaker →
/// engine (deadline-armed runtime).
fn handle_api(shared: &Shared, mode: Mode, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return error_response(&ApiError::new(ErrorKind::BadRequest, "body is not UTF-8"));
    };
    let request = match parse_request(mode, text) {
        Ok(r) => r,
        Err(e) => return error_response(&e),
    };
    if shared.shutdown.load(Ordering::SeqCst) {
        return error_response(
            &ApiError::new(ErrorKind::ShuttingDown, "daemon is draining").with_retry_after(1),
        );
    }

    let now = Instant::now();
    let _slot = match shared.admission.admit(&request.tenant, now) {
        Ok(slot) => slot,
        Err(e) => {
            obs::incr(obs::Counter::ServiceShed);
            return error_response(&e);
        }
    };
    obs::incr(obs::Counter::ServiceAdmitted);

    // Follower waits are bounded by the same deadline the runtime gets.
    let deadline_inst = request
        .deadline_ms
        .map(Duration::from_millis)
        .or(shared.cfg.engine.default_deadline)
        .map(|d| now + d);

    let key = cache_key(&request);
    let (claim, leader) = shared.cache.claim(&key, deadline_inst);
    match claim {
        Claim::Hit(result) => {
            obs::incr(obs::Counter::ServiceCacheHits);
            (200, None, render_ok("hit", &result))
        }
        Claim::TimedOut => {
            obs::incr(obs::Counter::ServiceDeadlineExceeded);
            error_response(&ApiError::new(
                ErrorKind::DeadlineExceeded,
                "deadline expired waiting for an identical in-flight request",
            ))
        }
        Claim::Lead => {
            obs::incr(obs::Counter::ServiceCacheMisses);
            // The guard wakes followers even if this path errors early.
            let guard = leader;
            // The permit resolves the breaker on *every* exit: success,
            // counted failure, uncounted (domain/deadline) outcome — and
            // if the engine panics, the permit unwinds to the catch in
            // `serve_connection` and its Drop aborts a half-open probe
            // back to Open instead of wedging it.
            let permit = match shared.breaker.check(Instant::now()) {
                Ok(permit) => permit,
                Err(e) => {
                    drop(guard);
                    return error_response(&e);
                }
            };
            match shared.engine.execute(&request) {
                Ok(result) => {
                    // Write-behind: enqueue the durable record before
                    // publishing to followers, so an eviction hook firing
                    // inside fulfill() tombstones *after* the put. Both
                    // calls are non-blocking — no fsync on this path.
                    if let Some(store) = &shared.store {
                        store.put(&key, &result);
                    }
                    if let Some(g) = guard {
                        g.fulfill(Some(&result));
                    }
                    permit.on_success();
                    (200, None, render_ok("miss", &result))
                }
                Err(e) => {
                    drop(guard);
                    if Engine::counts_toward_breaker(e.kind) {
                        permit.on_failure(Instant::now());
                    } else {
                        permit.on_uncounted();
                    }
                    error_response(&e)
                }
            }
        }
    }
}
