//! Admission control: per-tenant token-bucket fairness plus a global
//! in-flight watermark.
//!
//! Two independent gates, both cheap enough to sit in front of every
//! request:
//!
//! * **In-flight watermark** — a counting gauge of requests currently
//!   executing. Past the high watermark the daemon sheds instead of
//!   queueing unboundedly; the admission decision returns a typed
//!   [`ErrorKind::Shed`](crate::protocol::ErrorKind::Shed) with a
//!   `Retry-After` hint.
//! * **Per-tenant token bucket** — each tenant refills at `rate` tokens/s
//!   up to `burst`; a request costs one token. A single greedy client
//!   drains only its own bucket, so other tenants keep getting served at
//!   full rate under overload.
//!
//! Time is injected by the caller (an `Instant`), which keeps the bucket
//! arithmetic purely functional and directly testable without sleeping.

use crate::protocol::{ApiError, ErrorKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Admission parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Sustained per-tenant request rate, tokens per second.
    pub rate: f64,
    /// Per-tenant burst capacity, tokens.
    pub burst: f64,
    /// Maximum requests executing at once before shedding.
    pub max_inflight: usize,
    /// Bound on tracked tenant buckets. Tenant names are client-chosen
    /// and unauthenticated, so without a bound a client rotating names
    /// grows the map for the daemon's lifetime; at the cap, fully
    /// refilled (idle) buckets are evicted first — recreating one later
    /// at full burst is indistinguishable from having kept it.
    pub max_tenants: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            rate: 200.0,
            burst: 400.0,
            max_inflight: 64,
            max_tenants: 1024,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled: Instant,
}

/// The admission controller. Shared across server workers.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    buckets: Mutex<BTreeMap<String, Bucket>>,
    in_flight: AtomicUsize,
}

/// RAII in-flight slot: dropping it releases the watermark count, so a
/// panicking handler can never leak capacity.
#[derive(Debug)]
pub struct InFlightSlot<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for InFlightSlot<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Admission {
    /// Creates a controller.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            buckets: Mutex::new(BTreeMap::new()),
            in_flight: AtomicUsize::new(0),
        }
    }

    /// Requests currently holding an in-flight slot.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Decides admission for `tenant` at time `now`. On success the
    /// returned slot must be held for the lifetime of the request.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Shed`] when the in-flight watermark is reached or the
    /// tenant's bucket is empty; the error carries a `Retry-After` hint
    /// (1 s — one bucket refill quantum at the default rate).
    pub fn admit(&self, tenant: &str, now: Instant) -> Result<InFlightSlot<'_>, ApiError> {
        // Watermark first: it is the global backstop, and checking it
        // before the bucket means a saturated daemon does not drain
        // tenants' tokens for requests it would shed anyway.
        let mut current = self.in_flight.load(Ordering::SeqCst);
        loop {
            if current >= self.cfg.max_inflight {
                return Err(ApiError::new(
                    ErrorKind::Shed,
                    format!(
                        "in-flight watermark reached ({} executing)",
                        self.cfg.max_inflight
                    ),
                )
                .with_retry_after(1));
            }
            match self.in_flight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
        let slot = InFlightSlot {
            counter: &self.in_flight,
        };

        let mut buckets = self
            .buckets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if buckets.len() >= self.cfg.max_tenants.max(1) && !buckets.contains_key(tenant) {
            Self::evict(&mut buckets, &self.cfg, now);
        }
        let bucket = buckets.entry(tenant.to_string()).or_insert(Bucket {
            tokens: self.cfg.burst,
            refilled: now,
        });
        let elapsed = now.saturating_duration_since(bucket.refilled).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.rate).min(self.cfg.burst);
        bucket.refilled = now;
        if bucket.tokens < 1.0 {
            drop(slot);
            return Err(ApiError::new(
                ErrorKind::Shed,
                format!("tenant `{tenant}` is over its request rate"),
            )
            .with_retry_after(1));
        }
        bucket.tokens -= 1.0;
        Ok(slot)
    }

    /// Tenant buckets currently tracked (tests / metrics).
    pub fn tracked_tenants(&self) -> usize {
        self.buckets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .len()
    }

    /// Makes room for one more bucket, keeping the map at or below
    /// `max_tenants` after the caller's insert.
    fn evict(buckets: &mut BTreeMap<String, Bucket>, cfg: &AdmissionConfig, now: Instant) {
        // Pass 1: drop every fully refilled bucket — pure idle state,
        // semantically identical to a bucket that was never tracked.
        buckets.retain(|_, b| {
            let elapsed = now.saturating_duration_since(b.refilled).as_secs_f64();
            b.tokens + elapsed * cfg.rate < cfg.burst
        });
        // Pass 2 (only with >= max_tenants *concurrently active* tenants):
        // drop the longest-idle buckets. Those tenants return later with a
        // fresh burst — a bounded fairness leak, paid only at the cap.
        let cap = cfg.max_tenants.max(1);
        if buckets.len() >= cap {
            let mut by_idle: Vec<(Instant, String)> = buckets
                .iter()
                .map(|(name, b)| (b.refilled, name.clone()))
                .collect();
            by_idle.sort_by_key(|&(refilled, _)| refilled);
            let excess = buckets.len() + 1 - cap;
            for (_, name) in by_idle.into_iter().take(excess) {
                buckets.remove(&name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn cfg(rate: f64, burst: f64, max_inflight: usize) -> AdmissionConfig {
        AdmissionConfig {
            rate,
            burst,
            max_inflight,
            ..AdmissionConfig::default()
        }
    }

    #[test]
    fn burst_then_shed_then_refill() {
        let adm = Admission::new(cfg(10.0, 3.0, 100));
        let t0 = Instant::now();
        for _ in 0..3 {
            let slot = adm.admit("a", t0).expect("burst");
            drop(slot);
        }
        let err = adm.admit("a", t0).expect_err("bucket empty");
        assert_eq!(err.kind, ErrorKind::Shed);
        assert_eq!(err.retry_after_s, Some(1));
        // 200 ms at 10 tokens/s refills 2 tokens.
        let t1 = t0 + Duration::from_millis(200);
        assert!(adm.admit("a", t1).is_ok());
        assert!(adm.admit("a", t1).is_ok());
        assert_eq!(adm.admit("a", t1).expect_err("drained").kind, ErrorKind::Shed);
    }

    #[test]
    fn tenants_are_isolated() {
        let adm = Admission::new(cfg(1.0, 1.0, 100));
        let t0 = Instant::now();
        drop(adm.admit("greedy", t0).expect("first"));
        assert_eq!(
            adm.admit("greedy", t0).expect_err("greedy drained").kind,
            ErrorKind::Shed
        );
        // A different tenant still has its full burst.
        assert!(adm.admit("polite", t0).is_ok());
    }

    #[test]
    fn watermark_sheds_and_slots_release_on_drop() {
        let adm = Admission::new(cfg(1000.0, 1000.0, 2));
        let t0 = Instant::now();
        let s1 = adm.admit("a", t0).expect("slot 1");
        let s2 = adm.admit("b", t0).expect("slot 2");
        assert_eq!(adm.in_flight(), 2);
        let err = adm.admit("c", t0).expect_err("watermark");
        assert_eq!(err.kind, ErrorKind::Shed);
        drop(s1);
        assert_eq!(adm.in_flight(), 1);
        let s3 = adm.admit("c", t0).expect("freed slot");
        drop(s2);
        drop(s3);
        assert_eq!(adm.in_flight(), 0);
    }

    #[test]
    fn tenant_map_is_bounded_under_name_rotation() {
        let adm = Admission::new(AdmissionConfig {
            rate: 1000.0,
            burst: 5.0,
            max_inflight: 1000,
            max_tenants: 32,
        });
        let t0 = Instant::now();
        // A client rotating tenant names, one per millisecond: each
        // bucket refills fully 4 ms after use, so pass-1 eviction keeps
        // the map tiny no matter how many names are burned.
        for i in 0..1000u64 {
            let t = t0 + Duration::from_millis(i);
            drop(adm.admit(&format!("rotating-{i}"), t).expect("admit"));
            assert!(
                adm.tracked_tenants() <= 32,
                "map grew past the cap: {}",
                adm.tracked_tenants()
            );
        }
    }

    #[test]
    fn tenant_map_stays_bounded_even_when_no_bucket_refills() {
        // Pathological: refill so slow that no bucket is ever full again,
        // forcing the longest-idle fallback eviction.
        let adm = Admission::new(AdmissionConfig {
            rate: 1e-9,
            burst: 5.0,
            max_inflight: 1000,
            max_tenants: 8,
        });
        let t0 = Instant::now();
        for i in 0..100u64 {
            drop(adm.admit(&format!("rotating-{i}"), t0).expect("admit"));
        }
        assert!(
            adm.tracked_tenants() <= 8,
            "fallback eviction failed: {}",
            adm.tracked_tenants()
        );
    }

    #[test]
    fn eviction_pressure_does_not_refresh_a_drained_tenant() {
        // Refill far too slow to matter: the hog must stay rate-shed
        // across fallback evictions triggered by rotating names, because
        // its bucket is touched (refreshed) every iteration and is never
        // the longest-idle entry.
        let adm = Admission::new(AdmissionConfig {
            rate: 0.1,
            burst: 1.0,
            max_inflight: 1000,
            max_tenants: 4,
        });
        let t0 = Instant::now();
        drop(adm.admit("hog", t0).expect("burst"));
        for i in 0..10u64 {
            let t = t0 + Duration::from_millis(i + 1);
            drop(adm.admit(&format!("r{i}"), t).expect("admit"));
            assert_eq!(
                adm.admit("hog", t).expect_err("still drained").kind,
                ErrorKind::Shed
            );
            assert!(adm.tracked_tenants() <= 4);
        }
    }

    #[test]
    fn shed_requests_do_not_drain_the_bucket() {
        let adm = Admission::new(cfg(1000.0, 5.0, 1));
        let t0 = Instant::now();
        let held = adm.admit("a", t0).expect("hold the only slot");
        for _ in 0..10 {
            assert_eq!(adm.admit("a", t0).expect_err("shed").kind, ErrorKind::Shed);
        }
        drop(held);
        // The 10 shed attempts above must not have cost tokens: 4 remain.
        for _ in 0..4 {
            drop(adm.admit("a", t0).expect("tokens intact"));
        }
    }
}
