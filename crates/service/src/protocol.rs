//! The wire protocol: typed requests, typed errors, and canonical
//! response rendering.
//!
//! Every request is parsed into a [`ServiceRequest`] *before* any physics
//! runs, with strict validation (unknown fields rejected, every range
//! checked) — [`ctsdac_core::DacSpec::new`] panics on bad arguments, so
//! the protocol layer is the panic firewall. Every failure is a typed
//! [`ApiError`] with a stable machine-readable `kind` and an HTTP status;
//! overloaded-path errors (`shed`, `breaker_open`, `shutting_down`) carry
//! a `Retry-After` hint.
//!
//! Responses are rendered with deterministic float formatting (Rust's
//! shortest round-trip `Display`), so one request always renders to one
//! byte string — the property the content-addressed cache stores and the
//! chaos suite asserts bit-identical.

use crate::json::{escape, parse, JsonValue};
use ctsdac_core::{Objective, SaturationCondition};

/// Which computation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Single optimum design point (supervised sweep + selection).
    Sizing,
    /// Full design-plane sweep; responds with summary + Pareto front.
    Sweep,
    /// Monte-Carlo saturation yield at one design point.
    Yield,
}

impl Mode {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Sizing => "sizing",
            Self::Sweep => "sweep",
            Self::Yield => "yield",
        }
    }
}

/// Saturation-condition selector on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CondSpec {
    /// The paper's statistical condition (default).
    Statistical,
    /// Eq. (4) with no margin.
    Exact,
    /// The prior-art fixed 0.5 V margin.
    Legacy,
    /// An explicit fixed margin in V.
    FixedMargin(f64),
}

impl CondSpec {
    /// Maps to the core type.
    pub fn to_condition(self) -> SaturationCondition {
        match self {
            Self::Statistical => SaturationCondition::Statistical,
            Self::Exact => SaturationCondition::Exact,
            Self::Legacy => SaturationCondition::legacy(),
            Self::FixedMargin(v) => SaturationCondition::FixedMargin(v),
        }
    }

    fn canonical(self) -> String {
        match self {
            Self::Statistical => "statistical".into(),
            Self::Exact => "exact".into(),
            Self::Legacy => "legacy".into(),
            Self::FixedMargin(v) => format!("fixed_margin:{:016x}", v.to_bits()),
        }
    }
}

/// A fully validated request, ready for the engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRequest {
    /// Requested computation.
    pub mode: Mode,
    /// Total resolution in bits (1..=24).
    pub n_bits: u32,
    /// Binary-weighted LSBs (≤ `n_bits`).
    pub binary_bits: u32,
    /// Target INL yield, strictly in (0, 1).
    pub inl_yield: f64,
    /// Optimisation objective (sizing mode).
    pub objective: Objective,
    /// Saturation condition.
    pub condition: CondSpec,
    /// Sweep grid resolution per axis (4..=128).
    pub grid: usize,
    /// Design point for yield mode; `None` otherwise.
    pub point: Option<(f64, f64)>,
    /// Monte-Carlo seed (yield mode).
    pub seed: u64,
    /// Monte-Carlo trials (yield mode).
    pub trials: u64,
    /// Trials per supervised chunk (yield mode).
    pub chunk_trials: u64,
    /// Runtime pool width for this request (1..=32). Results are
    /// jobs-invariant by the runtime's bit-identity contract, so this is
    /// *not* part of the cache key.
    pub jobs: usize,
    /// End-to-end deadline in ms; `None` falls back to the server default.
    pub deadline_ms: Option<u64>,
    /// Fairness bucket for admission control. Not part of the cache key.
    pub tenant: String,
}

/// Stable error taxonomy of the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Unparseable or invalid request (HTTP 400).
    BadRequest,
    /// The spec admits no feasible design point (HTTP 422).
    Infeasible,
    /// The computation failed numerically (HTTP 422).
    Numerical,
    /// Load shed by admission control (HTTP 429 + `Retry-After`).
    Shed,
    /// The circuit breaker is open (HTTP 503 + `Retry-After`).
    BreakerOpen,
    /// The daemon is draining for shutdown (HTTP 503 + `Retry-After`).
    ShuttingDown,
    /// The request deadline expired before the result (HTTP 504).
    DeadlineExceeded,
    /// Supervised-runtime or server-side failure (HTTP 500).
    Internal,
}

impl ErrorKind {
    /// HTTP status for this kind.
    pub fn status(self) -> u16 {
        match self {
            Self::BadRequest => 400,
            Self::Infeasible | Self::Numerical => 422,
            Self::Shed => 429,
            Self::BreakerOpen | Self::ShuttingDown => 503,
            Self::DeadlineExceeded => 504,
            Self::Internal => 500,
        }
    }

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Self::BadRequest => "bad_request",
            Self::Infeasible => "infeasible",
            Self::Numerical => "numerical",
            Self::Shed => "shed",
            Self::BreakerOpen => "breaker_open",
            Self::ShuttingDown => "shutting_down",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::Internal => "internal",
        }
    }
}

/// A typed service failure: kind + one-line detail + optional retry hint.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiError {
    /// Error class; fixes the HTTP status.
    pub kind: ErrorKind,
    /// One-line human-readable description.
    pub detail: String,
    /// `Retry-After` seconds, for the overload-path kinds.
    pub retry_after_s: Option<u64>,
}

impl ApiError {
    /// Shorthand constructor without a retry hint.
    pub fn new(kind: ErrorKind, detail: impl Into<String>) -> Self {
        Self {
            kind,
            detail: detail.into(),
            retry_after_s: None,
        }
    }

    /// Attaches a `Retry-After` hint.
    pub fn with_retry_after(mut self, secs: u64) -> Self {
        self.retry_after_s = Some(secs);
        self
    }

    /// Renders the error response body.
    pub fn render(&self) -> String {
        format!(
            "{{\"status\":\"error\",\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
            self.kind.name(),
            escape(&self.detail)
        )
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind.name(), self.detail)
    }
}

impl std::error::Error for ApiError {}

fn bad(detail: impl Into<String>) -> ApiError {
    ApiError::new(ErrorKind::BadRequest, detail)
}

/// Keys a request body may carry; anything else is rejected so typos fail
/// loudly instead of silently running the default computation.
const KNOWN_KEYS: &[&str] = &[
    "mode",
    "n_bits",
    "binary_bits",
    "inl_yield",
    "objective",
    "condition",
    "margin_v",
    "grid",
    "vov_cs",
    "vov_sw",
    "seed",
    "trials",
    "chunk_trials",
    "jobs",
    "deadline_ms",
    "tenant",
];

fn get_uint(
    obj: &JsonValue,
    key: &str,
    default: u64,
    lo: u64,
    hi: u64,
) -> Result<u64, ApiError> {
    let Some(v) = obj.get(key) else {
        return Ok(default);
    };
    let n = v
        .as_num()
        .ok_or_else(|| bad(format!("`{key}` must be a number")))?;
    if n.fract() != 0.0 || n < 0.0 || n > u64::MAX as f64 {
        return Err(bad(format!("`{key}` must be a non-negative integer")));
    }
    let n = n as u64;
    if !(lo..=hi).contains(&n) {
        return Err(bad(format!("`{key}` = {n} is outside {lo}..={hi}")));
    }
    Ok(n)
}

fn get_float(
    obj: &JsonValue,
    key: &str,
    lo: f64,
    hi: f64,
) -> Result<Option<f64>, ApiError> {
    let Some(v) = obj.get(key) else {
        return Ok(None);
    };
    let n = v
        .as_num()
        .ok_or_else(|| bad(format!("`{key}` must be a number")))?;
    if !(n > lo && n < hi) {
        return Err(bad(format!("`{key}` = {n} is outside ({lo}, {hi})")));
    }
    Ok(Some(n))
}

/// Parses and validates a request body for the endpoint `mode`.
///
/// # Errors
///
/// [`ErrorKind::BadRequest`] for anything other than a well-formed JSON
/// object whose every field is known, well-typed, and in range.
pub fn parse_request(mode: Mode, body: &str) -> Result<ServiceRequest, ApiError> {
    let body = if body.trim().is_empty() { "{}" } else { body };
    let root = parse(body).map_err(|e| bad(format!("invalid JSON: {e}")))?;
    let JsonValue::Obj(ref fields) = root else {
        return Err(bad("request body must be a JSON object"));
    };
    for (key, _) in fields {
        if !KNOWN_KEYS.contains(&key.as_str()) {
            return Err(bad(format!("unknown field `{key}`")));
        }
    }
    if let Some(m) = root.get("mode") {
        let m = m.as_str().ok_or_else(|| bad("`mode` must be a string"))?;
        if m != mode.name() {
            return Err(bad(format!(
                "body mode `{m}` contradicts endpoint mode `{}`",
                mode.name()
            )));
        }
    }

    let n_bits = get_uint(&root, "n_bits", 12, 1, 24)? as u32;
    let binary_bits = get_uint(&root, "binary_bits", (n_bits / 3).into(), 0, 24)? as u32;
    if binary_bits > n_bits {
        return Err(bad(format!(
            "`binary_bits` = {binary_bits} exceeds `n_bits` = {n_bits}"
        )));
    }
    let inl_yield = get_float(&root, "inl_yield", 0.0, 1.0)?.unwrap_or(0.997);

    let objective = match root.get("objective").map(|v| v.as_str()) {
        None => Objective::MinArea,
        Some(Some("min_area")) => Objective::MinArea,
        Some(Some("max_speed")) => Objective::MaxSpeed,
        Some(Some("max_impedance")) => Objective::MaxImpedance,
        Some(other) => {
            return Err(bad(format!(
                "`objective` must be min_area | max_speed | max_impedance, got {other:?}"
            )))
        }
    };

    let margin = get_float(&root, "margin_v", -f64::EPSILON, 3.0)?;
    let condition = match root.get("condition").map(|v| v.as_str()) {
        None | Some(Some("statistical")) => CondSpec::Statistical,
        Some(Some("exact")) => CondSpec::Exact,
        Some(Some("legacy")) => CondSpec::Legacy,
        Some(Some("fixed_margin")) => CondSpec::FixedMargin(
            margin.ok_or_else(|| bad("`fixed_margin` condition requires `margin_v`"))?,
        ),
        Some(other) => {
            return Err(bad(format!(
                "`condition` must be statistical | exact | legacy | fixed_margin, got {other:?}"
            )))
        }
    };

    let grid = get_uint(&root, "grid", 24, 4, 128)? as usize;
    let jobs = get_uint(&root, "jobs", 1, 1, 32)? as usize;
    let seed = get_uint(&root, "seed", 42, 0, u64::MAX)?;
    let trials = get_uint(&root, "trials", 2000, 1, 200_000)?;
    let chunk_trials = get_uint(&root, "chunk_trials", 500, 1, 200_000)?.min(trials);
    let deadline_ms = match root.get("deadline_ms") {
        None => None,
        Some(_) => Some(get_uint(&root, "deadline_ms", 0, 1, 600_000)?),
    };

    let tenant = match root.get("tenant") {
        None => "anon".to_string(),
        Some(v) => {
            let t = v.as_str().ok_or_else(|| bad("`tenant` must be a string"))?;
            let ok = !t.is_empty()
                && t.len() <= 64
                && t.bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
            if !ok {
                return Err(bad(
                    "`tenant` must be 1..=64 chars of [A-Za-z0-9_-]".to_string(),
                ));
            }
            t.to_string()
        }
    };

    let vov_cs = get_float(&root, "vov_cs", 0.0, 3.0)?;
    let vov_sw = get_float(&root, "vov_sw", 0.0, 3.0)?;
    let point = match (mode, vov_cs, vov_sw) {
        (Mode::Yield, Some(cs), Some(sw)) => Some((cs, sw)),
        (Mode::Yield, _, _) => {
            return Err(bad("yield mode requires `vov_cs` and `vov_sw`"));
        }
        (_, None, None) => None,
        _ => return Err(bad("`vov_cs`/`vov_sw` only apply to yield mode")),
    };

    Ok(ServiceRequest {
        mode,
        n_bits,
        binary_bits,
        inl_yield,
        objective,
        condition,
        grid,
        point,
        seed,
        trials,
        chunk_trials,
        jobs,
        deadline_ms,
        tenant,
    })
}

/// Canonical request identity, used verbatim as the cache key.
///
/// The identity covers every field that changes the *result bytes* and
/// nothing else: `jobs` is excluded (the runtime's bit-identity contract
/// makes results jobs-invariant), and `deadline_ms`/`tenant` are excluded
/// (they change *whether* a result arrives, never *which*). The cache
/// keys on this full string rather than a hash of it: a hash collision
/// would silently serve one request's cached bytes as another's "ok"
/// result with no detection, and at ~100 bytes per entry the identity
/// costs nothing the rendered result doesn't already dwarf.
pub fn cache_key(req: &ServiceRequest) -> String {
    let objective = match req.objective {
        Objective::MinArea => "min_area",
        Objective::MaxSpeed => "max_speed",
        Objective::MaxImpedance => "max_impedance",
    };
    let point = match req.point {
        Some((cs, sw)) => format!("{:016x},{:016x}", cs.to_bits(), sw.to_bits()),
        None => "-".into(),
    };
    format!(
        "v1;mode={};n={};b={};y={:016x};obj={};cond={};grid={};pt={};seed={};trials={};chunk={}",
        req.mode.name(),
        req.n_bits,
        req.binary_bits,
        req.inl_yield.to_bits(),
        objective,
        req.condition.canonical(),
        req.grid,
        point,
        req.seed,
        req.trials,
        req.chunk_trials,
    )
}

/// Deterministic JSON rendering of a float: Rust's shortest round-trip
/// `Display`; non-finite values (which the physics should never emit into
/// a response) degrade to `null` rather than corrupt the document.
pub fn render_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Renders the success envelope around an already-rendered result object.
pub fn render_ok(cache: &str, result: &str) -> String {
    format!("{{\"status\":\"ok\",\"cache\":\"{cache}\",\"result\":{result}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fill_a_minimal_request() {
        let req = parse_request(Mode::Sizing, "{}").expect("defaults");
        assert_eq!(req.n_bits, 12);
        assert_eq!(req.binary_bits, 4);
        assert_eq!(req.objective, Objective::MinArea);
        assert_eq!(req.condition, CondSpec::Statistical);
        assert_eq!(req.grid, 24);
        assert_eq!(req.jobs, 1);
        assert_eq!(req.tenant, "anon");
        assert!(req.point.is_none());
        // Empty body means all-defaults too.
        assert_eq!(parse_request(Mode::Sizing, "  ").expect("empty"), req);
    }

    #[test]
    fn full_request_round_trips() {
        let body = r#"{"mode":"yield","n_bits":10,"binary_bits":3,"inl_yield":0.99,
            "condition":"fixed_margin","margin_v":0.4,"vov_cs":0.9,"vov_sw":0.35,
            "seed":7,"trials":4000,"chunk_trials":1000,"jobs":4,
            "deadline_ms":2500,"tenant":"team-a"}"#;
        let req = parse_request(Mode::Yield, body).expect("parse");
        assert_eq!(req.n_bits, 10);
        assert_eq!(req.condition, CondSpec::FixedMargin(0.4));
        assert_eq!(req.point, Some((0.9, 0.35)));
        assert_eq!(req.deadline_ms, Some(2500));
        assert_eq!(req.tenant, "team-a");
        assert_eq!(req.jobs, 4);
    }

    #[test]
    fn invalid_requests_are_typed_bad_request() {
        let cases = [
            "[1,2]",
            "{\"mode\":\"sweep\"}",              // contradicts endpoint
            "{\"n_bits\":25}",                   // out of range
            "{\"n_bits\":8,\"binary_bits\":9}",  // b > n
            "{\"inl_yield\":1.0}",               // boundary excluded
            "{\"grid\":2}",                      // below floor
            "{\"jobs\":64}",                     // above cap
            "{\"tenant\":\"has space\"}",
            "{\"typo_field\":1}",
            "{\"deadline_ms\":0}",
            "{\"condition\":\"fixed_margin\"}",  // missing margin_v
            "{\"vov_cs\":0.5}",                  // point outside yield mode
            "not json",
        ];
        for body in cases {
            let err = parse_request(Mode::Sizing, body).expect_err(body);
            assert_eq!(err.kind, ErrorKind::BadRequest, "{body}");
            assert_eq!(err.kind.status(), 400);
        }
        // Yield without a point is also a 400.
        let err = parse_request(Mode::Yield, "{}").expect_err("yield needs point");
        assert_eq!(err.kind, ErrorKind::BadRequest);
    }

    #[test]
    fn cache_key_ignores_jobs_deadline_tenant_only() {
        let base = parse_request(Mode::Sizing, "{}").expect("base");
        let same = parse_request(
            Mode::Sizing,
            "{\"jobs\":8,\"deadline_ms\":1000,\"tenant\":\"other\"}",
        )
        .expect("same identity");
        assert_eq!(cache_key(&base), cache_key(&same));

        for differing in [
            "{\"n_bits\":11}",
            "{\"grid\":25}",
            "{\"objective\":\"max_speed\"}",
            "{\"condition\":\"exact\"}",
            "{\"inl_yield\":0.95}",
        ] {
            let other = parse_request(Mode::Sizing, differing).expect(differing);
            assert_ne!(cache_key(&base), cache_key(&other), "{differing}");
        }
    }

    #[test]
    fn error_rendering_is_stable() {
        let e = ApiError::new(ErrorKind::Shed, "queue full").with_retry_after(2);
        assert_eq!(
            e.render(),
            "{\"status\":\"error\",\"error\":{\"kind\":\"shed\",\"detail\":\"queue full\"}}"
        );
        assert_eq!(e.retry_after_s, Some(2));
        assert_eq!(ErrorKind::Shed.status(), 429);
        assert_eq!(ErrorKind::DeadlineExceeded.status(), 504);
        assert_eq!(ErrorKind::BreakerOpen.status(), 503);
    }

    #[test]
    fn render_num_is_shortest_round_trip_and_null_safe() {
        assert_eq!(render_num(0.25), "0.25");
        assert_eq!(render_num(1e-3), "0.001");
        assert_eq!(render_num(f64::NAN), "null");
        assert_eq!(render_num(f64::INFINITY), "null");
    }
}
