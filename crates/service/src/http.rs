//! A deliberately small HTTP/1.1 server-side codec over `TcpStream`.
//!
//! The daemon speaks exactly the subset it needs — `GET`/`POST`, a
//! `Content-Length` body, `Connection: close` on every response — and
//! treats the network as hostile:
//!
//! * **Header and body caps** ([`MAX_HEAD_BYTES`], [`MAX_BODY_BYTES`]):
//!   oversized requests are rejected with a typed error before they can
//!   exhaust memory.
//! * **Read timeouts**: a slow-loris client that trickles bytes (or stalls
//!   mid-body) hits the socket timeout and is dropped with a typed
//!   [`HttpError::Timeout`]; it can never wedge a worker.
//! * **Mid-body disconnects** surface as [`HttpError::Disconnected`], not
//!   a panic or a blocked thread.
//!
//! Every parse failure is a typed [`HttpError`]; the server maps them to
//! 400s (or silence, when the client is already gone).

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Cap on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Cap on the declared request body, bytes.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Failpoint site consulted on every socket read; honours `eintr`
/// (synthesize an interrupted read, exercising the retry path) and any
/// other kind as a hard socket error.
pub const SITE_READ: &str = "http.read";

/// Interrupted reads retried per request before giving up. A real signal
/// storm this deep would mean the host is in trouble anyway; the budget
/// just guarantees termination.
const EINTR_BUDGET: u32 = 64;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, upper-case as received (`GET`, `POST`, …).
    pub method: String,
    /// Request target path (query string included, if any).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Typed failure of reading one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The socket timed out before a full request arrived (slow client).
    Timeout,
    /// The peer closed the connection mid-request.
    Disconnected,
    /// The head exceeded [`MAX_HEAD_BYTES`] or the body declared more
    /// than [`MAX_BODY_BYTES`].
    TooLarge {
        /// What overflowed, for the diagnostic.
        what: &'static str,
    },
    /// The bytes were not a parseable HTTP/1.1 request.
    Malformed {
        /// One-line description.
        detail: String,
    },
    /// An unexpected socket error.
    Io {
        /// Stringified `io::Error` (kept typed-enum friendly: `io::Error`
        /// is not `Clone`/`PartialEq`).
        detail: String,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Timeout => write!(f, "client read timed out"),
            Self::Disconnected => write!(f, "client disconnected mid-request"),
            Self::TooLarge { what } => write!(f, "request {what} exceeds the size cap"),
            Self::Malformed { detail } => write!(f, "malformed request: {detail}"),
            Self::Io { detail } => write!(f, "socket error: {detail}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn io_error(e: std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe => HttpError::Disconnected,
        _ => HttpError::Io {
            detail: e.to_string(),
        },
    }
}

fn malformed(detail: impl Into<String>) -> HttpError {
    HttpError::Malformed {
        detail: detail.into(),
    }
}

/// One socket read with EINTR handling: interrupted reads (real, or
/// injected at [`SITE_READ`]) are retried against `eintr_left` instead of
/// surfacing as an I/O error and dropping a healthy client.
fn read_retrying(
    stream: &mut TcpStream,
    chunk: &mut [u8],
    eintr_left: &mut u32,
) -> Result<usize, HttpError> {
    loop {
        let interrupted = match ctsdac_failpoint::check(SITE_READ) {
            Some(ctsdac_failpoint::Failure::Eintr) => true,
            Some(f) => {
                return Err(HttpError::Io {
                    detail: format!("injected {}", f.name()),
                })
            }
            None => false,
        };
        let result = if interrupted {
            Err(std::io::Error::from(std::io::ErrorKind::Interrupted))
        } else {
            stream.read(chunk)
        };
        match result {
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                if *eintr_left == 0 {
                    return Err(HttpError::Io {
                        detail: "read interrupted past retry budget".to_string(),
                    });
                }
                *eintr_left -= 1;
            }
            other => return other.map_err(io_error),
        }
    }
}

/// Reads one request from `stream`, enforcing the size caps and
/// `read_timeout` (applied to every socket read, so total stall time is
/// bounded per read, not per request).
pub fn read_request(
    stream: &mut TcpStream,
    read_timeout: Duration,
) -> Result<HttpRequest, HttpError> {
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(io_error)?;

    // --- Head: read until CRLFCRLF, capped. ---
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let mut eintr_left = EINTR_BUDGET;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge { what: "head" });
        }
        let n = read_retrying(stream, &mut chunk, &mut eintr_left)?;
        if n == 0 {
            return Err(HttpError::Disconnected);
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| malformed("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or_else(|| malformed("empty request line"))?;
    let path = parts.next().ok_or_else(|| malformed("missing request target"))?;
    let version = parts.next().ok_or_else(|| malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(malformed(format!("unsupported version `{version}`")));
    }

    let mut content_length: usize = 0;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| malformed("unparseable Content-Length"))?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge { what: "body" });
    }

    // --- Body: bytes already buffered past the head, then the socket. ---
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = read_retrying(stream, &mut chunk, &mut eintr_left)?;
        if n == 0 {
            return Err(HttpError::Disconnected);
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(HttpRequest {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrases for the statuses the daemon emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Writes one response and flushes. Every response carries
/// `Connection: close` — the daemon is strictly one request per
/// connection, which keeps the overload story simple (shedding closes the
/// socket, nothing lingers).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    retry_after_s: Option<u64>,
    body: &str,
) -> Result<(), HttpError> {
    // A stuck reader must not wedge the writer either.
    stream
        .set_write_timeout(Some(Duration::from_secs(10)))
        .map_err(io_error)?;
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    if let Some(secs) = retry_after_s {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes()).map_err(io_error)?;
    stream.write_all(body.as_bytes()).map_err(io_error)?;
    stream.flush().map_err(io_error)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Loopback socket pair for codec tests.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    const TIMEOUT: Duration = Duration::from_millis(300);

    #[test]
    fn parses_post_with_body() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /v1/sizing HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            )
            .expect("send");
        let req = read_request(&mut server, TIMEOUT).expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sizing");
        assert_eq!(req.body, b"{\"a\":1}");
    }

    #[test]
    fn parses_get_without_body_and_split_packets() {
        let (mut client, mut server) = pair();
        client.write_all(b"GET /v1/healthz HT").expect("send 1");
        client.flush().expect("flush");
        client.write_all(b"TP/1.1\r\nHost: x\r\n\r\n").expect("send 2");
        let req = read_request(&mut server, TIMEOUT).expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn slow_client_times_out() {
        let (mut client, mut server) = pair();
        client.write_all(b"POST /v1/sizing HTTP/1.1\r\n").expect("send");
        // …and then nothing: the head never completes.
        let err = read_request(&mut server, Duration::from_millis(50)).expect_err("stall");
        assert_eq!(err, HttpError::Timeout);
    }

    #[test]
    fn mid_body_disconnect_is_typed() {
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/sizing HTTP/1.1\r\nContent-Length: 100\r\n\r\n{\"tru")
            .expect("send");
        drop(client); // hang up with 95 bytes owed
        let err = read_request(&mut server, TIMEOUT).expect_err("disconnect");
        assert_eq!(err, HttpError::Disconnected);
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let (mut client, mut server) = pair();
        let huge = format!(
            "POST / HTTP/1.1\r\nX-Pad: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        client.write_all(huge.as_bytes()).expect("send");
        let err = read_request(&mut server, TIMEOUT).expect_err("oversized head");
        assert_eq!(err, HttpError::TooLarge { what: "head" });

        let (mut client2, mut server2) = pair();
        client2
            .write_all(
                format!(
                    "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .expect("send");
        let err2 = read_request(&mut server2, TIMEOUT).expect_err("oversized body");
        assert_eq!(err2, HttpError::TooLarge { what: "body" });
    }

    #[test]
    fn malformed_requests_are_typed() {
        for bad in [
            "NONSENSE\r\n\r\n",
            "GET /\r\n\r\n",
            "GET / SPDY/3\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: pony\r\n\r\n",
        ] {
            let (mut client, mut server) = pair();
            client.write_all(bad.as_bytes()).expect("send");
            let err = read_request(&mut server, TIMEOUT).expect_err(bad);
            assert!(
                matches!(err, HttpError::Malformed { .. }),
                "{bad:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn response_is_well_formed_and_connection_close() {
        let (mut client, mut server) = pair();
        write_response(&mut server, 429, Some(3), "{\"status\":\"shed\"}").expect("write");
        drop(server);
        let mut text = String::new();
        client.read_to_string(&mut text).expect("read");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 3\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.contains("Content-Length: 17\r\n"), "{text}");
        assert!(text.ends_with("{\"status\":\"shed\"}"), "{text}");
    }

    #[test]
    fn injected_eintr_is_retried_transparently() {
        // Global registry: site name is unique to this test's purpose and
        // the arming is consumed (single-hit policies) before assertions.
        ctsdac_failpoint::global()
            .arm("eintr@http.read:1,eintr@http.read:2,eintr@http.read:3", 0)
            .expect("arm");
        let (mut client, mut server) = pair();
        client
            .write_all(b"POST /v1/sizing HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}")
            .expect("send");
        let req = read_request(&mut server, TIMEOUT).expect("parse despite EINTRs");
        assert_eq!(req.body, b"{\"a\":1}");
        assert!(ctsdac_failpoint::global().fired(SITE_READ) >= 3);
    }

    #[test]
    fn errors_display_one_line() {
        for e in [
            HttpError::Timeout,
            HttpError::Disconnected,
            HttpError::TooLarge { what: "head" },
            HttpError::Malformed { detail: "x".into() },
            HttpError::Io { detail: "y".into() },
        ] {
            let msg = e.to_string();
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
    }
}
