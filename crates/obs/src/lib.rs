//! Zero-dependency observability for the ctsdac sizing flow.
//!
//! Three cooperating pieces, all behind a single atomic enable word so
//! that compiled-in-but-disabled instrumentation costs one relaxed load
//! and a predicted branch per hook:
//!
//! * **Counters / histograms** — a fixed-slot registry of relaxed
//!   [`AtomicU64`]s ([`Counter`], [`HistogramId`]). Every slot is
//!   classified *deterministic* (value depends only on the work
//!   performed: solver iterations, sweep points, MC trials, …) or
//!   *nondeterministic* (value depends on scheduling, retries or the
//!   clock: pool chunk accounting, checkpoint flushes, span timings).
//! * **Spans** — hierarchical RAII trace scopes ([`span`]) with
//!   monotonic ([`Instant`]) timing, a thread-local depth, an optional
//!   live sink to stderr (`--trace=json|human`) and aggregated
//!   per-name statistics.
//! * **Snapshot** — [`snapshot`] renders the registry as a small JSON
//!   document with a hard determinism contract: the `"deterministic"`
//!   object contains **no wall-clock values** and is byte-identical
//!   for byte-identical work, regardless of `--jobs`, machine or run
//!   (absent absorbed faults, which re-run chunks and therefore
//!   re-count their work). CI diffs that section directly.
//!
//! The crate is dependency-free and panic-free in library code; the
//! span-statistics mutex recovers from poisoning instead of
//! propagating it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Global enable state
// ---------------------------------------------------------------------------

/// Bit 0 of [`STATE`]: the metrics registry records counts.
const METRICS_BIT: u8 = 0b001;
/// Bits 1–2 of [`STATE`]: live trace sink (0 = off, 1 = json, 2 = human).
const TRACE_SHIFT: u8 = 1;
const TRACE_MASK: u8 = 0b110;

/// Packed enable word; `0` means every hook is a single relaxed load.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Live trace output format for span enter/exit events on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// One JSON object per line: `{"ev":"enter","span":…,"depth":…}`.
    Json,
    /// Indented human-readable lines: `-> name` / `<- name 1.234ms`.
    Human,
}

/// Enable or disable the metrics registry (counters, histograms and
/// aggregated span statistics).
pub fn set_metrics(on: bool) {
    let mut s = STATE.load(Ordering::Relaxed);
    loop {
        let next = if on { s | METRICS_BIT } else { s & !METRICS_BIT };
        match STATE.compare_exchange_weak(s, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(cur) => s = cur,
        }
    }
}

/// Whether the metrics registry is currently recording.
pub fn metrics_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & METRICS_BIT != 0
}

/// Select the live trace sink (`None` disables tracing).
pub fn set_trace(mode: Option<TraceMode>) {
    let bits = match mode {
        None => 0,
        Some(TraceMode::Json) => 1,
        Some(TraceMode::Human) => 2,
    } << TRACE_SHIFT;
    let mut s = STATE.load(Ordering::Relaxed);
    loop {
        let next = (s & !TRACE_MASK) | bits;
        match STATE.compare_exchange_weak(s, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(cur) => s = cur,
        }
    }
}

/// The currently selected live trace sink, if any.
pub fn trace_mode() -> Option<TraceMode> {
    trace_of(STATE.load(Ordering::Relaxed))
}

fn trace_of(state: u8) -> Option<TraceMode> {
    match (state & TRACE_MASK) >> TRACE_SHIFT {
        1 => Some(TraceMode::Json),
        2 => Some(TraceMode::Human),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Fixed registry of event counters.
///
/// The enum order is the snapshot order; deterministic counters (see
/// [`Counter::deterministic`]) appear in the snapshot's
/// `"deterministic"` object, the rest under `"nondeterministic"`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// DC operating-point solves attempted (warm or cold entry).
    DcSolves,
    /// Total Newton/bisection iterations across all DC solves.
    DcIterations,
    /// DC solves converged by the warm-started Newton fast path.
    DcWarmHits,
    /// DC solves that escalated past the first full-Newton ladder rung
    /// (damped Newton or bisection finished the job).
    DcEscalations,
    /// DC solves that exhausted the retry ladder (typed error returned).
    DcFailures,
    /// Two-pole settling-time solves (bracketed Newton).
    SettlingSolves,
    /// Design-space grid points evaluated (feasible or not).
    SweepPoints,
    /// Monte-Carlo trials executed (saturation yield, either driver).
    McTrials,
    /// Yield-engine trials classified (screened or exact).
    YieldTrials,
    /// Yield-engine trials decided by the certified screen alone.
    YieldScreened,
    /// Yield-engine trials that fell back to the exact fused pass.
    YieldFallbacks,
    /// Yield-engine code-equivalents scanned (work proxy).
    YieldCodesScanned,
    /// Worker-pool chunks completed (includes re-runs after faults).
    PoolChunks,
    /// Faults absorbed by the supervisor (panic / deadline / cancel).
    PoolFaults,
    /// Chunks re-enqueued for retry after an absorbed fault.
    PoolRetries,
    /// Checkpoint journal records flushed to disk.
    CheckpointFlushes,
    /// Chunks restored from a checkpoint journal on resume.
    CheckpointRestored,
    /// Corrupt / torn journal lines dropped on resume.
    CheckpointDropped,
    /// Service requests admitted past the admission controller.
    ServiceAdmitted,
    /// Service requests shed (429) by the admission controller.
    ServiceShed,
    /// Service requests answered from the content-addressed result cache.
    ServiceCacheHits,
    /// Service requests that missed the cache and ran the flow.
    ServiceCacheMisses,
    /// Circuit-breaker transitions into the open state.
    ServiceBreakerTrips,
    /// Service requests that exhausted their deadline (504).
    ServiceDeadlineExceeded,
    /// High-water mark of bytes resident in the service result cache.
    ServiceCacheBytesHighWater,
    /// Result-store records appended (puts + evict tombstones).
    StoreRecordsAppended,
    /// Result-store records rebuilt into the cache by the recovery scan.
    StoreRecordsRecovered,
    /// Corrupt / torn result-store records discarded by the recovery scan.
    StoreRecordsDiscarded,
    /// Result-store batched fsyncs issued by the flusher.
    StoreFsyncs,
    /// Result-store compaction passes completed.
    StoreCompactions,
    /// Result-store segment files currently on disk.
    StoreSegments,
}

impl Counter {
    /// Every counter, in snapshot order.
    pub const ALL: [Counter; 31] = [
        Counter::DcSolves,
        Counter::DcIterations,
        Counter::DcWarmHits,
        Counter::DcEscalations,
        Counter::DcFailures,
        Counter::SettlingSolves,
        Counter::SweepPoints,
        Counter::McTrials,
        Counter::YieldTrials,
        Counter::YieldScreened,
        Counter::YieldFallbacks,
        Counter::YieldCodesScanned,
        Counter::PoolChunks,
        Counter::PoolFaults,
        Counter::PoolRetries,
        Counter::CheckpointFlushes,
        Counter::CheckpointRestored,
        Counter::CheckpointDropped,
        Counter::ServiceAdmitted,
        Counter::ServiceShed,
        Counter::ServiceCacheHits,
        Counter::ServiceCacheMisses,
        Counter::ServiceBreakerTrips,
        Counter::ServiceDeadlineExceeded,
        Counter::ServiceCacheBytesHighWater,
        Counter::StoreRecordsAppended,
        Counter::StoreRecordsRecovered,
        Counter::StoreRecordsDiscarded,
        Counter::StoreFsyncs,
        Counter::StoreCompactions,
        Counter::StoreSegments,
    ];

    /// Dotted registry name, used verbatim as the snapshot JSON key.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DcSolves => "circuit.dc.solves",
            Counter::DcIterations => "circuit.dc.iterations",
            Counter::DcWarmHits => "circuit.dc.warm_hits",
            Counter::DcEscalations => "circuit.dc.escalations",
            Counter::DcFailures => "circuit.dc.failures",
            Counter::SettlingSolves => "circuit.settling.solves",
            Counter::SweepPoints => "core.sweep.points",
            Counter::McTrials => "mc.trials",
            Counter::YieldTrials => "dac.yield.trials",
            Counter::YieldScreened => "dac.yield.screened",
            Counter::YieldFallbacks => "dac.yield.fallbacks",
            Counter::YieldCodesScanned => "dac.yield.codes_scanned",
            Counter::PoolChunks => "pool.chunks",
            Counter::PoolFaults => "pool.faults_absorbed",
            Counter::PoolRetries => "pool.retries",
            Counter::CheckpointFlushes => "checkpoint.flushes",
            Counter::CheckpointRestored => "checkpoint.restored_chunks",
            Counter::CheckpointDropped => "checkpoint.dropped_lines",
            Counter::ServiceAdmitted => "service.admitted",
            Counter::ServiceShed => "service.shed",
            Counter::ServiceCacheHits => "service.cache.hits",
            Counter::ServiceCacheMisses => "service.cache.misses",
            Counter::ServiceBreakerTrips => "service.breaker.trips",
            Counter::ServiceDeadlineExceeded => "service.deadline_exceeded",
            Counter::ServiceCacheBytesHighWater => "service.cache.bytes_high_water",
            Counter::StoreRecordsAppended => "store.records_appended",
            Counter::StoreRecordsRecovered => "store.records_recovered",
            Counter::StoreRecordsDiscarded => "store.records_discarded",
            Counter::StoreFsyncs => "store.fsyncs",
            Counter::StoreCompactions => "store.compactions",
            Counter::StoreSegments => "store.segments",
        }
    }

    /// Whether the counter's value depends only on the work performed
    /// (seed + inputs), never on scheduling, retries or the clock.
    /// Service counters are load-dependent by nature (admission and
    /// caching react to concurrency), so they are all nondeterministic.
    pub fn deterministic(self) -> bool {
        !matches!(
            self,
            Counter::PoolChunks
                | Counter::PoolFaults
                | Counter::PoolRetries
                | Counter::CheckpointFlushes
                | Counter::CheckpointRestored
                | Counter::CheckpointDropped
                | Counter::ServiceAdmitted
                | Counter::ServiceShed
                | Counter::ServiceCacheHits
                | Counter::ServiceCacheMisses
                | Counter::ServiceBreakerTrips
                | Counter::ServiceDeadlineExceeded
                | Counter::ServiceCacheBytesHighWater
                | Counter::StoreRecordsAppended
                | Counter::StoreRecordsRecovered
                | Counter::StoreRecordsDiscarded
                | Counter::StoreFsyncs
                | Counter::StoreCompactions
                | Counter::StoreSegments
        )
    }
}

const COUNTER_ZERO: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; Counter::ALL.len()] = [COUNTER_ZERO; Counter::ALL.len()];

/// Add `n` to a counter (no-op while metrics are disabled).
#[inline]
pub fn count(c: Counter, n: u64) {
    if STATE.load(Ordering::Relaxed) & METRICS_BIT != 0 {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Add 1 to a counter (no-op while metrics are disabled).
#[inline]
pub fn incr(c: Counter) {
    count(c, 1);
}

/// Current value of a counter.
pub fn counter_value(c: Counter) -> u64 {
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

/// Raise a counter to `v` if `v` exceeds its current value (no-op while
/// metrics are disabled). For gauges reported as high-water marks.
#[inline]
pub fn record_max(c: Counter, v: u64) {
    if STATE.load(Ordering::Relaxed) & METRICS_BIT != 0 {
        COUNTERS[c as usize].fetch_max(v, Ordering::Relaxed);
    }
}

/// Set a counter to `v` unconditionally (no-op while metrics are
/// disabled). For gauges that track a current level, e.g. segment count.
#[inline]
pub fn record_gauge(c: Counter, v: u64) {
    if STATE.load(Ordering::Relaxed) & METRICS_BIT != 0 {
        COUNTERS[c as usize].store(v, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// Fixed registry of log2-bucketed histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HistogramId {
    /// Newton/bisection iterations per converged DC solve.
    DcIterationsPerSolve,
}

impl HistogramId {
    /// Every histogram, in snapshot order.
    pub const ALL: [HistogramId; 1] = [HistogramId::DcIterationsPerSolve];

    /// Dotted registry name; the snapshot key is `"hist.<name>"`.
    pub fn name(self) -> &'static str {
        match self {
            HistogramId::DcIterationsPerSolve => "circuit.dc.iterations_per_solve",
        }
    }

    /// Same contract as [`Counter::deterministic`].
    pub fn deterministic(self) -> bool {
        true
    }
}

/// Buckets per histogram: bucket `b` holds values `v` with
/// `ceil(log2(v + 1)) == b`, i.e. 0 → bucket 0, 1 → 1, 2–3 → 2,
/// 4–7 → 3, …; everything ≥ 2^62 lands in the last bucket.
const HIST_BUCKETS: usize = 64;
static HISTOGRAMS: [AtomicU64; HistogramId::ALL.len() * HIST_BUCKETS] =
    [COUNTER_ZERO; HistogramId::ALL.len() * HIST_BUCKETS];

/// The log2 bucket index for a recorded value.
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()).min(HIST_BUCKETS as u32 - 1) as usize
}

/// The smallest value that lands in `bucket` (its inclusive lower edge).
pub fn bucket_floor(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        b => 1u64 << (b - 1).min(62),
    }
}

/// Record one observation (no-op while metrics are disabled).
#[inline]
pub fn record(h: HistogramId, value: u64) {
    if STATE.load(Ordering::Relaxed) & METRICS_BIT != 0 {
        HISTOGRAMS[h as usize * HIST_BUCKETS + bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }
}

/// Non-empty buckets of a histogram as `(bucket_index, count)` pairs.
pub fn histogram_buckets(h: HistogramId) -> Vec<(usize, u64)> {
    let base = h as usize * HIST_BUCKETS;
    (0..HIST_BUCKETS)
        .filter_map(|b| {
            let n = HISTOGRAMS[base + b].load(Ordering::Relaxed);
            (n > 0).then_some((b, n))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed enter/exit pairs.
    pub count: u64,
    /// Total nanoseconds across all completions.
    pub total_ns: u64,
    /// Longest single completion in nanoseconds.
    pub max_ns: u64,
}

static SPAN_STATS: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

fn span_stats_lock() -> std::sync::MutexGuard<'static, BTreeMap<&'static str, SpanStat>> {
    // A worker panic while holding the lock poisons it; the map is
    // plain-old-data, so recover the guard instead of propagating.
    SPAN_STATS.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

thread_local! {
    static DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

/// RAII guard for a trace span; created by [`span`], records on drop.
#[must_use = "a span measures the scope it is bound to; binding it to _ drops it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    depth: u32,
}

/// Open a hierarchical trace span.
///
/// While observability is fully disabled this returns an inert guard
/// (one relaxed load, no clock read). Otherwise the guard notes the
/// monotonic start time, bumps the thread-local depth, and on drop
/// feeds the aggregated statistics and (if enabled) the live stderr
/// trace sink.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        return SpanGuard { name, start: None, depth: 0 };
    }
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    match trace_of(state) {
        Some(TraceMode::Json) => {
            eprintln!("{{\"ev\":\"enter\",\"span\":\"{name}\",\"depth\":{depth}}}");
        }
        Some(TraceMode::Human) => {
            eprintln!("{:indent$}-> {name}", "", indent = 2 * depth as usize);
        }
        None => {}
    }
    SpanGuard { name, start: Some(Instant::now()), depth }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let state = STATE.load(Ordering::Relaxed);
        match trace_of(state) {
            Some(TraceMode::Json) => {
                eprintln!(
                    "{{\"ev\":\"exit\",\"span\":\"{}\",\"depth\":{},\"ns\":{ns}}}",
                    self.name, self.depth
                );
            }
            Some(TraceMode::Human) => {
                eprintln!(
                    "{:indent$}<- {} {:.3}ms",
                    "",
                    self.name,
                    ns as f64 / 1e6,
                    indent = 2 * self.depth as usize
                );
            }
            None => {}
        }
        if state & METRICS_BIT != 0 {
            let mut stats = span_stats_lock();
            let s = stats.entry(self.name).or_default();
            s.count += 1;
            s.total_ns = s.total_ns.saturating_add(ns);
            s.max_ns = s.max_ns.max(ns);
        }
    }
}

/// Aggregated statistics for every completed span, sorted by name.
pub fn span_stats() -> Vec<(&'static str, SpanStat)> {
    span_stats_lock().iter().map(|(&k, &v)| (k, v)).collect()
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Render the registry as a JSON document (schema `ctsdac-metrics-v1`).
///
/// Layout contract, relied on by `scripts/ci.sh`:
///
/// * one key per line, two-space indentation;
/// * the `"deterministic"` object comes first, lists every
///   deterministic counter (zeros included) in [`Counter::ALL`] order
///   followed by the deterministic histograms, and closes with the
///   only `  },` line in the document — so
///   `sed -n '/"deterministic"/,/^  },$/p'` extracts exactly the
///   deterministic section;
/// * no wall-clock, thread or scheduling values appear in the
///   deterministic section, so it is byte-identical across `--jobs`
///   settings for the same seed (absent absorbed faults, which re-run
///   and therefore re-count chunks of work).
pub fn snapshot() -> String {
    let mut out = String::with_capacity(2048);
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ctsdac-metrics-v1\",\n");
    out.push_str("  \"deterministic\": {\n");
    let det: Vec<String> = Counter::ALL
        .iter()
        .filter(|c| c.deterministic())
        .map(|c| format!("    \"{}\": {}", c.name(), counter_value(*c)))
        .chain(
            HistogramId::ALL
                .iter()
                .filter(|h| h.deterministic())
                .map(|h| format!("    \"hist.{}\": {}", h.name(), hist_json(*h))),
        )
        .collect();
    out.push_str(&det.join(",\n"));
    out.push_str("\n  },\n");
    out.push_str("  \"nondeterministic\": {\n");
    let mut nondet: Vec<String> = Counter::ALL
        .iter()
        .filter(|c| !c.deterministic())
        .map(|c| format!("    \"{}\": {}", c.name(), counter_value(*c)))
        .chain(
            HistogramId::ALL
                .iter()
                .filter(|h| !h.deterministic())
                .map(|h| format!("    \"hist.{}\": {}", h.name(), hist_json(*h))),
        )
        .collect();
    let spans = span_stats();
    let span_rows: Vec<String> = spans
        .iter()
        .map(|(name, s)| {
            format!(
                "      {{\"name\": \"{name}\", \"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}",
                s.count, s.total_ns, s.max_ns
            )
        })
        .collect();
    nondet.push(format!("    \"spans\": [\n{}\n    ]", span_rows.join(",\n")));
    out.push_str(&nondet.join(",\n"));
    out.push_str("\n  }\n}\n");
    out
}

fn hist_json(h: HistogramId) -> String {
    let pairs: Vec<String> = histogram_buckets(h)
        .into_iter()
        .map(|(b, n)| format!("[{b}, {n}]"))
        .collect();
    format!("[{}]", pairs.join(", "))
}

/// Zero every counter and histogram and clear the span statistics.
///
/// Intended for benches (isolating instrumented timing passes) and
/// tests; enable flags are left untouched.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    for b in HISTOGRAMS.iter() {
        b.store(0, Ordering::Relaxed);
    }
    span_stats_lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Global state is shared across tests; serialize them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn isolated() -> std::sync::MutexGuard<'static, ()> {
        let g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_trace(None);
        set_metrics(false);
        reset();
        g
    }

    #[test]
    fn disabled_hooks_record_nothing() {
        let _g = isolated();
        count(Counter::DcSolves, 7);
        record(HistogramId::DcIterationsPerSolve, 5);
        {
            let _s = span("test.disabled");
        }
        assert_eq!(counter_value(Counter::DcSolves), 0);
        assert!(histogram_buckets(HistogramId::DcIterationsPerSolve).is_empty());
        assert!(span_stats().is_empty());
    }

    #[test]
    fn counters_accumulate_when_enabled() {
        let _g = isolated();
        set_metrics(true);
        count(Counter::DcSolves, 3);
        incr(Counter::DcSolves);
        count(Counter::McTrials, 2000);
        assert_eq!(counter_value(Counter::DcSolves), 4);
        assert_eq!(counter_value(Counter::McTrials), 2000);
        set_metrics(false);
    }

    #[test]
    fn log2_buckets_partition_the_range() {
        let _g = isolated();
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Floors invert the bucketing at the lower edge.
        for b in 0..HIST_BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_floor(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn histogram_records_per_bucket() {
        let _g = isolated();
        set_metrics(true);
        record(HistogramId::DcIterationsPerSolve, 1);
        record(HistogramId::DcIterationsPerSolve, 3);
        record(HistogramId::DcIterationsPerSolve, 3);
        record(HistogramId::DcIterationsPerSolve, 80);
        let buckets = histogram_buckets(HistogramId::DcIterationsPerSolve);
        assert_eq!(buckets, vec![(1, 1), (2, 2), (7, 1)]);
        set_metrics(false);
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _g = isolated();
        set_metrics(true);
        {
            let _outer = span("test.outer");
            for _ in 0..3 {
                let _inner = span("test.inner");
            }
        }
        let stats = span_stats();
        let names: Vec<&str> = stats.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["test.inner", "test.outer"]);
        let inner = stats[0].1;
        let outer = stats[1].1;
        assert_eq!(inner.count, 3);
        assert_eq!(outer.count, 1);
        assert!(inner.max_ns <= inner.total_ns);
        assert!(outer.total_ns >= inner.total_ns || outer.total_ns == 0);
        set_metrics(false);
    }

    #[test]
    fn snapshot_lists_every_counter_and_is_deterministic() {
        let _g = isolated();
        set_metrics(true);
        count(Counter::DcSolves, 11);
        count(Counter::PoolChunks, 4);
        record(HistogramId::DcIterationsPerSolve, 6);
        let a = snapshot();
        let b = snapshot();
        assert_eq!(a, b, "snapshot must be a pure function of the registry");
        for c in Counter::ALL {
            assert!(a.contains(&format!("\"{}\":", c.name())), "missing {}", c.name());
        }
        assert!(a.contains("\"circuit.dc.solves\": 11"));
        assert!(a.contains("\"pool.chunks\": 4"));
        assert!(a.contains("\"hist.circuit.dc.iterations_per_solve\": [[3, 1]]"));
        set_metrics(false);
    }

    #[test]
    fn deterministic_section_excludes_scheduling_counters() {
        let _g = isolated();
        set_metrics(true);
        count(Counter::PoolChunks, 9);
        count(Counter::CheckpointFlushes, 2);
        {
            let _s = span("test.timing");
        }
        let snap = snapshot();
        let det_end = snap.find("\n  },\n").expect("deterministic close");
        let det = &snap[..det_end];
        let nondet = &snap[det_end..];
        for c in Counter::ALL {
            let key = format!("\"{}\":", c.name());
            if c.deterministic() {
                assert!(det.contains(&key), "{} should be deterministic", c.name());
            } else {
                assert!(!det.contains(&key), "{} leaked into det section", c.name());
                assert!(nondet.contains(&key), "{} missing from nondet", c.name());
            }
        }
        assert!(!det.contains("_ns"), "no wall-clock values in the deterministic section");
        assert!(nondet.contains("\"spans\": ["));
        set_metrics(false);
    }

    #[test]
    fn snapshot_is_well_formed_json() {
        let _g = isolated();
        set_metrics(true);
        count(Counter::SweepPoints, 5);
        {
            let _s = span("test.json");
        }
        let snap = snapshot();
        assert_json_balanced(&snap);
        set_metrics(false);
    }

    /// Minimal structural JSON check: quotes pair up, braces/brackets
    /// balance and close in order, and the document is one value.
    fn assert_json_balanced(s: &str) {
        let mut stack = Vec::new();
        let mut in_str = false;
        let mut escape = false;
        for ch in s.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if ch == '\\' {
                    escape = true;
                } else if ch == '"' {
                    in_str = false;
                }
                continue;
            }
            match ch {
                '"' => in_str = true,
                '{' => stack.push('}'),
                '[' => stack.push(']'),
                '}' | ']' => assert_eq!(stack.pop(), Some(ch), "mismatched close {ch}"),
                _ => {}
            }
        }
        assert!(!in_str, "unterminated string");
        assert!(stack.is_empty(), "unclosed scopes: {stack:?}");
    }

    #[test]
    fn reset_clears_registry_not_flags() {
        let _g = isolated();
        set_metrics(true);
        count(Counter::DcSolves, 5);
        record(HistogramId::DcIterationsPerSolve, 2);
        {
            let _s = span("test.reset");
        }
        reset();
        assert_eq!(counter_value(Counter::DcSolves), 0);
        assert!(histogram_buckets(HistogramId::DcIterationsPerSolve).is_empty());
        assert!(span_stats().is_empty());
        assert!(metrics_enabled(), "reset must not touch enable flags");
        set_metrics(false);
    }

    #[test]
    fn trace_mode_roundtrip() {
        let _g = isolated();
        assert_eq!(trace_mode(), None);
        set_trace(Some(TraceMode::Json));
        assert_eq!(trace_mode(), Some(TraceMode::Json));
        assert!(!metrics_enabled(), "trace flag must not imply metrics");
        set_trace(Some(TraceMode::Human));
        assert_eq!(trace_mode(), Some(TraceMode::Human));
        set_trace(None);
        assert_eq!(trace_mode(), None);
    }
}
