//! Supervised Monte-Carlo drivers.
//!
//! These wrap the Monte-Carlo loops of `ctsdac-stats` in the supervised
//! pool: trials are split into fixed-size chunks, each chunk draws from
//! its own counter-based RNG stream (`stream_rng(seed, chunk)`), and
//! chunk counts/summaries are merged in chunk order. Because every chunk
//! is a pure function of `(seed, chunk)`, the pooled result is
//! **bit-identical** for any `--jobs` value, with faults injected or not,
//! and across kill + resume from a checkpoint journal.
//!
//! Note the chunked estimators intentionally do *not* reproduce the
//! single-stream sequential `YieldEstimate::run` / `monte_carlo` numbers:
//! the trial-to-random-draw mapping differs. Callers that must preserve
//! historical sequential output (the `dacsizer` default path) keep using
//! the `ctsdac-stats` loops directly.

use crate::exec::{run_journaled, ExecPolicy, Supervised};
use crate::journal::{decode_f64, encode_f64, JournalMeta};
use crate::pool::RuntimeError;
use ctsdac_obs as obs;
use ctsdac_stats::rng::stream_rng;
use ctsdac_stats::{Summary, Xoshiro256PlusPlus, YieldEstimate};

/// How a Monte-Carlo run is split into supervised chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McPlan {
    /// Root seed; chunk `i` draws from `stream_rng(seed, i)`.
    pub seed: u64,
    /// Total trials across all chunks.
    pub trials: u64,
    /// Trials per chunk (the last chunk may be shorter).
    pub chunk_trials: u64,
}

impl McPlan {
    /// Builds a plan; `chunk_trials` is clamped to at least 1.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Stats`] with `NoTrials` when `trials == 0`.
    pub fn new(seed: u64, trials: u64, chunk_trials: u64) -> Result<Self, RuntimeError> {
        if trials == 0 {
            return Err(RuntimeError::Stats(ctsdac_stats::StatsError::NoTrials));
        }
        Ok(Self {
            seed,
            trials,
            chunk_trials: chunk_trials.max(1),
        })
    }

    /// Number of chunks the run splits into.
    pub fn chunks(&self) -> u64 {
        self.trials.div_ceil(self.chunk_trials)
    }

    /// Global index of the first trial of `chunk`.
    pub fn chunk_start(&self, chunk: u64) -> u64 {
        chunk * self.chunk_trials
    }

    /// Number of trials in `chunk`.
    pub fn chunk_len(&self, chunk: u64) -> u64 {
        let start = self.chunk_start(chunk);
        self.chunk_trials.min(self.trials.saturating_sub(start))
    }

    /// The journal identity of a run under this plan. `kind` separates
    /// driver families; `params` must digest everything else that
    /// determines trial outcomes.
    pub fn journal_meta(&self, kind: &str, params: &str) -> JournalMeta {
        JournalMeta {
            kind: kind.to_string(),
            seed: self.seed,
            chunks: self.chunks(),
            params: format!("trials={},chunk={},{}", self.trials, self.chunk_trials, params),
        }
    }
}

/// Runs a chunked pass/fail Monte-Carlo experiment under supervision and
/// pools the counts into one [`YieldEstimate`].
///
/// `pass` receives a chunk-stream RNG and the *global* trial index; it
/// must depend only on those for determinism. `params` digests the
/// experiment's configuration for the journal identity check.
///
/// # Errors
///
/// Any [`RuntimeError`] from the pool or journal; [`RuntimeError::Stats`]
/// if pooled counts are invalid (cannot happen with a well-behaved
/// `pass`, but corruption is reported, not asserted).
pub fn yield_supervised<F>(
    policy: &ExecPolicy,
    plan: &McPlan,
    params: &str,
    pass: F,
) -> Result<Supervised<YieldEstimate>, RuntimeError>
where
    F: Fn(&mut Xoshiro256PlusPlus, u64) -> bool + Sync,
{
    let meta = plan.journal_meta("yield", params);
    let out = run_journaled(
        policy,
        &meta,
        decode_counts,
        |&(passes, trials)| format!("{passes}:{trials}"),
        |ctx| {
            let len = plan.chunk_len(ctx.chunk);
            let start = plan.chunk_start(ctx.chunk);
            let mut rng = stream_rng(plan.seed, ctx.chunk);
            let mut passes = 0u64;
            for i in 0..len {
                if pass(&mut rng, start + i) {
                    passes += 1;
                }
            }
            obs::count(obs::Counter::McTrials, len);
            ctx.add_units(len);
            if ctx.injected_nan() {
                // Scripted corruption: an impossible count, which the
                // validation below must catch and turn into a retry.
                passes = len + 1;
            }
            if passes > len {
                return Err(format!(
                    "chunk pass count {passes} exceeds its {len} trials"
                ));
            }
            Ok((passes, len))
        },
    )?;

    let mut passes = 0u64;
    let mut trials = 0u64;
    for &(p, t) in &out.value {
        passes = passes.saturating_add(p);
        trials = trials.saturating_add(t);
    }
    let estimate = YieldEstimate::from_counts(passes, trials)?;
    Ok(out.map(|_| estimate))
}

fn decode_counts(s: &str) -> Option<(u64, u64)> {
    let (p, t) = s.split_once(':')?;
    let passes = p.parse().ok()?;
    let trials: u64 = t.parse().ok()?;
    (passes <= trials).then_some((passes, trials))
}

/// Runs a chunked multi-metric pass/fail Monte-Carlo experiment under
/// supervision: every trial evaluates all `metrics` pass criteria on the
/// *same* random draw (common random numbers across metrics), and the
/// per-metric counts pool into one [`YieldEstimate`] each.
///
/// `init` builds per-chunk worker state — e.g. the batched yield engine's
/// scratch buffers — once per chunk attempt, so the state never crosses
/// threads and batched trials keep the per-chunk `stream_rng(seed, chunk)`
/// streams. `pass` fills `flags[..metrics]` for one trial from the
/// chunk-stream RNG and the global trial index; flags are cleared before
/// every trial. Both closures must be pure functions of their arguments
/// for the jobs-invariance guarantee to hold: the pooled counts are
/// bit-identical for any `--jobs` value and across kill + resume.
///
/// Trials are also published as fine-grained work units
/// ([`crate::pool::Progress::units_per_sec`]) for trials/sec display.
///
/// # Errors
///
/// [`RuntimeError::Stats`] when `metrics == 0`; otherwise any
/// [`RuntimeError`] from the pool or journal. Corrupt pooled counts are
/// reported, not asserted.
pub fn yield_vector_supervised<S, I, F>(
    policy: &ExecPolicy,
    plan: &McPlan,
    params: &str,
    metrics: usize,
    init: I,
    pass: F,
) -> Result<Supervised<Vec<YieldEstimate>>, RuntimeError>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &mut Xoshiro256PlusPlus, u64, &mut [bool]) + Sync,
{
    if metrics == 0 {
        return Err(RuntimeError::Stats(ctsdac_stats::StatsError::EmptyData));
    }
    let meta = plan.journal_meta("yield-vector", &format!("metrics={metrics},{params}"));
    let out = run_journaled(
        policy,
        &meta,
        |s| decode_vector_counts(s, metrics),
        encode_vector_counts,
        |ctx| {
            let len = plan.chunk_len(ctx.chunk);
            let start = plan.chunk_start(ctx.chunk);
            let mut rng = stream_rng(plan.seed, ctx.chunk);
            let mut state = init();
            let mut flags = vec![false; metrics];
            let mut passes = vec![0u64; metrics];
            for i in 0..len {
                flags.iter_mut().for_each(|f| *f = false);
                pass(&mut state, &mut rng, start + i, &mut flags);
                for (count, &flag) in passes.iter_mut().zip(&flags) {
                    *count += u64::from(flag);
                }
            }
            obs::count(obs::Counter::McTrials, len);
            ctx.add_units(len);
            if ctx.injected_nan() {
                // Scripted corruption: an impossible count, which the
                // validation below must catch and turn into a retry.
                passes[0] = len + 1;
            }
            if passes.iter().any(|&p| p > len) {
                return Err(format!(
                    "chunk pass counts {passes:?} exceed its {len} trials"
                ));
            }
            Ok((passes, len))
        },
    )?;

    let mut passes = vec![0u64; metrics];
    let mut trials = 0u64;
    for (chunk_passes, chunk_trials) in &out.value {
        for (acc, &p) in passes.iter_mut().zip(chunk_passes) {
            *acc = acc.saturating_add(p);
        }
        trials = trials.saturating_add(*chunk_trials);
    }
    let estimates = passes
        .iter()
        .map(|&p| YieldEstimate::from_counts(p, trials))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(out.map(|_| estimates))
}

/// Chunk-granular variant of [`yield_vector_supervised`] for kernels
/// that process a whole chunk of trials at once (e.g. SIMD-width lane
/// engines that need the chunk length up front to place remainder
/// trials in partial lane groups).
///
/// `run_chunk` receives the per-chunk state, the chunk-stream RNG, the
/// chunk's global start index and trial count, and must add each
/// metric's pass count into `passes[..metrics]` after consuming exactly
/// the trials' worth of decisions (RNG over-read past the last trial is
/// allowed — the stream dies with the chunk). It must be a pure function
/// of `(state, rng, start, len)` for the jobs-invariance guarantee.
/// Shares the `"yield-vector"` journal family: a run whose per-trial
/// decisions are bit-identical to a [`yield_vector_supervised`] run can
/// resume from its journal and vice versa.
///
/// # Errors
///
/// [`RuntimeError::Stats`] when `metrics == 0`; otherwise any
/// [`RuntimeError`] from the pool or journal.
pub fn yield_vector_supervised_chunked<S, I, F>(
    policy: &ExecPolicy,
    plan: &McPlan,
    params: &str,
    metrics: usize,
    init: I,
    run_chunk: F,
) -> Result<Supervised<Vec<YieldEstimate>>, RuntimeError>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &mut Xoshiro256PlusPlus, u64, u64, &mut [u64]) + Sync,
{
    if metrics == 0 {
        return Err(RuntimeError::Stats(ctsdac_stats::StatsError::EmptyData));
    }
    let meta = plan.journal_meta("yield-vector", &format!("metrics={metrics},{params}"));
    let out = run_journaled(
        policy,
        &meta,
        |s| decode_vector_counts(s, metrics),
        encode_vector_counts,
        |ctx| {
            let len = plan.chunk_len(ctx.chunk);
            let start = plan.chunk_start(ctx.chunk);
            let mut rng = stream_rng(plan.seed, ctx.chunk);
            let mut state = init();
            let mut passes = vec![0u64; metrics];
            run_chunk(&mut state, &mut rng, start, len, &mut passes);
            obs::count(obs::Counter::McTrials, len);
            ctx.add_units(len);
            if ctx.injected_nan() {
                // Scripted corruption: an impossible count, which the
                // validation below must catch and turn into a retry.
                passes[0] = len + 1;
            }
            if passes.iter().any(|&p| p > len) {
                return Err(format!(
                    "chunk pass counts {passes:?} exceed its {len} trials"
                ));
            }
            Ok((passes, len))
        },
    )?;

    let mut passes = vec![0u64; metrics];
    let mut trials = 0u64;
    for (chunk_passes, chunk_trials) in &out.value {
        for (acc, &p) in passes.iter_mut().zip(chunk_passes) {
            *acc = acc.saturating_add(p);
        }
        trials = trials.saturating_add(*chunk_trials);
    }
    let estimates = passes
        .iter()
        .map(|&p| YieldEstimate::from_counts(p, trials))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(out.map(|_| estimates))
}

fn encode_vector_counts((passes, trials): &(Vec<u64>, u64)) -> String {
    let mut out = String::new();
    for (i, p) in passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&p.to_string());
    }
    out.push(':');
    out.push_str(&trials.to_string());
    out
}

fn decode_vector_counts(s: &str, metrics: usize) -> Option<(Vec<u64>, u64)> {
    let (head, tail) = s.split_once(':')?;
    let trials: u64 = tail.parse().ok()?;
    let passes: Vec<u64> = head
        .split(',')
        .map(|p| p.parse().ok())
        .collect::<Option<_>>()?;
    (passes.len() == metrics && passes.iter().all(|&p| p <= trials))
        .then_some((passes, trials))
}

/// Runs a chunked scalar Monte-Carlo experiment under supervision and
/// merges the per-chunk [`Summary`] accumulators (exact Welford merge, in
/// chunk order).
///
/// `metric` receives a chunk-stream RNG and the global trial index and
/// returns the scalar observation; non-finite observations fail the
/// chunk (typed fault, retried) rather than poisoning the summary.
///
/// # Errors
///
/// Any [`RuntimeError`] from the pool or journal.
pub fn summary_supervised<F>(
    policy: &ExecPolicy,
    plan: &McPlan,
    params: &str,
    metric: F,
) -> Result<Supervised<Summary>, RuntimeError>
where
    F: Fn(&mut Xoshiro256PlusPlus, u64) -> f64 + Sync,
{
    let meta = plan.journal_meta("summary", params);
    let out = run_journaled(
        policy,
        &meta,
        decode_summary,
        encode_summary,
        |ctx| {
            let len = plan.chunk_len(ctx.chunk);
            let start = plan.chunk_start(ctx.chunk);
            let mut rng = stream_rng(plan.seed, ctx.chunk);
            let mut summary = Summary::new();
            for i in 0..len {
                let mut x = metric(&mut rng, start + i);
                if ctx.injected_nan() && i == 0 {
                    x = f64::NAN;
                }
                if !x.is_finite() {
                    return Err(format!("trial {} produced non-finite metric {x}", start + i));
                }
                summary.push(x);
            }
            obs::count(obs::Counter::McTrials, len);
            ctx.add_units(len);
            Ok(summary)
        },
    )?;

    let mut merged = Summary::new();
    for chunk in &out.value {
        merged.merge(chunk);
    }
    Ok(out.map(|_| merged))
}

fn encode_summary(s: &Summary) -> String {
    let (count, parts) = s.to_parts();
    let mut out = count.to_string();
    for p in parts {
        out.push(':');
        out.push_str(&encode_f64(p));
    }
    out
}

fn decode_summary(s: &str) -> Option<Summary> {
    let mut fields = s.split(':');
    let count: u64 = fields.next()?.parse().ok()?;
    let mut parts = [0.0f64; 5];
    for slot in &mut parts {
        *slot = decode_f64(fields.next()?)?;
    }
    if fields.next().is_some() {
        return None;
    }
    Some(Summary::from_parts(count, parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{truncate_tail, FaultPlan};
    use ctsdac_stats::Rng;
    use std::sync::Arc;

    fn pass_fn(rng: &mut Xoshiro256PlusPlus, _trial: u64) -> bool {
        rng.gen_range(0.0..1.0) < 0.8
    }

    fn metric_fn(rng: &mut Xoshiro256PlusPlus, _trial: u64) -> f64 {
        rng.gen_range(-1.0..1.0)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ctsdac-runtime-mc-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn plan_partitions_every_trial_exactly_once() {
        let plan = McPlan::new(1, 1003, 100).expect("plan");
        assert_eq!(plan.chunks(), 11);
        let total: u64 = (0..plan.chunks()).map(|c| plan.chunk_len(c)).sum();
        assert_eq!(total, 1003);
        assert_eq!(plan.chunk_len(10), 3);
        assert_eq!(plan.chunk_start(10), 1000);
        assert!(McPlan::new(1, 0, 100).is_err());
        // chunk_trials clamps to 1 rather than dividing by zero.
        assert_eq!(McPlan::new(1, 5, 0).expect("plan").chunks(), 5);
    }

    #[test]
    fn yield_estimate_matches_probability_and_is_jobs_invariant() {
        let plan = McPlan::new(11, 10_000, 512).expect("plan");
        let baseline = yield_supervised(&ExecPolicy::sequential(), &plan, "p=0.8", pass_fn)
            .expect("sequential");
        assert!((baseline.value.estimate() - 0.8).abs() < 0.02);
        for jobs in [2, 8] {
            let out = yield_supervised(&ExecPolicy::with_jobs(jobs), &plan, "p=0.8", pass_fn)
                .expect("parallel");
            assert_eq!(out.value, baseline.value, "jobs = {jobs}");
        }
    }

    #[test]
    fn yield_is_invariant_under_faults_and_resume() {
        let plan = McPlan::new(23, 4_000, 256).expect("plan");
        let clean = yield_supervised(&ExecPolicy::sequential(), &plan, "t", pass_fn)
            .expect("clean");

        // Faults on: panics, a deadline overrun and a NaN corruption.
        let mut policy = ExecPolicy::with_jobs(4);
        policy.pool.deadline = Some(std::time::Duration::from_millis(250));
        policy.pool.faults = Some(Arc::new(
            FaultPlan::new().panic_at(0).panic_at(9).delay_ms_at(3, 400).nan_at(12),
        ));
        let faulty = yield_supervised(&policy, &plan, "t", pass_fn).expect("supervised");
        assert_eq!(faulty.value, clean.value);
        assert_eq!(faulty.faults.len(), 4);

        // Kill + resume with a corrupted tail.
        let path = tmp("yield-resume.jsonl");
        std::fs::remove_file(&path).ok();
        yield_supervised(
            &ExecPolicy::with_jobs(2).checkpoint_at(&path),
            &plan,
            "t",
            pass_fn,
        )
        .expect("journaled");
        truncate_tail(&path, 9).expect("corrupt");
        let resumed = yield_supervised(
            &ExecPolicy::with_jobs(4).checkpoint_at(&path).resuming(),
            &plan,
            "t",
            pass_fn,
        )
        .expect("resumed");
        assert_eq!(resumed.value, clean.value);
        assert!(resumed.dropped >= 1);
        // No trial lost, none double-counted.
        assert_eq!(resumed.value.trials(), 4_000);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn summary_merge_is_jobs_invariant_bitwise() {
        let plan = McPlan::new(5, 6_000, 333).expect("plan");
        let baseline = summary_supervised(&ExecPolicy::sequential(), &plan, "m", metric_fn)
            .expect("sequential");
        assert_eq!(baseline.value.count(), 6_000);
        assert!(baseline.value.mean().abs() < 0.05);
        for jobs in [3, 8] {
            let out = summary_supervised(&ExecPolicy::with_jobs(jobs), &plan, "m", metric_fn)
                .expect("parallel");
            // Chunk-order Welford merge: bit-identical, not just close.
            assert_eq!(out.value, baseline.value, "jobs = {jobs}");
        }
    }

    #[test]
    fn summary_resumes_bit_identically_from_journal() {
        let plan = McPlan::new(5, 2_000, 128).expect("plan");
        let clean = summary_supervised(&ExecPolicy::sequential(), &plan, "m", metric_fn)
            .expect("clean");
        let path = tmp("summary-resume.jsonl");
        std::fs::remove_file(&path).ok();
        summary_supervised(
            &ExecPolicy::with_jobs(2).checkpoint_at(&path),
            &plan,
            "m",
            metric_fn,
        )
        .expect("journaled");
        truncate_tail(&path, 25).expect("corrupt");
        let resumed = summary_supervised(
            &ExecPolicy::sequential().checkpoint_at(&path).resuming(),
            &plan,
            "m",
            metric_fn,
        )
        .expect("resumed");
        assert_eq!(resumed.value, clean.value);
        assert!(resumed.restored > 0, "resume must reuse journal chunks");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn nan_injection_is_caught_and_retried() {
        let plan = McPlan::new(3, 1_000, 100).expect("plan");
        let mut policy = ExecPolicy::with_jobs(2);
        policy.pool.faults = Some(Arc::new(FaultPlan::new().nan_at(4)));
        let out = summary_supervised(&policy, &plan, "m", metric_fn).expect("supervised");
        let clean = summary_supervised(&ExecPolicy::sequential(), &plan, "m", metric_fn)
            .expect("clean");
        assert_eq!(out.value, clean.value);
        assert_eq!(out.faults.len(), 1);
    }

    /// A three-metric pass function with per-chunk state: the state
    /// counts trials so the driver's fresh-state-per-chunk contract is
    /// observable (`flags[2]` depends only on the draw, not history).
    fn vector_pass(
        state: &mut u64,
        rng: &mut Xoshiro256PlusPlus,
        _trial: u64,
        flags: &mut [bool],
    ) {
        *state += 1;
        let x = rng.gen_range(0.0..1.0);
        flags[0] = x < 0.9;
        flags[1] = x < 0.5;
        flags[2] = x < 0.1;
    }

    #[test]
    fn vector_yields_share_draws_and_are_jobs_invariant() {
        let plan = McPlan::new(31, 8_000, 256).expect("plan");
        let baseline = yield_vector_supervised(
            &ExecPolicy::sequential(),
            &plan,
            "nested",
            3,
            || 0u64,
            vector_pass,
        )
        .expect("sequential");
        assert_eq!(baseline.value.len(), 3);
        // Common random numbers: thresholds nest, so counts must too.
        assert!(baseline.value[0].passes() >= baseline.value[1].passes());
        assert!(baseline.value[1].passes() >= baseline.value[2].passes());
        assert!((baseline.value[0].estimate() - 0.9).abs() < 0.02);
        for jobs in [2, 8] {
            let out = yield_vector_supervised(
                &ExecPolicy::with_jobs(jobs),
                &plan,
                "nested",
                3,
                || 0u64,
                vector_pass,
            )
            .expect("parallel");
            assert_eq!(out.value, baseline.value, "jobs = {jobs}");
        }
    }

    #[test]
    fn vector_yield_survives_faults_and_rejects_zero_metrics() {
        let plan = McPlan::new(31, 2_000, 128).expect("plan");
        let clean = yield_vector_supervised(
            &ExecPolicy::sequential(),
            &plan,
            "nested",
            3,
            || 0u64,
            vector_pass,
        )
        .expect("clean");
        let mut policy = ExecPolicy::with_jobs(4);
        policy.pool.faults = Some(Arc::new(FaultPlan::new().panic_at(1).nan_at(6)));
        let faulty = yield_vector_supervised(&policy, &plan, "nested", 3, || 0u64, vector_pass)
            .expect("supervised");
        assert_eq!(faulty.value, clean.value);
        assert_eq!(faulty.faults.len(), 2);

        let err = yield_vector_supervised(
            &ExecPolicy::sequential(),
            &plan,
            "nested",
            0,
            || 0u64,
            vector_pass,
        );
        assert!(matches!(err, Err(RuntimeError::Stats(_))));
    }

    #[test]
    fn vector_counts_codec_round_trips() {
        assert_eq!(
            decode_vector_counts("3,5,0:10", 3),
            Some((vec![3, 5, 0], 10))
        );
        for bad in ["", "3,5:10:1", "3,5", "11,5:10", "a,5:10", "3:10"] {
            assert_eq!(decode_vector_counts(bad, 3), None, "accepted {bad:?}");
        }
        let enc = encode_vector_counts(&(vec![3, 5, 0], 10));
        assert_eq!(enc, "3,5,0:10");
        assert_eq!(decode_vector_counts(&enc, 3), Some((vec![3, 5, 0], 10)));
    }

    #[test]
    fn counts_codec_round_trips() {
        assert_eq!(decode_counts("12:100"), Some((12, 100)));
        for bad in ["", "5", "5:", ":5", "6:5", "a:b", "1:2:3"] {
            assert_eq!(decode_counts(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn summary_codec_round_trips_bitwise() {
        let s: Summary = (0..57).map(|i| (i as f64).sin()).collect();
        let enc = encode_summary(&s);
        let back = decode_summary(&enc).expect("decodes");
        assert_eq!(back, s);
        for bad in ["", "5", "5:00", "x:1:2:3:4:5"] {
            assert_eq!(decode_summary(bad), None, "accepted {bad:?}");
        }
    }
}
