//! Write-ahead JSONL checkpoint journal.
//!
//! One plain-text line per completed chunk, preceded by a header line that
//! binds the run's identity (kind, seed, chunk count, parameter digest).
//! Appends are flushed and fsync'd before the supervisor counts a chunk as
//! durable, so a kill at any instant loses at most the line being written.
//!
//! Loading is corruption-tolerant by construction: a torn tail (no final
//! newline, or a line that fails to parse) is *dropped with a warning
//! count*, never an error — the dropped chunks are simply recomputed on
//! resume. A header that does not match the requested run identity is a
//! typed error: resuming a sweep journal into a different sweep would
//! silently splice wrong results, which is exactly the corruption this
//! format exists to prevent.
//!
//! The format is deliberately minimal JSON — flat objects with string and
//! unsigned-integer values, written and parsed by this module with no
//! external dependency:
//!
//! ```text
//! {"kind":"mc","seed":42,"chunks":10,"params":"trials=10000"}
//! {"chunk":0,"data":"993:1000"}
//! {"chunk":3,"data":"989:1000"}
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Identity of a checkpointed run; a journal only resumes into a run with
/// an identical meta.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalMeta {
    /// What kind of run this is (e.g. `"sweep"`, `"mc"`).
    pub kind: String,
    /// Root RNG seed of the run (0 for deterministic non-random runs).
    pub seed: u64,
    /// Total number of chunks the run is split into.
    pub chunks: u64,
    /// Free-form digest of every parameter that determines chunk results
    /// (spec, grid, ranges, trial counts…). Two runs with different
    /// params must not share a journal.
    pub params: String,
}

/// Typed journal failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// An I/O operation failed; the message carries `std::io::Error`'s
    /// description (kept as a string so the error stays `Clone + Eq`).
    Io {
        /// Journal file path.
        path: String,
        /// One-line failure description.
        detail: String,
    },
    /// The file exists but its header does not match the requested run.
    MetaMismatch {
        /// Journal file path.
        path: String,
        /// The identity the caller asked to resume.
        expected: String,
        /// The identity found in the file.
        found: String,
    },
    /// The file exists but no valid header line could be read.
    NoHeader {
        /// Journal file path.
        path: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, detail } => write!(f, "journal {path}: {detail}"),
            Self::MetaMismatch {
                path,
                expected,
                found,
            } => write!(
                f,
                "journal {path} belongs to a different run (found {found}, expected {expected})"
            ),
            Self::NoHeader { path } => {
                write!(f, "journal {path} has no readable header line")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// What a journal load found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LoadReport {
    /// Valid chunk entries recovered.
    pub entries: u64,
    /// Trailing lines dropped as corrupt/truncated.
    pub dropped: u64,
}

/// An open, append-mode checkpoint journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    meta: JournalMeta,
}

fn io_err(path: &Path, e: &std::io::Error) -> JournalError {
    JournalError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    }
}

impl Journal {
    /// Creates a fresh journal at `path`, truncating anything there, and
    /// durably writes the header.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn create(path: &Path, meta: &JournalMeta) -> Result<Self, JournalError> {
        let file = File::create(path).map_err(|e| io_err(path, &e))?;
        let mut journal = Self {
            file,
            path: path.to_path_buf(),
            meta: meta.clone(),
        };
        journal.write_line(&header_line(meta))?;
        Ok(journal)
    }

    /// Opens `path` for resumption: validates the header against `meta`,
    /// recovers every parseable chunk entry, drops a corrupt tail, and
    /// reopens the file in append mode positioned after the last valid
    /// line (so the torn tail is overwritten, not accumulated).
    ///
    /// A missing file is not an error — it degrades to [`Journal::create`]
    /// with an empty recovery map, so callers can use one code path for
    /// first runs and resumed runs.
    ///
    /// # Errors
    ///
    /// [`JournalError::MetaMismatch`] / [`JournalError::NoHeader`] when the
    /// file belongs to a different or unrecognisable run;
    /// [`JournalError::Io`] on filesystem failures.
    pub fn resume(
        path: &Path,
        meta: &JournalMeta,
    ) -> Result<(Self, BTreeMap<u64, String>, LoadReport), JournalError> {
        if !path.exists() {
            let journal = Self::create(path, meta)?;
            return Ok((journal, BTreeMap::new(), LoadReport::default()));
        }
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| io_err(path, &e))?;

        // Only segments terminated by '\n' are complete; a trailing
        // unterminated segment is a torn append and always dropped.
        let mut complete: Vec<&str> = Vec::new();
        let mut torn_tail = 0u64;
        let mut rest = text.as_str();
        while let Some(pos) = rest.find('\n') {
            complete.push(&rest[..pos]);
            rest = &rest[pos + 1..];
        }
        if !rest.is_empty() {
            torn_tail = 1;
        }

        let mut lines = complete.into_iter();
        let header = lines.next().and_then(parse_header);
        let found = match header {
            Some(m) => m,
            None => {
                return Err(JournalError::NoHeader {
                    path: path.display().to_string(),
                })
            }
        };
        if found != *meta {
            return Err(JournalError::MetaMismatch {
                path: path.display().to_string(),
                expected: format!("{meta:?}"),
                found: format!("{found:?}"),
            });
        }

        let mut entries = BTreeMap::new();
        let mut report = LoadReport {
            entries: 0,
            dropped: torn_tail,
        };
        let mut valid_bytes = header_line(meta).len() as u64 + 1;
        for line in lines {
            match parse_entry(line) {
                Some((chunk, data)) if chunk < meta.chunks => {
                    entries.insert(chunk, data);
                    valid_bytes += line.len() as u64 + 1;
                }
                // First unparseable (or out-of-range) line: everything
                // from here on is suspect — drop it and stop.
                _ => {
                    report.dropped += 1;
                    break;
                }
            }
        }
        report.entries = entries.len() as u64;

        // Reopen positioned after the last valid line so the corrupt tail
        // is physically discarded before new appends.
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        file.set_len(valid_bytes).map_err(|e| io_err(path, &e))?;
        let mut file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        file.flush().map_err(|e| io_err(path, &e))?;
        let journal = Self {
            file,
            path: path.to_path_buf(),
            meta: meta.clone(),
        };
        Ok((journal, entries, report))
    }

    /// Durably appends one completed chunk (write + flush + fsync).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] on any filesystem failure.
    pub fn append(&mut self, chunk: u64, data: &str) -> Result<(), JournalError> {
        let line = format!(
            "{{\"chunk\":{chunk},\"data\":\"{}\"}}",
            escape_json(data)
        );
        self.write_line(&line)
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run identity this journal is bound to.
    pub fn meta(&self) -> &JournalMeta {
        &self.meta
    }

    fn write_line(&mut self, line: &str) -> Result<(), JournalError> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        match ctsdac_failpoint::check(SITE_APPEND) {
            Some(ctsdac_failpoint::Failure::ShortWrite) => {
                // A crash mid-write: persist a torn prefix and report
                // success, exactly what a dying process would leave for
                // the resume scan to truncate.
                let half = buf.len() / 2;
                let _ = self
                    .file
                    .write_all(&buf[..half])
                    .and_then(|()| self.file.flush())
                    .and_then(|()| self.file.sync_data());
                return Ok(());
            }
            Some(f) => {
                return Err(JournalError::Io {
                    path: self.path.display().to_string(),
                    detail: format!("injected {}", f.name()),
                })
            }
            None => {}
        }
        self.file
            .write_all(&buf)
            .and_then(|()| self.file.flush())
            .and_then(|()| self.file.sync_data())
            .map_err(|e| io_err(&self.path, &e))
    }
}

/// Failpoint site consulted on every journal record append. Honours
/// `short_write` (persist a torn prefix, report success — the resume scan
/// later truncates it) and any other kind as an I/O error.
pub const SITE_APPEND: &str = "journal.append";

fn header_line(meta: &JournalMeta) -> String {
    format!(
        "{{\"kind\":\"{}\",\"seed\":{},\"chunks\":{},\"params\":\"{}\"}}",
        escape_json(&meta.kind),
        meta.seed,
        meta.chunks,
        escape_json(&meta.params)
    )
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One parsed JSON value of the subset this module writes.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    UInt(u64),
}

/// Parses one flat JSON object of string/unsigned-integer values. Returns
/// `None` on any deviation — the caller treats that as corruption.
fn parse_flat_object(line: &str) -> Option<Vec<(String, JsonValue)>> {
    let mut chars = line.trim().chars().peekable();
    if chars.next()? != '{' {
        return None;
    }
    let mut fields = Vec::new();
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                break;
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = match chars.peek()? {
            '"' => JsonValue::Str(parse_string(&mut chars)?),
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(d) = chars.peek().and_then(|c| c.to_digit(10)) {
                    n = n.checked_mul(10)?.checked_add(u64::from(d))?;
                    chars.next();
                }
                JsonValue::UInt(n)
            }
            _ => return None,
        };
        fields.push((key, value));
    }
    // Nothing but whitespace may follow the closing brace.
    if chars.any(|c| !c.is_whitespace()) {
        return None;
    }
    Some(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

fn parse_header(line: &str) -> Option<JournalMeta> {
    let fields = parse_flat_object(line)?;
    let mut kind = None;
    let mut seed = None;
    let mut chunks = None;
    let mut params = None;
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("kind", JsonValue::Str(s)) => kind = Some(s),
            ("seed", JsonValue::UInt(n)) => seed = Some(n),
            ("chunks", JsonValue::UInt(n)) => chunks = Some(n),
            ("params", JsonValue::Str(s)) => params = Some(s),
            _ => return None,
        }
    }
    Some(JournalMeta {
        kind: kind?,
        seed: seed?,
        chunks: chunks?,
        params: params?,
    })
}

/// Encodes an `f64` as its 16-hex-digit IEEE-754 bit pattern — the only
/// text encoding that round-trips every value (NaN payloads, -0.0,
/// subnormals) bit-exactly, which the checkpoint determinism guarantee
/// requires.
pub fn encode_f64(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

/// Decodes [`encode_f64`] output; `None` for anything else.
pub fn decode_f64(s: &str) -> Option<f64> {
    if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

fn parse_entry(line: &str) -> Option<(u64, String)> {
    let fields = parse_flat_object(line)?;
    let mut chunk = None;
    let mut data = None;
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("chunk", JsonValue::UInt(n)) => chunk = Some(n),
            ("data", JsonValue::Str(s)) => data = Some(s),
            _ => return None,
        }
    }
    Some((chunk?, data?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ctsdac-runtime-journal-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn meta() -> JournalMeta {
        JournalMeta {
            kind: "test".into(),
            seed: 42,
            chunks: 8,
            params: "grid=4,range=[0.05,1.55]".into(),
        }
    }

    #[test]
    fn round_trip_entries() {
        let path = tmp("roundtrip.jsonl");
        {
            let mut j = Journal::create(&path, &meta()).expect("create");
            j.append(0, "a:1").expect("append");
            j.append(3, "weird \"quoted\" \\ payload\nline2").expect("append");
        }
        let (_, entries, report) = Journal::resume(&path, &meta()).expect("resume");
        assert_eq!(report, LoadReport { entries: 2, dropped: 0 });
        assert_eq!(entries.get(&0).map(String::as_str), Some("a:1"));
        assert_eq!(
            entries.get(&3).map(String::as_str),
            Some("weird \"quoted\" \\ payload\nline2")
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_degrades_to_create() {
        let path = tmp("fresh.jsonl");
        std::fs::remove_file(&path).ok();
        let (j, entries, report) = Journal::resume(&path, &meta()).expect("resume");
        assert!(entries.is_empty());
        assert_eq!(report, LoadReport::default());
        assert_eq!(j.meta(), &meta());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_with_a_count() {
        let path = tmp("torn.jsonl");
        {
            let mut j = Journal::create(&path, &meta()).expect("create");
            j.append(0, "zero").expect("append");
            j.append(1, "one").expect("append");
        }
        // Simulate a crash mid-append: chop into the final line.
        crate::fault::truncate_tail(&path, 5).expect("truncate");
        let (_, entries, report) = Journal::resume(&path, &meta()).expect("resume");
        assert_eq!(report, LoadReport { entries: 1, dropped: 1 });
        assert_eq!(entries.get(&0).map(String::as_str), Some("zero"));
        assert!(!entries.contains_key(&1));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_physically_discards_the_torn_tail() {
        let path = tmp("discard.jsonl");
        {
            let mut j = Journal::create(&path, &meta()).expect("create");
            j.append(0, "zero").expect("append");
            j.append(1, "one").expect("append");
        }
        crate::fault::truncate_tail(&path, 3).expect("truncate");
        {
            let (mut j, _, _) = Journal::resume(&path, &meta()).expect("resume");
            j.append(2, "two").expect("append");
        }
        // A second resume sees chunks 0 and 2 cleanly; the torn line for
        // chunk 1 is gone, not interleaved.
        let (_, entries, report) = Journal::resume(&path, &meta()).expect("resume");
        assert_eq!(report, LoadReport { entries: 2, dropped: 0 });
        assert_eq!(
            entries.keys().copied().collect::<Vec<_>>(),
            vec![0, 2]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_mid_file_stops_recovery_there() {
        let path = tmp("garbage.jsonl");
        {
            let mut j = Journal::create(&path, &meta()).expect("create");
            j.append(0, "zero").expect("append");
        }
        // Corrupt by appending a non-JSON line *with* newline, then a
        // valid-looking line after it: recovery must stop at the garbage.
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open");
        use std::io::Write as _;
        raw.write_all(b"!!not json!!\n{\"chunk\":5,\"data\":\"five\"}\n")
            .expect("write");
        drop(raw);
        let (_, entries, report) = Journal::resume(&path, &meta()).expect("resume");
        assert_eq!(entries.len(), 1);
        assert!(entries.contains_key(&0));
        assert!(report.dropped >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mismatched_meta_is_a_typed_error() {
        let path = tmp("mismatch.jsonl");
        {
            Journal::create(&path, &meta()).expect("create");
        }
        let mut other = meta();
        other.params = "grid=9".into();
        match Journal::resume(&path, &other) {
            Err(JournalError::MetaMismatch { .. }) => {}
            other => panic!("expected MetaMismatch, got {other:?}"),
        }
        // Out-of-range chunk indices (> meta.chunks) are treated as
        // corruption too.
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn headerless_file_is_a_typed_error() {
        let path = tmp("headerless.jsonl");
        std::fs::write(&path, "no json here\n").expect("write");
        match Journal::resume(&path, &meta()) {
            Err(JournalError::NoHeader { .. }) => {}
            other => panic!("expected NoHeader, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_chunk_is_treated_as_corruption() {
        let path = tmp("range.jsonl");
        {
            let mut j = Journal::create(&path, &meta()).expect("create");
            j.append(0, "zero").expect("append");
            // meta().chunks == 8, so 8 is out of range.
            j.append(8, "eight").expect("append");
            j.append(1, "one").expect("append");
        }
        let (_, entries, report) = Journal::resume(&path, &meta()).expect("resume");
        assert_eq!(entries.len(), 1);
        assert!(entries.contains_key(&0));
        assert!(report.dropped >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parser_rejects_malformed_objects() {
        for bad in [
            "",
            "{",
            "{}extra",
            "[1,2]",
            "{\"chunk\":-1,\"data\":\"x\"}",
            "{\"chunk\":1e3,\"data\":\"x\"}",
            "{\"chunk\":99999999999999999999999,\"data\":\"x\"}",
            "{\"chunk\":1,\"data\":\"unterminated}",
            "{\"chunk\":1,\"data\":\"bad escape \\q\"}",
        ] {
            assert_eq!(parse_entry(bad), None, "accepted {bad:?}");
        }
        assert_eq!(
            parse_entry("{\"chunk\":7,\"data\":\"ok\"}"),
            Some((7, "ok".into()))
        );
    }

    #[test]
    fn f64_codec_round_trips_bit_exactly() {
        for x in [
            0.0,
            -0.0,
            1.5e-9,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            f64::MIN_POSITIVE / 8.0, // subnormal
            -987.654321,
        ] {
            let s = encode_f64(x);
            let back = decode_f64(&s).expect("decodes");
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {s}");
        }
        for bad in ["", "xyz", "123", "00000000000000000", "0123456789abcdeg"] {
            assert_eq!(decode_f64(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_display_one_line() {
        let errs = [
            JournalError::Io {
                path: "p".into(),
                detail: "denied".into(),
            },
            JournalError::MetaMismatch {
                path: "p".into(),
                expected: "a".into(),
                found: "b".into(),
            },
            JournalError::NoHeader { path: "p".into() },
        ];
        for e in errs {
            let msg = format!("{e}");
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
    }
}
