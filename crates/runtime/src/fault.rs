//! Deterministic fault injection for supervision tests.
//!
//! A [`FaultPlan`] scripts failures at chosen chunk indices: worker panics,
//! artificial delays (to trip per-chunk deadlines), and corrupted (NaN)
//! results. The plan is consulted by the pool (panics, delays) and by chunk
//! bodies through the chunk context (NaN corruption), so supervision
//! invariants — no lost chunks, no double-counted trials, bit-identical
//! results with faults on vs. off — can be proven by integration tests
//! rather than asserted on faith. The same idiom appears in behavioural
//! converter models that inject non-idealities to validate robustness.
//!
//! Every injection is keyed `(chunk, attempt)`: by default a fault fires
//! only on the first attempt, so the pool's bounded retry recovers and the
//! final result must be identical to a fault-free run. Setting a higher
//! `attempts` budget makes the fault persistent, which is how retry
//! exhaustion and run abortion are tested.
//!
//! # Examples
//!
//! ```
//! use ctsdac_runtime::FaultPlan;
//!
//! let plan = FaultPlan::new()
//!     .panic_at(3)
//!     .delay_ms_at(5, 50)
//!     .nan_at(7);
//! assert!(plan.injects_panic(3, 0));
//! assert!(!plan.injects_panic(3, 1)); // retry is clean
//! assert!(plan.injects_nan(7, 0));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// The kinds of scripted failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultKind {
    /// Panic inside the worker before the chunk body runs.
    Panic,
    /// Sleep this many milliseconds before the chunk body runs (used to
    /// push a chunk past its deadline).
    DelayMs(u64),
    /// Ask the chunk body to corrupt its result to NaN.
    Nan,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Injection {
    kind: FaultKind,
    /// The fault fires while `attempt < attempts`.
    attempts: u32,
}

/// A deterministic schedule of injected faults, keyed by chunk index.
///
/// Construction is builder-style; queries are cheap and lock-free. The
/// plan counts how many injections actually fired ([`FaultPlan::fired`])
/// so tests can assert the faults were exercised, not silently skipped.
#[derive(Debug, Default)]
pub struct FaultPlan {
    by_chunk: BTreeMap<u64, Vec<Injection>>,
    fired: AtomicU64,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, chunk: u64, kind: FaultKind, attempts: u32) -> Self {
        self.by_chunk
            .entry(chunk)
            .or_default()
            .push(Injection { kind, attempts });
        self
    }

    /// Panic on the first attempt of `chunk`.
    pub fn panic_at(self, chunk: u64) -> Self {
        self.push(chunk, FaultKind::Panic, 1)
    }

    /// Panic on the first `attempts` attempts of `chunk` (use a value
    /// above the pool's retry budget to test retry exhaustion).
    pub fn panic_at_for(self, chunk: u64, attempts: u32) -> Self {
        self.push(chunk, FaultKind::Panic, attempts)
    }

    /// Delay the first attempt of `chunk` by `ms` milliseconds.
    pub fn delay_ms_at(self, chunk: u64, ms: u64) -> Self {
        self.push(chunk, FaultKind::DelayMs(ms), 1)
    }

    /// Corrupt the result of the first attempt of `chunk` to NaN.
    pub fn nan_at(self, chunk: u64) -> Self {
        self.push(chunk, FaultKind::Nan, 1)
    }

    fn query(&self, chunk: u64, attempt: u32, want: fn(FaultKind) -> Option<u64>) -> Option<u64> {
        let injections = self.by_chunk.get(&chunk)?;
        for inj in injections {
            if attempt < inj.attempts {
                if let Some(v) = want(inj.kind) {
                    self.fired.fetch_add(1, Ordering::Relaxed);
                    return Some(v);
                }
            }
        }
        None
    }

    /// True if attempt `attempt` of `chunk` must panic.
    pub fn injects_panic(&self, chunk: u64, attempt: u32) -> bool {
        self.query(chunk, attempt, |k| (k == FaultKind::Panic).then_some(0))
            .is_some()
    }

    /// The artificial delay for attempt `attempt` of `chunk`, if any.
    pub fn injects_delay(&self, chunk: u64, attempt: u32) -> Option<Duration> {
        self.query(chunk, attempt, |k| match k {
            FaultKind::DelayMs(ms) => Some(ms),
            _ => None,
        })
        .map(Duration::from_millis)
    }

    /// True if attempt `attempt` of `chunk` must corrupt its result.
    pub fn injects_nan(&self, chunk: u64, attempt: u32) -> bool {
        self.query(chunk, attempt, |k| (k == FaultKind::Nan).then_some(0))
            .is_some()
    }

    /// Number of injections that have actually fired so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(Ordering::Relaxed)
    }

    /// Number of chunks with at least one scheduled injection.
    pub fn scheduled_chunks(&self) -> usize {
        self.by_chunk.len()
    }
}

/// Truncates `bytes` off the end of a file — the journal-corruption
/// primitive used by the fault-injection harness to simulate a crash
/// mid-append (a torn tail line).
///
/// Returns the new length. Truncating more bytes than the file holds
/// empties it.
///
/// # Errors
///
/// Any I/O failure opening or resizing the file.
pub fn truncate_tail(path: &std::path::Path, bytes: u64) -> std::io::Result<u64> {
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    let new_len = len.saturating_sub(bytes);
    file.set_len(new_len)?;
    file.sync_data()?;
    Ok(new_len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_only_on_scheduled_attempts() {
        let plan = FaultPlan::new().panic_at(2).panic_at_for(5, 3);
        assert!(plan.injects_panic(2, 0));
        assert!(!plan.injects_panic(2, 1));
        assert!(!plan.injects_panic(3, 0));
        for a in 0..3 {
            assert!(plan.injects_panic(5, a));
        }
        assert!(!plan.injects_panic(5, 3));
    }

    #[test]
    fn kinds_are_independent_per_chunk() {
        let plan = FaultPlan::new().delay_ms_at(1, 25).nan_at(1);
        assert_eq!(plan.injects_delay(1, 0), Some(Duration::from_millis(25)));
        assert!(plan.injects_nan(1, 0));
        assert!(!plan.injects_panic(1, 0));
        assert_eq!(plan.injects_delay(1, 1), None);
        assert!(!plan.injects_nan(1, 1));
    }

    #[test]
    fn fired_counts_actual_injections() {
        let plan = FaultPlan::new().panic_at(0).nan_at(1);
        assert_eq!(plan.fired(), 0);
        assert!(plan.injects_panic(0, 0));
        assert!(plan.injects_nan(1, 0));
        // Misses do not count.
        assert!(!plan.injects_panic(9, 0));
        assert_eq!(plan.fired(), 2);
        assert_eq!(plan.scheduled_chunks(), 2);
    }

    #[test]
    fn truncate_tail_chops_and_saturates() {
        let dir = std::env::temp_dir().join("ctsdac-runtime-fault-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("trunc.jsonl");
        std::fs::write(&path, b"hello world\n").expect("write");
        let len = truncate_tail(&path, 6).expect("truncate");
        assert_eq!(len, 6);
        assert_eq!(std::fs::read(&path).expect("read"), b"hello ");
        let len = truncate_tail(&path, 1000).expect("truncate past start");
        assert_eq!(len, 0);
        std::fs::remove_file(&path).ok();
    }
}
