//! Panic-isolated supervised worker pool.
//!
//! [`run_chunks`] executes `total` independent chunks on a fixed set of
//! worker threads and supervises every one:
//!
//! * **Panic isolation** — a panicking chunk is caught with
//!   `catch_unwind`, reported as a typed [`TaskFault::Panic`], and retried;
//!   the worker thread survives and the run is never poisoned.
//! * **Deadlines** — a chunk whose attempt overruns the per-task deadline
//!   is discarded and retried as [`TaskFault::DeadlineExceeded`].
//! * **Validation** — a chunk body may reject its own result (e.g. a NaN
//!   metric) as [`TaskFault::Invalid`]; same retry path.
//! * **Bounded retry** — each chunk gets `1 + retries` attempts (the
//!   PR-1 retry-ladder idiom, one rung per attempt); exhaustion aborts the
//!   run with a typed [`RuntimeError::ChunkFailed`] carrying the last
//!   fault. Re-attempts wait out a jittered exponential backoff
//!   ([`crate::RetryPolicy`], [`PoolConfig::backoff`]) so a wave of
//!   faulting workers desynchronises instead of retrying in lock-step.
//! * **Cooperative cancellation** — a shared [`CancelToken`] stops workers
//!   from claiming new chunks; chunks that complete *before* the cancel is
//!   observed stay durable (the supervisor journals them as they finish),
//!   which is what makes kill + resume lossless. Chunks that complete
//!   *after* cancellation are dropped, not journaled: a cancelled run must
//!   never flush entries its merge will not consume.
//! * **Determinism** — results are keyed by chunk index, never by
//!   completion order, and chunk bodies draw randomness from counter-based
//!   per-chunk streams (`ctsdac_stats::rng::stream_rng`). The assembled
//!   output is therefore bit-identical for every `jobs` value, with faults
//!   on or off, and across resume.

use crate::cancel::CancelToken;
use crate::fault::FaultPlan;
use crate::journal::JournalError;
use crate::retry::RetryPolicy;
use ctsdac_obs as obs;
use ctsdac_stats::StatsError;
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A supervised failure of one chunk attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskFault {
    /// The chunk body panicked; the payload is the panic message.
    Panic {
        /// Chunk index.
        chunk: u64,
        /// Zero-based attempt number.
        attempt: u32,
        /// Stringified panic payload.
        message: String,
    },
    /// The attempt finished after its deadline; the result was discarded.
    DeadlineExceeded {
        /// Chunk index.
        chunk: u64,
        /// Zero-based attempt number.
        attempt: u32,
        /// Wall-clock the attempt took, ms.
        elapsed_ms: u64,
        /// The configured deadline, ms.
        deadline_ms: u64,
    },
    /// The chunk body rejected its own result (e.g. non-finite metric).
    Invalid {
        /// Chunk index.
        chunk: u64,
        /// Zero-based attempt number.
        attempt: u32,
        /// One-line description of the rejection.
        detail: String,
    },
}

impl TaskFault {
    /// The chunk this fault belongs to.
    pub fn chunk(&self) -> u64 {
        match self {
            Self::Panic { chunk, .. }
            | Self::DeadlineExceeded { chunk, .. }
            | Self::Invalid { chunk, .. } => *chunk,
        }
    }
}

impl fmt::Display for TaskFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Panic {
                chunk,
                attempt,
                message,
            } => write!(f, "chunk {chunk} attempt {attempt} panicked: {message}"),
            Self::DeadlineExceeded {
                chunk,
                attempt,
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "chunk {chunk} attempt {attempt} overran its deadline \
                 ({elapsed_ms} ms > {deadline_ms} ms)"
            ),
            Self::Invalid {
                chunk,
                attempt,
                detail,
            } => write!(f, "chunk {chunk} attempt {attempt} invalid result: {detail}"),
        }
    }
}

/// Typed failure of a supervised run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// One chunk exhausted its retry budget; the run was aborted (other
    /// completed chunks remain journaled and resumable).
    ChunkFailed {
        /// The failing chunk.
        chunk: u64,
        /// Attempts consumed (1 + retries).
        attempts: u32,
        /// The fault of the final attempt.
        last: TaskFault,
    },
    /// The run was cancelled before completion.
    Cancelled {
        /// Chunks completed (including journal-skipped) at cancellation.
        done: u64,
        /// Total chunks of the run.
        total: u64,
    },
    /// The checkpoint journal failed.
    Journal(JournalError),
    /// Aggregating chunk counts produced invalid statistics.
    Stats(StatsError),
    /// A driver-level invariant failed (e.g. undecodable journal payload
    /// that parsed as JSON but not as the driver's record format).
    Driver {
        /// One-line description.
        detail: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ChunkFailed {
                chunk,
                attempts,
                last,
            } => write!(
                f,
                "chunk {chunk} failed after {attempts} attempt(s); last fault: {last}"
            ),
            Self::Cancelled { done, total } => {
                write!(f, "run cancelled after {done}/{total} chunks")
            }
            Self::Journal(e) => write!(f, "{e}"),
            Self::Stats(e) => write!(f, "chunk aggregation: {e}"),
            Self::Driver { detail } => write!(f, "driver error: {detail}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Journal(e) => Some(e),
            Self::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JournalError> for RuntimeError {
    fn from(e: JournalError) -> Self {
        Self::Journal(e)
    }
}

impl From<StatsError> for RuntimeError {
    fn from(e: StatsError) -> Self {
        Self::Stats(e)
    }
}

/// Live run statistics handed to the progress callback.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Progress {
    /// Chunks completed so far, including those restored from a journal.
    pub done: u64,
    /// Total chunks of the run.
    pub total: u64,
    /// Wall-clock since the run started.
    pub elapsed: Duration,
    /// Driver-published gauge (e.g. current best objective), if any.
    pub gauge: Option<f64>,
    /// Fine-grained work units completed this run (e.g. design points),
    /// accumulated by chunk bodies through [`ChunkCtx::add_units`]. Zero
    /// when the driver publishes no units. Observational only: retried
    /// chunk attempts may count their units more than once.
    pub units: u64,
}

impl Progress {
    /// Average throughput in work units per second; `None` until units
    /// have been published and wall-clock has advanced.
    pub fn units_per_sec(&self) -> Option<f64> {
        let dt = self.elapsed.as_secs_f64();
        if self.units == 0 || dt <= 0.0 {
            return None;
        }
        Some(self.units as f64 / dt)
    }

    /// Naive remaining-time estimate from the average chunk rate; `None`
    /// until at least one chunk has been computed this run.
    pub fn eta(&self) -> Option<Duration> {
        if self.done == 0 || self.total <= self.done {
            return if self.total == self.done {
                Some(Duration::ZERO)
            } else {
                None
            };
        }
        let per_chunk = self.elapsed.as_secs_f64() / self.done as f64;
        Some(Duration::from_secs_f64(
            per_chunk * (self.total - self.done) as f64,
        ))
    }
}

/// A shared scalar the chunk bodies may publish for monitoring (e.g. the
/// best objective seen so far). Purely observational: it never influences
/// results, so its thread-timing nondeterminism is harmless.
#[derive(Debug, Clone, Default)]
pub struct ProgressGauge {
    value: Arc<Mutex<Option<f64>>>,
}

impl ProgressGauge {
    /// A fresh, empty gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes `v` if it beats the current value under `better`
    /// (e.g. `f64::max` for a maximisation objective).
    pub fn update(&self, v: f64, better: fn(f64, f64) -> f64) {
        // A poisoned monitoring mutex must never take down the run.
        let mut slot = self.value.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(match *slot {
            Some(cur) => better(cur, v),
            None => v,
        });
    }

    /// The current published value.
    pub fn get(&self) -> Option<f64> {
        *self.value.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A shared monotonically-increasing counter of fine-grained work units
/// (e.g. evaluated design points), aggregated across worker threads for
/// throughput display. Like [`ProgressGauge`], purely observational.
#[derive(Debug, Clone, Default)]
pub struct UnitCounter {
    value: Arc<AtomicU64>,
}

impl UnitCounter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` completed units.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Progress callback type: invoked on the supervising thread after every
/// chunk completion.
pub type ProgressFn = Arc<dyn Fn(&Progress) + Send + Sync>;

/// Configuration of a supervised run.
#[derive(Clone, Default)]
pub struct PoolConfig {
    /// Worker threads; 0 and 1 both mean single-threaded (values are
    /// clamped to the number of pending chunks).
    pub jobs: usize,
    /// Per-chunk wall-clock deadline; `None` disables the check.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first before a chunk is declared failed.
    pub retries: u32,
    /// Backoff schedule applied before each re-attempt of a faulted chunk
    /// (the first attempt never waits). The derived [`Default`] is
    /// immediate retry; [`PoolConfig::sequential`] and
    /// [`PoolConfig::with_jobs`] install the jittered default.
    pub backoff: RetryPolicy,
    /// Cooperative cancellation flag shared with the caller.
    pub cancel: CancelToken,
    /// Scripted fault injection (tests / CI smoke); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
    /// Observational progress callback.
    pub progress: Option<ProgressFn>,
    /// Shared gauge the chunk bodies may publish through.
    pub gauge: ProgressGauge,
    /// Shared fine-grained work-unit counter (see [`UnitCounter`]).
    pub units: UnitCounter,
}

impl fmt::Debug for PoolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PoolConfig")
            .field("jobs", &self.jobs)
            .field("deadline", &self.deadline)
            .field("retries", &self.retries)
            .field("backoff", &self.backoff)
            .field("faults", &self.faults.is_some())
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

impl PoolConfig {
    /// Single-threaded supervision with the default retry budget (2
    /// retries — three attempts per chunk, like the DC solver's
    /// three-stage ladder).
    pub fn sequential() -> Self {
        Self {
            jobs: 1,
            retries: 2,
            backoff: RetryPolicy::default_backoff(),
            ..Self::default()
        }
    }

    /// `jobs` workers, default retry budget.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            jobs,
            retries: 2,
            backoff: RetryPolicy::default_backoff(),
            ..Self::default()
        }
    }
}

/// Per-attempt context handed to the chunk body.
#[derive(Debug)]
pub struct ChunkCtx<'a> {
    /// Chunk index in `0..total`.
    pub chunk: u64,
    /// Zero-based attempt number (> 0 on retries).
    pub attempt: u32,
    cancel: &'a CancelToken,
    faults: Option<&'a FaultPlan>,
    gauge: &'a ProgressGauge,
    units: &'a UnitCounter,
}

impl ChunkCtx<'_> {
    /// True once the run has been cancelled; long chunk bodies should
    /// poll this and bail out early (their partial work is discarded).
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// True if the fault plan scripts a NaN corruption for this attempt.
    /// Chunk bodies that support fault injection corrupt their result
    /// when this returns true; their own validation must then catch it.
    pub fn injected_nan(&self) -> bool {
        self.faults
            .is_some_and(|p| p.injects_nan(self.chunk, self.attempt))
    }

    /// Publishes an observational gauge value (e.g. a running best
    /// objective) using `better` to combine with the current value.
    pub fn publish_gauge(&self, v: f64, better: fn(f64, f64) -> f64) {
        self.gauge.update(v, better);
    }

    /// Records `n` fine-grained work units (e.g. design points) completed
    /// by this chunk body, for throughput display.
    pub fn add_units(&self, n: u64) {
        self.units.add(n);
    }
}

/// Outcome of a successful supervised run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport<T> {
    /// One result per chunk, indexed by chunk id.
    pub results: Vec<T>,
    /// Faults that occurred and were absorbed by retry, in chunk order.
    pub faults: Vec<TaskFault>,
    /// Chunks restored from the journal instead of recomputed.
    pub restored: u64,
    /// Chunks computed this run.
    pub computed: u64,
}

/// Silences panic output from pool worker threads (panics there are
/// supervised and reported as typed faults; the default hook's backtrace
/// spam would drown real diagnostics). Other threads keep the previous
/// hook behaviour.
fn install_quiet_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let supervised = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("ctsdac-worker"));
            if !supervised {
                previous(info);
            }
        }));
    });
}

/// Sleeps `delay` in short slices, returning early once `cancel` fires or
/// its deadline expires, so backoff waits never hold up a shutdown.
fn sleep_cancellable(delay: Duration, cancel: &CancelToken) {
    const SLICE: Duration = Duration::from_millis(5);
    let wake = Instant::now() + delay;
    while !cancel.is_cancelled() {
        let now = Instant::now();
        if now >= wake {
            break;
        }
        std::thread::sleep((wake - now).min(SLICE));
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One attempt of one chunk: fault injection, panic isolation, deadline
/// check, result validation.
fn attempt_chunk<T, W>(
    worker: &W,
    ctx: &ChunkCtx<'_>,
    deadline: Option<Duration>,
    faults: Option<&FaultPlan>,
) -> Result<T, TaskFault>
where
    W: Fn(&ChunkCtx<'_>) -> Result<T, String>,
{
    let started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(plan) = faults {
            if let Some(delay) = plan.injects_delay(ctx.chunk, ctx.attempt) {
                std::thread::sleep(delay);
            }
            if plan.injects_panic(ctx.chunk, ctx.attempt) {
                // The whole point of this line is to panic: the plan asked
                // for a fault that `catch_unwind` below must absorb.
                panic!("injected (chunk {}, attempt {})", ctx.chunk, ctx.attempt); // ci-gate: allow
            }
        }
        worker(ctx)
    }));
    let elapsed = started.elapsed();
    let result = match outcome {
        Err(payload) => {
            return Err(TaskFault::Panic {
                chunk: ctx.chunk,
                attempt: ctx.attempt,
                message: panic_message(payload.as_ref()),
            })
        }
        Ok(Err(detail)) => {
            return Err(TaskFault::Invalid {
                chunk: ctx.chunk,
                attempt: ctx.attempt,
                detail,
            })
        }
        Ok(Ok(t)) => t,
    };
    if let Some(limit) = deadline {
        if elapsed > limit {
            return Err(TaskFault::DeadlineExceeded {
                chunk: ctx.chunk,
                attempt: ctx.attempt,
                elapsed_ms: elapsed.as_millis() as u64,
                deadline_ms: limit.as_millis() as u64,
            });
        }
    }
    Ok(result)
}

/// What a worker sends the supervisor for one chunk.
enum ChunkReport<T> {
    Done {
        chunk: u64,
        value: T,
        absorbed: Vec<TaskFault>,
    },
    Failed {
        chunk: u64,
        attempts: u32,
        last: TaskFault,
        absorbed: Vec<TaskFault>,
    },
}

/// Runs chunks `0..total` under supervision and assembles their results
/// in chunk order.
///
/// `restored` carries results recovered from a checkpoint journal; those
/// chunks are not recomputed. `worker` computes one chunk (it must be a
/// pure function of the chunk index for the determinism guarantee to
/// hold). `observe` runs on the supervising thread for every chunk
/// computed *this run*, in completion order — it is the journal append
/// hook; an error from it aborts the run.
///
/// # Errors
///
/// [`RuntimeError::ChunkFailed`] when a chunk exhausts `1 + retries`
/// attempts; [`RuntimeError::Cancelled`] when the cancel token fires
/// before completion; any error `observe` returns.
pub fn run_chunks<T, W, O>(
    cfg: &PoolConfig,
    total: u64,
    restored: BTreeMap<u64, T>,
    worker: W,
    mut observe: O,
) -> Result<RunReport<T>, RuntimeError>
where
    T: Send,
    W: Fn(&ChunkCtx<'_>) -> Result<T, String> + Sync,
    O: FnMut(u64, &T) -> Result<(), RuntimeError>,
{
    install_quiet_panic_hook();
    let started = Instant::now();
    let pending: Vec<u64> = (0..total)
        .filter(|i| !restored.contains_key(i))
        .collect();
    let restored_count = restored.len() as u64;
    let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
    for (chunk, value) in restored {
        // Out-of-range journal entries were filtered at load; guard anyway.
        if let Some(slot) = slots.get_mut(chunk as usize) {
            *slot = Some(value);
        }
    }

    let jobs = cfg.jobs.max(1).min(pending.len().max(1));
    let attempts_budget = cfg.retries + 1;
    let next = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<ChunkReport<T>>();

    let mut absorbed_all: Vec<TaskFault> = Vec::new();
    let mut first_error: Option<RuntimeError> = None;
    let mut done = restored_count;
    let mut computed = 0u64;

    std::thread::scope(|scope| {
        for worker_id in 0..jobs {
            let tx = tx.clone();
            let pending = &pending;
            let next = &next;
            let worker = &worker;
            let cancel = &cfg.cancel;
            let faults = cfg.faults.as_deref();
            let gauge = &cfg.gauge;
            let units = &cfg.units;
            let deadline = cfg.deadline;
            let backoff = cfg.backoff;
            let builder = std::thread::Builder::new()
                .name(format!("ctsdac-worker-{worker_id}"));
            // Spawn failure is a resource error; degrade to fewer workers
            // rather than dying (at least one claim loop runs inline below
            // if every spawn fails).
            let spawned = builder.spawn_scoped(scope, move || loop {
                if cancel.is_cancelled() {
                    break;
                }
                let idx = next.fetch_add(1, Ordering::SeqCst) as usize;
                let Some(&chunk) = pending.get(idx) else {
                    break;
                };
                let mut absorbed = Vec::new();
                let mut verdict = None;
                for attempt in 0..attempts_budget {
                    // Jittered exponential backoff between attempts, keyed
                    // by chunk index so concurrent retriers desynchronise.
                    // Cancel-aware: a cancellation mid-wait ends the wait.
                    sleep_cancellable(backoff.delay_for(chunk, attempt), cancel);
                    if attempt > 0 && cancel.is_cancelled() {
                        break;
                    }
                    let ctx = ChunkCtx {
                        chunk,
                        attempt,
                        cancel,
                        faults,
                        gauge,
                        units,
                    };
                    match attempt_chunk(worker, &ctx, deadline, faults) {
                        Ok(value) => {
                            verdict = Some(ChunkReport::Done {
                                chunk,
                                value,
                                absorbed: std::mem::take(&mut absorbed),
                            });
                            break;
                        }
                        Err(fault) => absorbed.push(fault),
                    }
                }
                let report = match verdict {
                    Some(report) => report,
                    // Cancelled mid-retry: the chunk neither succeeded nor
                    // exhausted its budget — drop it silently; the
                    // supervisor reports the run as `Cancelled`.
                    None if cancel.is_cancelled() => break,
                    None => {
                        let last = absorbed
                            .last()
                            .cloned()
                            .unwrap_or(TaskFault::Invalid {
                                chunk,
                                attempt: 0,
                                detail: "no attempt ran".into(),
                            });
                        ChunkReport::Failed {
                            chunk,
                            attempts: attempts_budget,
                            last,
                            absorbed: std::mem::take(&mut absorbed),
                        }
                    }
                };
                let failed = matches!(report, ChunkReport::Failed { .. });
                if tx.send(report).is_err() {
                    break;
                }
                if failed {
                    break;
                }
            });
            if spawned.is_err() {
                // Could not spawn this worker; continue with fewer.
                continue;
            }
        }
        drop(tx);

        // Supervisor loop: assemble results, journal, track faults.
        for report in rx {
            match report {
                ChunkReport::Done {
                    chunk,
                    value,
                    absorbed,
                } => {
                    obs::incr(obs::Counter::PoolChunks);
                    obs::count(obs::Counter::PoolFaults, absorbed.len() as u64);
                    // Every absorbed fault on a chunk that eventually
                    // succeeded implies one re-attempt ran.
                    obs::count(obs::Counter::PoolRetries, absorbed.len() as u64);
                    absorbed_all.extend(absorbed);
                    // A completion racing a cancellation is dropped, not
                    // flushed: once the run is cancelled its merge will
                    // never consume this chunk, so journaling it would
                    // leave an entry a later resume of a *different*
                    // configuration could mistake for durable state.
                    if cfg.cancel.is_cancelled() {
                        continue;
                    }
                    if first_error.is_none() {
                        if let Err(e) = observe(chunk, &value) {
                            first_error = Some(e);
                            cfg.cancel.cancel();
                        }
                    }
                    if let Some(slot) = slots.get_mut(chunk as usize) {
                        *slot = Some(value);
                    }
                    done += 1;
                    computed += 1;
                    if let Some(progress) = &cfg.progress {
                        progress(&Progress {
                            done,
                            total,
                            elapsed: started.elapsed(),
                            gauge: cfg.gauge.get(),
                            units: cfg.units.get(),
                        });
                    }
                }
                ChunkReport::Failed {
                    chunk,
                    attempts,
                    last,
                    absorbed,
                } => {
                    obs::count(obs::Counter::PoolFaults, absorbed.len() as u64);
                    absorbed_all.extend(absorbed);
                    if first_error.is_none() {
                        first_error = Some(RuntimeError::ChunkFailed {
                            chunk,
                            attempts,
                            last,
                        });
                    }
                    cfg.cancel.cancel();
                }
            }
        }
    });

    if let Some(e) = first_error {
        return Err(e);
    }
    if slots.iter().any(Option::is_none) {
        // Workers stopped claiming before finishing: cancellation.
        return Err(RuntimeError::Cancelled { done, total });
    }
    absorbed_all.sort_by_key(|f| f.chunk());
    Ok(RunReport {
        results: slots.into_iter().flatten().collect(),
        faults: absorbed_all,
        restored: restored_count,
        computed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_worker(ctx: &ChunkCtx<'_>) -> Result<u64, String> {
        Ok(ctx.chunk * 10)
    }

    fn no_observe(_: u64, _: &u64) -> Result<(), RuntimeError> {
        Ok(())
    }

    #[test]
    fn assembles_results_in_chunk_order() {
        for jobs in [1, 4] {
            let cfg = PoolConfig::with_jobs(jobs);
            let report =
                run_chunks(&cfg, 17, BTreeMap::new(), echo_worker, no_observe).expect("runs");
            assert_eq!(report.results, (0..17).map(|i| i * 10).collect::<Vec<_>>());
            assert_eq!(report.computed, 17);
            assert_eq!(report.restored, 0);
            assert!(report.faults.is_empty());
        }
    }

    #[test]
    fn restored_chunks_are_not_recomputed() {
        let cfg = PoolConfig::with_jobs(2);
        let restored: BTreeMap<u64, u64> = [(2, 999), (5, 888)].into();
        let computed = AtomicU64::new(0);
        let report = run_chunks(
            &cfg,
            8,
            restored,
            |ctx| {
                computed.fetch_add(1, Ordering::SeqCst);
                echo_worker(ctx)
            },
            no_observe,
        )
        .expect("runs");
        // Journal values win over recomputation (they are authoritative).
        assert_eq!(report.results[2], 999);
        assert_eq!(report.results[5], 888);
        assert_eq!(report.results[3], 30);
        assert_eq!(report.restored, 2);
        assert_eq!(report.computed, 6);
        assert_eq!(computed.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn panics_are_isolated_and_retried() {
        let plan = Arc::new(FaultPlan::new().panic_at(3).panic_at(7));
        let mut cfg = PoolConfig::with_jobs(4);
        cfg.faults = Some(plan.clone());
        let report =
            run_chunks(&cfg, 10, BTreeMap::new(), echo_worker, no_observe).expect("supervised");
        // Results identical to a fault-free run.
        assert_eq!(report.results, (0..10).map(|i| i * 10).collect::<Vec<_>>());
        // Both faults were absorbed and reported.
        assert_eq!(report.faults.len(), 2);
        assert!(matches!(report.faults[0], TaskFault::Panic { chunk: 3, .. }));
        assert!(matches!(report.faults[1], TaskFault::Panic { chunk: 7, .. }));
        assert_eq!(plan.fired(), 2);
    }

    #[test]
    fn retry_exhaustion_is_a_typed_error() {
        let plan = Arc::new(FaultPlan::new().panic_at_for(2, 10));
        let mut cfg = PoolConfig::with_jobs(2);
        cfg.retries = 1;
        cfg.faults = Some(plan);
        let err = run_chunks(&cfg, 5, BTreeMap::new(), echo_worker, no_observe)
            .expect_err("chunk 2 cannot succeed");
        match err {
            RuntimeError::ChunkFailed {
                chunk, attempts, last,
            } => {
                assert_eq!(chunk, 2);
                assert_eq!(attempts, 2);
                assert!(matches!(last, TaskFault::Panic { .. }));
            }
            other => panic!("expected ChunkFailed, got {other}"),
        }
    }

    #[test]
    fn deadline_overrun_is_detected_and_retried() {
        let plan = Arc::new(FaultPlan::new().delay_ms_at(1, 60));
        let mut cfg = PoolConfig::with_jobs(2);
        cfg.deadline = Some(Duration::from_millis(20));
        cfg.faults = Some(plan);
        let report =
            run_chunks(&cfg, 4, BTreeMap::new(), echo_worker, no_observe).expect("supervised");
        assert_eq!(report.results, vec![0, 10, 20, 30]);
        assert!(
            matches!(
                report.faults.as_slice(),
                [TaskFault::DeadlineExceeded { chunk: 1, .. }]
            ),
            "{:?}",
            report.faults
        );
    }

    #[test]
    fn invalid_results_are_retried() {
        let plan = Arc::new(FaultPlan::new().nan_at(0));
        let mut cfg = PoolConfig::with_jobs(2);
        cfg.faults = Some(plan);
        let worker = |ctx: &ChunkCtx<'_>| -> Result<u64, String> {
            if ctx.injected_nan() {
                return Err("injected NaN".into());
            }
            Ok(ctx.chunk + 1)
        };
        let report =
            run_chunks(&cfg, 3, BTreeMap::new(), worker, no_observe).expect("supervised");
        assert_eq!(report.results, vec![1, 2, 3]);
        assert!(matches!(
            report.faults.as_slice(),
            [TaskFault::Invalid { chunk: 0, .. }]
        ));
    }

    #[test]
    fn cancellation_reports_progress() {
        let cfg = PoolConfig::sequential();
        cfg.cancel.cancel();
        let err = run_chunks(&cfg, 6, BTreeMap::new(), echo_worker, no_observe)
            .expect_err("cancelled before start");
        assert_eq!(err, RuntimeError::Cancelled { done: 0, total: 6 });
    }

    #[test]
    fn observe_sees_every_computed_chunk_once() {
        let cfg = PoolConfig::with_jobs(3);
        let mut seen: Vec<u64> = Vec::new();
        let report = run_chunks(
            &cfg,
            9,
            BTreeMap::from([(4u64, 40u64)]),
            echo_worker,
            |chunk, value| {
                assert_eq!(*value, chunk * 10);
                seen.push(chunk);
                Ok(())
            },
        )
        .expect("runs");
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 5, 6, 7, 8]);
        assert_eq!(report.restored, 1);
    }

    #[test]
    fn observe_error_aborts_the_run() {
        let cfg = PoolConfig::with_jobs(2);
        let err = run_chunks(
            &cfg,
            50,
            BTreeMap::new(),
            echo_worker,
            |chunk, _| {
                if chunk == 0 || chunk == 30 {
                    // Simulate a journal write failure on some chunk.
                    Err(RuntimeError::Driver {
                        detail: "disk full".into(),
                    })
                } else {
                    Ok(())
                }
            },
        )
        .expect_err("observe failed");
        assert!(matches!(err, RuntimeError::Driver { .. }), "{err}");
    }

    #[test]
    fn progress_reaches_total_and_gauge_propagates() {
        let mut cfg = PoolConfig::with_jobs(2);
        let seen = Arc::new(Mutex::new(Vec::<(u64, Option<f64>)>::new()));
        let sink = seen.clone();
        cfg.progress = Some(Arc::new(move |p: &Progress| {
            sink.lock().unwrap_or_else(|e| e.into_inner()).push((p.done, p.gauge));
        }));
        let worker = |ctx: &ChunkCtx<'_>| -> Result<u64, String> {
            ctx.publish_gauge(ctx.chunk as f64, f64::max);
            Ok(ctx.chunk)
        };
        let report = run_chunks(&cfg, 6, BTreeMap::new(), worker, no_observe).expect("runs");
        assert_eq!(report.results.len(), 6);
        let seen = seen.lock().unwrap_or_else(|e| e.into_inner());
        assert_eq!(seen.len(), 6);
        assert_eq!(seen.last().map(|(d, _)| *d), Some(6));
        // The final gauge is the max over all published values.
        assert_eq!(cfg.gauge.get(), Some(5.0));
    }

    #[test]
    fn results_identical_across_jobs_and_faults() {
        // The determinism invariant at pool level: same chunk->result
        // mapping regardless of parallelism and injected faults.
        let baseline = run_chunks(
            &PoolConfig::sequential(),
            32,
            BTreeMap::new(),
            echo_worker,
            no_observe,
        )
        .expect("baseline")
        .results;
        for jobs in [2, 8] {
            let mut cfg = PoolConfig::with_jobs(jobs);
            cfg.faults = Some(Arc::new(
                FaultPlan::new().panic_at(0).panic_at(13).delay_ms_at(5, 5).nan_at(31),
            ));
            let report = run_chunks(
                &cfg,
                32,
                BTreeMap::new(),
                |ctx| {
                    if ctx.injected_nan() {
                        return Err("injected NaN".into());
                    }
                    echo_worker(ctx)
                },
                no_observe,
            )
            .expect("supervised");
            assert_eq!(report.results, baseline, "jobs = {jobs}");
        }
    }

    #[test]
    fn eta_is_sane() {
        let p = Progress {
            done: 5,
            total: 10,
            elapsed: Duration::from_secs(5),
            gauge: None,
            units: 0,
        };
        let eta = p.eta().expect("mid-run eta");
        assert!((eta.as_secs_f64() - 5.0).abs() < 1e-9);
        let done = Progress { done: 10, ..p };
        assert_eq!(done.eta(), Some(Duration::ZERO));
        let fresh = Progress { done: 0, ..p };
        assert_eq!(fresh.eta(), None);
    }

    #[test]
    fn units_accumulate_across_chunks() {
        let p = Progress {
            done: 1,
            total: 2,
            elapsed: Duration::from_secs(2),
            gauge: None,
            units: 0,
        };
        assert_eq!(p.units_per_sec(), None);
        let busy = Progress { units: 40, ..p };
        let rate = busy.units_per_sec().expect("nonzero units and elapsed");
        assert!((rate - 20.0).abs() < 1e-9);

        let cfg = PoolConfig {
            jobs: 4,
            ..PoolConfig::default()
        };
        let worker = |ctx: &ChunkCtx<'_>| -> Result<u64, String> {
            ctx.add_units(5);
            Ok(ctx.chunk)
        };
        let report = run_chunks(&cfg, 8, BTreeMap::new(), worker, no_observe).expect("runs");
        assert_eq!(report.results.len(), 8);
        assert_eq!(cfg.units.get(), 40);
    }

    #[test]
    fn errors_display_one_line() {
        let faults = [
            TaskFault::Panic {
                chunk: 1,
                attempt: 0,
                message: "boom".into(),
            },
            TaskFault::DeadlineExceeded {
                chunk: 2,
                attempt: 1,
                elapsed_ms: 100,
                deadline_ms: 50,
            },
            TaskFault::Invalid {
                chunk: 3,
                attempt: 2,
                detail: "NaN".into(),
            },
        ];
        for fault in &faults {
            let msg = format!("{fault}");
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
        let errs = [
            RuntimeError::ChunkFailed {
                chunk: 1,
                attempts: 3,
                last: faults[0].clone(),
            },
            RuntimeError::Cancelled { done: 3, total: 9 },
            RuntimeError::Driver { detail: "x".into() },
        ];
        for e in &errs {
            let msg = format!("{e}");
            assert!(!msg.is_empty() && !msg.contains('\n'), "{msg:?}");
        }
    }
}
