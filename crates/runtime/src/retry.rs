//! Typed retry/backoff policy with deterministic jitter.
//!
//! Fast transient faults (a panicked chunk, a briefly overloaded solver, a
//! tripped service circuit breaker) should not be retried in lock-step:
//! immediate re-attempts synchronise failure waves, and fixed delays make
//! every retrier hammer the resource at the same instant. [`RetryPolicy`]
//! encodes the standard answer — exponential backoff with bounded,
//! *deterministically* jittered delays — as a plain value that the
//! supervised pool (between chunk attempts, replacing the old fixed
//! immediate-retry of the DC-solver escalation bookkeeping) and the
//! service circuit breaker (between half-open probes) both reuse.
//!
//! Determinism matters here for the same reason it does everywhere else in
//! this workspace: a delay schedule must be a pure function of `(seed,
//! stream, attempt)` so tests can pin it and reruns reproduce it. The
//! jitter is derived from a SplitMix64 hash of those inputs, not from a
//! clock or a global RNG.
//!
//! # Examples
//!
//! ```
//! use ctsdac_runtime::RetryPolicy;
//! use std::time::Duration;
//!
//! let policy = RetryPolicy::jittered(Duration::from_millis(2), 4.0, Duration::from_millis(100));
//! // Attempt 0 is the first try: no delay before it.
//! assert_eq!(policy.delay_for(7, 0), Duration::ZERO);
//! // Later attempts back off exponentially (2 ms, 8 ms, 32 ms, … capped),
//! // each scaled into [1 - jitter, 1] of the nominal value.
//! let d1 = policy.delay_for(7, 1);
//! let d2 = policy.delay_for(7, 2);
//! assert!(d1 <= Duration::from_millis(2));
//! assert!(d2 <= Duration::from_millis(8));
//! // Pure function of (stream, attempt): re-querying reproduces it.
//! assert_eq!(d1, policy.delay_for(7, 1));
//! ```

use std::time::Duration;

/// Exponential backoff schedule with bounded deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Nominal delay before the first retry (attempt 1).
    pub base: Duration,
    /// Multiplier applied per further attempt (≥ 1 for growth).
    pub factor: f64,
    /// Hard cap on the nominal delay.
    pub max: Duration,
    /// Jitter fraction in `[0, 1]`: the delay is scaled uniformly into
    /// `[1 - jitter, 1]` of its nominal value. `0` disables jitter.
    pub jitter: f64,
    /// Seed folded into the jitter hash so distinct policies (or tenants)
    /// decorrelate even at the same `(stream, attempt)`.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// The do-nothing policy: every delay is zero (immediate retry).
    fn default() -> Self {
        Self::none()
    }
}

impl RetryPolicy {
    /// Immediate retry — all delays are zero. The drop-in equivalent of
    /// the historical behaviour.
    pub fn none() -> Self {
        Self {
            base: Duration::ZERO,
            factor: 1.0,
            max: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Exponential backoff `base · factor^(attempt-1)` capped at `max`,
    /// with the default 50 % jitter window.
    pub fn jittered(base: Duration, factor: f64, max: Duration) -> Self {
        Self {
            base,
            factor,
            max,
            jitter: 0.5,
            seed: 0,
        }
    }

    /// The pool's default chunk-retry backoff: 2 ms base, ×4 per attempt,
    /// 100 ms cap, 50 % jitter. Short enough to be invisible on a healthy
    /// run (a chunk retries at most `retries` times), long enough to
    /// desynchronise a wave of faulting workers.
    pub fn default_backoff() -> Self {
        Self::jittered(
            Duration::from_millis(2),
            4.0,
            Duration::from_millis(100),
        )
    }

    /// Re-seeds the jitter hash.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when every delay this policy can produce is zero.
    pub fn is_immediate(&self) -> bool {
        self.base.is_zero()
    }

    /// The delay to sleep before `attempt` of `stream` (attempt 0 is the
    /// first try and never waits). A pure function of
    /// `(self, stream, attempt)`.
    pub fn delay_for(&self, stream: u64, attempt: u32) -> Duration {
        if attempt == 0 || self.base.is_zero() {
            return Duration::ZERO;
        }
        let exp = (attempt - 1).min(63);
        let nominal = self.base.as_secs_f64() * self.factor.max(1.0).powi(exp as i32);
        let capped = nominal.min(self.max.as_secs_f64().max(self.base.as_secs_f64()));
        let jitter = self.jitter.clamp(0.0, 1.0);
        let scale = if jitter == 0.0 {
            1.0
        } else {
            let u = unit_hash(self.seed, stream, attempt);
            1.0 - jitter * u
        };
        Duration::from_secs_f64(capped * scale)
    }
}

/// SplitMix64-derived uniform value in `[0, 1)` — the deterministic jitter
/// source. Small, well-mixed, and dependency-free.
fn unit_hash(seed: u64, stream: u64, attempt: u32) -> f64 {
    let mut z = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(stream)
        .wrapping_mul(0xbf58_476d_1ce4_e5b9)
        .wrapping_add(u64::from(attempt));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // 53 high bits → [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_never_waits() {
        let p = RetryPolicy::default_backoff();
        for stream in 0..10 {
            assert_eq!(p.delay_for(stream, 0), Duration::ZERO);
        }
    }

    #[test]
    fn none_policy_is_immediate_everywhere() {
        let p = RetryPolicy::none();
        assert!(p.is_immediate());
        for attempt in 0..6 {
            assert_eq!(p.delay_for(3, attempt), Duration::ZERO);
        }
        assert_eq!(RetryPolicy::default(), RetryPolicy::none());
    }

    #[test]
    fn nominal_delays_grow_exponentially_and_cap() {
        let mut p = RetryPolicy::jittered(
            Duration::from_millis(10),
            2.0,
            Duration::from_millis(40),
        );
        p.jitter = 0.0; // isolate the nominal schedule
        assert_eq!(p.delay_for(0, 1), Duration::from_millis(10));
        assert_eq!(p.delay_for(0, 2), Duration::from_millis(20));
        assert_eq!(p.delay_for(0, 3), Duration::from_millis(40));
        // Capped from here on.
        assert_eq!(p.delay_for(0, 4), Duration::from_millis(40));
        assert_eq!(p.delay_for(0, 20), Duration::from_millis(40));
    }

    #[test]
    fn jitter_stays_in_window_and_is_deterministic() {
        let p = RetryPolicy::default_backoff().with_seed(99);
        for stream in 0..20u64 {
            for attempt in 1..5u32 {
                let d = p.delay_for(stream, attempt);
                let nominal = p.base.as_secs_f64()
                    * p.factor.powi((attempt - 1) as i32);
                let nominal = nominal.min(p.max.as_secs_f64());
                let lo = nominal * (1.0 - p.jitter) - 1e-9;
                let hi = nominal + 1e-9;
                let secs = d.as_secs_f64();
                assert!(secs >= lo && secs <= hi, "{secs} outside [{lo}, {hi}]");
                assert_eq!(d, p.delay_for(stream, attempt), "must be pure");
            }
        }
    }

    #[test]
    fn jitter_decorrelates_streams_and_seeds() {
        let p = RetryPolicy::default_backoff();
        let a = p.delay_for(1, 2);
        let b = p.delay_for(2, 2);
        let c = p.with_seed(7).delay_for(1, 2);
        // Identical values would mean the hash ignores its inputs; with a
        // 53-bit uniform this is astronomically unlikely.
        assert!(a != b || a != c, "jitter ignores stream and seed");
    }

    #[test]
    fn degenerate_parameters_stay_finite() {
        // factor < 1 clamps to 1 (no shrinking schedules), huge attempts
        // saturate instead of overflowing.
        let p = RetryPolicy {
            base: Duration::from_millis(5),
            factor: 0.1,
            max: Duration::from_millis(50),
            jitter: 2.0, // clamped to 1
            seed: 0,
        };
        let d = p.delay_for(0, u32::MAX);
        assert!(d <= Duration::from_millis(50));
    }
}
