//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cheap clonable flag shared between a supervisor
//! and its workers. Cancellation is *cooperative*: setting the flag never
//! interrupts a running computation; workers observe it between chunks (the
//! pool checks before claiming work) and long-running chunk bodies may poll
//! it themselves via the chunk context.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag.
///
/// # Examples
///
/// ```
/// use ctsdac_runtime::CancelToken;
///
/// let token = CancelToken::new();
/// let worker_view = token.clone();
/// assert!(!worker_view.is_cancelled());
/// token.cancel();
/// assert!(worker_view.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let token = CancelToken::new();
        let view = token.clone();
        let h = std::thread::spawn(move || {
            while !view.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(h.join().expect("worker thread panicked"));
    }
}
