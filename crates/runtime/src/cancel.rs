//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is a cheap clonable flag shared between a supervisor
//! and its workers. Cancellation is *cooperative*: setting the flag never
//! interrupts a running computation; workers observe it between chunks (the
//! pool checks before claiming work) and long-running chunk bodies may poll
//! it themselves via the chunk context.
//!
//! A token may additionally carry a **deadline** ([`CancelToken::with_deadline`]):
//! once the monotonic clock passes it, the token reads as cancelled without
//! anyone calling [`CancelToken::cancel`]. This is how a request-level
//! deadline propagates end to end — the service hands the flow a deadlined
//! token, the pool stops claiming chunks the moment it expires, and the
//! caller can distinguish an explicit cancel from an expiry via
//! [`CancelToken::is_expired`] to report a typed `DeadlineExceeded`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared cancellation flag, optionally bound to a wall-clock deadline.
///
/// # Examples
///
/// ```
/// use ctsdac_runtime::CancelToken;
///
/// let token = CancelToken::new();
/// let worker_view = token.clone();
/// assert!(!worker_view.is_cancelled());
/// token.cancel();
/// assert!(worker_view.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    /// Monotonic instant past which the token reads as cancelled.
    deadline: Option<Instant>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a token that self-cancels once the monotonic clock passes
    /// `deadline`. Clones share the explicit-cancel flag *and* the
    /// deadline.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Creates a token that self-cancels `budget` from now.
    pub fn expiring_in(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// The deadline, if the token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Wall-clock budget left before expiry: `None` without a deadline,
    /// `Some(ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// True once the deadline (if any) has passed, regardless of the
    /// explicit-cancel flag.
    pub fn is_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`CancelToken::cancel`] has been called on any clone, or
    /// the deadline (if any) has passed.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst) || self.is_expired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(a.is_cancelled());
    }

    #[test]
    fn tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn visible_across_threads() {
        let token = CancelToken::new();
        let view = token.clone();
        let h = std::thread::spawn(move || {
            while !view.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        token.cancel();
        assert!(h.join().expect("worker thread panicked"));
    }

    #[test]
    fn deadline_expiry_reads_as_cancelled() {
        let token = CancelToken::expiring_in(Duration::from_millis(30));
        assert!(!token.is_cancelled());
        assert!(!token.is_expired());
        assert!(token.remaining().expect("has a deadline") > Duration::ZERO);
        std::thread::sleep(Duration::from_millis(40));
        assert!(token.is_expired());
        assert!(token.is_cancelled());
        assert_eq!(token.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn explicit_cancel_is_distinguishable_from_expiry() {
        let token = CancelToken::expiring_in(Duration::from_secs(3600));
        token.cancel();
        assert!(token.is_cancelled());
        assert!(!token.is_expired(), "far-future deadline has not passed");

        let plain = CancelToken::new();
        plain.cancel();
        assert!(plain.is_cancelled() && !plain.is_expired());
        assert_eq!(plain.remaining(), None);
        assert_eq!(plain.deadline(), None);
    }

    #[test]
    fn deadline_is_shared_by_clones() {
        let a = CancelToken::expiring_in(Duration::from_millis(20));
        let b = a.clone();
        std::thread::sleep(Duration::from_millis(30));
        assert!(a.is_cancelled() && b.is_cancelled());
    }
}
