//! Supervised parallel runtime for the `ctsdac` workspace.
//!
//! Design-space exploration (`DesignSpace::sweep`, Pareto fronts) and
//! Monte-Carlo yield validation are embarrassingly parallel and long
//! running — exactly the workloads where a single panicking worker, a
//! hung chunk, or a killed process would otherwise throw away hours of
//! results. This crate provides the supervision layer that makes those
//! runs robust without sacrificing the workspace's determinism policy:
//!
//! * [`pool`] — a std-only worker pool with panic isolation
//!   (`catch_unwind`; a panicking chunk becomes a typed
//!   [`TaskFault`], never a poisoned run), per-chunk deadlines,
//!   bounded retry, and cooperative [`CancelToken`] cancellation.
//! * [`journal`] — a plain-text JSONL write-ahead checkpoint journal,
//!   fsync'd per chunk, corruption-tolerant on load (a torn tail is
//!   dropped and recomputed, not an error).
//! * [`exec`] — [`ExecPolicy`] and [`run_journaled`], the glue that runs
//!   chunks under supervision with checkpoint-resume.
//! * [`mc`] — supervised Monte-Carlo drivers ([`yield_supervised`],
//!   [`summary_supervised`]) built on counter-based per-chunk RNG
//!   streams.
//! * [`fault`] — deterministic, scriptable fault injection
//!   ([`FaultPlan`]) so the supervision invariants are proven by tests,
//!   not asserted on faith.
//! * [`retry`] — a typed [`RetryPolicy`] (exponential backoff with
//!   deterministic jitter) shared by the pool's chunk re-attempts and the
//!   service layer's circuit breaker.
//!
//! # Determinism contract
//!
//! Chunk results are keyed by chunk index and computed from
//! `stream_rng(seed, chunk)` — pure functions of the run identity. The
//! assembled output is therefore bit-identical for any worker count,
//! with faults injected or not, and across kill + resume:
//!
//! ```
//! use ctsdac_runtime::{yield_supervised, ExecPolicy, McPlan};
//! use ctsdac_stats::Rng;
//!
//! let plan = McPlan::new(42, 2_000, 250)?;
//! let pass = |rng: &mut ctsdac_stats::Xoshiro256PlusPlus, _trial: u64| {
//!     rng.gen_range(0.0..1.0) < 0.9
//! };
//! let serial = yield_supervised(&ExecPolicy::sequential(), &plan, "demo", pass)?;
//! let eight = yield_supervised(&ExecPolicy::with_jobs(8), &plan, "demo", pass)?;
//! assert_eq!(serial.value, eight.value);
//! # Ok::<(), ctsdac_runtime::RuntimeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cancel;
pub mod exec;
pub mod fault;
pub mod journal;
pub mod mc;
pub mod pool;
pub mod retry;

pub use cancel::CancelToken;
pub use exec::{run_journaled, ExecPolicy, Supervised};
pub use fault::{truncate_tail, FaultPlan};
pub use journal::{decode_f64, encode_f64, Journal, JournalError, JournalMeta, LoadReport};
pub use mc::{
    summary_supervised, yield_supervised, yield_vector_supervised,
    yield_vector_supervised_chunked, McPlan,
};
pub use retry::RetryPolicy;
pub use pool::{
    run_chunks, ChunkCtx, PoolConfig, Progress, ProgressGauge, RunReport, RuntimeError, TaskFault,
};
