//! Journaled execution: the glue between the supervised pool and the
//! write-ahead checkpoint journal.
//!
//! [`run_journaled`] is the one entry point drivers build on: it loads any
//! existing checkpoint (when resuming), skips chunks already durable,
//! appends every newly computed chunk to the journal *before* counting it
//! done, and returns the assembled per-chunk results. Because chunk
//! results are keyed by index and computed from per-chunk RNG streams,
//! the assembled output is bit-identical whether the run completed in one
//! go, was parallelised differently, or was killed and resumed — the
//! invariant the integration tests prove under fault injection.

use crate::journal::{Journal, JournalMeta, LoadReport};
use crate::pool::{run_chunks, ChunkCtx, PoolConfig, RuntimeError};
use ctsdac_obs as obs;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// How a supervised run executes: pool shape plus checkpoint behaviour.
#[derive(Debug, Clone, Default)]
pub struct ExecPolicy {
    /// Worker pool configuration (jobs, deadline, retries, cancellation,
    /// fault plan, progress).
    pub pool: PoolConfig,
    /// Journal file path; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// When true, an existing journal at `checkpoint` is loaded and its
    /// chunks are skipped; when false the journal is recreated from
    /// scratch. Ignored without a checkpoint path.
    pub resume: bool,
}

impl ExecPolicy {
    /// Single-threaded, no checkpoint — the drop-in default.
    pub fn sequential() -> Self {
        Self {
            pool: PoolConfig::sequential(),
            ..Self::default()
        }
    }

    /// `jobs` workers, no checkpoint.
    pub fn with_jobs(jobs: usize) -> Self {
        Self {
            pool: PoolConfig::with_jobs(jobs),
            ..Self::default()
        }
    }

    /// Adds a checkpoint journal at `path`.
    pub fn checkpoint_at(mut self, path: impl Into<PathBuf>) -> Self {
        self.checkpoint = Some(path.into());
        self
    }

    /// Marks the run as resuming from an existing journal.
    pub fn resuming(mut self) -> Self {
        self.resume = true;
        self
    }
}

/// A supervised result together with its supervision record.
#[derive(Debug, Clone, PartialEq)]
pub struct Supervised<T> {
    /// The assembled value.
    pub value: T,
    /// Faults absorbed by retry during the run (chunk order).
    pub faults: Vec<crate::pool::TaskFault>,
    /// Chunks restored from the journal instead of recomputed.
    pub restored: u64,
    /// Chunks computed this run.
    pub computed: u64,
    /// Journal lines dropped as corrupt (torn tail, undecodable payload).
    pub dropped: u64,
}

impl<T> Supervised<T> {
    /// Maps the value, keeping the supervision record.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Supervised<U> {
        Supervised {
            value: f(self.value),
            faults: self.faults,
            restored: self.restored,
            computed: self.computed,
            dropped: self.dropped,
        }
    }
}

/// Runs `meta.chunks` chunks under supervision with optional
/// checkpoint-resume, returning one decoded result per chunk in chunk
/// order.
///
/// `encode`/`decode` serialise one chunk result to/from the journal's
/// payload string; `decode` returning `None` drops the journal entry and
/// recomputes that chunk (payload corruption is handled like a torn
/// line, not an error). `worker` must be a pure function of the chunk
/// index for the determinism guarantee to hold.
///
/// # Errors
///
/// Journal create/resume failures ([`RuntimeError::Journal`]), retry
/// exhaustion ([`RuntimeError::ChunkFailed`]), or cancellation
/// ([`RuntimeError::Cancelled`]).
pub fn run_journaled<T, W, D, E>(
    policy: &ExecPolicy,
    meta: &JournalMeta,
    decode: D,
    encode: E,
    worker: W,
) -> Result<Supervised<Vec<T>>, RuntimeError>
where
    T: Send,
    W: Fn(&ChunkCtx<'_>) -> Result<T, String> + Sync,
    D: Fn(&str) -> Option<T>,
    E: Fn(&T) -> String,
{
    let mut dropped = 0u64;
    let (mut journal, restored) = match &policy.checkpoint {
        Some(path) => {
            let (journal, raw, load) = if policy.resume {
                Journal::resume(path, meta)?
            } else {
                (Journal::create(path, meta)?, BTreeMap::new(), LoadReport::default())
            };
            dropped += load.dropped;
            let mut decoded = BTreeMap::new();
            for (chunk, data) in raw {
                match decode(&data) {
                    Some(value) => {
                        decoded.insert(chunk, value);
                    }
                    None => dropped += 1,
                }
            }
            (Some(journal), decoded)
        }
        None => (None, BTreeMap::new()),
    };

    obs::count(obs::Counter::CheckpointDropped, dropped);
    obs::count(obs::Counter::CheckpointRestored, restored.len() as u64);

    let report = run_chunks(&policy.pool, meta.chunks, restored, worker, |chunk, value| {
        if let Some(journal) = journal.as_mut() {
            journal.append(chunk, &encode(value))?;
            obs::incr(obs::Counter::CheckpointFlushes);
        }
        Ok(())
    })?;

    Ok(Supervised {
        value: report.results,
        faults: report.faults,
        restored: report.restored,
        computed: report.computed,
        dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{truncate_tail, FaultPlan};
    use crate::journal::{encode_f64, decode_f64};
    use std::path::Path;
    use std::sync::Arc;

    fn meta(chunks: u64) -> JournalMeta {
        JournalMeta {
            kind: "exec-test".into(),
            seed: 7,
            chunks,
            params: "unit".into(),
        }
    }

    fn square(ctx: &ChunkCtx<'_>) -> Result<f64, String> {
        Ok(ctx.chunk as f64 * ctx.chunk as f64 + 0.5)
    }

    fn run(policy: &ExecPolicy, chunks: u64) -> Result<Supervised<Vec<f64>>, RuntimeError> {
        run_journaled(
            policy,
            &meta(chunks),
            |s| decode_f64(s),
            |v| encode_f64(*v),
            square,
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ctsdac-runtime-exec-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn no_checkpoint_runs_plain() {
        let out = run(&ExecPolicy::with_jobs(4), 12).expect("runs");
        assert_eq!(out.value.len(), 12);
        assert_eq!(out.value[3], 9.5);
        assert_eq!(out.restored, 0);
        assert_eq!(out.computed, 12);
    }

    #[test]
    fn checkpoint_then_resume_skips_done_chunks() {
        let path = tmp("resume.jsonl");
        cleanup(&path);
        let first = run(&ExecPolicy::with_jobs(2).checkpoint_at(&path), 10).expect("first run");
        assert_eq!(first.computed, 10);
        // Resume over a complete journal: nothing recomputed.
        let second = run(
            &ExecPolicy::with_jobs(2).checkpoint_at(&path).resuming(),
            10,
        )
        .expect("resume");
        assert_eq!(second.restored, 10);
        assert_eq!(second.computed, 0);
        assert_eq!(second.value, first.value);
        cleanup(&path);
    }

    #[test]
    fn resume_after_tail_corruption_recomputes_only_lost_chunks() {
        let path = tmp("corrupt.jsonl");
        cleanup(&path);
        let clean = run(&ExecPolicy::sequential(), 8).expect("baseline");
        run(&ExecPolicy::sequential().checkpoint_at(&path), 8).expect("journaled");
        truncate_tail(&path, 7).expect("corrupt the tail");
        let resumed = run(&ExecPolicy::with_jobs(4).checkpoint_at(&path).resuming(), 8)
            .expect("resume");
        assert!(resumed.dropped >= 1);
        assert!(resumed.restored < 8);
        assert_eq!(resumed.restored + resumed.computed, 8);
        // Bit-identical to the clean run despite kill + corruption + resume.
        let clean_bits: Vec<u64> = clean.value.iter().map(|v| v.to_bits()).collect();
        let resumed_bits: Vec<u64> = resumed.value.iter().map(|v| v.to_bits()).collect();
        assert_eq!(clean_bits, resumed_bits);
        cleanup(&path);
    }

    #[test]
    fn faults_do_not_change_journaled_results() {
        let path = tmp("faulty.jsonl");
        cleanup(&path);
        let clean = run(&ExecPolicy::sequential(), 16).expect("baseline");
        let mut policy = ExecPolicy::with_jobs(4).checkpoint_at(&path);
        policy.pool.faults = Some(Arc::new(FaultPlan::new().panic_at(2).panic_at(11)));
        let faulty = run(&policy, 16).expect("supervised");
        assert_eq!(faulty.faults.len(), 2);
        assert_eq!(faulty.value, clean.value);
        cleanup(&path);
    }

    #[test]
    fn undecodable_payload_is_dropped_and_recomputed() {
        let path = tmp("undecodable.jsonl");
        cleanup(&path);
        run(&ExecPolicy::sequential().checkpoint_at(&path), 4).expect("journaled");
        // Rewrite the journal with one entry whose payload is valid JSON
        // but not a valid f64 encoding.
        let text = std::fs::read_to_string(&path).expect("read");
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[2] = "{\"chunk\":1,\"data\":\"not-a-float\"}".into();
        std::fs::write(&path, lines.join("\n") + "\n").expect("write");
        let resumed = run(&ExecPolicy::sequential().checkpoint_at(&path).resuming(), 4)
            .expect("resume");
        assert_eq!(resumed.dropped, 1);
        assert_eq!(resumed.restored, 3);
        assert_eq!(resumed.computed, 1);
        assert_eq!(resumed.value[1], 1.5);
        cleanup(&path);
    }

    #[test]
    fn map_keeps_the_supervision_record() {
        let out = run(&ExecPolicy::sequential(), 3).expect("runs");
        let mapped = out.map(|v| v.len());
        assert_eq!(mapped.value, 3);
        assert_eq!(mapped.computed, 3);
    }
}
