//! Torn-write recovery: the checkpoint journal must survive a crash at
//! *any* byte boundary.
//!
//! A kill during the last `write(2)` can leave the journal with a prefix
//! of the final line — any prefix. For every possible cut point inside
//! the last line (including the newline itself, i.e. the line missing
//! entirely), resuming must drop the torn tail, recompute only what was
//! lost, and assemble a result bit-identical to an uninterrupted run.

use ctsdac_runtime::exec::{run_journaled, ExecPolicy, Supervised};
use ctsdac_runtime::fault::truncate_tail;
use ctsdac_runtime::journal::{decode_f64, encode_f64, JournalMeta};
use ctsdac_runtime::pool::{ChunkCtx, RuntimeError};
use std::path::{Path, PathBuf};

const CHUNKS: u64 = 6;

fn meta() -> JournalMeta {
    JournalMeta {
        kind: "torn-test".into(),
        seed: 41,
        chunks: CHUNKS,
        params: "unit".into(),
    }
}

/// An irrational-valued worker so every payload exercises full f64
/// round-tripping (all 17 significant digits).
fn worker(ctx: &ChunkCtx<'_>) -> Result<f64, String> {
    Ok((ctx.chunk as f64 + 1.0).sqrt() * std::f64::consts::PI)
}

fn run(policy: &ExecPolicy) -> Result<Supervised<Vec<f64>>, RuntimeError> {
    run_journaled(policy, &meta(), |s| decode_f64(s), |v| encode_f64(*v), worker)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ctsdac-runtime-torn-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Byte length of the last journal line including its terminating newline.
fn last_line_len(journal: &[u8]) -> usize {
    assert_eq!(*journal.last().expect("non-empty journal"), b'\n');
    let body = &journal[..journal.len() - 1];
    let start = body
        .iter()
        .rposition(|&b| b == b'\n')
        .map(|p| p + 1)
        .unwrap_or(0);
    journal.len() - start
}

#[test]
fn resume_is_bit_identical_after_truncation_at_every_byte() {
    let clean = run(&ExecPolicy::sequential()).expect("baseline");
    let clean_bits = bits(&clean.value);

    let path = tmp("every-byte.jsonl");
    cleanup(&path);
    run(&ExecPolicy::sequential().checkpoint_at(&path)).expect("journaled");
    let pristine = std::fs::read(&path).expect("read journal");
    let tail = last_line_len(&pristine);
    assert!(tail > 2, "degenerate last line ({tail} bytes)");

    // Cut 1..=tail bytes off the end: every possible torn prefix of the
    // last line, from "newline missing" to "line gone entirely".
    for cut in 1..=tail {
        std::fs::write(&path, &pristine).expect("restore journal");
        truncate_tail(&path, cut as u64).expect("truncate");
        let resumed = run(&ExecPolicy::sequential().checkpoint_at(&path).resuming())
            .unwrap_or_else(|e| panic!("resume failed at cut {cut}: {e}"));
        assert_eq!(
            bits(&resumed.value),
            clean_bits,
            "value diverged at cut {cut}"
        );
        assert_eq!(
            resumed.restored + resumed.computed,
            CHUNKS,
            "chunk accounting broken at cut {cut}"
        );
        // Only the torn chunk may be recomputed.
        assert_eq!(resumed.computed, 1, "over-recompute at cut {cut}");
        if cut < tail {
            // A strict prefix of the line survives: it must be dropped.
            assert_eq!(resumed.dropped, 1, "torn line not dropped at cut {cut}");
        } else {
            // The line is gone cleanly: nothing to drop.
            assert_eq!(resumed.dropped, 0, "phantom drop at cut {cut}");
        }
    }
    cleanup(&path);
}

/// The same guarantee when the resume itself runs parallel: worker count
/// must not interact with torn-tail recovery.
#[test]
fn parallel_resume_after_torn_tail_is_bit_identical() {
    let clean = run(&ExecPolicy::sequential()).expect("baseline");
    let path = tmp("parallel-resume.jsonl");
    cleanup(&path);
    run(&ExecPolicy::sequential().checkpoint_at(&path)).expect("journaled");
    let pristine = std::fs::read(&path).expect("read journal");
    let tail = last_line_len(&pristine);
    for cut in [1, tail / 2, tail] {
        std::fs::write(&path, &pristine).expect("restore journal");
        truncate_tail(&path, cut as u64).expect("truncate");
        let resumed = run(&ExecPolicy::with_jobs(4).checkpoint_at(&path).resuming())
            .unwrap_or_else(|e| panic!("resume failed at cut {cut}: {e}"));
        assert_eq!(bits(&resumed.value), bits(&clean.value), "cut {cut}");
    }
    cleanup(&path);
}

/// Torn-tail recovery composes with checkpointing the recovery run
/// itself: after a resume over a truncated journal, the journal is whole
/// again and a second resume restores everything.
#[test]
fn repaired_journal_restores_fully_on_the_next_resume() {
    let path = tmp("repair.jsonl");
    cleanup(&path);
    run(&ExecPolicy::sequential().checkpoint_at(&path)).expect("journaled");
    truncate_tail(&path, 3).expect("truncate");
    let first = run(&ExecPolicy::sequential().checkpoint_at(&path).resuming())
        .expect("first resume");
    assert_eq!(first.computed, 1);
    let second = run(&ExecPolicy::sequential().checkpoint_at(&path).resuming())
        .expect("second resume");
    assert_eq!(second.restored, CHUNKS);
    assert_eq!(second.computed, 0);
    assert_eq!(bits(&second.value), bits(&first.value));
    cleanup(&path);
}
