//! Cancellation must never flush a chunk the merge will not consume.
//!
//! A cancel racing a completion used to journal the late chunk anyway:
//! the worker had already sent its `Done` report, and the supervisor
//! appended it before noticing the cancel. The run then returned
//! `Cancelled`, so nothing merged that chunk — but the journal carried it,
//! and a later resume would restore state the cancelled run never
//! acknowledged producing. These tests pin the fixed contract:
//!
//! * chunks completed and journaled *before* the cancel stay durable;
//! * chunks completing *after* the cancel is observable are dropped from
//!   both the result slots and the journal;
//! * a resume over the post-cancel journal recomputes exactly the dropped
//!   chunks and assembles a result bit-identical to an uninterrupted run
//!   (the `torn_journal` guarantee, extended to cancellation).

use ctsdac_runtime::exec::{run_journaled, ExecPolicy, Supervised};
use ctsdac_runtime::journal::{decode_f64, encode_f64, JournalMeta};
use ctsdac_runtime::pool::{run_chunks, ChunkCtx, PoolConfig, RuntimeError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const CHUNKS: u64 = 6;
/// The chunk whose body cancels the run and then completes anyway,
/// modelling a completion that loses the race against a cancel.
const CANCEL_AT: u64 = 2;

fn meta() -> JournalMeta {
    JournalMeta {
        kind: "cancel-journal-test".into(),
        seed: 23,
        chunks: CHUNKS,
        params: "unit".into(),
    }
}

/// Irrational payloads so journal round-tripping is exercised at full
/// f64 precision.
fn value_of(chunk: u64) -> f64 {
    (chunk as f64 + 2.0).sqrt() * std::f64::consts::E
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ctsdac-runtime-cancel-journal-test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn cleanup(path: &Path) {
    std::fs::remove_file(path).ok();
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Blocks until `ready()` holds, so a test worker can wait for the
/// supervisor to catch up before triggering the cancel race on purpose.
fn wait_until(ready: impl Fn() -> bool) {
    let give_up = Instant::now() + Duration::from_secs(10);
    while !ready() {
        assert!(Instant::now() < give_up, "test synchronisation timed out");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Chunk indices present in a journal file (skipping the meta line).
fn journaled_chunks(path: &Path) -> Vec<u64> {
    let text = std::fs::read_to_string(path).expect("read journal");
    text.lines()
        .filter_map(|line| {
            let (_, rest) = line.split_once("\"chunk\":")?;
            let digits: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            digits.parse().ok()
        })
        .collect()
}

#[test]
fn post_cancel_completion_is_not_observed() {
    // Sequential pool: chunks 0 and 1 complete and are observed; chunk 2's
    // body cancels the shared token and then returns a value. That `Done`
    // report reaches the supervisor after the cancel is set, so it must be
    // dropped, not handed to `observe` (the journal-append hook).
    let cfg = PoolConfig::sequential();
    let token = cfg.cancel.clone();
    let observed = Mutex::new(Vec::<u64>::new());
    let observed_count = AtomicU64::new(0);
    let err = run_chunks(
        &cfg,
        CHUNKS,
        BTreeMap::new(),
        |ctx: &ChunkCtx<'_>| {
            if ctx.chunk == CANCEL_AT {
                // Let the supervisor observe every earlier chunk first, so
                // the cancel races exactly this chunk's completion.
                wait_until(|| observed_count.load(Ordering::SeqCst) >= CANCEL_AT);
                token.cancel();
            }
            Ok(value_of(ctx.chunk))
        },
        |chunk, _value| {
            observed.lock().unwrap_or_else(|e| e.into_inner()).push(chunk);
            observed_count.fetch_add(1, Ordering::SeqCst);
            Ok(())
        },
    )
    .expect_err("run was cancelled");
    assert!(matches!(err, RuntimeError::Cancelled { .. }), "{err}");
    let observed = observed.into_inner().unwrap_or_else(|e| e.into_inner());
    assert_eq!(
        observed,
        vec![0, 1],
        "the post-cancel completion leaked into the journal hook"
    );
}

#[test]
fn cancelled_run_journals_only_pre_cancel_chunks() {
    let path = tmp("cancel-flush.jsonl");
    cleanup(&path);
    let policy = ExecPolicy::sequential().checkpoint_at(&path);
    let token = policy.pool.cancel.clone();
    let err = run_journaled(
        &policy,
        &meta(),
        |s| decode_f64(s),
        |v| encode_f64(*v),
        |ctx: &ChunkCtx<'_>| {
            if ctx.chunk == CANCEL_AT {
                // Journal appends fsync per chunk, so polling the file is
                // an exact "supervisor caught up" signal.
                wait_until(|| journaled_chunks(&path).len() as u64 >= CANCEL_AT);
                token.cancel();
            }
            Ok(value_of(ctx.chunk))
        },
    )
    .expect_err("run was cancelled");
    assert!(matches!(err, RuntimeError::Cancelled { .. }), "{err}");
    assert_eq!(
        journaled_chunks(&path),
        vec![0, 1],
        "cancel racing a flush journaled a chunk the merge never consumed"
    );
    cleanup(&path);
}

#[test]
fn resume_after_cancel_recomputes_dropped_chunks_bit_identically() {
    // Baseline: an uninterrupted sequential run.
    let clean: Supervised<Vec<f64>> = run_journaled(
        &ExecPolicy::sequential(),
        &meta(),
        |s| decode_f64(s),
        |v| encode_f64(*v),
        |ctx: &ChunkCtx<'_>| Ok(value_of(ctx.chunk)),
    )
    .expect("baseline");

    // Cancelled first run: chunks 0 and 1 durable, the rest dropped.
    let path = tmp("cancel-resume.jsonl");
    cleanup(&path);
    let policy = ExecPolicy::sequential().checkpoint_at(&path);
    let token = policy.pool.cancel.clone();
    run_journaled(
        &policy,
        &meta(),
        |s| decode_f64(s),
        |v| encode_f64(*v),
        |ctx: &ChunkCtx<'_>| {
            if ctx.chunk == CANCEL_AT {
                wait_until(|| journaled_chunks(&path).len() as u64 >= CANCEL_AT);
                token.cancel();
            }
            Ok(value_of(ctx.chunk))
        },
    )
    .expect_err("first run cancelled");

    // Resume (fresh token) recomputes exactly the non-durable chunks and
    // reproduces the clean result bit for bit.
    let recomputed = AtomicU64::new(0);
    let resumed = run_journaled(
        &ExecPolicy::sequential().checkpoint_at(&path).resuming(),
        &meta(),
        |s| decode_f64(s),
        |v| encode_f64(*v),
        |ctx: &ChunkCtx<'_>| {
            recomputed.fetch_add(1, Ordering::SeqCst);
            Ok(value_of(ctx.chunk))
        },
    )
    .expect("resume");
    assert_eq!(resumed.restored, CANCEL_AT);
    assert_eq!(resumed.computed, CHUNKS - CANCEL_AT);
    assert_eq!(recomputed.load(Ordering::SeqCst), CHUNKS - CANCEL_AT);
    assert_eq!(bits(&resumed.value), bits(&clean.value));
    cleanup(&path);
}

#[test]
fn parallel_cancel_never_journals_more_than_observed() {
    // Under parallelism the exact cut point is nondeterministic, but the
    // invariant is not: every journaled chunk must be one the supervisor
    // observed before the cancel, and a resume must still assemble the
    // clean result bit for bit.
    let clean: Vec<f64> = (0..CHUNKS).map(value_of).collect();
    for round in 0..8u64 {
        let path = tmp(&format!("parallel-cancel-{round}.jsonl"));
        cleanup(&path);
        let policy = ExecPolicy::with_jobs(4).checkpoint_at(&path);
        let token = policy.pool.cancel.clone();
        let err = run_journaled(
            &policy,
            &meta(),
            |s| decode_f64(s),
            |v| encode_f64(*v),
            |ctx: &ChunkCtx<'_>| {
                if ctx.chunk == CANCEL_AT {
                    token.cancel();
                }
                Ok(value_of(ctx.chunk))
            },
        )
        .expect_err("cancelled");
        assert!(matches!(err, RuntimeError::Cancelled { .. }), "{err}");
        let flushed = journaled_chunks(&path);
        assert!(
            flushed.len() < CHUNKS as usize,
            "a cancelled run journaled every chunk (round {round})"
        );
        let resumed = run_journaled(
            &ExecPolicy::with_jobs(4).checkpoint_at(&path).resuming(),
            &meta(),
            |s| decode_f64(s),
            |v| encode_f64(*v),
            |ctx: &ChunkCtx<'_>| Ok(value_of(ctx.chunk)),
        )
        .expect("resume");
        assert_eq!(resumed.restored as usize, flushed.len(), "round {round}");
        assert_eq!(bits(&resumed.value), bits(&clean), "round {round}");
        cleanup(&path);
    }
}
