//! The three saturation conditions: exact (eq. (4)), legacy fixed margin,
//! and the paper's statistical condition (eq. (9) / (11)).
//!
//! All three are overdrive budgets of the form
//! `ΣV_OD ≤ V_out,min − margin`:
//!
//! | Condition       | margin                                  |
//! |-----------------|------------------------------------------|
//! | `Exact`         | 0 (nominal devices exactly at the edge)  |
//! | `FixedMargin`   | an arbitrary constant, 0.5 V in \[9]/\[11] |
//! | `Statistical`   | `2·S·σ_max` (simple) / `3·S·σ_max` (cascoded) |
//!
//! with `S = inv_norm(yield_V)` and `yield_V = yield^{1/4}` — the
//! worst-case LSB cell has two complementary switches that must each sit
//! inside two bounds with equal probability (paper §2.1). The factors 2/3
//! come from the optimum bias splitting the slack into two/three equal
//! gaps, each of which must exceed `S·σ`.

use crate::bounds::{cascoded_bound_sigmas, simple_bound_sigmas, simple_bound_sigmas_from_geometry};
use crate::sizing::{build_cascoded_cell, build_simple_cell};
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_stats::inv_phi;

/// The 0.5 V margin used by the prior art the paper improves on (\[9], \[11]).
pub const LEGACY_MARGIN: f64 = 0.5;

/// How the per-bound sigmas combine into one margin-setting sigma.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigmaCombine {
    /// The paper's choice: the worst single bound.
    #[default]
    Max,
    /// Root-sum-square over the bounds (ablation alternative; slightly more
    /// conservative than `Max` when sigmas are comparable).
    Rss,
}

/// A saturation condition restricting the overdrive design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SaturationCondition {
    /// Eq. (4): `ΣV_OD ≤ V_out,min`, no allowance for process variation.
    Exact,
    /// The prior art: subtract an arbitrary constant margin (V).
    FixedMargin(f64),
    /// The paper's contribution: subtract `k·S·σ_max`, with the sigmas
    /// propagated from the actual device sizes at this design point.
    Statistical,
}

impl SaturationCondition {
    /// The legacy condition with the published 0.5 V margin.
    pub fn legacy() -> Self {
        SaturationCondition::FixedMargin(LEGACY_MARGIN)
    }

    /// The one-sided yield deviate `S = inv_norm(yield^{1/4})`. A spec
    /// whose yield escaped construction-time validation maps to an infinite
    /// deviate: the margin swallows the whole headroom and every design
    /// point reads infeasible, which is the conservative failure mode.
    pub fn s_factor(spec: &DacSpec) -> f64 {
        inv_phi(spec.inl_yield.powf(0.25)).unwrap_or(f64::INFINITY)
    }

    /// Margin (V) subtracted from `V_out,min` for a *simple-topology*
    /// design point at the given overdrives.
    pub fn margin_simple(&self, spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> f64 {
        self.margin_simple_with(spec, vov_cs, vov_sw, SigmaCombine::Max)
    }

    /// As [`Self::margin_simple`] with an explicit sigma-combination rule.
    pub fn margin_simple_with(
        &self,
        spec: &DacSpec,
        vov_cs: f64,
        vov_sw: f64,
        combine: SigmaCombine,
    ) -> f64 {
        match *self {
            SaturationCondition::Exact => 0.0,
            SaturationCondition::FixedMargin(m) => m,
            SaturationCondition::Statistical => {
                let cell = build_simple_cell(spec, vov_cs, vov_sw, 1);
                let sigmas = simple_bound_sigmas(spec, &cell);
                let sigma = match combine {
                    SigmaCombine::Max => sigmas.max(),
                    SigmaCombine::Rss => sigmas.rss(),
                };
                2.0 * Self::s_factor(spec) * sigma
            }
        }
    }

    /// Margin (V) for a simple-topology point evaluated against an
    /// already-built weight-1 LSB cell and a precomputed yield deviate —
    /// the hot-loop variant of [`Self::margin_simple`]. Bit-identical to it
    /// when `lsb_cell` is `build_simple_cell(spec, vov_cs, vov_sw, 1)` and
    /// `s_factor` is [`Self::s_factor`]`(spec)`.
    pub fn margin_simple_prepared(
        &self,
        spec: &DacSpec,
        lsb_cell: &ctsdac_circuit::cell::SizedCell,
        s_factor: f64,
    ) -> f64 {
        match *self {
            SaturationCondition::Exact => 0.0,
            SaturationCondition::FixedMargin(m) => m,
            SaturationCondition::Statistical => {
                let sigmas = simple_bound_sigmas(spec, lsb_cell);
                2.0 * s_factor * sigmas.max()
            }
        }
    }

    /// [`Self::admits_simple`] against a prebuilt LSB cell and cached yield
    /// deviate (see [`Self::margin_simple_prepared`] for the contract).
    pub fn admits_simple_prepared(
        &self,
        spec: &DacSpec,
        lsb_cell: &ctsdac_circuit::cell::SizedCell,
        s_factor: f64,
        vov_cs: f64,
        vov_sw: f64,
    ) -> bool {
        vov_cs + vov_sw
            <= spec.env.v_out_min() - self.margin_simple_prepared(spec, lsb_cell, s_factor)
    }

    /// [`Self::margin_simple_prepared`] from the weight-1 LSB device gate
    /// areas alone — the lane-sweep variant that skips assembling the
    /// [`ctsdac_circuit::cell::SizedCell`] entirely. Bit-identical to the
    /// prepared form when `wl_cs`/`wl_sw` are the LSB cell's CS/SW areas.
    pub fn margin_simple_geometry(
        &self,
        spec: &DacSpec,
        wl_cs: f64,
        wl_sw: f64,
        s_factor: f64,
        vov_cs: f64,
        vov_sw: f64,
    ) -> f64 {
        match *self {
            SaturationCondition::Exact => 0.0,
            SaturationCondition::FixedMargin(m) => m,
            SaturationCondition::Statistical => {
                let sigmas = simple_bound_sigmas_from_geometry(spec, wl_cs, wl_sw, vov_cs, vov_sw);
                2.0 * s_factor * sigmas.max()
            }
        }
    }

    /// [`Self::admits_simple_prepared`] from the LSB device gate areas alone
    /// (see [`Self::margin_simple_geometry`] for the contract).
    pub fn admits_simple_geometry(
        &self,
        spec: &DacSpec,
        wl_cs: f64,
        wl_sw: f64,
        s_factor: f64,
        vov_cs: f64,
        vov_sw: f64,
    ) -> bool {
        vov_cs + vov_sw
            <= spec.env.v_out_min()
                - self.margin_simple_geometry(spec, wl_cs, wl_sw, s_factor, vov_cs, vov_sw)
    }

    /// Margin (V) for a *cascoded-topology* design point.
    pub fn margin_cascoded(
        &self,
        spec: &DacSpec,
        vov_cs: f64,
        vov_cas: f64,
        vov_sw: f64,
    ) -> f64 {
        self.margin_cascoded_with(spec, vov_cs, vov_cas, vov_sw, SigmaCombine::Max)
    }

    /// As [`Self::margin_cascoded`] with an explicit sigma-combination rule.
    pub fn margin_cascoded_with(
        &self,
        spec: &DacSpec,
        vov_cs: f64,
        vov_cas: f64,
        vov_sw: f64,
        combine: SigmaCombine,
    ) -> f64 {
        match *self {
            SaturationCondition::Exact => 0.0,
            SaturationCondition::FixedMargin(m) => m,
            SaturationCondition::Statistical => {
                let cell = build_cascoded_cell(spec, vov_cs, vov_cas, vov_sw, 1);
                let sigmas = cascoded_bound_sigmas(spec, &cell);
                let sigma = match combine {
                    SigmaCombine::Max => sigmas.max(),
                    SigmaCombine::Rss => sigmas.rss(),
                };
                3.0 * Self::s_factor(spec) * sigma
            }
        }
    }

    /// True if the simple-topology overdrive pair satisfies the condition:
    /// `V_OD,CS + V_OD,SW ≤ V_out,min − margin` (eq. (9)).
    pub fn admits_simple(&self, spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> bool {
        vov_cs + vov_sw <= spec.env.v_out_min() - self.margin_simple(spec, vov_cs, vov_sw)
    }

    /// True if the cascoded overdrive triple satisfies eq. (11).
    pub fn admits_cascoded(
        &self,
        spec: &DacSpec,
        vov_cs: f64,
        vov_cas: f64,
        vov_sw: f64,
    ) -> bool {
        vov_cs + vov_cas + vov_sw
            <= spec.env.v_out_min() - self.margin_cascoded(spec, vov_cs, vov_cas, vov_sw)
    }

    /// Maximum admissible `V_OD,SW` at fixed `V_OD,CS` (the constraint curve
    /// of Fig. 3 upper), solved by bisection because the statistical margin
    /// itself depends on the switch size.
    ///
    /// Returns `None` if even a minimal switch overdrive is inadmissible.
    pub fn max_vov_sw(&self, spec: &DacSpec, vov_cs: f64) -> Option<f64> {
        const VOV_MIN: f64 = 0.02;
        if !self.admits_simple(spec, vov_cs, VOV_MIN) {
            return None;
        }
        let mut lo = VOV_MIN;
        let mut hi = spec.env.v_out_min();
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.admits_simple(spec, vov_cs, mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }
}

impl fmt::Display for SaturationCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaturationCondition::Exact => write!(f, "exact (eq. 4)"),
            SaturationCondition::FixedMargin(m) => write!(f, "fixed margin {m} V"),
            SaturationCondition::Statistical => write!(f, "statistical (eq. 9/11)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_factor_magnitude() {
        // inv_norm(0.997^0.25) = inv_norm(0.99925) ≈ 3.18
        let spec = DacSpec::paper_12bit();
        let s = SaturationCondition::s_factor(&spec);
        assert!((s - 3.17).abs() < 0.05, "S = {s}");
    }

    #[test]
    fn statistical_margin_beats_legacy() {
        // The core result: the statistically justified margin is a fraction
        // of the 0.5 V arbitrary one, so larger overdrives are admitted.
        let spec = DacSpec::paper_12bit();
        let stat = SaturationCondition::Statistical.margin_simple(&spec, 0.5, 0.6);
        assert!(stat < LEGACY_MARGIN / 2.0, "statistical margin {stat} V");
        assert!(stat > 0.0);
    }

    #[test]
    fn ordering_of_conditions() {
        // Exact admits everything the others do; statistical admits
        // everything the 0.5 V margin does (for this technology).
        let spec = DacSpec::paper_12bit();
        for vov_cs in [0.3, 0.6, 0.9] {
            for vov_sw in [0.3, 0.6, 0.9, 1.2] {
                let legacy = SaturationCondition::legacy().admits_simple(&spec, vov_cs, vov_sw);
                let stat =
                    SaturationCondition::Statistical.admits_simple(&spec, vov_cs, vov_sw);
                let exact = SaturationCondition::Exact.admits_simple(&spec, vov_cs, vov_sw);
                if legacy {
                    assert!(stat, "legacy admits ({vov_cs},{vov_sw}) but statistical rejects");
                }
                if stat {
                    assert!(exact, "statistical admits ({vov_cs},{vov_sw}) but exact rejects");
                }
            }
        }
    }

    #[test]
    fn constraint_curve_is_monotone_decreasing() {
        // Fig. 3 upper: more CS overdrive leaves less for the switch.
        let spec = DacSpec::paper_12bit();
        let cond = SaturationCondition::Statistical;
        let mut prev = f64::INFINITY;
        for i in 1..=10 {
            let vov_cs = 0.15 * i as f64;
            if let Some(max_sw) = cond.max_vov_sw(&spec, vov_cs) {
                assert!(max_sw <= prev + 1e-6, "curve not monotone at {vov_cs}");
                prev = max_sw;
            }
        }
    }

    #[test]
    fn max_vov_sw_sits_on_the_boundary() {
        let spec = DacSpec::paper_12bit();
        let cond = SaturationCondition::Statistical;
        let vov_cs = 0.7;
        let max_sw = cond.max_vov_sw(&spec, vov_cs).expect("feasible");
        assert!(cond.admits_simple(&spec, vov_cs, max_sw));
        assert!(!cond.admits_simple(&spec, vov_cs, max_sw + 1e-3));
    }

    #[test]
    fn exact_curve_is_straight_line() {
        let spec = DacSpec::paper_12bit();
        let cond = SaturationCondition::Exact;
        let max_sw = cond.max_vov_sw(&spec, 0.8).expect("feasible");
        assert!((max_sw - (spec.env.v_out_min() - 0.8)).abs() < 1e-9);
    }

    #[test]
    fn infeasible_cs_overdrive_returns_none() {
        let spec = DacSpec::paper_12bit();
        assert!(SaturationCondition::legacy()
            .max_vov_sw(&spec, spec.env.v_out_min())
            .is_none());
    }

    #[test]
    fn cascoded_margin_uses_three_gaps() {
        let spec = DacSpec::paper_12bit();
        let m3 = SaturationCondition::Statistical.margin_cascoded(&spec, 0.4, 0.3, 0.5);
        // Must be larger than the simple-cell margin at comparable sizes
        // (three gaps and four bounds instead of two and two).
        let m2 = SaturationCondition::Statistical.margin_simple(&spec, 0.4, 0.5);
        assert!(m3 > m2, "m3 = {m3}, m2 = {m2}");
        assert!(m3 < LEGACY_MARGIN, "statistical cascode margin {m3} V");
    }

    #[test]
    fn rss_combination_is_more_conservative() {
        let spec = DacSpec::paper_12bit();
        let max = SaturationCondition::Statistical.margin_simple_with(
            &spec,
            0.5,
            0.6,
            SigmaCombine::Max,
        );
        let rss = SaturationCondition::Statistical.margin_simple_with(
            &spec,
            0.5,
            0.6,
            SigmaCombine::Rss,
        );
        assert!(rss >= max);
    }

    #[test]
    fn prepared_margin_is_bit_identical_to_plain() {
        use crate::sizing::build_simple_cell;
        let spec = DacSpec::paper_12bit();
        let s = SaturationCondition::s_factor(&spec);
        for cond in [
            SaturationCondition::Statistical,
            SaturationCondition::Exact,
            SaturationCondition::legacy(),
        ] {
            for (cs, sw) in [(0.3, 0.4), (0.7, 0.9), (1.5, 1.5)] {
                let cell = build_simple_cell(&spec, cs, sw, 1);
                assert_eq!(
                    cond.margin_simple(&spec, cs, sw).to_bits(),
                    cond.margin_simple_prepared(&spec, &cell, s).to_bits(),
                    "{cond} margin differs at ({cs}, {sw})"
                );
                assert_eq!(
                    cond.admits_simple(&spec, cs, sw),
                    cond.admits_simple_prepared(&spec, &cell, s, cs, sw),
                );
            }
        }
    }

    #[test]
    fn geometry_margin_is_bit_identical_to_prepared() {
        use crate::sizing::build_simple_cell;
        let spec = DacSpec::paper_12bit();
        let s = SaturationCondition::s_factor(&spec);
        for cond in [
            SaturationCondition::Statistical,
            SaturationCondition::Exact,
            SaturationCondition::legacy(),
        ] {
            for (cs, sw) in [(0.3, 0.4), (0.7, 0.9), (1.5, 1.5)] {
                let cell = build_simple_cell(&spec, cs, sw, 1);
                let (wl_cs, wl_sw) = (cell.cs().area(), cell.sw().area());
                assert_eq!(
                    cond.margin_simple_prepared(&spec, &cell, s).to_bits(),
                    cond.margin_simple_geometry(&spec, wl_cs, wl_sw, s, cs, sw)
                        .to_bits(),
                    "{cond} geometry margin differs at ({cs}, {sw})"
                );
                assert_eq!(
                    cond.admits_simple_prepared(&spec, &cell, s, cs, sw),
                    cond.admits_simple_geometry(&spec, wl_cs, wl_sw, s, cs, sw),
                );
            }
        }
    }

    #[test]
    fn fixed_margin_is_constant_across_design_space() {
        let spec = DacSpec::paper_12bit();
        let c = SaturationCondition::FixedMargin(0.3);
        assert_eq!(c.margin_simple(&spec, 0.2, 0.2), 0.3);
        assert_eq!(c.margin_simple(&spec, 1.0, 0.9), 0.3);
    }
}
