//! Monte-Carlo validation of the statistical saturation condition
//! (eq. (8)–(9)).
//!
//! The paper's condition asserts: if the design point satisfies
//! `ΣV_OD ≤ V_out,min − 2·S·σ_max`, then the optimum gate voltage stays
//! inside the (randomly shifted) bounds of *both* complementary switches of
//! the worst-case LSB cell with probability ≥ `yield`. This module checks
//! that claim by direct simulation: draw device mismatches and the
//! load/current errors, recompute both bounds per realisation, and count
//! how often the nominal bias survives.

use crate::bounds::simple_bound_sigmas;
use crate::sizing::build_simple_cell;
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_circuit::bias::{sw_gate_bounds_simple, BiasError, OptimumBias};
use ctsdac_obs as obs;
use ctsdac_process::Pelgrom;
use ctsdac_runtime::{yield_supervised, ExecPolicy, McPlan, RuntimeError, Supervised};
use ctsdac_stats::normal::phi;
use ctsdac_stats::rng::Rng;
use ctsdac_stats::{NormalSampler, StatsError, YieldDecision, YieldEstimate, YieldTest};

/// Failure modes of a saturation-yield experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// The design point has no nominal bias point to validate.
    Bias(BiasError),
    /// The Monte-Carlo counts were invalid (zero trials).
    Stats(StatsError),
    /// The supervised runtime failed (retry exhaustion, cancellation,
    /// journal error).
    Runtime(RuntimeError),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Bias(e) => write!(f, "{e}"),
            Self::Stats(e) => write!(f, "{e}"),
            Self::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ValidateError {}

impl From<BiasError> for ValidateError {
    fn from(e: BiasError) -> Self {
        Self::Bias(e)
    }
}

impl From<StatsError> for ValidateError {
    fn from(e: StatsError) -> Self {
        Self::Stats(e)
    }
}

impl From<RuntimeError> for ValidateError {
    fn from(e: RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

/// Result of a saturation-yield experiment at one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationYield {
    /// Monte-Carlo estimate of the probability that both complementary
    /// switches of the LSB cell stay biased inside their bounds.
    pub mc: YieldEstimate,
    /// The analytic prediction from the Gaussian bound model:
    /// `[Φ(m_up/σ_up)·Φ(m_lo/σ_lo)]²`, where `m_up`/`m_lo` are the nominal
    /// distances from the optimum gate to the bounds.
    pub predicted: f64,
    /// The nominal gate-to-bound distances `(m_lo, m_up)` in V.
    pub margins: (f64, f64),
}

impl fmt::Display for SaturationYield {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MC = {}, predicted = {:.4} (margins {:.1}/{:.1} mV)",
            self.mc,
            self.predicted,
            self.margins.0 * 1e3,
            self.margins.1 * 1e3
        )
    }
}

/// The fixed (per-design-point) data of one saturation-yield trial,
/// shared by the sequential and supervised harnesses so both simulate the
/// identical physical experiment.
#[derive(Debug, Clone, Copy)]
struct TrialModel {
    gate: f64,
    lower: f64,
    upper: f64,
    pelgrom: Pelgrom,
    wl_cs: f64,
    wl_sw: f64,
    vov_cs: f64,
    vov_sw: f64,
    sigma_i_fs: f64,
    swing: f64,
    sigma_rl_rel: f64,
    predicted: f64,
    margins: (f64, f64),
}

impl TrialModel {
    fn new(spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> Result<Self, BiasError> {
        let cell = build_simple_cell(spec, vov_cs, vov_sw, 1);
        let bounds = sw_gate_bounds_simple(&cell, &spec.env)?;
        let opt = OptimumBias::of(&cell, &spec.env)?;
        let gate = opt.v_gate_sw;
        let m_lo = gate - bounds.lower;
        let m_up = bounds.upper - gate;

        let sigmas = simple_bound_sigmas(spec, &cell);
        let predicted = (phi(m_up / sigmas.upper) * phi(m_lo / sigmas.lower)).powi(2);

        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let wl_cs = cell.cs().area();
        let wl_sw = cell.sw().area();
        let sigma_i_fs =
            pelgrom.sigma_id_rel(wl_cs, vov_cs) / (spec.lsb_unit_count() as f64).sqrt();
        Ok(Self {
            gate,
            lower: bounds.lower,
            upper: bounds.upper,
            pelgrom,
            wl_cs,
            wl_sw,
            vov_cs,
            vov_sw,
            sigma_i_fs,
            swing: spec.env.v_swing,
            sigma_rl_rel: spec.tech.sigma_rl_rel,
            predicted,
            margins: (m_lo, m_up),
        })
    }

    /// One mismatch realisation: true if the nominal gate bias survives
    /// inside the randomly shifted bounds of both complementary switches.
    fn trial<R: Rng + ?Sized>(&self, rng: &mut R, sampler: &mut NormalSampler) -> bool {
        // Shared (per-cell) variations.
        let d_cs = self.pelgrom.draw(rng, sampler, self.wl_cs);
        let di_rel = -2.0 * d_cs.delta_vt / self.vov_cs;
        let dvov_cs = 0.5 * self.vov_cs * (di_rel - d_cs.delta_beta_rel);
        // Global variations moving the upper bound.
        let d_swing = self.swing
            * (self.sigma_i_fs * sampler.sample(rng) + self.sigma_rl_rel * sampler.sample(rng));
        // Both complementary switches must survive.
        (0..2).all(|_| {
            let d_sw = self.pelgrom.draw(rng, sampler, self.wl_sw);
            let dvov_sw = 0.5 * self.vov_sw * (di_rel - d_sw.delta_beta_rel);
            let lower = self.lower + dvov_cs + dvov_sw + d_sw.delta_vt;
            let upper = self.upper - d_swing + d_sw.delta_vt;
            (lower..=upper).contains(&self.gate)
        })
    }

    fn result(&self, mc: YieldEstimate) -> SaturationYield {
        SaturationYield {
            mc,
            predicted: self.predicted,
            margins: self.margins,
        }
    }
}

/// Runs the saturation-yield Monte Carlo at a simple-topology design point.
///
/// # Errors
///
/// [`ValidateError::Bias`] if the design point is infeasible even
/// nominally (eq. (4) violated): there is no bias point whose survival the
/// experiment could measure. [`ValidateError::Stats`] if `trials == 0`.
pub fn saturation_yield_mc<R: Rng + ?Sized>(
    spec: &DacSpec,
    vov_cs: f64,
    vov_sw: f64,
    trials: u64,
    rng: &mut R,
) -> Result<SaturationYield, ValidateError> {
    let model = TrialModel::new(spec, vov_cs, vov_sw)?;
    // One sampler across all trials: preserves the historical draw
    // sequence of the sequential harness exactly.
    let mut sampler = NormalSampler::new();
    let mc = YieldEstimate::run(rng, trials, |rng, _| model.trial(rng, &mut sampler))?;
    // Sequential driver: the supervised path counts its trials in the
    // runtime chunk loop, so either route reports the same mc.trials.
    obs::count(obs::Counter::McTrials, mc.trials());
    Ok(model.result(mc))
}

/// A saturation-yield run that stopped under a sequential Wilson test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialSaturationYield {
    /// The yield result at the stopping point (its trial count is
    /// whatever the test needed, not a fixed budget).
    pub result: SaturationYield,
    /// The verdict against the test's target yield.
    pub decision: YieldDecision,
    /// Batches evaluated before stopping.
    pub batches: u64,
}

impl fmt::Display for SequentialSaturationYield {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} batches: {}",
            self.decision, self.batches, self.result
        )
    }
}

/// The sequential-stopping counterpart of [`saturation_yield_mc`]: trials
/// run in batches until the Wilson interval clears (or excludes) the
/// `test` target, with the test's budget as fallback. The draw sequence
/// matches [`saturation_yield_mc`] trial for trial (one sampler across
/// trials), so a sequential run that stops at `n` trials has consumed
/// exactly the prefix of the fixed-budget run's stream.
///
/// # Errors
///
/// [`ValidateError::Bias`] for a nominally infeasible design point;
/// [`ValidateError::Stats`] if the pooled counts are ill-posed.
pub fn saturation_yield_sequential<R: Rng + ?Sized>(
    spec: &DacSpec,
    vov_cs: f64,
    vov_sw: f64,
    test: &YieldTest,
    rng: &mut R,
) -> Result<SequentialSaturationYield, ValidateError> {
    let model = TrialModel::new(spec, vov_cs, vov_sw)?;
    let mut sampler = NormalSampler::new();
    let seq = test.run_sequential(rng, |rng, _| model.trial(rng, &mut sampler))?;
    obs::count(obs::Counter::McTrials, seq.estimate.trials());
    Ok(SequentialSaturationYield {
        result: model.result(seq.estimate),
        decision: seq.decision,
        batches: seq.batches,
    })
}

/// The supervised counterpart of [`saturation_yield_mc`]: trials are split
/// into chunks per `plan`, each chunk draws from its own counter-based RNG
/// stream, and the run inherits the pool's panic isolation, retry,
/// deadline, and checkpoint-resume behaviour from `policy`.
///
/// The estimate is bit-identical for any worker count and across resume,
/// but — by construction of the per-chunk streams — *not* numerically
/// identical to the sequential [`saturation_yield_mc`] at the same seed.
///
/// # Errors
///
/// [`ValidateError::Bias`] for a nominally infeasible design point;
/// [`ValidateError::Runtime`] when supervision fails.
pub fn saturation_yield_supervised(
    spec: &DacSpec,
    vov_cs: f64,
    vov_sw: f64,
    plan: &McPlan,
    policy: &ExecPolicy,
) -> Result<Supervised<SaturationYield>, ValidateError> {
    let model = TrialModel::new(spec, vov_cs, vov_sw)?;
    let params = format!(
        "sat;vov_cs={};vov_sw={};spec={:?}",
        ctsdac_runtime::encode_f64(vov_cs),
        ctsdac_runtime::encode_f64(vov_sw),
        spec
    );
    let out = yield_supervised(policy, plan, &params, |rng, _trial| {
        // A fresh sampler per trial keeps each trial a pure function of
        // the chunk RNG stream position.
        let mut sampler = NormalSampler::new();
        model.trial(rng, &mut sampler)
    })?;
    Ok(out.map(|mc| model.result(mc)))
}

/// Convenience: the saturation yield exactly on the statistical constraint
/// line at `vov_cs` — the point the paper designs at, where the predicted
/// yield should sit near the `yield` target. Returns `None` when the
/// constraint admits no switch overdrive at this `vov_cs` (or the resulting
/// point fails to bias, which cannot happen on the constraint line).
pub fn yield_on_constraint<R: Rng + ?Sized>(
    spec: &DacSpec,
    vov_cs: f64,
    trials: u64,
    rng: &mut R,
) -> Option<SaturationYield> {
    let vov_sw = crate::saturation::SaturationCondition::Statistical.max_vov_sw(spec, vov_cs)?;
    saturation_yield_mc(spec, vov_cs, vov_sw, trials, rng).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsdac_stats::sample::seeded_rng;

    #[test]
    fn deep_interior_point_has_unity_yield() {
        // Far from the constraint the margins are hundreds of mV while the
        // sigmas are ~10 mV: nothing ever fails.
        let spec = DacSpec::paper_12bit();
        let mut rng = seeded_rng(1);
        let r = saturation_yield_mc(&spec, 0.4, 0.4, 2000, &mut rng).expect("feasible");
        assert_eq!(r.mc.passes(), 2000, "{r}");
        assert!(r.predicted > 0.999999);
    }

    #[test]
    fn constraint_line_point_meets_the_yield_target() {
        // On the eq. (9) line the model predicts ≥ yield^... — the margin
        // uses sigma_max on both sides so the true probability exceeds the
        // target. MC must agree within its confidence interval.
        let spec = DacSpec::paper_12bit();
        let mut rng = seeded_rng(2);
        let r = yield_on_constraint(&spec, 0.8, 4000, &mut rng).expect("feasible");
        assert!(
            r.mc.estimate() >= spec.inl_yield - 0.01,
            "MC yield {} below target {} ({r})",
            r.mc.estimate(),
            spec.inl_yield
        );
        assert!(r.predicted >= spec.inl_yield - 1e-3);
    }

    #[test]
    fn beyond_the_constraint_yield_collapses() {
        // Push the switch overdrive well past the statistical limit: the
        // margins shrink toward zero and failures become common.
        let spec = DacSpec::paper_12bit();
        let cond = crate::saturation::SaturationCondition::Statistical;
        let limit = cond.max_vov_sw(&spec, 0.8).expect("feasible");
        // Keep nominal feasibility (eq. (4)) but erase the margin.
        let vov_sw = (limit + 0.9 * (spec.env.v_out_min() - 0.8 - limit)).min(1.49);
        let mut rng = seeded_rng(3);
        let r = saturation_yield_mc(&spec, 0.8, vov_sw, 2000, &mut rng).expect("feasible");
        assert!(
            r.mc.estimate() < 0.95,
            "yield should degrade past the line: {r}"
        );
    }

    #[test]
    fn prediction_tracks_mc_across_margins() {
        let spec = DacSpec::paper_12bit();
        // The analytic prediction assumes independent per-device failures;
        // deep past the constraint (vov_sw = 1.46) the correlation between
        // the two margins grows and the model over-predicts by a few
        // percent, so that point gets a looser band.
        for (seed, vov_sw, slop) in [(10u64, 1.30, 0.02), (11, 1.40, 0.02), (12, 1.46, 0.05)] {
            let mut rng = seeded_rng(seed);
            let r = saturation_yield_mc(&spec, 0.8, vov_sw, 3000, &mut rng).expect("feasible");
            let (lo, hi) = r.mc.wilson_interval(3.0);
            assert!(
                r.predicted >= lo - slop && r.predicted <= hi + slop,
                "prediction {:.4} outside MC interval [{lo:.4}, {hi:.4}] at vov_sw = {vov_sw}",
                r.predicted
            );
        }
    }

    #[test]
    fn margins_shrink_toward_the_constraint() {
        let spec = DacSpec::paper_12bit();
        let mut rng = seeded_rng(5);
        let inside = saturation_yield_mc(&spec, 0.8, 1.0, 100, &mut rng).expect("feasible");
        let near = saturation_yield_mc(&spec, 0.8, 1.45, 100, &mut rng).expect("feasible");
        assert!(near.margins.0 < inside.margins.0);
        assert!(near.margins.1 < inside.margins.1);
    }

    #[test]
    fn infeasible_point_yields_typed_error() {
        let spec = DacSpec::paper_12bit();
        let mut rng = seeded_rng(0);
        let err = saturation_yield_mc(&spec, 1.5, 1.5, 10, &mut rng)
            .expect_err("1.5 + 1.5 V of overdrive cannot fit the headroom");
        assert!(
            matches!(err, ValidateError::Bias(BiasError::Infeasible(_))),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn zero_trials_is_a_stats_error_not_a_panic() {
        let spec = DacSpec::paper_12bit();
        let mut rng = seeded_rng(0);
        let err = saturation_yield_mc(&spec, 0.4, 0.4, 0, &mut rng)
            .expect_err("zero trials");
        assert!(
            matches!(err, ValidateError::Stats(ctsdac_stats::StatsError::NoTrials)),
            "unexpected error {err:?}"
        );
    }

    #[test]
    fn sequential_yield_stops_early_and_prefixes_the_fixed_run() {
        let spec = DacSpec::paper_12bit();
        // Deep interior: unity yield, so a 90 % target passes almost
        // immediately instead of burning the full budget.
        let test = YieldTest::new(0.90, 2.576, 50_000, 100).expect("test");
        let mut rng = seeded_rng(9);
        let seq = saturation_yield_sequential(&spec, 0.4, 0.4, &test, &mut rng)
            .expect("feasible");
        assert_eq!(seq.decision, YieldDecision::Pass);
        let trials = seq.result.mc.trials();
        assert!(trials < 50_000, "stopped early, used {trials}");

        // Same seed, fixed budget equal to the stopping point: identical
        // counts (the sequential run consumed exactly that prefix).
        let mut rng2 = seeded_rng(9);
        let fixed = saturation_yield_mc(&spec, 0.4, 0.4, trials, &mut rng2).expect("feasible");
        assert_eq!(fixed.mc, seq.result.mc);
    }

    #[test]
    fn supervised_yield_is_jobs_invariant_and_matches_physics() {
        let spec = DacSpec::paper_12bit();
        let plan = McPlan::new(7, 4_000, 500).expect("plan");
        let serial =
            saturation_yield_supervised(&spec, 0.8, 1.30, &plan, &ExecPolicy::sequential())
                .expect("sequential supervision");
        let parallel =
            saturation_yield_supervised(&spec, 0.8, 1.30, &plan, &ExecPolicy::with_jobs(8))
                .expect("parallel supervision");
        assert_eq!(serial.value.mc, parallel.value.mc);
        assert_eq!(serial.value.predicted, parallel.value.predicted);
        // The estimate still reflects the same experiment the sequential
        // harness runs: the analytic prediction must sit in its interval.
        let (lo, hi) = serial.value.mc.wilson_interval(3.0);
        assert!(
            serial.value.predicted >= lo - 0.02 && serial.value.predicted <= hi + 0.02,
            "prediction {:.4} outside [{lo:.4}, {hi:.4}]",
            serial.value.predicted
        );
    }

    #[test]
    fn supervised_yield_reports_infeasibility_before_spawning() {
        let spec = DacSpec::paper_12bit();
        let plan = McPlan::new(1, 100, 10).expect("plan");
        let err = saturation_yield_supervised(&spec, 1.5, 1.5, &plan, &ExecPolicy::sequential())
            .expect_err("infeasible point");
        assert!(matches!(err, ValidateError::Bias(_)), "{err:?}");
    }
}
