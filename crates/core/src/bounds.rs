//! Statistical variances of the gate-voltage bounds (paper eq. (6), (7),
//! (12)).
//!
//! Process variation turns each bound of eq. (3) into a Gaussian random
//! variable. The variances are propagated from the underlying mismatch
//! sources — the OCR of the paper garbles parts of eq. (6)–(7), so the
//! expressions here are re-derived from first principles; the derivation is
//! spelled out term by term below and cross-checked by Monte Carlo in the
//! test suite.
//!
//! Sources of variation for the *worst-case LSB cell* (the paper: "the LSB
//! current cell is the worst case (its area is the smallest of all the
//! current sources)"):
//!
//! * `δV_T` of each device (Pelgrom `A_VT/√(WL)`);
//! * `δβ/β` of each device (Pelgrom `A_β/√(WL)`) — shifts the overdrive a
//!   fixed current needs by `δV_ov = −(V_ov/2)·δβ/β`;
//! * the cell current error caused by `δV_T` of the CS inside the mirror:
//!   `δI/I = −2·δV_T,CS/V_ov,CS`, which shifts *every* overdrive coherently
//!   by `δV_ov,i = (V_ov,i/2)·δI/I`;
//! * the load-resistor tolerance and the averaged full-scale current error,
//!   which move the minimum output voltage and hence the *upper* bound
//!   (`V_up = V_DD − I_FS·R_L + V_T,SW`).

use crate::sizing::CsSizing;
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_circuit::cell::{CellTopology, SizedCell};
use ctsdac_process::Pelgrom;

/// Standard deviations of the two switch-gate bounds of the simple cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundSigmas {
    /// σ of the upper bound (`V_out,min + V_T,SW`) in V — paper eq. (6).
    pub upper: f64,
    /// σ of the lower bound (`ΣV_OD + V_T,SW`) in V — paper eq. (7).
    pub lower: f64,
}

impl BoundSigmas {
    /// Largest of the two sigmas (the combination the paper uses in
    /// eq. (9)).
    pub fn max(&self) -> f64 {
        self.upper.max(self.lower)
    }

    /// Root-sum-square combination (ablation alternative to [`Self::max`]).
    pub fn rss(&self) -> f64 {
        self.upper.hypot(self.lower)
    }
}

impl fmt::Display for BoundSigmas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sigma_up = {:.2} mV, sigma_lo = {:.2} mV",
            self.upper * 1e3,
            self.lower * 1e3
        )
    }
}

/// Standard deviations of the four gate-voltage bounds of the cascoded cell
/// (paper eq. (12)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascodeBoundSigmas {
    /// σ of the switch-gate upper bound in V.
    pub sw_upper: f64,
    /// σ of the switch-gate lower bound in V.
    pub sw_lower: f64,
    /// σ of the cascode-gate upper bound in V.
    pub cas_upper: f64,
    /// σ of the cascode-gate lower bound in V.
    pub cas_lower: f64,
}

impl CascodeBoundSigmas {
    /// Largest of the four sigmas (the paper's eq. (11) combination).
    pub fn max(&self) -> f64 {
        self.sw_upper
            .max(self.sw_lower)
            .max(self.cas_upper)
            .max(self.cas_lower)
    }

    /// Root-sum-square of the four sigmas (ablation alternative).
    pub fn rss(&self) -> f64 {
        (self.sw_upper.powi(2)
            + self.sw_lower.powi(2)
            + self.cas_upper.powi(2)
            + self.cas_lower.powi(2))
        .sqrt()
    }
}

impl fmt::Display for CascodeBoundSigmas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sw [{:.2}, {:.2}] mV, cas [{:.2}, {:.2}] mV",
            self.sw_lower * 1e3,
            self.sw_upper * 1e3,
            self.cas_lower * 1e3,
            self.cas_upper * 1e3
        )
    }
}

/// σ² of a device threshold, `A_VT²/(WL)`.
fn var_vt(pelgrom: &Pelgrom, wl: f64) -> f64 {
    let s = pelgrom.sigma_vt(wl);
    s * s
}

/// σ² of one overdrive at fixed current demand: β mismatch of the device
/// itself plus the coherent current error from the CS threshold (returned
/// separately so correlated sums can be handled exactly).
///
/// Returns `(var_beta_part, vt_cs_sensitivity)` where the overdrive deviates
/// by `vt_cs_sensitivity · δV_T,CS` plus an independent β part.
fn vov_variation(
    pelgrom: &Pelgrom,
    vov: f64,
    wl: f64,
    vov_cs: f64,
) -> (f64, f64) {
    let s_beta = pelgrom.sigma_beta_rel(wl);
    let var_beta = (0.5 * vov * s_beta).powi(2);
    // δV_ov = (V_ov/2)·δI/I = (V_ov/2)·(−2·δV_T,CS/V_ov,CS)
    let sens_vt_cs = -vov / vov_cs;
    (var_beta, sens_vt_cs)
}

/// Bound sigmas of a *simple-topology* LSB cell (paper eq. (6)–(7)).
///
/// # Panics
///
/// Panics if `cell` is not the simple topology.
///
/// # Examples
///
/// ```
/// use ctsdac_core::bounds::simple_bound_sigmas;
/// use ctsdac_core::sizing::build_simple_cell;
/// use ctsdac_core::DacSpec;
///
/// let spec = DacSpec::paper_12bit();
/// let cell = build_simple_cell(&spec, 0.5, 0.6, 1);
/// let s = simple_bound_sigmas(&spec, &cell);
/// // Both sigmas are millivolt-scale: far below the 0.5 V legacy margin.
/// assert!(s.max() > 1e-3 && s.max() < 0.1);
/// ```
pub fn simple_bound_sigmas(spec: &DacSpec, cell: &SizedCell) -> BoundSigmas {
    assert_eq!(
        cell.topology(),
        CellTopology::Simple,
        "simple_bound_sigmas needs the simple topology"
    );
    simple_bound_sigmas_from_geometry(
        spec,
        cell.cs().area(),
        cell.sw().area(),
        cell.vov_cs(),
        cell.vov_sw(),
    )
}

/// [`simple_bound_sigmas`] from the raw gate areas and overdrives — the
/// lane-sweep variant for callers that have the sized devices (or just
/// their geometry) in hand without assembling a [`SizedCell`].
/// Bit-identical to [`simple_bound_sigmas`] on the corresponding cell.
pub fn simple_bound_sigmas_from_geometry(
    spec: &DacSpec,
    wl_cs: f64,
    wl_sw: f64,
    vov_cs: f64,
    vov_sw: f64,
) -> BoundSigmas {
    let pelgrom = Pelgrom::new(&spec.tech.nmos);

    // --- Upper bound: V_DD − I_FS·R_L + V_T,SW (eq. (6)) ---
    // Full-scale current: 2ⁿ units average their mismatch.
    let sigma_i_fs_rel =
        pelgrom.sigma_id_rel(wl_cs, vov_cs) / (spec.lsb_unit_count() as f64).sqrt();
    let swing = spec.env.v_swing;
    let var_upper = (swing * sigma_i_fs_rel).powi(2)
        + (swing * spec.tech.sigma_rl_rel).powi(2)
        + var_vt(&pelgrom, wl_sw);

    // --- Lower bound: V_OD,CS + V_OD,SW + V_T,SW (eq. (7)) ---
    let (var_b_cs, sens_cs) = vov_variation(&pelgrom, vov_cs, wl_cs, vov_cs);
    let (var_b_sw, sens_sw) = vov_variation(&pelgrom, vov_sw, wl_sw, vov_cs);
    // The two overdrives respond coherently to δV_T,CS; sum sensitivities
    // before squaring.
    let sens_total = sens_cs + sens_sw;
    let var_lower = var_b_cs
        + var_b_sw
        + sens_total * sens_total * var_vt(&pelgrom, wl_cs)
        + var_vt(&pelgrom, wl_sw);

    BoundSigmas {
        upper: var_upper.sqrt(),
        lower: var_lower.sqrt(),
    }
}

/// Bound sigmas of a *cascoded-topology* LSB cell (paper eq. (12)).
///
/// # Panics
///
/// Panics if `cell` is not the cascoded topology.
pub fn cascoded_bound_sigmas(spec: &DacSpec, cell: &SizedCell) -> CascodeBoundSigmas {
    assert_eq!(
        cell.topology(),
        CellTopology::Cascoded,
        "cascoded_bound_sigmas needs the cascoded topology"
    );
    let pelgrom = Pelgrom::new(&spec.tech.nmos);
    let (Some(cas), Some(vov_cas)) = (cell.cas(), cell.vov_cas()) else {
        // Unreachable after the topology assert (a cascoded cell always
        // carries its CAS device); NaN sigmas poison every downstream
        // comparison into "infeasible" rather than panicking.
        return CascodeBoundSigmas {
            sw_upper: f64::NAN,
            sw_lower: f64::NAN,
            cas_upper: f64::NAN,
            cas_lower: f64::NAN,
        };
    };
    let wl_cs = cell.cs().area();
    let wl_sw = cell.sw().area();
    let wl_cas = cas.area();
    let v_vt_cs = var_vt(&pelgrom, wl_cs);
    let v_vt_sw = var_vt(&pelgrom, wl_sw);
    let v_vt_cas = var_vt(&pelgrom, wl_cas);

    let (var_b_cs, s_cs) = vov_variation(&pelgrom, cell.vov_cs(), wl_cs, cell.vov_cs());
    let (var_b_cas, s_cas) = vov_variation(&pelgrom, vov_cas, wl_cas, cell.vov_cs());
    let (var_b_sw, s_sw) = vov_variation(&pelgrom, cell.vov_sw(), wl_sw, cell.vov_cs());

    // SW upper: V_DD − I_FS·R_L + V_T,SW — as in the simple cell.
    let sigma_i_fs_rel = pelgrom.sigma_id_rel(wl_cs, cell.vov_cs())
        / (spec.lsb_unit_count() as f64).sqrt();
    let swing = spec.env.v_swing;
    let var_sw_upper = (swing * sigma_i_fs_rel).powi(2)
        + (swing * spec.tech.sigma_rl_rel).powi(2)
        + v_vt_sw;

    // SW lower: V_OD,CS + V_OD,CAS + V_OD,SW + V_T,SW.
    let sens = s_cs + s_cas + s_sw;
    let var_sw_lower =
        var_b_cs + var_b_cas + var_b_sw + sens * sens * v_vt_cs + v_vt_sw;

    // CAS lower: V_OD,CS + V_T,CAS + V_OD,CAS.
    let sens_cl = s_cs + s_cas;
    let var_cas_lower = var_b_cs + var_b_cas + sens_cl * sens_cl * v_vt_cs + v_vt_cas;

    // CAS upper: V_B + V_T,CAS with V_B = V_gSW − V_T,SW − V_OD,SW
    // (the switch gate is externally set, hence noiseless).
    let var_cas_upper =
        v_vt_sw + var_b_sw + s_sw * s_sw * v_vt_cs + v_vt_cas;

    CascodeBoundSigmas {
        sw_upper: var_sw_upper.sqrt(),
        sw_lower: var_sw_lower.sqrt(),
        cas_upper: var_cas_upper.sqrt(),
        cas_lower: var_cas_lower.sqrt(),
    }
}

/// Convenience: bound sigmas of the worst-case (LSB) cell built at the given
/// overdrives for the simple topology.
pub fn lsb_bound_sigmas(spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> BoundSigmas {
    let cell = crate::sizing::build_simple_cell(spec, vov_cs, vov_sw, 1);
    simple_bound_sigmas(spec, &cell)
}

/// Sanity helper exposing the CS sizing the bounds are computed against.
pub fn lsb_cs_sizing(spec: &DacSpec, vov_cs: f64) -> CsSizing {
    CsSizing::for_spec(spec, vov_cs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sizing::{build_cascoded_cell, build_simple_cell};
    use ctsdac_process::Pelgrom;
    use ctsdac_stats::sample::seeded_rng;
    use ctsdac_stats::{NormalSampler, Summary};

    #[test]
    fn sigmas_are_millivolt_scale() {
        let spec = DacSpec::paper_12bit();
        let s = lsb_bound_sigmas(&spec, 0.5, 0.6);
        // With A_VT ≈ 9.5 mV·µm and a ~1 µm² min-length switch, the switch
        // V_T term dominates: both sigmas land between 1 and 50 mV.
        assert!(s.upper > 1e-3 && s.upper < 0.05, "{s}");
        assert!(s.lower > 1e-3 && s.lower < 0.05, "{s}");
    }

    #[test]
    fn statistical_margin_is_far_below_half_volt() {
        // The headline claim: 2·S·σ_max ≪ 0.5 V.
        let spec = DacSpec::paper_12bit();
        let s = lsb_bound_sigmas(&spec, 0.5, 0.6);
        let s_factor = ctsdac_stats::inv_phi(spec.inl_yield.powf(0.25)).expect("valid");
        let margin = 2.0 * s_factor * s.max();
        assert!(margin < 0.25, "margin = {margin} V");
        assert!(margin > 0.01, "margin suspiciously small: {margin} V");
    }

    #[test]
    fn upper_sigma_includes_load_tolerance() {
        let spec = DacSpec::paper_12bit();
        let mut no_rl = spec;
        no_rl.tech = spec.tech.with_sigma_rl_rel(0.0);
        let with_rl = lsb_bound_sigmas(&spec, 0.5, 0.6);
        let without = lsb_bound_sigmas(&no_rl, 0.5, 0.6);
        assert!(with_rl.upper > without.upper);
        // Lower bound does not involve the load at all.
        assert!((with_rl.lower - without.lower).abs() < 1e-15);
    }

    #[test]
    fn rss_exceeds_max() {
        let spec = DacSpec::paper_12bit();
        let s = lsb_bound_sigmas(&spec, 0.5, 0.6);
        assert!(s.rss() >= s.max());
        assert!(s.rss() <= s.upper + s.lower);
    }

    #[test]
    fn cascode_has_four_positive_sigmas() {
        let spec = DacSpec::paper_12bit();
        let cell = build_cascoded_cell(&spec, 0.4, 0.3, 0.5, 1);
        let s = cascoded_bound_sigmas(&spec, &cell);
        for (name, v) in [
            ("sw_upper", s.sw_upper),
            ("sw_lower", s.sw_lower),
            ("cas_upper", s.cas_upper),
            ("cas_lower", s.cas_lower),
        ] {
            assert!(v > 1e-4 && v < 0.1, "{name} = {v}");
        }
        assert!(s.max() >= s.sw_upper);
    }

    #[test]
    #[should_panic(expected = "needs the simple topology")]
    fn simple_sigmas_reject_cascoded_cell() {
        let spec = DacSpec::paper_12bit();
        let cell = build_cascoded_cell(&spec, 0.4, 0.3, 0.5, 1);
        let _ = simple_bound_sigmas(&spec, &cell);
    }

    /// Monte-Carlo cross-check of the analytic lower-bound variance: draw
    /// device mismatches, recompute the bound, compare sigma.
    #[test]
    fn lower_bound_sigma_matches_monte_carlo() {
        let spec = DacSpec::paper_12bit();
        let vov_cs = 0.5;
        let vov_sw = 0.6;
        let cell = build_simple_cell(&spec, vov_cs, vov_sw, 1);
        let analytic = simple_bound_sigmas(&spec, &cell).lower;

        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let wl_cs = cell.cs().area();
        let wl_sw = cell.sw().area();
        let mut rng = seeded_rng(2024);
        let mut sampler = NormalSampler::new();
        let samples: Summary = (0..60_000)
            .map(|_| {
                let d_cs = pelgrom.draw(&mut rng, &mut sampler, wl_cs);
                let d_sw = pelgrom.draw(&mut rng, &mut sampler, wl_sw);
                // Current error from the CS threshold in the mirror:
                let di_rel = -2.0 * d_cs.delta_vt / vov_cs;
                // Overdrive shifts: β of the device itself + coherent δI/I.
                let dvov_cs = 0.5 * vov_cs * (di_rel - d_cs.delta_beta_rel);
                let dvov_sw = 0.5 * vov_sw * (di_rel - d_sw.delta_beta_rel);
                dvov_cs + dvov_sw + d_sw.delta_vt
            })
            .collect();
        let mc = samples.std_dev();
        assert!(
            ((mc - analytic) / analytic).abs() < 0.03,
            "MC sigma {mc}, analytic {analytic}"
        );
    }

    /// Monte-Carlo cross-check of the cascoded SW lower-bound variance
    /// (the eq. (12) expression with three coherent overdrive terms).
    #[test]
    fn cascoded_sw_lower_sigma_matches_monte_carlo() {
        let spec = DacSpec::paper_12bit();
        let (vov_cs, vov_cas, vov_sw) = (0.4, 0.3, 0.5);
        let cell = build_cascoded_cell(&spec, vov_cs, vov_cas, vov_sw, 1);
        let analytic = cascoded_bound_sigmas(&spec, &cell).sw_lower;

        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let wl_cs = cell.cs().area();
        let wl_cas = cell.cas().expect("cascode").area();
        let wl_sw = cell.sw().area();
        let mut rng = seeded_rng(777);
        let mut sampler = NormalSampler::new();
        let samples: Summary = (0..60_000)
            .map(|_| {
                let d_cs = pelgrom.draw(&mut rng, &mut sampler, wl_cs);
                let d_cas = pelgrom.draw(&mut rng, &mut sampler, wl_cas);
                let d_sw = pelgrom.draw(&mut rng, &mut sampler, wl_sw);
                let di_rel = -2.0 * d_cs.delta_vt / vov_cs;
                let dvov_cs = 0.5 * vov_cs * (di_rel - d_cs.delta_beta_rel);
                let dvov_cas = 0.5 * vov_cas * (di_rel - d_cas.delta_beta_rel);
                let dvov_sw = 0.5 * vov_sw * (di_rel - d_sw.delta_beta_rel);
                dvov_cs + dvov_cas + dvov_sw + d_sw.delta_vt
            })
            .collect();
        let mc = samples.std_dev();
        assert!(
            ((mc - analytic) / analytic).abs() < 0.03,
            "MC sigma {mc}, analytic {analytic}"
        );
    }

    /// Monte-Carlo cross-check of the cascode-gate lower bound
    /// (`V_OD,CS + V_T,CAS + V_OD,CAS`).
    #[test]
    fn cascoded_cas_lower_sigma_matches_monte_carlo() {
        let spec = DacSpec::paper_12bit();
        let (vov_cs, vov_cas, vov_sw) = (0.4, 0.3, 0.5);
        let cell = build_cascoded_cell(&spec, vov_cs, vov_cas, vov_sw, 1);
        let analytic = cascoded_bound_sigmas(&spec, &cell).cas_lower;

        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let wl_cs = cell.cs().area();
        let wl_cas = cell.cas().expect("cascode").area();
        let mut rng = seeded_rng(778);
        let mut sampler = NormalSampler::new();
        let samples: Summary = (0..60_000)
            .map(|_| {
                let d_cs = pelgrom.draw(&mut rng, &mut sampler, wl_cs);
                let d_cas = pelgrom.draw(&mut rng, &mut sampler, wl_cas);
                let di_rel = -2.0 * d_cs.delta_vt / vov_cs;
                let dvov_cs = 0.5 * vov_cs * (di_rel - d_cs.delta_beta_rel);
                let dvov_cas = 0.5 * vov_cas * (di_rel - d_cas.delta_beta_rel);
                dvov_cs + dvov_cas + d_cas.delta_vt
            })
            .collect();
        let mc = samples.std_dev();
        assert!(
            ((mc - analytic) / analytic).abs() < 0.03,
            "MC sigma {mc}, analytic {analytic}"
        );
    }

    /// Monte-Carlo cross-check of the upper-bound variance.
    #[test]
    fn upper_bound_sigma_matches_monte_carlo() {
        let spec = DacSpec::paper_12bit();
        let cell = build_simple_cell(&spec, 0.5, 0.6, 1);
        let analytic = simple_bound_sigmas(&spec, &cell).upper;

        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let wl_cs = cell.cs().area();
        let wl_sw = cell.sw().area();
        let sigma_fs = pelgrom.sigma_id_rel(wl_cs, 0.5) / (4096f64).sqrt();
        let mut rng = seeded_rng(99);
        let mut sampler = NormalSampler::new();
        let swing = spec.env.v_swing;
        let samples: Summary = (0..60_000)
            .map(|_| {
                let d_sw = pelgrom.draw(&mut rng, &mut sampler, wl_sw);
                let di = sampler.sample(&mut rng) * sigma_fs;
                let drl = sampler.sample(&mut rng) * spec.tech.sigma_rl_rel;
                -swing * (di + drl) + d_sw.delta_vt
            })
            .collect();
        let mc = samples.std_dev();
        assert!(
            ((mc - analytic) / analytic).abs() < 0.03,
            "MC sigma {mc}, analytic {analytic}"
        );
    }
}
