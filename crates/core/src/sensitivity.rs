//! Technology-sensitivity analysis of the methodology's payoff.
//!
//! The paper's §5 scopes its area-saving result: "for the particular
//! technology and DAC topology analyzed in this work". This module answers
//! the obvious follow-up — *when* does the statistical condition matter?
//! It sweeps the matching constants, the load tolerance and the yield
//! target, and reports the area saved relative to the 0.5 V legacy margin
//! at each point.

use crate::explore::{DesignSpace, Objective};
use crate::saturation::SaturationCondition;
use crate::spec::DacSpec;
use core::fmt;

/// One point of a sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensitivityPoint {
    /// The swept parameter's value (see the sweep function for units).
    pub value: f64,
    /// Statistical margin (V) at a fixed reference design point
    /// (V_OD = 0.5/0.6 V) — monotone in the underlying sigma sources.
    pub margin: f64,
    /// Fractional area saved vs the legacy margin (min-area optima of both
    /// conditions compared).
    pub saving: f64,
}

impl fmt::Display for SensitivityPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value {:.4}: margin = {:.0} mV, saving = {:.1} %",
            self.value,
            self.margin * 1e3,
            self.saving * 100.0
        )
    }
}

/// `None` when either condition's admissible region is empty (or fails to
/// evaluate) at this grid — the sweep point is then omitted rather than
/// aborting the whole sweep.
fn saving_at(spec: &DacSpec, grid: usize) -> Option<SensitivityPoint> {
    let stat = DesignSpace::new(spec, SaturationCondition::Statistical)
        .with_grid(grid)
        .optimize(Objective::MinArea)
        .ok()?;
    let legacy = DesignSpace::new(spec, SaturationCondition::legacy())
        .with_grid(grid)
        .optimize(Objective::MinArea)
        .ok()?;
    // Margin reported at a fixed reference point so sweeps show the sigma
    // trend, not the wandering of the optimum.
    let margin = SaturationCondition::Statistical.margin_simple(spec, 0.5, 0.6);
    Some(SensitivityPoint {
        value: 0.0,
        margin,
        saving: 1.0 - stat.total_area / legacy.total_area,
    })
}

/// Sweeps the NMOS `A_VT` (V·m); larger matching constants mean larger
/// bound sigmas and a larger (but still size-aware) statistical margin.
/// Sweep values whose design space is empty are omitted from the result.
pub fn sweep_a_vt(base: &DacSpec, values: &[f64], grid: usize) -> Vec<SensitivityPoint> {
    values
        .iter()
        .filter_map(|&a_vt| {
            let mut spec = *base;
            spec.tech = spec.tech.with_nmos_matching(a_vt, spec.tech.nmos.a_beta);
            saving_at(&spec, grid).map(|p| SensitivityPoint { value: a_vt, ..p })
        })
        .collect()
}

/// Sweeps the load-resistor relative tolerance (dimensionless). Sweep
/// values whose design space is empty are omitted from the result.
pub fn sweep_sigma_rl(base: &DacSpec, values: &[f64], grid: usize) -> Vec<SensitivityPoint> {
    values
        .iter()
        .filter_map(|&s| {
            let mut spec = *base;
            spec.tech = spec.tech.with_sigma_rl_rel(s);
            saving_at(&spec, grid).map(|p| SensitivityPoint { value: s, ..p })
        })
        .collect()
}

/// Sweeps the INL yield target (fraction). Sweep values whose design space
/// is empty are omitted from the result.
pub fn sweep_yield(base: &DacSpec, values: &[f64], grid: usize) -> Vec<SensitivityPoint> {
    values
        .iter()
        .filter_map(|&y| {
            let spec = DacSpec::new(base.n_bits, base.binary_bits, y, base.env, base.tech);
            saving_at(&spec, grid).map(|p| SensitivityPoint { value: y, ..p })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margin_grows_with_matching_constant() {
        let base = DacSpec::paper_12bit();
        let pts = sweep_a_vt(&base, &[5e-9, 9.5e-9, 20e-9], 12);
        assert!(pts[0].margin < pts[1].margin);
        assert!(pts[1].margin < pts[2].margin);
    }

    #[test]
    fn saving_grows_as_mismatch_grows() {
        // Counter-intuitive but real: with a poorly matched technology the
        // CS area is dominated by the A_VT²/V_ov² term, so every millivolt
        // of admissible overdrive recovered from the arbitrary margin buys
        // more area — the statistical condition pays off *more*.
        let base = DacSpec::paper_12bit();
        let pts = sweep_a_vt(&base, &[5e-9, 30e-9], 12);
        assert!(
            pts[1].saving > pts[0].saving,
            "saving did not grow: {} vs {}",
            pts[0].saving,
            pts[1].saving
        );
        assert!(pts.iter().all(|p| p.saving > 0.0));
    }

    #[test]
    fn load_tolerance_inflates_the_margin() {
        let base = DacSpec::paper_12bit();
        let pts = sweep_sigma_rl(&base, &[0.0, 0.01, 0.05], 12);
        assert!(pts[0].margin < pts[2].margin);
        // Even a 5 % resistor keeps the margin below 0.5 V.
        assert!(pts[2].margin < 0.5, "margin {}", pts[2].margin);
    }

    #[test]
    fn tighter_yield_costs_margin_but_saving_stays_positive() {
        let base = DacSpec::paper_12bit();
        let pts = sweep_yield(&base, &[0.90, 0.997, 0.9999], 12);
        assert!(pts[0].margin < pts[2].margin);
        for p in &pts {
            assert!(p.saving > 0.0, "negative saving at yield {}", p.value);
        }
    }
}
