//! The DATE 2003 sizing methodology for high-speed high-accuracy
//! current-steering D/A converters (Albiol, González, Alarcón).
//!
//! This crate is the paper's primary contribution: a sizing flow for the
//! current-source cell that
//!
//! 1. derives the mismatch budget of the unit current source from the
//!    INL < 0.5 LSB / parametric-yield specification (eq. (1)) and turns it
//!    into a CS transistor geometry (eq. (2)) — module [`spec`] and
//!    [`sizing`];
//! 2. replaces the *arbitrary safety margin* of the prior art's saturation
//!    condition (eq. (4) minus 0.5 V) with a *statistical* condition
//!    (eq. (9) for the CS–SW cell, eq. (11) for the cascoded cell), built
//!    from the propagated variances of the gate-voltage bounds
//!    (eq. (6)/(7)/(12)) — modules [`bounds`] and [`saturation`];
//! 3. explores the whole constrained overdrive design space to pick the
//!    minimum-area or maximum-speed design point (the paper's Fig. 3 and
//!    Fig. 4) — modules [`explore`] and [`cascode`];
//! 4. reports the area recovered with respect to the 0.5 V-margin flow —
//!    module [`report`] — and the segmentation trade-off of §1 — module
//!    [`segmentation`].
//!
//! # Example
//!
//! Sizing the paper's 12-bit converter and comparing the margins:
//!
//! ```
//! use ctsdac_core::explore::{DesignSpace, Objective};
//! use ctsdac_core::saturation::SaturationCondition;
//! use ctsdac_core::spec::DacSpec;
//!
//! let spec = DacSpec::paper_12bit();
//! let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(40);
//! let best = space.optimize(Objective::MinArea).expect("feasible design exists");
//! assert!(best.feasible);
//! ```

pub mod bounds;
pub mod cascode;
pub mod corners;
pub mod explore;
pub mod flow;
pub mod report;
pub mod saturation;
pub mod segmentation;
pub mod sensitivity;
pub mod sizing;
pub mod spec;
pub mod validate;

pub use bounds::{BoundSigmas, CascodeBoundSigmas};
pub use explore::{
    AdaptiveSweep, DesignGrid, DesignPoint, DesignSpace, Objective, SweepMode, SweepStats,
};
pub use flow::{run_flow, DesignReport, FlowOptions, TopologyChoice};
pub use report::ComparisonReport;
pub use saturation::SaturationCondition;
pub use sizing::CsSizing;
pub use spec::DacSpec;
