//! Corner-aware verification of a sized design point.
//!
//! The statistical saturation condition covers *local* (mismatch) and
//! load-tolerance variation; *global* process corners shift every device
//! together, which the paper's prior art absorbed inside the same 0.5 V
//! blanket margin. This module makes the corner effect explicit: a slow
//! corner reduces `K'`, and a fixed-current bias therefore runs at a larger
//! overdrive `V_ov' = V_ov·√(K'/K'_corner)`, eating into the headroom. The
//! verifier recomputes the corner overdrives and reports the remaining
//! slack per corner — the honest complement to eq. (9).

use crate::saturation::SaturationCondition;
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_process::ProcessCorner;

/// Feasibility of one design point at one corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerCheck {
    /// The corner checked.
    pub corner: ProcessCorner,
    /// Corner-adjusted overdrive sum in V.
    pub vov_sum: f64,
    /// Headroom left after the saturation margin, in V
    /// (`V_out,min − margin − ΣV_ov'`); negative means the corner fails.
    pub slack: f64,
}

impl CornerCheck {
    /// True if the corner keeps the cell inside the condition.
    pub fn passes(&self) -> bool {
        self.slack >= 0.0
    }
}

impl fmt::Display for CornerCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: sum V_ov = {:.3} V, slack = {:+.3} V{}",
            self.corner,
            self.vov_sum,
            self.slack,
            if self.passes() { "" } else { "  [FAILS]" }
        )
    }
}

/// Corner-adjusted overdrive: at fixed current,
/// `V_ov' = V_ov·√(K'_TT / K'_corner)`.
pub fn corner_overdrive(spec: &DacSpec, corner: ProcessCorner, vov: f64) -> f64 {
    let (k_scale, _) = corner.nmos_shift();
    let _ = spec; // NMOS cell: the spec's device flavour is fixed.
    vov / k_scale.sqrt()
}

/// Checks a simple-topology design point at every corner under `cond`
/// (the margin is evaluated at nominal sizes — corners do not change the
/// drawn geometry).
pub fn verify_corners_simple(
    spec: &DacSpec,
    cond: SaturationCondition,
    vov_cs: f64,
    vov_sw: f64,
) -> Vec<CornerCheck> {
    let margin = cond.margin_simple(spec, vov_cs, vov_sw);
    ProcessCorner::ALL
        .iter()
        .map(|&corner| {
            let sum = corner_overdrive(spec, corner, vov_cs)
                + corner_overdrive(spec, corner, vov_sw);
            CornerCheck {
                corner,
                vov_sum: sum,
                slack: spec.env.v_out_min() - margin - sum,
            }
        })
        .collect()
}

/// The additional overdrive-budget derating (V) that makes the worst corner
/// pass: `max(0, −min slack)`. Designs sized at
/// `ΣV_ov ≤ V_out,min − margin − corner_derating` survive both local
/// variation (eq. (9)) and global corners.
pub fn corner_derating(spec: &DacSpec, cond: SaturationCondition, vov_cs: f64, vov_sw: f64) -> f64 {
    verify_corners_simple(spec, cond, vov_cs, vov_sw)
        .iter()
        .map(|c| -c.slack)
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tt_corner_matches_nominal_condition() {
        let spec = DacSpec::paper_12bit();
        let checks = verify_corners_simple(&spec, SaturationCondition::Statistical, 0.5, 0.6);
        let tt = checks
            .iter()
            .find(|c| c.corner == ProcessCorner::Tt)
            .expect("TT present");
        assert!((tt.vov_sum - 1.1).abs() < 1e-12);
        assert!(tt.passes());
    }

    #[test]
    fn slow_corner_inflates_overdrives() {
        let spec = DacSpec::paper_12bit();
        let ss = corner_overdrive(&spec, ProcessCorner::Ss, 1.0);
        let ff = corner_overdrive(&spec, ProcessCorner::Ff, 1.0);
        assert!(ss > 1.0, "SS overdrive {ss}");
        assert!(ff < 1.0, "FF overdrive {ff}");
        // 12 % K' drop → ~6.6 % overdrive growth.
        assert!((ss - 1.0 / 0.88f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn interior_design_survives_all_corners() {
        let spec = DacSpec::paper_12bit();
        let checks = verify_corners_simple(&spec, SaturationCondition::Statistical, 0.5, 0.6);
        assert!(checks.iter().all(|c| c.passes()), "{checks:?}");
        assert_eq!(checks.len(), 5);
    }

    #[test]
    fn constraint_line_design_fails_the_slow_corner() {
        // Exactly on the eq. (9) line there is no headroom left for a
        // global K' shift — the honest caveat this module exposes.
        let spec = DacSpec::paper_12bit();
        let cond = SaturationCondition::Statistical;
        let vov_cs = 0.9;
        let vov_sw = cond.max_vov_sw(&spec, vov_cs).expect("feasible");
        let checks = verify_corners_simple(&spec, cond, vov_cs, vov_sw);
        let ss = checks
            .iter()
            .find(|c| c.corner == ProcessCorner::Ss)
            .expect("SS present");
        assert!(!ss.passes(), "SS unexpectedly passes: {ss}");
        let derating = corner_derating(&spec, cond, vov_cs, vov_sw);
        assert!(derating > 0.0 && derating < 0.3, "derating = {derating}");
    }

    #[test]
    fn derating_restores_all_corners() {
        let spec = DacSpec::paper_12bit();
        let cond = SaturationCondition::Statistical;
        let vov_cs = 0.9;
        let vov_sw = cond.max_vov_sw(&spec, vov_cs).expect("feasible");
        let derating = corner_derating(&spec, cond, vov_cs, vov_sw);
        // Shrink both overdrives proportionally to absorb the derating.
        let scale = (spec.env.v_out_min()
            - cond.margin_simple(&spec, vov_cs, vov_sw)
            - derating)
            / (vov_cs + vov_sw);
        let checks =
            verify_corners_simple(&spec, cond, vov_cs * scale, vov_sw * scale);
        assert!(
            checks.iter().all(|c| c.slack > -0.02),
            "derated design still fails: {checks:?}"
        );
    }

    #[test]
    fn corner_failure_ordering_is_ss_worst() {
        let spec = DacSpec::paper_12bit();
        let checks = verify_corners_simple(&spec, SaturationCondition::Exact, 1.0, 1.0);
        let slack = |c: ProcessCorner| {
            checks
                .iter()
                .find(|x| x.corner == c)
                .expect("corner present")
                .slack
        };
        assert!(slack(ProcessCorner::Ss) <= slack(ProcessCorner::Tt));
        assert!(slack(ProcessCorner::Tt) <= slack(ProcessCorner::Ff));
    }
}
