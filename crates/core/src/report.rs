//! Margin-comparison report: the paper's §5 area-saving claim, quantified.
//!
//! "The results shown in Fig. 3 indicate that, for the particular technology
//! and DAC topology analyzed in this work, the proposed approach allows
//! saving area in comparison with the approach of \[9] where a 0.5 V safety
//! margin is added to the overdrive voltages bound."

use crate::cascode::CascodeSpace;
use crate::explore::{DesignSpace, ExploreError, Objective};
use crate::saturation::SaturationCondition;
use crate::sizing::build_simple_cell;
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_circuit::cell::CellTopology;

/// Side-by-side minimum-area results under the legacy and statistical
/// saturation conditions.
///
/// # Examples
///
/// ```
/// use ctsdac_core::{ComparisonReport, DacSpec};
/// use ctsdac_circuit::cell::CellTopology;
///
/// let report = ComparisonReport::compute(&DacSpec::paper_12bit(), CellTopology::Simple, 24)?;
/// assert!(report.area_saving_fraction() > 0.0);
/// println!("{report}");
/// # Ok::<(), ctsdac_core::explore::ExploreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComparisonReport {
    /// Which topology was compared.
    pub topology: CellTopology,
    /// Overdrives of the legacy (0.5 V margin) optimum:
    /// `(vov_cs, vov_cas_or_zero, vov_sw)`.
    pub legacy_overdrives: (f64, f64, f64),
    /// Overdrives of the statistical optimum.
    pub statistical_overdrives: (f64, f64, f64),
    /// Total analog area under the legacy condition, m².
    pub legacy_area: f64,
    /// Total analog area under the statistical condition, m².
    pub statistical_area: f64,
    /// Margin (V) actually charged by the statistical condition at its
    /// optimum.
    pub statistical_margin: f64,
}

impl ComparisonReport {
    /// Optimises min-area under both conditions and assembles the report.
    ///
    /// # Errors
    ///
    /// Propagates [`ExploreError`] if either condition has an empty
    /// admissible region at the requested grid (does not happen for
    /// realistic specs).
    pub fn compute(
        spec: &DacSpec,
        topology: CellTopology,
        grid: usize,
    ) -> Result<Self, ExploreError> {
        match topology {
            CellTopology::Simple => {
                let legacy = DesignSpace::new(spec, SaturationCondition::legacy())
                    .with_grid(grid)
                    .optimize(Objective::MinArea)?;
                let stat = DesignSpace::new(spec, SaturationCondition::Statistical)
                    .with_grid(grid)
                    .optimize(Objective::MinArea)?;
                let margin = SaturationCondition::Statistical.margin_simple(
                    spec,
                    stat.vov_cs,
                    stat.vov_sw,
                );
                Ok(Self {
                    topology,
                    legacy_overdrives: (legacy.vov_cs, 0.0, legacy.vov_sw),
                    statistical_overdrives: (stat.vov_cs, 0.0, stat.vov_sw),
                    legacy_area: legacy.total_area,
                    statistical_area: stat.total_area,
                    statistical_margin: margin,
                })
            }
            CellTopology::Cascoded => {
                let empty = || ExploreError::EmptyFeasibleRegion {
                    evaluated: grid * grid * grid,
                };
                let legacy = CascodeSpace::new(spec, SaturationCondition::legacy())
                    .with_grid(grid)
                    .min_area_point()
                    .ok_or_else(empty)?;
                let stat = CascodeSpace::new(spec, SaturationCondition::Statistical)
                    .with_grid(grid)
                    .min_area_point()
                    .ok_or_else(empty)?;
                let margin = SaturationCondition::Statistical.margin_cascoded(
                    spec,
                    stat.vov_cs,
                    stat.vov_cas,
                    stat.vov_sw,
                );
                Ok(Self {
                    topology,
                    legacy_overdrives: (legacy.vov_cs, legacy.vov_cas, legacy.vov_sw),
                    statistical_overdrives: (stat.vov_cs, stat.vov_cas, stat.vov_sw),
                    legacy_area: legacy.total_area,
                    statistical_area: stat.total_area,
                    statistical_margin: margin,
                })
            }
        }
    }

    /// Fractional area recovered by the statistical condition,
    /// `1 − A_stat/A_legacy`.
    pub fn area_saving_fraction(&self) -> f64 {
        1.0 - self.statistical_area / self.legacy_area
    }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Margin comparison ({} topology)", self.topology)?;
        writeln!(
            f,
            "  legacy 0.5 V margin : Vov = ({:.2}, {:.2}, {:.2}) V, area = {:.1} kum2",
            self.legacy_overdrives.0,
            self.legacy_overdrives.1,
            self.legacy_overdrives.2,
            self.legacy_area * 1e12 / 1e3
        )?;
        writeln!(
            f,
            "  statistical (eq. 9/11): Vov = ({:.2}, {:.2}, {:.2}) V, area = {:.1} kum2, margin = {:.0} mV",
            self.statistical_overdrives.0,
            self.statistical_overdrives.1,
            self.statistical_overdrives.2,
            self.statistical_area * 1e12 / 1e3,
            self.statistical_margin * 1e3
        )?;
        write!(
            f,
            "  area saving: {:.1} %",
            self.area_saving_fraction() * 100.0
        )
    }
}

/// Per-transistor sizing table for a simple-topology design point, used by
/// the figure binaries to print the sized devices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizingTable {
    /// CS width and length, m.
    pub cs: (f64, f64),
    /// Switch width and length, m.
    pub sw: (f64, f64),
    /// Cell current, A.
    pub i_unit: f64,
}

impl SizingTable {
    /// Sizes the LSB cell of `spec` at the given overdrives.
    pub fn for_simple(spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> Self {
        let cell = build_simple_cell(spec, vov_cs, vov_sw, 1);
        Self {
            cs: (cell.cs().w(), cell.cs().l()),
            sw: (cell.sw().w(), cell.sw().l()),
            i_unit: cell.i_unit(),
        }
    }
}

impl fmt::Display for SizingTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CS = {:.2}x{:.2} um, SW = {:.2}x{:.2} um @ {:.3} uA",
            self.cs.0 * 1e6,
            self.cs.1 * 1e6,
            self.sw.0 * 1e6,
            self.sw.1 * 1e6,
            self.i_unit * 1e6
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_report_shows_positive_saving() {
        let report =
            ComparisonReport::compute(&DacSpec::paper_12bit(), CellTopology::Simple, 20)
                .expect("feasible");
        assert!(
            report.area_saving_fraction() > 0.0,
            "no saving: {report}"
        );
        assert!(report.statistical_margin < 0.5);
    }

    #[test]
    fn cascoded_report_shows_positive_saving() {
        let report =
            ComparisonReport::compute(&DacSpec::paper_12bit(), CellTopology::Cascoded, 8)
                .expect("feasible");
        assert!(
            report.area_saving_fraction() > 0.0,
            "no saving: {report}"
        );
    }

    #[test]
    fn statistical_overdrives_exceed_legacy_sum() {
        // The recovered margin shows up as a larger admissible Vov sum.
        let r = ComparisonReport::compute(&DacSpec::paper_12bit(), CellTopology::Simple, 20)
                .expect("feasible");
        let legacy_sum = r.legacy_overdrives.0 + r.legacy_overdrives.2;
        let stat_sum = r.statistical_overdrives.0 + r.statistical_overdrives.2;
        assert!(stat_sum > legacy_sum, "stat {stat_sum} <= legacy {legacy_sum}");
    }

    #[test]
    fn display_contains_saving_percentage() {
        let r = ComparisonReport::compute(&DacSpec::paper_12bit(), CellTopology::Simple, 12)
            .expect("feasible");
        let s = r.to_string();
        assert!(s.contains("area saving"), "{s}");
    }

    #[test]
    fn sizing_table_reports_lsb_current() {
        let spec = DacSpec::paper_12bit();
        let t = SizingTable::for_simple(&spec, 0.5, 0.6);
        assert!((t.i_unit - spec.i_lsb()).abs() / spec.i_lsb() < 1e-9);
        assert!(t.cs.0 > 0.0 && t.cs.1 > 0.0);
    }
}
