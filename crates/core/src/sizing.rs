//! CS transistor sizing from the mismatch budget (paper eq. (2)) and
//! construction of fully sized cells.
//!
//! Two independent constraints pin the CS geometry completely:
//!
//! * the mismatch budget fixes the gate *area*:
//!   `(W·L)_CS = (A_β² + 4·A_VT²/V_ov²) / σ²(I/I)`;
//! * the square law fixes the *aspect ratio* at the chosen overdrive:
//!   `(W/L)_CS = 2·I / (K'·V_ov²)`.
//!
//! "The same aspect ratio can be obtained for different areas W·L, except
//! for the CS transistor, because the usual INL-mismatch specification
//! eliminates one degree of freedom" (§2). The switch (and cascode) keep
//! minimum length and take the width their overdrive dictates.

use crate::spec::DacSpec;
use core::fmt;
use ctsdac_circuit::cell::SizedCell;
use ctsdac_process::mosfet::aspect_for_current;
use ctsdac_process::Pelgrom;

/// The sized CS transistor of the LSB unit source.
///
/// # Examples
///
/// ```
/// use ctsdac_core::{CsSizing, DacSpec};
///
/// let spec = DacSpec::paper_12bit();
/// let cs = CsSizing::for_spec(&spec, 0.5);
/// // 12-bit at 99.7 % yield needs a few hundred µm² of CS gate area.
/// assert!(cs.area() * 1e12 > 100.0 && cs.area() * 1e12 < 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsSizing {
    w: f64,
    l: f64,
    vov: f64,
    sigma_target: f64,
}

impl CsSizing {
    /// Sizes the LSB-unit CS transistor for `spec` at overdrive `vov_cs`
    /// (paper eq. (2)).
    ///
    /// # Panics
    ///
    /// Panics if `vov_cs` is not finite and strictly positive.
    pub fn for_spec(spec: &DacSpec, vov_cs: f64) -> Self {
        assert!(
            vov_cs.is_finite() && vov_cs > 0.0,
            "invalid overdrive {vov_cs}"
        );
        let sigma = spec.sigma_unit_spec();
        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let wl = pelgrom.required_area(vov_cs, sigma);
        let aspect = aspect_for_current(&spec.tech.nmos, spec.i_lsb(), vov_cs);
        Self {
            w: (wl * aspect).sqrt(),
            l: (wl / aspect).sqrt(),
            vov: vov_cs,
            sigma_target: sigma,
        }
    }

    /// Channel width in m.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Channel length in m.
    pub fn l(&self) -> f64 {
        self.l
    }

    /// Gate area `W·L` in m².
    pub fn area(&self) -> f64 {
        self.w * self.l
    }

    /// Aspect ratio `W/L`.
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }

    /// Design overdrive in V.
    pub fn vov(&self) -> f64 {
        self.vov
    }

    /// The σ(I)/I target the area was derived from.
    pub fn sigma_target(&self) -> f64 {
        self.sigma_target
    }
}

impl fmt::Display for CsSizing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CS {:.2} x {:.2} um (Vov = {:.2} V, sigma = {:.3}%)",
            self.w * 1e6,
            self.l * 1e6,
            self.vov,
            self.sigma_target * 100.0
        )
    }
}

/// Builds a simple-topology cell of the given LSB `weight` (1 for the LSB
/// cell, `2^b` for a unary cell). The CS is `weight` parallel LSB units
/// (same L, width scaled), matching the sub-unit layout style of §4.
///
/// # Panics
///
/// Panics if `weight == 0` or the overdrives are invalid.
pub fn build_simple_cell(spec: &DacSpec, vov_cs: f64, vov_sw: f64, weight: u64) -> SizedCell {
    assert!(weight > 0, "cell weight must be at least 1");
    let unit = CsSizing::for_spec(spec, vov_cs);
    let k = weight as f64;
    SizedCell::simple_from_overdrives(
        &spec.tech,
        spec.i_lsb() * k,
        vov_cs,
        vov_sw,
        unit.area() * k, // k parallel units: area × k, aspect × k ⇒ W × k, L unchanged
        None,
    )
}

/// Builds a simple-topology cell from an already-computed LSB CS sizing —
/// the hot-loop variant of [`build_simple_cell`]. The CS sizing depends on
/// `vov_cs` only, so one [`CsSizing`] serves a whole sweep row of switch
/// overdrives. Bit-identical to [`build_simple_cell`] when `unit` is
/// `CsSizing::for_spec(spec, vov_cs)`.
///
/// # Panics
///
/// Panics if `weight == 0` or `vov_sw` is invalid.
pub fn build_simple_cell_with_unit(
    spec: &DacSpec,
    unit: &CsSizing,
    vov_sw: f64,
    weight: u64,
) -> SizedCell {
    assert!(weight > 0, "cell weight must be at least 1");
    let k = weight as f64;
    SizedCell::simple_from_overdrives(
        &spec.tech,
        spec.i_lsb() * k,
        unit.vov(),
        vov_sw,
        unit.area() * k,
        None,
    )
}

/// Sizes the CS device of a weight-`weight` simple cell from an
/// already-computed LSB CS sizing. The geometry depends only on
/// `(vov_cs, weight)`, so lane-batched sweep rows compute it once per row
/// per weight and assemble per-point cells with
/// [`build_simple_cell_with_cs`]. Bit-identical to the CS device inside
/// [`build_simple_cell_with_unit`] at the same arguments.
///
/// # Panics
///
/// Panics if `weight == 0`.
pub fn sized_cs_with_unit(
    spec: &DacSpec,
    unit: &CsSizing,
    weight: u64,
) -> ctsdac_process::mosfet::Mosfet {
    assert!(weight > 0, "cell weight must be at least 1");
    let k = weight as f64;
    SizedCell::sized_cs_device(&spec.tech, spec.i_lsb() * k, unit.vov(), unit.area() * k)
}

/// Assembles a simple cell around a row-constant CS device from
/// [`sized_cs_with_unit`] — the lane-kernel variant of
/// [`build_simple_cell_with_unit`], bit-identical to it when `cs` was sized
/// for the same `(spec, unit, weight)` triple.
///
/// # Panics
///
/// Panics if `weight == 0` or `vov_sw` is invalid.
pub fn build_simple_cell_with_cs(
    spec: &DacSpec,
    unit: &CsSizing,
    cs: &ctsdac_process::mosfet::Mosfet,
    vov_sw: f64,
    weight: u64,
) -> SizedCell {
    assert!(weight > 0, "cell weight must be at least 1");
    let k = weight as f64;
    SizedCell::simple_from_cs_device(&spec.tech, spec.i_lsb() * k, *cs, unit.vov(), vov_sw)
}

/// Sizes the switch device of a weight-`weight` simple cell. The geometry
/// depends only on `(vov_sw, weight)`, so lane-batched sweeps compute it
/// once per grid *column* per weight and assemble per-point cells with
/// [`build_simple_cell_with_devices`]. Bit-identical to the switch inside
/// [`build_simple_cell_with_unit`] at the same arguments.
///
/// # Panics
///
/// Panics if `weight == 0` or `vov_sw` is invalid.
pub fn sized_sw_with_weight(
    spec: &DacSpec,
    vov_sw: f64,
    weight: u64,
) -> ctsdac_process::mosfet::Mosfet {
    assert!(weight > 0, "cell weight must be at least 1");
    let k = weight as f64;
    SizedCell::sized_sw_device(&spec.tech, spec.i_lsb() * k, vov_sw)
}

/// Assembles a simple cell from a row-constant CS device and a
/// column-constant switch device — pure struct assembly, bit-identical to
/// [`build_simple_cell_with_unit`] when both devices were sized for the
/// same `(spec, unit, vov_sw, weight)`.
///
/// # Panics
///
/// Panics if `weight == 0`.
pub fn build_simple_cell_with_devices(
    spec: &DacSpec,
    unit: &CsSizing,
    cs: &ctsdac_process::mosfet::Mosfet,
    sw: &ctsdac_process::mosfet::Mosfet,
    vov_sw: f64,
    weight: u64,
) -> SizedCell {
    assert!(weight > 0, "cell weight must be at least 1");
    let k = weight as f64;
    SizedCell::simple_from_devices(&spec.tech, spec.i_lsb() * k, *cs, *sw, unit.vov(), vov_sw)
}

/// Total analog gate area from an already-built weight-1 LSB cell — the
/// hot-loop variant of [`total_analog_area_simple`], for callers that have
/// the LSB cell in hand anyway (e.g. for the statistical margin sigmas).
/// Bit-identical to [`total_analog_area_simple`] at the same overdrives.
pub fn total_analog_area_from_lsb(spec: &DacSpec, lsb_cell: &SizedCell) -> f64 {
    let units = (spec.lsb_unit_count() - 1) as f64;
    units * lsb_cell.total_area()
}

/// Total analog gate area from the weight-1 LSB device gate areas alone —
/// the lane-sweep variant of [`total_analog_area_from_lsb`] for callers
/// that never assemble the LSB [`SizedCell`]. The sum replicates
/// [`SizedCell::total_area`] on a simple (cascode-free) cell term by term,
/// so it is bit-identical to the cell-based form.
pub fn total_analog_area_from_geometry(spec: &DacSpec, wl_cs: f64, wl_sw: f64) -> f64 {
    let units = (spec.lsb_unit_count() - 1) as f64;
    units * (wl_cs + 2.0 * wl_sw + 0.0)
}

/// Builds a cascoded-topology cell of the given LSB `weight`.
///
/// # Panics
///
/// Panics if `weight == 0` or the overdrives are invalid.
pub fn build_cascoded_cell(
    spec: &DacSpec,
    vov_cs: f64,
    vov_cas: f64,
    vov_sw: f64,
    weight: u64,
) -> SizedCell {
    assert!(weight > 0, "cell weight must be at least 1");
    let unit = CsSizing::for_spec(spec, vov_cs);
    let k = weight as f64;
    SizedCell::cascoded_from_overdrives(
        &spec.tech,
        spec.i_lsb() * k,
        vov_cs,
        vov_cas,
        vov_sw,
        unit.area() * k,
        None,
        None,
    )
}

/// Total analog gate area of the converter for a simple-topology sizing:
/// the sum over all `2ⁿ − 1` LSB equivalents of CS plus switch area.
///
/// Used as the area objective of the paper's Fig. 3 exploration.
pub fn total_analog_area_simple(spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> f64 {
    let lsb_cell = build_simple_cell(spec, vov_cs, vov_sw, 1);
    let units = (spec.lsb_unit_count() - 1) as f64;
    // CS area scales exactly with the unit count; the switch area scales
    // with current (width) at fixed length, so also linearly.
    units * lsb_cell.total_area()
}

/// Total analog gate area for a cascoded-topology sizing.
pub fn total_analog_area_cascoded(
    spec: &DacSpec,
    vov_cs: f64,
    vov_cas: f64,
    vov_sw: f64,
) -> f64 {
    let lsb_cell = build_cascoded_cell(spec, vov_cs, vov_cas, vov_sw, 1);
    let units = (spec.lsb_unit_count() - 1) as f64;
    units * lsb_cell.total_area()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsdac_process::Pelgrom;

    #[test]
    fn sizing_meets_sigma_target() {
        let spec = DacSpec::paper_12bit();
        let cs = CsSizing::for_spec(&spec, 0.5);
        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let achieved = pelgrom.sigma_id_rel(cs.area(), 0.5);
        assert!(
            ((achieved - cs.sigma_target()) / cs.sigma_target()).abs() < 1e-9,
            "achieved {achieved}, target {}",
            cs.sigma_target()
        );
    }

    #[test]
    fn sizing_conducts_lsb_current() {
        let spec = DacSpec::paper_12bit();
        let cs = CsSizing::for_spec(&spec, 0.5);
        // I = ½ K' (W/L) Vov²
        let i = 0.5 * spec.tech.nmos.kp * cs.aspect() * 0.25;
        assert!(((i - spec.i_lsb()) / spec.i_lsb()).abs() < 1e-9);
    }

    #[test]
    fn cs_is_long_and_narrow_for_high_resolution() {
        // A 12-bit LSB source in 0.35 µm is a long device: the tiny current
        // wants W/L ≪ 1 while matching wants hundreds of µm².
        let spec = DacSpec::paper_12bit();
        let cs = CsSizing::for_spec(&spec, 0.5);
        assert!(cs.aspect() < 1.0, "aspect = {}", cs.aspect());
        assert!(cs.l() > cs.w());
    }

    #[test]
    fn higher_overdrive_shrinks_cs_area() {
        let spec = DacSpec::paper_12bit();
        let lo = CsSizing::for_spec(&spec, 0.2);
        let hi = CsSizing::for_spec(&spec, 0.8);
        assert!(lo.area() > hi.area());
    }

    #[test]
    fn weighted_cell_is_parallel_units() {
        let spec = DacSpec::paper_12bit();
        let unit = build_simple_cell(&spec, 0.5, 0.6, 1);
        let unary = build_simple_cell(&spec, 0.5, 0.6, 16);
        // Same length, 16× width, 16× current.
        assert!((unary.cs().l() - unit.cs().l()).abs() / unit.cs().l() < 1e-9);
        assert!((unary.cs().w() / unit.cs().w() - 16.0).abs() < 1e-9);
        assert!((unary.i_unit() / unit.i_unit() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn unary_cell_mismatch_improves_with_weight() {
        // 16 parallel units average their errors: σ_rel drops by √16 = 4.
        let spec = DacSpec::paper_12bit();
        let pelgrom = Pelgrom::new(&spec.tech.nmos);
        let unit = build_simple_cell(&spec, 0.5, 0.6, 1);
        let unary = build_simple_cell(&spec, 0.5, 0.6, 16);
        let s_unit = pelgrom.sigma_id_rel(unit.cs().area(), 0.5);
        let s_unary = pelgrom.sigma_id_rel(unary.cs().area(), 0.5);
        assert!((s_unit / s_unary - 4.0).abs() < 1e-6);
    }

    #[test]
    fn total_area_scales_with_resolution() {
        let base = DacSpec::paper_12bit();
        let s10 = DacSpec::new(10, 4, 0.997, base.env, base.tech);
        let s12 = base;
        let a10 = total_analog_area_simple(&s10, 0.5, 0.6);
        let a12 = total_analog_area_simple(&s12, 0.5, 0.6);
        // Two more bits: 4× the units *and* 4× the per-unit area (tighter
        // sigma) minus the 4× smaller unit current in the aspect — net
        // strictly larger.
        assert!(a12 > 4.0 * a10, "a12 = {a12}, a10 = {a10}");
    }

    #[test]
    fn geometry_area_is_bit_identical_to_cell_area() {
        let spec = DacSpec::paper_12bit();
        for (vov_cs, vov_sw) in [(0.3, 0.4), (0.5, 0.6), (1.1, 0.9)] {
            let lsb = build_simple_cell(&spec, vov_cs, vov_sw, 1);
            assert_eq!(
                total_analog_area_from_lsb(&spec, &lsb).to_bits(),
                total_analog_area_from_geometry(&spec, lsb.cs().area(), lsb.sw().area())
                    .to_bits(),
            );
        }
    }

    #[test]
    fn cascoded_cell_builder_works() {
        let spec = DacSpec::paper_12bit();
        let cell = build_cascoded_cell(&spec, 0.4, 0.3, 0.5, 16);
        assert!(cell.cas().is_some());
        assert!((cell.i_unit() - spec.i_unary()).abs() / spec.i_unary() < 1e-9);
    }

    #[test]
    fn hoisted_cs_build_is_bit_identical_to_the_direct_build() {
        // The lane kernel assembles cells from a row-constant CS device;
        // that path must reproduce the direct builder field for field.
        let spec = DacSpec::paper_12bit();
        let unit = CsSizing::for_spec(&spec, 0.42);
        for weight in [1u64, 16] {
            let cs = sized_cs_with_unit(&spec, &unit, weight);
            for vov_sw in [0.2, 0.45, 0.7] {
                let hoisted = build_simple_cell_with_cs(&spec, &unit, &cs, vov_sw, weight);
                let direct = build_simple_cell_with_unit(&spec, &unit, vov_sw, weight);
                assert_eq!(hoisted, direct);
            }
        }
    }

    #[test]
    #[should_panic(expected = "weight must be at least 1")]
    fn zero_weight_rejected() {
        let spec = DacSpec::paper_12bit();
        let _ = build_simple_cell(&spec, 0.5, 0.6, 0);
    }
}
