//! Architecture-level segmentation trade-off (paper §1).
//!
//! "The design of current-steering DAC starts with an architectural
//! selection to find the optimum segmentation ratio that minimizes the
//! overall digital and analog area \[4,5,6] ... The glitch energy is
//! determined by the number of binary bits b, being the optimum architecture
//! in this sense a totally unary DAC. However this is unfeasible in practice
//! due to the large area and delay that the thermometer decoder would
//! exhibit."
//!
//! The model here follows the classic Lin & Bult \[5] analysis:
//!
//! * the analog (matching-driven) area is *independent* of segmentation —
//!   the INL spec fixes the per-LSB-unit area;
//! * the thermometer decoder and the latch/switch rows grow with the number
//!   of unary cells, `∝ (2^m − 1)`;
//! * the DNL requirement adds a *binary-side* area constraint,
//!   `σ ≤ 1/(2·C·√(2^{b+1}))`, which only binds at large `b`;
//! * the worst-case glitch charge scales with the largest binary weight,
//!   `∝ 2^b`.

use crate::spec::DacSpec;
use core::fmt;

/// Per-unary-cell digital overhead (decoder slice + latch + switch driver)
/// expressed as an equivalent gate area in m². Calibrated so that at the
/// paper's node the decoder of a fully unary 12-bit DAC dominates the
/// analog array, matching the "unfeasible in practice" remark.
const DIGITAL_AREA_PER_UNARY_CELL: f64 = 900e-12;

/// Fixed per-binary-bit digital overhead (dummy decoder slice, latch), m².
const DIGITAL_AREA_PER_BINARY_BIT: f64 = 250e-12;

/// Evaluation of one segmentation choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentationPoint {
    /// Number of binary bits `b`.
    pub binary_bits: u32,
    /// Analog gate area in m² (INL/DNL-driven, whichever binds).
    pub analog_area: f64,
    /// Digital area (decoder + latches) in m².
    pub digital_area: f64,
    /// Relative worst-case glitch charge (normalised to the LSB switch
    /// charge): `2^b`.
    pub glitch_rel: f64,
}

impl SegmentationPoint {
    /// Total area in m².
    pub fn total_area(&self) -> f64 {
        self.analog_area + self.digital_area
    }

    /// Combined architecture cost: digital area normalised to the fully
    /// unary decoder plus `w_glitch` times the glitch charge normalised to
    /// full scale. Area alone pushes toward fully binary (the DNL spec
    /// "is always satisfied ... for reasonable segmentation ratios"); the
    /// glitch term is what makes a mid-segmentation optimal, exactly the
    /// trade the paper describes in §1.
    ///
    /// # Panics
    ///
    /// Panics if `w_glitch` is negative or non-finite.
    pub fn normalized_cost(&self, n_bits: u32, w_glitch: f64) -> f64 {
        assert!(
            w_glitch.is_finite() && w_glitch >= 0.0,
            "invalid glitch weight {w_glitch}"
        );
        let full_unary_digital =
            ((1u64 << n_bits) - 1) as f64 * DIGITAL_AREA_PER_UNARY_CELL;
        // Both area terms share one normalisation so the (constant) analog
        // floor does not bias the optimum but the DNL penalty at large b
        // still registers.
        (self.digital_area + self.analog_area) / full_unary_digital
            + w_glitch * self.glitch_rel / (1u64 << n_bits) as f64
    }
}

impl fmt::Display for SegmentationPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b = {:2}: analog = {:8.1} kum2, digital = {:8.1} kum2, glitch = {:6.0}",
            self.binary_bits,
            self.analog_area * 1e12 / 1e3,
            self.digital_area * 1e12 / 1e3,
            self.glitch_rel
        )
    }
}

/// Sweeps the segmentation choice `b = 0..=n` for a converter of `spec`'s
/// resolution, evaluating the area/glitch trade-off at the given reference
/// overdrives.
///
/// # Examples
///
/// ```
/// use ctsdac_core::segmentation::segmentation_sweep;
/// use ctsdac_core::DacSpec;
///
/// let pts = segmentation_sweep(&DacSpec::paper_12bit(), 0.5, 0.6);
/// assert_eq!(pts.len(), 13);
/// // Fully unary maximises digital area; fully binary maximises glitch.
/// assert!(pts[0].digital_area > pts[12].digital_area);
/// assert!(pts[12].glitch_rel > pts[0].glitch_rel);
/// ```
pub fn segmentation_sweep(spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> Vec<SegmentationPoint> {
    (0..=spec.n_bits)
        .map(|b| evaluate_segmentation(spec, b, vov_cs, vov_sw))
        .collect()
}

/// Evaluates one segmentation choice.
///
/// # Panics
///
/// Panics if `binary_bits > spec.n_bits`.
pub fn evaluate_segmentation(
    spec: &DacSpec,
    binary_bits: u32,
    vov_cs: f64,
    vov_sw: f64,
) -> SegmentationPoint {
    assert!(
        binary_bits <= spec.n_bits,
        "binary bits {binary_bits} exceed resolution {}",
        spec.n_bits
    );
    let seg_spec = DacSpec::new(spec.n_bits, binary_bits, spec.inl_yield, spec.env, spec.tech);

    // Analog area: the INL spec is segmentation-independent, but the DNL
    // spec (worst at the unary/binary carry, √(2^{b+1}) units toggle) can
    // bind at large b. Area scales as 1/σ².
    let sigma_inl = seg_spec.sigma_unit_spec();
    let c = seg_spec.yield_constant();
    let sigma_dnl = 1.0 / (2.0 * c * ((1u64 << (binary_bits + 1)) as f64).sqrt());
    let sigma = sigma_inl.min(sigma_dnl);
    let base = crate::sizing::total_analog_area_simple(&seg_spec, vov_cs, vov_sw);
    let analog_area = base * (sigma_inl / sigma).powi(2);

    let n_unary = seg_spec.unary_source_count() as f64;
    let digital_area = n_unary * DIGITAL_AREA_PER_UNARY_CELL
        + binary_bits as f64 * DIGITAL_AREA_PER_BINARY_BIT;

    SegmentationPoint {
        binary_bits,
        analog_area,
        digital_area,
        glitch_rel: (1u64 << binary_bits) as f64,
    }
}

/// Default weight of the glitch term in [`SegmentationPoint::normalized_cost`].
pub const DEFAULT_GLITCH_WEIGHT: f64 = 4.0;

/// The segmentation minimising the combined decoder-area/glitch cost.
pub fn optimal_segmentation(spec: &DacSpec, vov_cs: f64, vov_sw: f64) -> SegmentationPoint {
    segmentation_sweep(spec, vov_cs, vov_sw)
        .into_iter()
        .min_by(|a, b| {
            a.normalized_cost(spec.n_bits, DEFAULT_GLITCH_WEIGHT)
                .total_cmp(&b.normalized_cost(spec.n_bits, DEFAULT_GLITCH_WEIGHT))
        })
        // The sweep covers b = 0..=n and is never empty; the fully unary
        // architecture is the defensive fallback.
        .unwrap_or_else(|| evaluate_segmentation(spec, 0, vov_cs, vov_sw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_interior_area_optimum() {
        // Fully unary pays a huge decoder; fully binary pays DNL-driven
        // analog area. The optimum sits strictly inside.
        let spec = DacSpec::paper_12bit();
        let best = optimal_segmentation(&spec, 0.5, 0.6);
        assert!(
            best.binary_bits > 0 && best.binary_bits < 12,
            "optimum at b = {}",
            best.binary_bits
        );
    }

    #[test]
    fn paper_segmentation_is_near_optimal() {
        // The paper picked b = 4; our calibrated model must agree within a
        // couple of bits.
        let spec = DacSpec::paper_12bit();
        let best = optimal_segmentation(&spec, 0.5, 0.6);
        assert!(
            (best.binary_bits as i64 - 4).abs() <= 3,
            "optimum at b = {}",
            best.binary_bits
        );
    }

    #[test]
    fn inl_area_is_segmentation_independent_at_small_b() {
        let spec = DacSpec::paper_12bit();
        let a0 = evaluate_segmentation(&spec, 0, 0.5, 0.6).analog_area;
        let a4 = evaluate_segmentation(&spec, 4, 0.5, 0.6).analog_area;
        assert!(
            ((a0 - a4) / a0).abs() < 1e-9,
            "analog area changed: {a0} vs {a4}"
        );
    }

    #[test]
    fn dnl_binds_only_at_large_b() {
        let spec = DacSpec::paper_12bit();
        let mid = evaluate_segmentation(&spec, 6, 0.5, 0.6);
        let full_binary = evaluate_segmentation(&spec, 12, 0.5, 0.6);
        assert!(full_binary.analog_area > mid.analog_area);
    }

    #[test]
    fn glitch_doubles_per_binary_bit() {
        let spec = DacSpec::paper_12bit();
        let p3 = evaluate_segmentation(&spec, 3, 0.5, 0.6);
        let p4 = evaluate_segmentation(&spec, 4, 0.5, 0.6);
        assert_eq!(p4.glitch_rel / p3.glitch_rel, 2.0);
    }

    #[test]
    fn decoder_area_halves_per_binary_bit_at_small_b() {
        let spec = DacSpec::paper_12bit();
        let p0 = evaluate_segmentation(&spec, 0, 0.5, 0.6);
        let p1 = evaluate_segmentation(&spec, 1, 0.5, 0.6);
        let ratio = p0.digital_area / p1.digital_area;
        assert!((ratio - 2.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "exceed resolution")]
    fn oversized_b_rejected() {
        let spec = DacSpec::paper_12bit();
        let _ = evaluate_segmentation(&spec, 13, 0.5, 0.6);
    }
}
