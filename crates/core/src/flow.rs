//! The complete design flow of the paper's §2–§3 as one orchestrated call.
//!
//! `architecture → topology selection → constrained sizing → dynamic
//! verification → corner check`, producing a structured [`DesignReport`].
//! This is the API a downstream user adopts; every stage delegates to the
//! modules that implement the individual equations.

use crate::cascode::CascodeSpace;
use crate::corners::{verify_corners_simple, CornerCheck};
use crate::explore::{DesignSpace, ExploreError, Objective, SweepError};
use crate::saturation::SaturationCondition;
use crate::sizing::{build_cascoded_cell, build_simple_cell};
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_circuit::cell::{CellTopology, SizedCell};
use ctsdac_circuit::impedance::{required_output_impedance, rout_at_optimum};
use ctsdac_circuit::poles::{PoleModel, TwoPoles};
use ctsdac_circuit::settling::settling_time_two_pole;
use ctsdac_obs as obs;
use ctsdac_runtime::{ExecPolicy, RuntimeError, Supervised};

/// How the flow picks the cell topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TopologyChoice {
    /// Decide from the output-impedance requirement (the paper's §3 logic).
    /// DC impedance does not discriminate (a high-resolution CS is long and
    /// has a tiny λ); the binding check is at signal frequency where the
    /// internal-node capacitance shunts `r_o,CS` — the simple cell must
    /// still clear the requirement at 1 MHz, else a cascode is added.
    #[default]
    Auto,
    /// Force the simple CS+SW cell.
    Simple,
    /// Force the cascoded cell.
    Cascoded,
}

/// Options of the design flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowOptions {
    /// Optimisation objective over the admissible design space.
    pub objective: Objective,
    /// Topology selection policy.
    pub topology: TopologyChoice,
    /// The saturation condition restricting the space (the paper's
    /// contribution is [`SaturationCondition::Statistical`]).
    pub condition: SaturationCondition,
    /// Grid resolution per overdrive axis.
    pub grid: usize,
    /// Intended update rate, used for the settling verdict, S/s.
    pub f_update: f64,
    /// Use the coarse-to-fine adaptive sweep
    /// ([`DesignSpace::sweep_adaptive`]) instead of the dense sweep for the
    /// simple-topology search. Evaluates only the points near the
    /// feasibility boundary and the objective optimum; the optimum is
    /// guaranteed to lie within one dense-grid cell of the dense optimum.
    pub adaptive: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        Self {
            objective: Objective::MinArea,
            topology: TopologyChoice::Auto,
            condition: SaturationCondition::Statistical,
            grid: 16,
            f_update: 400e6,
            adaptive: false,
        }
    }
}

/// The structured outcome of the flow.
#[derive(Debug, Clone)]
pub struct DesignReport {
    /// The specification designed to.
    pub spec: DacSpec,
    /// Topology chosen (and why, in `topology_reason`).
    pub topology: CellTopology,
    /// Human-readable topology rationale.
    pub topology_reason: String,
    /// Chosen overdrives `(cs, cas_or_zero, sw)` in V.
    pub overdrives: (f64, f64, f64),
    /// The sized unary cell.
    pub unary_cell: SizedCell,
    /// The sized LSB cell.
    pub lsb_cell: SizedCell,
    /// Total analog gate area in m².
    pub total_area: f64,
    /// Saturation margin charged by the condition at the optimum, V.
    pub margin: f64,
    /// Pole model of the unary cell.
    pub poles: TwoPoles,
    /// Half-LSB settling time, s.
    pub settling_s: f64,
    /// DC output impedance of the unary cell, Ω.
    pub rout_dc: f64,
    /// DC impedance requirement per LSB source, Ω.
    pub rout_required: f64,
    /// Corner checks (simple-topology overdrive inflation model).
    pub corners: Vec<CornerCheck>,
}

impl DesignReport {
    /// True if the design settles within one update period.
    pub fn meets_update_rate(&self, f_update: f64) -> bool {
        self.settling_s <= 1.0 / f_update
    }

    /// True if every corner keeps the budget.
    pub fn all_corners_pass(&self) -> bool {
        self.corners.iter().all(|c| c.passes())
    }

    /// Renders the report as markdown (for logs and the CLI).
    pub fn to_markdown(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        // Writing to a `String` cannot fail; the results are discarded.
        let _ = writeln!(s, "# Design report\n");
        let _ = writeln!(s, "* spec: {}", self.spec);
        let _ = writeln!(s, "* topology: {} — {}", self.topology, self.topology_reason);
        let _ = writeln!(
            s,
            "* overdrives: CS {:.2} V, CAS {:.2} V, SW {:.2} V (margin {:.0} mV)",
            self.overdrives.0,
            self.overdrives.1,
            self.overdrives.2,
            self.margin * 1e3
        );
        let _ = writeln!(s, "* unary cell: {}", self.unary_cell);
        let _ = writeln!(s, "* LSB cell: {}", self.lsb_cell);
        let _ = writeln!(
            s,
            "* total analog area: {:.1} kum2",
            self.total_area * 1e12 / 1e3
        );
        let _ = writeln!(s, "* poles: {}", self.poles);
        let _ = writeln!(
            s,
            "* settling to 0.5 LSB: {:.2} ns (max {:.0} MS/s)",
            self.settling_s * 1e9,
            1e-6 / self.settling_s
        );
        let _ = writeln!(
            s,
            "* output impedance: {:.2e} Ohm (requirement {:.2e} Ohm/LSB)",
            self.rout_dc, self.rout_required
        );
        let _ = writeln!(s, "* corners:");
        for c in &self.corners {
            let _ = writeln!(s, "    * {c}");
        }
        s
    }
}

impl fmt::Display for DesignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_markdown())
    }
}

/// Error returned when the flow finds no admissible design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmptyDesignSpaceError {
    /// The condition whose admissible set was empty.
    pub condition: String,
}

impl fmt::Display for EmptyDesignSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no admissible design point under {}", self.condition)
    }
}

impl std::error::Error for EmptyDesignSpaceError {}

/// Failure modes of the orchestrated flow.
///
/// The split mirrors [`ExploreError`]: an empty design space means the
/// spec/grid admits nothing (relax the spec); a numerical failure means a
/// candidate existed but its evaluation broke down (inspect the solver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// The admissible region is empty at the requested grid.
    EmptyDesignSpace(EmptyDesignSpaceError),
    /// A bias/pole/impedance evaluation failed on the chosen design.
    Numerical {
        /// What failed, as a one-line diagnostic.
        detail: String,
    },
    /// The supervised runtime failed while exploring the design space
    /// (retry exhaustion, cancellation, or checkpoint-journal trouble).
    Supervision(RuntimeError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyDesignSpace(e) => write!(f, "{e}"),
            Self::Numerical { detail } => write!(f, "numerical failure: {detail}"),
            Self::Supervision(e) => write!(f, "supervision failure: {e}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::EmptyDesignSpace(e) => Some(e),
            Self::Numerical { .. } => None,
            Self::Supervision(e) => Some(e),
        }
    }
}

impl From<RuntimeError> for FlowError {
    fn from(e: RuntimeError) -> Self {
        Self::Supervision(e)
    }
}

/// Runs the complete flow.
///
/// # Errors
///
/// [`FlowError::EmptyDesignSpace`] if the admissible region is empty at
/// the requested grid; [`FlowError::Numerical`] if the chosen design fails
/// to evaluate (bias, pole, or impedance analysis).
pub fn run_flow(spec: &DacSpec, options: &FlowOptions) -> Result<DesignReport, FlowError> {
    let _span = obs::span("flow.run");
    let (topology, topology_reason, rout_required) = choose_topology(spec, options);

    // --- Constrained sizing ---
    let empty = || {
        FlowError::EmptyDesignSpace(EmptyDesignSpaceError {
            condition: options.condition.to_string(),
        })
    };
    let (overdrives, total_area) = match topology {
        CellTopology::Simple => {
            let space = DesignSpace::new(spec, options.condition).with_grid(options.grid);
            let searched = if options.adaptive {
                space.optimize_adaptive(options.objective, f64::INFINITY)
            } else {
                space.optimize(options.objective)
            };
            let p = searched.map_err(|e| match e {
                ExploreError::EmptyFeasibleRegion { .. } => empty(),
                ExploreError::NumericalFailure { .. } => FlowError::Numerical {
                    detail: e.to_string(),
                },
            })?;
            ((p.vov_cs, 0.0, p.vov_sw), p.total_area)
        }
        CellTopology::Cascoded => {
            let space = CascodeSpace::new(spec, options.condition).with_grid(options.grid);
            let p = match options.objective {
                Objective::MinArea => space.min_area_point(),
                _ => space.max_speed_point(),
            }
            .ok_or_else(empty)?;
            ((p.vov_cs, p.vov_cas, p.vov_sw), p.total_area)
        }
    };

    assemble_report(
        spec,
        options,
        topology,
        topology_reason,
        rout_required,
        overdrives,
        total_area,
    )
}

/// Returns a typed cancellation error once the policy's cancel token has
/// fired or its deadline has expired. Checked at every stage boundary of
/// [`run_flow_supervised`] so the inline stages (topology probe, cascode
/// search, report assembly) respect a request-level deadline just like the
/// pooled sweep does between chunks.
fn check_cancelled(policy: &ExecPolicy) -> Result<(), FlowError> {
    if policy.pool.cancel.is_cancelled() {
        return Err(FlowError::Supervision(RuntimeError::Cancelled {
            done: 0,
            total: 0,
        }));
    }
    Ok(())
}

/// [`run_flow`] with the simple-topology design-space search executed
/// under runtime supervision (worker pool, retry, deadline,
/// checkpoint-resume — all per `policy`).
///
/// The cascoded volume search is compact (pure arithmetic over the grid,
/// no solver in the loop) and still runs inline; the returned supervision
/// record is then empty. The simple-topology path sweeps the overdrive
/// plane through the supervised pool and is bit-identical to [`run_flow`]
/// for any job count. An adaptive search (`options.adaptive`) also runs
/// inline with an empty supervision record: its work list is discovered
/// level by level, which does not fit the fixed chunk plan of the
/// checkpoint journal, and it evaluates too few points to benefit from the
/// pool.
///
/// # Errors
///
/// As [`run_flow`], plus [`FlowError::Supervision`] when the supervised
/// runtime fails — including a typed [`RuntimeError::Cancelled`] when the
/// policy's cancel token fires or its deadline expires between stages.
pub fn run_flow_supervised(
    spec: &DacSpec,
    options: &FlowOptions,
    policy: &ExecPolicy,
) -> Result<Supervised<DesignReport>, FlowError> {
    let _span = obs::span("flow.run");
    check_cancelled(policy)?;
    let (topology, topology_reason, rout_required) = choose_topology(spec, options);
    check_cancelled(policy)?;

    let empty = || {
        FlowError::EmptyDesignSpace(EmptyDesignSpaceError {
            condition: options.condition.to_string(),
        })
    };
    let (overdrives, total_area, supervision) = match topology {
        CellTopology::Simple if options.adaptive => {
            let space = DesignSpace::new(spec, options.condition).with_grid(options.grid);
            let p = space
                .optimize_adaptive(options.objective, f64::INFINITY)
                .map_err(|e| match e {
                    ExploreError::EmptyFeasibleRegion { .. } => empty(),
                    ExploreError::NumericalFailure { .. } => FlowError::Numerical {
                        detail: e.to_string(),
                    },
                })?;
            (
                (p.vov_cs, 0.0, p.vov_sw),
                p.total_area,
                Supervised {
                    value: (),
                    faults: Vec::new(),
                    restored: 0,
                    computed: 0,
                    dropped: 0,
                },
            )
        }
        CellTopology::Simple => {
            let space = DesignSpace::new(spec, options.condition).with_grid(options.grid);
            let out = space
                .optimize_supervised(options.objective, f64::INFINITY, policy)
                .map_err(|e| match e {
                    SweepError::Explore(ExploreError::EmptyFeasibleRegion { .. }) => empty(),
                    SweepError::Explore(e) => FlowError::Numerical {
                        detail: e.to_string(),
                    },
                    SweepError::Runtime(e) => FlowError::Supervision(e),
                })?;
            let p = out.value;
            (
                (p.vov_cs, 0.0, p.vov_sw),
                p.total_area,
                out.map(|_| ()),
            )
        }
        CellTopology::Cascoded => {
            let space = CascodeSpace::new(spec, options.condition).with_grid(options.grid);
            let p = match options.objective {
                Objective::MinArea => space.min_area_point(),
                _ => space.max_speed_point(),
            }
            .ok_or_else(empty)?;
            (
                (p.vov_cs, p.vov_cas, p.vov_sw),
                p.total_area,
                Supervised {
                    value: (),
                    faults: Vec::new(),
                    restored: 0,
                    computed: 0,
                    dropped: 0,
                },
            )
        }
    };

    check_cancelled(policy)?;
    let report = assemble_report(
        spec,
        options,
        topology,
        topology_reason,
        rout_required,
        overdrives,
        total_area,
    )?;
    Ok(supervision.map(|()| report))
}

/// Topology selection (§3 logic), shared by both flow entry points.
fn choose_topology(spec: &DacSpec, options: &FlowOptions) -> (CellTopology, String, f64) {
    let _span = obs::span("flow.choose_topology");
    let rout_required = required_output_impedance(spec.n_bits, spec.env.rl, 0.25);
    let (topology, topology_reason) = match options.topology {
        TopologyChoice::Simple => (CellTopology::Simple, "forced by options".to_string()),
        TopologyChoice::Cascoded => (CellTopology::Cascoded, "forced by options".to_string()),
        TopologyChoice::Auto => {
            // Probe a representative simple LSB cell at 1 MHz, where the
            // internal-node capacitance already shunts the CS r_o.
            let probe = build_simple_cell(spec, 0.5, 0.6, 1);
            // A probe failure (no bias point in this environment) does not
            // abort the flow: the conservative cascoded topology is used.
            let rout = ctsdac_circuit::impedance::rout_at_frequency(&probe, &spec.env, 1e6)
                .unwrap_or(0.0);
            if rout > rout_required {
                (
                    CellTopology::Simple,
                    format!(
                        "simple cell impedance at 1 MHz ({rout:.2e} Ohm) clears the \
                         requirement ({rout_required:.2e} Ohm)"
                    ),
                )
            } else {
                (
                    CellTopology::Cascoded,
                    format!(
                        "simple cell impedance at 1 MHz ({rout:.2e} Ohm) misses the \
                         requirement ({rout_required:.2e} Ohm); cascode added \
                         (the paper's §3 decision)"
                    ),
                )
            }
        }
    };
    (topology, topology_reason, rout_required)
}

/// Sizes the cells at the chosen overdrives and runs the dynamic
/// verification + corner stages — the flow tail shared by [`run_flow`] and
/// [`run_flow_supervised`].
fn assemble_report(
    spec: &DacSpec,
    options: &FlowOptions,
    topology: CellTopology,
    topology_reason: String,
    rout_required: f64,
    overdrives: (f64, f64, f64),
    total_area: f64,
) -> Result<DesignReport, FlowError> {
    let _span = obs::span("flow.assemble_report");
    let (lsb_cell, unary_cell, margin) = match topology {
        CellTopology::Simple => (
            build_simple_cell(spec, overdrives.0, overdrives.2, 1),
            build_simple_cell(spec, overdrives.0, overdrives.2, spec.unary_weight()),
            options
                .condition
                .margin_simple(spec, overdrives.0, overdrives.2),
        ),
        CellTopology::Cascoded => (
            build_cascoded_cell(spec, overdrives.0, overdrives.1, overdrives.2, 1),
            build_cascoded_cell(
                spec,
                overdrives.0,
                overdrives.1,
                overdrives.2,
                spec.unary_weight(),
            ),
            options
                .condition
                .margin_cascoded(spec, overdrives.0, overdrives.1, overdrives.2),
        ),
    };

    // --- Dynamic verification ---
    let poles = PoleModel::new(spec.cells_at_output())
        .poles(&unary_cell, &spec.env)
        .map_err(|e| FlowError::Numerical {
            detail: format!("pole model of the sized unary cell: {e}"),
        })?;
    let settling_s = settling_time_two_pole(&poles, spec.n_bits);
    let rout_dc = rout_at_optimum(&unary_cell, &spec.env).map_err(|e| FlowError::Numerical {
        detail: format!("output impedance of the sized unary cell: {e}"),
    })?;

    // --- Corner check (overdrive-inflation model on the CS/SW pair) ---
    let corners = verify_corners_simple(
        spec,
        options.condition,
        overdrives.0 + overdrives.1,
        overdrives.2,
    );

    Ok(DesignReport {
        spec: *spec,
        topology,
        topology_reason,
        overdrives,
        unary_cell,
        lsb_cell,
        total_area,
        margin,
        poles,
        settling_s,
        rout_dc,
        rout_required,
        corners,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsdac_circuit::cell::CellEnvironment;
    use ctsdac_process::Technology;

    #[test]
    fn twelve_bit_auto_flow_chooses_cascode_and_meets_400msps() {
        let spec = DacSpec::paper_12bit();
        let options = FlowOptions {
            objective: Objective::MaxSpeed,
            grid: 10,
            ..FlowOptions::default()
        };
        let report = run_flow(&spec, &options).expect("feasible");
        assert_eq!(report.topology, CellTopology::Cascoded);
        assert!(report.meets_update_rate(400e6), "settling {:.2} ns", report.settling_s * 1e9);
        assert!(report.rout_dc * 16.0 > report.rout_required);
    }

    #[test]
    fn eight_bit_auto_flow_keeps_the_simple_cell() {
        let base = DacSpec::paper_12bit();
        let spec = DacSpec::new(8, 3, 0.99, CellEnvironment::paper_12bit(), Technology::c035());
        let _ = base;
        let report = run_flow(&spec, &FlowOptions::default()).expect("feasible");
        assert_eq!(report.topology, CellTopology::Simple, "{}", report.topology_reason);
    }

    #[test]
    fn min_area_flow_beats_legacy_condition() {
        let spec = DacSpec::paper_12bit();
        let stat = run_flow(
            &spec,
            &FlowOptions {
                topology: TopologyChoice::Simple,
                grid: 20,
                ..FlowOptions::default()
            },
        )
        .expect("feasible");
        let legacy = run_flow(
            &spec,
            &FlowOptions {
                topology: TopologyChoice::Simple,
                condition: SaturationCondition::legacy(),
                grid: 20,
                ..FlowOptions::default()
            },
        )
        .expect("feasible");
        assert!(stat.total_area < legacy.total_area);
    }

    #[test]
    fn report_markdown_is_complete() {
        let spec = DacSpec::paper_12bit();
        let report = run_flow(&spec, &FlowOptions { grid: 8, ..Default::default() })
            .expect("feasible");
        let md = report.to_markdown();
        for needle in [
            "# Design report",
            "topology",
            "overdrives",
            "settling",
            "corners",
            "output impedance",
        ] {
            assert!(md.contains(needle), "missing {needle} in:\n{md}");
        }
    }

    #[test]
    fn forced_topology_is_respected() {
        let spec = DacSpec::paper_12bit();
        let simple = run_flow(
            &spec,
            &FlowOptions {
                topology: TopologyChoice::Simple,
                grid: 8,
                ..Default::default()
            },
        )
        .expect("feasible");
        assert_eq!(simple.topology, CellTopology::Simple);
        let cascoded = run_flow(
            &spec,
            &FlowOptions {
                topology: TopologyChoice::Cascoded,
                grid: 8,
                ..Default::default()
            },
        )
        .expect("feasible");
        assert_eq!(cascoded.topology, CellTopology::Cascoded);
        assert!(cascoded.rout_dc > simple.rout_dc);
    }

    #[test]
    fn supervised_flow_matches_sequential_bitwise() {
        let spec = DacSpec::paper_12bit();
        let options = FlowOptions {
            topology: TopologyChoice::Simple,
            grid: 12,
            ..Default::default()
        };
        let seq = run_flow(&spec, &options).expect("feasible");
        for jobs in [1, 4] {
            let sup = run_flow_supervised(&spec, &options, &ExecPolicy::with_jobs(jobs))
                .expect("feasible");
            assert_eq!(sup.value.overdrives.0.to_bits(), seq.overdrives.0.to_bits());
            assert_eq!(sup.value.overdrives.2.to_bits(), seq.overdrives.2.to_bits());
            assert_eq!(sup.value.total_area.to_bits(), seq.total_area.to_bits());
            assert_eq!(sup.computed, options.grid as u64);
            assert!(sup.faults.is_empty());
        }
    }

    #[test]
    fn adaptive_flow_matches_dense_flow_bitwise() {
        // The adaptive optimum must land on the same dense-lattice point
        // here (the MinArea optimum sits on a refined boundary cell), so the
        // whole report is bit-identical to the dense flow's.
        let spec = DacSpec::paper_12bit();
        let dense = FlowOptions {
            topology: TopologyChoice::Simple,
            grid: 20,
            ..Default::default()
        };
        let adaptive = FlowOptions {
            adaptive: true,
            ..dense
        };
        let d = run_flow(&spec, &dense).expect("feasible");
        let a = run_flow(&spec, &adaptive).expect("feasible");
        assert_eq!(a.overdrives.0.to_bits(), d.overdrives.0.to_bits());
        assert_eq!(a.overdrives.2.to_bits(), d.overdrives.2.to_bits());
        assert_eq!(a.total_area.to_bits(), d.total_area.to_bits());

        let sup = run_flow_supervised(&spec, &adaptive, &ExecPolicy::with_jobs(4))
            .expect("feasible");
        assert_eq!(sup.value.total_area.to_bits(), d.total_area.to_bits());
        assert_eq!(sup.computed + sup.restored, 0, "adaptive search runs inline");
    }

    #[test]
    fn supervised_flow_on_cascode_runs_inline_with_empty_supervision() {
        let spec = DacSpec::paper_12bit();
        let options = FlowOptions {
            topology: TopologyChoice::Cascoded,
            grid: 8,
            ..Default::default()
        };
        let seq = run_flow(&spec, &options).expect("feasible");
        let sup = run_flow_supervised(&spec, &options, &ExecPolicy::with_jobs(4))
            .expect("feasible");
        assert_eq!(sup.value.total_area.to_bits(), seq.total_area.to_bits());
        assert_eq!(sup.computed + sup.restored, 0);
        assert!(sup.faults.is_empty());
    }

    #[test]
    fn cancelled_token_aborts_every_supervised_path() {
        use ctsdac_runtime::CancelToken;
        let spec = DacSpec::paper_12bit();
        for topology in [TopologyChoice::Simple, TopologyChoice::Cascoded] {
            let options = FlowOptions {
                topology,
                grid: 8,
                ..Default::default()
            };
            let policy = ExecPolicy::sequential();
            policy.pool.cancel.cancel();
            let err = run_flow_supervised(&spec, &options, &policy)
                .expect_err("pre-cancelled token must abort");
            assert!(
                matches!(
                    err,
                    FlowError::Supervision(RuntimeError::Cancelled { .. })
                ),
                "{err}"
            );
        }
        // An already-expired deadline token behaves the same.
        let mut policy = ExecPolicy::sequential();
        policy.pool.cancel = CancelToken::expiring_in(std::time::Duration::ZERO);
        let err = run_flow_supervised(
            &spec,
            &FlowOptions { grid: 8, ..Default::default() },
            &policy,
        )
        .expect_err("expired deadline must abort");
        assert!(matches!(err, FlowError::Supervision(_)), "{err}");
    }

    #[test]
    fn lsb_and_unary_cells_are_consistent() {
        let spec = DacSpec::paper_12bit();
        let report = run_flow(&spec, &FlowOptions { grid: 8, ..Default::default() })
            .expect("feasible");
        let ratio = report.unary_cell.i_unit() / report.lsb_cell.i_unit();
        assert!((ratio - 16.0).abs() < 1e-9);
    }
}
