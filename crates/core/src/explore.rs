//! Design-space exploration over the overdrive plane (the paper's Fig. 3).
//!
//! "In the proposed sizing procedure the whole range of possible CS and SW
//! overdrive voltages that verify (4) is explored including process
//! variations" (§2.1). Each admissible `(V_OD,CS, V_OD,SW)` pair fully
//! determines the cell — CS geometry from the mismatch spec, switch from
//! minimum length — so every optimisation metric (total area, pole
//! frequencies, output impedance, settling time) becomes a function on this
//! plane, and optimising is a grid search along/inside the constraint.
//!
//! # Hot path
//!
//! The sweep is the dominant cost of the whole flow, so its kernel is
//! organised for throughput without giving up determinism:
//!
//! * spec-level invariants (the yield deviate, headroom, segmentation
//!   constants) are hoisted out of the per-point loop, and the CS sizing —
//!   a function of `V_OD,CS` only — is computed once per grid row;
//! * each point builds its LSB and unary cells exactly once and solves the
//!   optimum bias fixed point once, sharing it between the pole model and
//!   the output-impedance evaluation;
//! * every candidate point is *DC-verified* by the Newton solver of
//!   `ctsdac_circuit::dc`, warm-started from the previous point of the same
//!   grid row ([`SweepMode::Warm`]). The solver polishes warm and cold
//!   solutions to the same fixed point, so the sweep stays bit-identical to
//!   the cold-start sweep ([`SweepMode::Cold`]) for any `--jobs` count —
//!   chunks are grid rows and hints never cross a row boundary;
//! * results land in a flat struct-of-arrays [`DesignGrid`];
//! * [`DesignSpace::sweep_adaptive`] offers a coarse-to-fine mode that only
//!   densifies near the feasibility boundary and the objective optimum.

use crate::saturation::SaturationCondition;
use crate::sizing::{
    build_simple_cell, build_simple_cell_with_devices, build_simple_cell_with_unit,
    sized_cs_with_unit, sized_sw_with_weight, total_analog_area_from_geometry,
    total_analog_area_from_lsb, total_analog_area_simple, CsSizing,
};
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_circuit::bias::OptimumBias;
use ctsdac_circuit::cell::SizedCell;
use ctsdac_circuit::dc::{
    solve_simple_lanes, solve_simple_reference, solve_simple_warm, SolveStage,
};
use ctsdac_circuit::impedance::{rout_at_optimum, rout_at_optimum_with_bias};
use ctsdac_circuit::poles::PoleModel;
use ctsdac_circuit::settling::{settling_time_two_pole, settling_time_two_pole_bisect};
use ctsdac_obs as obs;
use ctsdac_runtime::{
    decode_f64, encode_f64, run_journaled, ExecPolicy, JournalMeta, RuntimeError, Supervised,
};
use std::collections::BTreeMap;

/// Why a grid point is excluded from the feasible set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfeasibleReason {
    /// The saturation condition (eq. (4) plus margins) rejects the pair.
    ConstraintViolated,
    /// The overdrives exhaust the headroom: no nominal bias point exists.
    NoBiasPoint,
    /// The point passed the constraints but a metric evaluation failed
    /// numerically (bias solve error or non-finite figure of merit).
    NumericalFailure,
}

impl fmt::Display for InfeasibleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ConstraintViolated => write!(f, "saturation condition violated"),
            Self::NoBiasPoint => write!(f, "no bias point (headroom exhausted)"),
            Self::NumericalFailure => write!(f, "numerical failure"),
        }
    }
}

/// Failure modes of a design-space optimisation.
///
/// Distinguishing an *empty feasible region* (the spec is simply too hard
/// for this grid/range) from a *numerical failure* (candidate points
/// existed but their evaluation broke down) lets callers react differently:
/// relax the spec in the first case, inspect the solver in the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreError {
    /// No grid point satisfies the constraints (saturation condition,
    /// headroom, and any settling bound).
    EmptyFeasibleRegion {
        /// Number of grid points evaluated.
        evaluated: usize,
    },
    /// Candidate points existed but every one failed numerically.
    NumericalFailure {
        /// Number of grid points whose evaluation failed.
        failed: usize,
        /// Number of grid points evaluated.
        evaluated: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyFeasibleRegion { evaluated } => write!(
                f,
                "empty feasible region: none of the {evaluated} grid points \
                 satisfies the saturation condition, headroom, and settling bound"
            ),
            Self::NumericalFailure { failed, evaluated } => write!(
                f,
                "numerical failure: {failed} of {evaluated} grid points failed \
                 to evaluate and no feasible point remains"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Failure of a *supervised* sweep: either the exploration itself (domain
/// error) or the runtime supervising it (retry exhaustion, cancellation,
/// journal trouble).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The exploration failed for a domain reason.
    Explore(ExploreError),
    /// The supervised runtime failed.
    Runtime(RuntimeError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Explore(e) => write!(f, "{e}"),
            Self::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Explore(e) => Some(e),
            Self::Runtime(e) => Some(e),
        }
    }
}

impl From<ExploreError> for SweepError {
    fn from(e: ExploreError) -> Self {
        Self::Explore(e)
    }
}

impl From<RuntimeError> for SweepError {
    fn from(e: RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

/// One evaluated design point of the overdrive plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// CS overdrive in V.
    pub vov_cs: f64,
    /// Switch overdrive in V.
    pub vov_sw: f64,
    /// Whether the saturation condition admits this point.
    pub feasible: bool,
    /// Why the point is infeasible (`None` when `feasible`).
    pub reason: Option<InfeasibleReason>,
    /// Total analog gate area of the converter in m².
    pub total_area: f64,
    /// Slower pole frequency of eq. (13) in Hz (the speed objective of
    /// Fig. 3 lower).
    pub min_pole_hz: f64,
    /// Half-LSB settling time from the two-pole model, in s.
    pub settling_s: f64,
    /// DC output impedance of the unary cell at the optimum bias, in Ω.
    pub rout: f64,
    /// Output current of the unary cell as verified by the Newton DC solver
    /// at the optimum bias, in A. Zero when no bias point exists or the
    /// solve failed; informational only — it never changes `feasible`.
    pub dc_i_out: f64,
    /// True when the DC solver confirmed every device of the unary cell in
    /// saturation at the optimum bias. Informational only.
    pub dc_saturated: bool,
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(Vov_CS = {:.3} V, Vov_SW = {:.3} V): area = {:.1} kum2, f_min = {:.1} MHz, ts = {:.2} ns{}",
            self.vov_cs,
            self.vov_sw,
            self.total_area * 1e12 / 1e3,
            self.min_pole_hz / 1e6,
            self.settling_s * 1e9,
            if self.feasible { "" } else { " [infeasible]" }
        )
    }
}

/// Optimisation objective over the admissible region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimise the total analog area (the matching-driven objective).
    MinArea,
    /// Maximise the slower pole frequency (minimise settling time) — the
    /// "maximum speed" point of Fig. 3 lower.
    MaxSpeed,
    /// Maximise the DC output impedance of the unary cell.
    MaxImpedance,
}

/// How the sweep kernel drives the DC verification solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepMode {
    /// Warm-start each DC solve from the previous point of the same grid
    /// row, with analytic Jacobians and memoized invariants. Bit-identical
    /// to [`SweepMode::Cold`] by the solver's fixed-point polish contract.
    #[default]
    Warm,
    /// Cold-start every DC solve (analytic Jacobians, memoized invariants).
    /// The golden reference for the warm path's bit-identity test.
    Cold,
    /// The pre-optimization baseline: cold starts, central-difference
    /// Jacobians, fixed-depth bisection settling, no fixed-point polish,
    /// and no memoization — every point recomputes its sizing, margin,
    /// and bias from scratch. Numerically agrees with the other modes to
    /// solver tolerance but not bitwise; kept as a debug cross-check and
    /// as `sweep_bench`'s baseline.
    Reference,
    /// Lane-batched rows: the closed-form metric chain runs per point with
    /// the row-constant CS geometry hoisted, and the per-point DC solves of
    /// a row are deferred and batched through the lane-wide Newton kernel
    /// (`solve_simple_lanes`) in fixed-width SIMD-style groups. Bit-identical
    /// to [`SweepMode::Warm`]/[`SweepMode::Cold`] in every [`DesignPoint`]
    /// field by the lane kernel's scalar-equivalence contract; the
    /// iteration diagnostics match the cold path (lanes start cold). Single
    /// points ([`DesignSpace::evaluate`], the adaptive lattice) fall back
    /// to the scalar cold kernel, which produces the same bits.
    Lanes,
}

impl fmt::Display for SweepMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepMode::Warm => write!(f, "warm"),
            SweepMode::Cold => write!(f, "cold"),
            SweepMode::Reference => write!(f, "reference"),
            SweepMode::Lanes => write!(f, "lanes"),
        }
    }
}

/// Lane width of [`SweepMode::Lanes`] row batches. Eight `f64` lanes span
/// two AVX-512 / four SSE2 vectors — wide enough to keep the branch-free
/// pre-solve fully vectorized, narrow enough that one straggler lane
/// wastes little masked work. The certified widths (4 and 8) are both
/// exercised by the lane-differential tests; the production kernel uses 8.
const LANE_W: usize = 8;

/// Aggregate DC-solver effort of one sweep — the side channel for solver
/// diagnostics, kept out of [`DesignPoint`] so warm and cold sweeps stay
/// bit-identical in their journaled payloads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Number of DC solves attempted (one per point with a bias point).
    pub dc_solves: u64,
    /// Total Newton iterations across all solves (including polish).
    pub dc_iterations: u64,
    /// Solves that converged on the warm-started stage.
    pub warm_hits: u64,
    /// Solves that failed (the point keeps zeroed DC fields).
    pub dc_failures: u64,
}

impl SweepStats {
    /// Mean Newton iterations per attempted DC solve.
    pub fn iterations_per_solve(&self) -> f64 {
        if self.dc_solves == 0 {
            return 0.0;
        }
        self.dc_iterations as f64 / self.dc_solves as f64
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &SweepStats) {
        self.dc_solves += other.dc_solves;
        self.dc_iterations += other.dc_iterations;
        self.warm_hits += other.warm_hits;
        self.dc_failures += other.dc_failures;
    }
}

/// Flat struct-of-arrays storage of an evaluated sweep: one allocation per
/// column instead of building intermediate per-point rows, and columnar
/// access for objective scans (`pareto_front`, `optimize`) that only touch
/// two or three metrics out of nine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesignGrid {
    vov_cs: Vec<f64>,
    vov_sw: Vec<f64>,
    reason: Vec<Option<InfeasibleReason>>,
    total_area: Vec<f64>,
    min_pole_hz: Vec<f64>,
    settling_s: Vec<f64>,
    rout: Vec<f64>,
    dc_i_out: Vec<f64>,
    dc_saturated: Vec<bool>,
}

impl DesignGrid {
    /// An empty grid with room for `n` points per column.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            vov_cs: Vec::with_capacity(n),
            vov_sw: Vec::with_capacity(n),
            reason: Vec::with_capacity(n),
            total_area: Vec::with_capacity(n),
            min_pole_hz: Vec::with_capacity(n),
            settling_s: Vec::with_capacity(n),
            rout: Vec::with_capacity(n),
            dc_i_out: Vec::with_capacity(n),
            dc_saturated: Vec::with_capacity(n),
        }
    }

    /// Appends one evaluated point.
    pub fn push(&mut self, p: DesignPoint) {
        self.vov_cs.push(p.vov_cs);
        self.vov_sw.push(p.vov_sw);
        self.reason.push(p.reason);
        self.total_area.push(p.total_area);
        self.min_pole_hz.push(p.min_pole_hz);
        self.settling_s.push(p.settling_s);
        self.rout.push(p.rout);
        self.dc_i_out.push(p.dc_i_out);
        self.dc_saturated.push(p.dc_saturated);
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.vov_cs.len()
    }

    /// True when no point is stored.
    pub fn is_empty(&self) -> bool {
        self.vov_cs.is_empty()
    }

    /// Reassembles point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn point(&self, i: usize) -> DesignPoint {
        DesignPoint {
            vov_cs: self.vov_cs[i],
            vov_sw: self.vov_sw[i],
            feasible: self.reason[i].is_none(),
            reason: self.reason[i],
            total_area: self.total_area[i],
            min_pole_hz: self.min_pole_hz[i],
            settling_s: self.settling_s[i],
            rout: self.rout[i],
            dc_i_out: self.dc_i_out[i],
            dc_saturated: self.dc_saturated[i],
        }
    }

    /// Iterates the stored points in insertion (row-major) order.
    pub fn iter_points(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        (0..self.len()).map(|i| self.point(i))
    }

    /// Converts to a row-major point vector.
    pub fn into_points(self) -> Vec<DesignPoint> {
        (0..self.len()).map(|i| self.point(i)).collect()
    }

    /// The total-area column.
    pub fn total_area(&self) -> &[f64] {
        &self.total_area
    }

    /// The dominant-pole column.
    pub fn min_pole_hz(&self) -> &[f64] {
        &self.min_pole_hz
    }

    /// The infeasibility-reason column (`None` = feasible).
    pub fn reason(&self) -> &[Option<InfeasibleReason>] {
        &self.reason
    }
}

/// Result of a coarse-to-fine adaptive sweep ([`DesignSpace::sweep_adaptive`]).
#[derive(Debug, Clone)]
pub struct AdaptiveSweep {
    /// Every lattice point evaluated, sorted by grid index (row-major).
    /// All points sit on the dense sweep's lattice, so each one is
    /// bit-identical to the corresponding dense-sweep point.
    pub points: Vec<DesignPoint>,
    /// Number of lattice points evaluated.
    pub evaluated: usize,
    /// Points the dense sweep of the same grid would evaluate (`grid²`).
    pub dense_equivalent: usize,
    /// Refinement levels processed (stride halvings, including the coarse
    /// pass).
    pub levels: usize,
    /// DC-solver effort across the evaluated points.
    pub stats: SweepStats,
}

/// Grid explorer over the simple-topology overdrive plane.
///
/// # Examples
///
/// ```
/// use ctsdac_core::explore::{DesignSpace, Objective};
/// use ctsdac_core::saturation::SaturationCondition;
/// use ctsdac_core::DacSpec;
///
/// let spec = DacSpec::paper_12bit();
/// let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(24);
/// let fast = space.optimize(Objective::MaxSpeed)?;
/// assert!(fast.min_pole_hz > 1e7);
/// # Ok::<(), ctsdac_core::explore::ExploreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesignSpace {
    spec: DacSpec,
    condition: SaturationCondition,
    grid: usize,
    vov_min: f64,
    vov_max: f64,
    mode: SweepMode,
}

impl DesignSpace {
    /// Creates an explorer with a default 32×32 grid over
    /// `[0.05 V, V_out,min]` per axis, in [`SweepMode::Warm`].
    pub fn new(spec: &DacSpec, condition: SaturationCondition) -> Self {
        Self {
            spec: *spec,
            condition,
            grid: 32,
            vov_min: 0.05,
            vov_max: spec.env.v_out_min(),
            mode: SweepMode::Warm,
        }
    }

    /// Selects how the DC verification solver is driven (see [`SweepMode`]).
    pub fn with_mode(mut self, mode: SweepMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active sweep mode.
    pub fn mode(&self) -> SweepMode {
        self.mode
    }

    /// Sets the grid resolution per axis; values below 2 are clamped to 2
    /// (one point per axis end).
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid.max(2);
        self
    }

    /// Sets the overdrive sweep range. The bounds are sanitised rather than
    /// trusted: non-finite values are ignored, the lower bound is clamped
    /// to at least 1 mV, and the upper bound to at least 1 mV above the
    /// lower.
    pub fn with_range(mut self, vov_min: f64, vov_max: f64) -> Self {
        if vov_min.is_finite() {
            self.vov_min = vov_min.max(1e-3);
        }
        if vov_max.is_finite() {
            self.vov_max = vov_max.max(self.vov_min + 1e-3);
        } else {
            self.vov_max = self.vov_max.max(self.vov_min + 1e-3);
        }
        self
    }

    /// The grid coordinates of one axis.
    pub fn axis(&self) -> Vec<f64> {
        (0..self.grid)
            .map(|i| {
                self.vov_min
                    + (self.vov_max - self.vov_min) * i as f64 / (self.grid - 1) as f64
            })
            .collect()
    }

    /// Evaluates one design point (feasible or not — infeasible points are
    /// still evaluated so constraint maps can be drawn). A point whose
    /// metric evaluation fails numerically is kept in the sweep but tagged
    /// [`InfeasibleReason::NumericalFailure`] instead of carrying fabricated
    /// figures of merit.
    ///
    /// Single-point entry to the same kernel the sweeps run: the result is
    /// bit-identical to the corresponding dense-sweep point (the DC
    /// solver's warm/cold fixed-point contract makes the missing row hint
    /// invisible in the solution).
    pub fn evaluate(&self, vov_cs: f64, vov_sw: f64) -> DesignPoint {
        let mut stats = SweepStats::default();
        if self.mode == SweepMode::Reference {
            return self.evaluate_reference(vov_cs, vov_sw, &mut stats);
        }
        let ctx = SweepCtx::new(self);
        let unit = CsSizing::for_spec(&self.spec, vov_cs);
        self.evaluate_in(&ctx, &unit, vov_sw, None, &mut stats).0
    }

    /// The memoized point kernel. `unit` is the row's CS sizing (a function
    /// of `vov_cs` only), `hint` the previous point's DC node voltages.
    /// Returns the point plus the hint for the next point of the row
    /// (`None` when the DC solve failed or never ran).
    fn evaluate_in(
        &self,
        ctx: &SweepCtx,
        unit: &CsSizing,
        vov_sw: f64,
        hint: Option<[f64; 2]>,
        stats: &mut SweepStats,
    ) -> (DesignPoint, Option<[f64; 2]>) {
        obs::incr(obs::Counter::SweepPoints);
        let spec = &self.spec;
        let vov_cs = unit.vov();
        // One weight-1 LSB cell serves both the statistical margin sigmas
        // and the total-area objective.
        let lsb_cell = build_simple_cell_with_unit(spec, unit, vov_sw, 1);
        let admits =
            self.condition
                .admits_simple_prepared(spec, &lsb_cell, ctx.s_factor, vov_cs, vov_sw);
        // The bias point must also exist for the *nominal* devices.
        let has_bias = vov_cs + vov_sw < ctx.v_out_min;
        let mut reason = if !admits {
            Some(InfeasibleReason::ConstraintViolated)
        } else if !has_bias {
            Some(InfeasibleReason::NoBiasPoint)
        } else {
            None
        };
        let total_area = total_analog_area_from_lsb(spec, &lsb_cell);
        let mut metrics = (0.0, f64::INFINITY, 0.0);
        let mut dc = (0.0, false);
        let mut next_hint = None;
        if has_bias {
            let cell = build_simple_cell_with_unit(spec, unit, vov_sw, ctx.unary_weight);
            let mut failed = true;
            // One bias fixed point shared by the pole model, the impedance
            // evaluation, and the DC verification gate voltage.
            if let Ok(opt) = OptimumBias::of(&cell, &spec.env) {
                let poles = PoleModel::new(ctx.cells_at_output)
                    .poles_with_bias(&cell, &spec.env, &opt);
                let rout = rout_at_optimum_with_bias(&cell, &spec.env, &opt);
                if let (Ok(p), Ok(r)) = (poles, rout) {
                    let f_min = p.dominant_hz();
                    let ts = settling_time_two_pole(&p, spec.n_bits);
                    if f_min.is_finite() && f_min > 0.0 && ts.is_finite() && r.is_finite() {
                        metrics = (f_min, ts, r);
                        failed = false;
                    }
                }
                // DC verification: warm-started within the row in
                // `SweepMode::Warm`, always cold otherwise. Informational —
                // a solver failure keeps the closed-form feasibility
                // verdict, it does not retag the point.
                let h = if self.mode == SweepMode::Warm { hint } else { None };
                stats.dc_solves += 1;
                match solve_simple_warm(&cell, &spec.env, opt.v_gate_sw, h) {
                    Ok(op) => {
                        stats.dc_iterations += op.iterations as u64;
                        if op.stage == SolveStage::WarmStart {
                            stats.warm_hits += 1;
                        }
                        dc = (op.i_out, op.all_saturated());
                        next_hint = Some([op.v_node_a, op.v_out]);
                    }
                    Err(_) => stats.dc_failures += 1,
                }
            }
            // A failure on a point the constraints already excluded keeps
            // its constraint-side reason; only candidates are retagged.
            if failed && reason.is_none() {
                reason = Some(InfeasibleReason::NumericalFailure);
            }
        }
        let (min_pole_hz, settling_s, rout) = metrics;
        let (dc_i_out, dc_saturated) = dc;
        let point = DesignPoint {
            vov_cs,
            vov_sw,
            feasible: reason.is_none(),
            reason,
            total_area,
            min_pole_hz,
            settling_s,
            rout,
            dc_i_out,
            dc_saturated,
        };
        (point, next_hint)
    }

    /// The pre-optimization point kernel, kept verbatim as the baseline:
    /// per-point sizing/margin/bias recomputation, cold central-difference
    /// DC solve, fixed-depth bisection settling. Agrees with
    /// [`Self::evaluate_in`] to solver tolerance.
    fn evaluate_reference(
        &self,
        vov_cs: f64,
        vov_sw: f64,
        stats: &mut SweepStats,
    ) -> DesignPoint {
        obs::incr(obs::Counter::SweepPoints);
        let spec = &self.spec;
        let admits = self.condition.admits_simple(spec, vov_cs, vov_sw);
        let has_bias = vov_cs + vov_sw < spec.env.v_out_min();
        let mut reason = if !admits {
            Some(InfeasibleReason::ConstraintViolated)
        } else if !has_bias {
            Some(InfeasibleReason::NoBiasPoint)
        } else {
            None
        };
        let cell = build_simple_cell(spec, vov_cs, vov_sw, spec.unary_weight());
        let total_area = total_analog_area_simple(spec, vov_cs, vov_sw);
        let mut metrics = (0.0, f64::INFINITY, 0.0);
        let mut dc = (0.0, false);
        if has_bias {
            let poles = PoleModel::new(spec.cells_at_output()).poles(&cell, &spec.env);
            let rout = rout_at_optimum(&cell, &spec.env);
            let mut failed = true;
            if let (Ok(p), Ok(r)) = (poles, rout) {
                let f_min = p.dominant_hz();
                let ts = settling_time_two_pole_bisect(&p, spec.n_bits);
                if f_min.is_finite() && f_min > 0.0 && ts.is_finite() && r.is_finite() {
                    metrics = (f_min, ts, r);
                    failed = false;
                }
            }
            if let Ok(opt) = OptimumBias::of(&cell, &spec.env) {
                stats.dc_solves += 1;
                match solve_simple_reference(&cell, &spec.env, opt.v_gate_sw) {
                    Ok(op) => {
                        stats.dc_iterations += op.iterations as u64;
                        dc = (op.i_out, op.all_saturated());
                    }
                    Err(_) => stats.dc_failures += 1,
                }
            }
            if failed && reason.is_none() {
                reason = Some(InfeasibleReason::NumericalFailure);
            }
        }
        let (min_pole_hz, settling_s, rout) = metrics;
        let (dc_i_out, dc_saturated) = dc;
        DesignPoint {
            vov_cs,
            vov_sw,
            feasible: reason.is_none(),
            reason,
            total_area,
            min_pole_hz,
            settling_s,
            rout,
            dc_i_out,
            dc_saturated,
        }
    }

    /// Evaluates one grid row (fixed `vov_cs`, all `vov_sw` values of the
    /// axis) with the row-local warm-start chain. Shared verbatim by the
    /// sequential and supervised sweeps so they stay bit-identical.
    fn evaluate_row(&self, vov_cs: f64, axis: &[f64], stats: &mut SweepStats) -> Vec<DesignPoint> {
        match self.mode {
            SweepMode::Reference => {
                return axis
                    .iter()
                    .map(|&vov_sw| self.evaluate_reference(vov_cs, vov_sw, stats))
                    .collect();
            }
            SweepMode::Lanes => return self.evaluate_row_lanes::<LANE_W>(vov_cs, axis, None, stats),
            SweepMode::Warm | SweepMode::Cold => {}
        }
        let ctx = SweepCtx::new(self);
        let unit = CsSizing::for_spec(&self.spec, vov_cs);
        let mut hint = None;
        let mut row = Vec::with_capacity(axis.len());
        for &vov_sw in axis {
            let (p, h) = self.evaluate_in(&ctx, &unit, vov_sw, hint, stats);
            hint = h;
            row.push(p);
        }
        row
    }

    /// The [`SweepMode::Lanes`] row kernel. Phase A walks the row's
    /// closed-form metric chain per point — with the CS geometry (a
    /// function of `vov_cs` and the cell weight only) hoisted out of the
    /// loop and the switch geometry (a function of `vov_sw` and the weight
    /// only) hoisted per column via `sw_cols` — and defers every DC solve;
    /// phase B batches the deferred solves through the lane-wide Newton
    /// kernel in groups of `W`.
    ///
    /// Every [`DesignPoint`] is bit-identical to the scalar
    /// [`Self::evaluate_in`] result: the hoisted cell assembly reproduces
    /// the direct builder's bits, feasibility/metrics never depend on the
    /// DC solve, and the lane kernel certifies bit- and counter-equality
    /// with the scalar cold solver. `SweepStats` totals are therefore
    /// independent of both `W` and the job count (rows are chunks).
    fn evaluate_row_lanes<const W: usize>(
        &self,
        vov_cs: f64,
        axis: &[f64],
        sw_cols: Option<&SwColumns>,
        stats: &mut SweepStats,
    ) -> Vec<DesignPoint> {
        let spec = &self.spec;
        let ctx = SweepCtx::new(self);
        let unit = CsSizing::for_spec(spec, vov_cs);
        // Row-constant CS devices: one per cell weight used in the row.
        let cs_lsb = sized_cs_with_unit(spec, &unit, 1);
        let cs_unary = sized_cs_with_unit(spec, &unit, ctx.unary_weight);
        // Column-constant switch devices: supplied by the dense sweep (one
        // table for all rows) or rebuilt here (supervised chunks, which pay
        // exactly the per-point sizing cost they would anyway).
        let owned_cols;
        let cols = match sw_cols {
            Some(c) => c,
            None => {
                owned_cols = SwColumns::build(spec, axis, ctx.unary_weight);
                &owned_cols
            }
        };
        // One batched count per row: totals stay jobs- and W-invariant.
        obs::count(obs::Counter::SweepPoints, axis.len() as u64);
        let mut row = Vec::with_capacity(axis.len());
        // Deferred DC work, SoA: target row index, unary cell, gate voltage.
        let mut dc_idx: Vec<usize> = Vec::with_capacity(axis.len());
        let mut dc_cells: Vec<SizedCell> = Vec::with_capacity(axis.len());
        let mut dc_gates: Vec<f64> = Vec::with_capacity(axis.len());
        // The LSB cell never materializes in the lane kernel: the admission
        // test and area objective both reduce to the weight-1 device gate
        // areas (bit-identical geometry variants of the prepared forms).
        let wl_cs = cs_lsb.area();
        for (j, &vov_sw) in axis.iter().enumerate() {
            let wl_sw = cols.lsb[j].area();
            let admits = self.condition.admits_simple_geometry(
                spec, wl_cs, wl_sw, ctx.s_factor, vov_cs, vov_sw,
            );
            let has_bias = vov_cs + vov_sw < ctx.v_out_min;
            let mut reason = if !admits {
                Some(InfeasibleReason::ConstraintViolated)
            } else if !has_bias {
                Some(InfeasibleReason::NoBiasPoint)
            } else {
                None
            };
            let total_area = total_analog_area_from_geometry(spec, wl_cs, wl_sw);
            let mut metrics = (0.0, f64::INFINITY, 0.0);
            if has_bias {
                let cell = build_simple_cell_with_devices(
                    spec,
                    &unit,
                    &cs_unary,
                    &cols.unary[j],
                    vov_sw,
                    ctx.unary_weight,
                );
                let mut failed = true;
                if let Ok(opt) = OptimumBias::of(&cell, &spec.env) {
                    let poles = PoleModel::new(ctx.cells_at_output)
                        .poles_with_bias(&cell, &spec.env, &opt);
                    let rout = rout_at_optimum_with_bias(&cell, &spec.env, &opt);
                    if let (Ok(p), Ok(r)) = (poles, rout) {
                        let f_min = p.dominant_hz();
                        let ts = settling_time_two_pole(&p, spec.n_bits);
                        if f_min.is_finite() && f_min > 0.0 && ts.is_finite() && r.is_finite() {
                            metrics = (f_min, ts, r);
                            failed = false;
                        }
                    }
                    dc_idx.push(row.len());
                    dc_cells.push(cell);
                    dc_gates.push(opt.v_gate_sw);
                }
                // Feasibility never depends on the (deferred) DC solve —
                // same rule as the scalar kernel.
                if failed && reason.is_none() {
                    reason = Some(InfeasibleReason::NumericalFailure);
                }
            }
            let (min_pole_hz, settling_s, rout) = metrics;
            row.push(DesignPoint {
                vov_cs,
                vov_sw,
                feasible: reason.is_none(),
                reason,
                total_area,
                min_pole_hz,
                settling_s,
                rout,
                dc_i_out: 0.0,
                dc_saturated: false,
            });
        }
        // Phase B: lane-batched DC verification, informational only.
        for (k, result) in solve_simple_lanes::<W>(&dc_cells, &spec.env, &dc_gates)
            .into_iter()
            .enumerate()
        {
            stats.dc_solves += 1;
            match result {
                Ok(op) => {
                    stats.dc_iterations += op.iterations as u64;
                    if op.stage == SolveStage::WarmStart {
                        stats.warm_hits += 1;
                    }
                    row[dc_idx[k]].dc_i_out = op.i_out;
                    row[dc_idx[k]].dc_saturated = op.all_saturated();
                }
                Err(_) => stats.dc_failures += 1,
            }
        }
        row
    }

    /// Test-and-certification entry: the dense lanes sweep at an explicit
    /// lane width. The production width is [`LANE_W`]; the lane-differential
    /// suite runs this at 4 and 8 to prove results and counters are
    /// width-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the space is not in [`SweepMode::Lanes`].
    #[doc(hidden)]
    pub fn sweep_with_stats_lane_width<const W: usize>(&self) -> (DesignGrid, SweepStats) {
        assert_eq!(self.mode, SweepMode::Lanes, "lane-width sweep needs SweepMode::Lanes");
        let _span = obs::span("core.sweep.dense");
        let axis = self.axis();
        let cols = SwColumns::build(&self.spec, &axis, self.spec.unary_weight());
        let mut grid = DesignGrid::with_capacity(axis.len() * axis.len());
        let mut stats = SweepStats::default();
        for &vov_cs in &axis {
            for p in self.evaluate_row_lanes::<W>(vov_cs, &axis, Some(&cols), &mut stats) {
                grid.push(p);
            }
        }
        (grid, stats)
    }

    /// Evaluates the full grid, row-major in `vov_cs` then `vov_sw`.
    pub fn sweep(&self) -> Vec<DesignPoint> {
        self.sweep_grid().into_points()
    }

    /// [`DesignSpace::sweep`] into struct-of-arrays storage.
    pub fn sweep_grid(&self) -> DesignGrid {
        self.sweep_with_stats().0
    }

    /// [`DesignSpace::sweep_grid`] plus the DC-solver effort counters.
    pub fn sweep_with_stats(&self) -> (DesignGrid, SweepStats) {
        if self.mode == SweepMode::Lanes {
            // Dense lanes sweeps hoist the column-constant switch table
            // once for the whole grid.
            return self.sweep_with_stats_lane_width::<LANE_W>();
        }
        let _span = obs::span("core.sweep.dense");
        let axis = self.axis();
        let mut grid = DesignGrid::with_capacity(axis.len() * axis.len());
        let mut stats = SweepStats::default();
        for &vov_cs in &axis {
            for p in self.evaluate_row(vov_cs, &axis, &mut stats) {
                grid.push(p);
            }
        }
        (grid, stats)
    }

    /// Best feasible point under `objective`.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptyFeasibleRegion`] when no grid point is
    /// admissible at this resolution; [`ExploreError::NumericalFailure`]
    /// when candidates existed but every one failed to evaluate.
    pub fn optimize(&self, objective: Objective) -> Result<DesignPoint, ExploreError> {
        self.optimize_constrained(objective, f64::INFINITY)
    }

    /// Best feasible point under `objective` among those settling within
    /// `max_settling` seconds — the practical formulation of the paper's
    /// trade: minimise area *subject to* the 400 MS/s settling target.
    /// A non-positive bound admits nothing and reports an empty region.
    ///
    /// # Errors
    ///
    /// As [`DesignSpace::optimize`].
    pub fn optimize_constrained(
        &self,
        objective: Objective,
        max_settling: f64,
    ) -> Result<DesignPoint, ExploreError> {
        let grid = self.sweep_grid();
        select_best(grid.iter_points(), objective, max_settling)
    }

    /// The area–speed Pareto front of the admissible region: feasible
    /// points not dominated in (smaller area, faster dominant pole) by any
    /// other, sorted by ascending area. The ends of the front are the
    /// min-area and max-speed optima; everything between is the menu the
    /// designer actually chooses from.
    pub fn pareto_front(&self) -> Vec<DesignPoint> {
        pareto_of_grid(&self.sweep_grid())
    }

    /// Coarse-to-fine adaptive sweep: evaluates a coarse sub-lattice of the
    /// dense grid, then repeatedly halves the stride — but only inside
    /// blocks whose corners disagree on feasibility (the constraint
    /// boundary) or which contain the best point seen so far under
    /// `objective`. Every evaluated point lies on the dense lattice, so
    /// points are bit-identical to their dense-sweep counterparts; the mode
    /// trades completeness away from the boundary/optimum for wall time.
    ///
    /// Refinement always reaches stride 1 around the surviving blocks, so
    /// the adaptive optimum matches the dense optimum whenever the
    /// objective's optimum sits on the feasibility boundary (all three
    /// shipped objectives do) — and is never off by more than one coarse
    /// block otherwise.
    pub fn sweep_adaptive(&self, objective: Objective) -> AdaptiveSweep {
        let _span = obs::span("core.sweep.adaptive");
        let axis = self.axis();
        let g = axis.len();
        let mut stats = SweepStats::default();
        let mut memo: BTreeMap<(usize, usize), DesignPoint> = BTreeMap::new();
        // Root block spans the whole index square; blocks split at their
        // midpoint per axis, so every corner stays on the dense lattice.
        let mut blocks: Vec<(usize, usize, usize, usize)> = vec![(0, g - 1, 0, g - 1)];
        let mut levels = 0usize;
        while !blocks.is_empty() {
            levels += 1;
            // Evaluate all corners of the current blocks (deterministic
            // order: blocks are pushed and scanned in row-major order).
            for &(i0, i1, j0, j1) in &blocks {
                for (i, j) in [(i0, j0), (i0, j1), (i1, j0), (i1, j1)] {
                    if !memo.contains_key(&(i, j)) {
                        let p = self.eval_lattice(&axis, i, j, &mut stats);
                        memo.insert((i, j), p);
                    }
                }
            }
            // Current best under the objective, with the same scoring and
            // tie rules as `select_best` (ties keep the later point in
            // row-major order).
            let mut best: Option<((usize, usize), f64)> = None;
            for (&ij, p) in &memo {
                if !p.feasible {
                    continue;
                }
                let k = score(p, objective);
                if !k.is_finite() {
                    continue;
                }
                let better = match best {
                    Some((_, kb)) => !k.total_cmp(&kb).is_lt(),
                    None => true,
                };
                if better {
                    best = Some((ij, k));
                }
            }
            let mut next = Vec::new();
            for &(i0, i1, j0, j1) in &blocks {
                let span_i = i1 - i0;
                let span_j = j1 - j0;
                if span_i <= 1 && span_j <= 1 {
                    continue; // fully refined
                }
                let corner_feasible: Vec<bool> = [(i0, j0), (i0, j1), (i1, j0), (i1, j1)]
                    .iter()
                    .filter_map(|ij| memo.get(ij))
                    .map(|p| p.feasible)
                    .collect();
                let mixed = corner_feasible.iter().any(|&f| f)
                    && corner_feasible.iter().any(|&f| !f);
                let holds_best = match best {
                    Some(((bi, bj), _)) => {
                        (i0..=i1).contains(&bi) && (j0..=j1).contains(&bj)
                    }
                    None => false,
                };
                if !(mixed || holds_best) {
                    continue;
                }
                let mi = (i0 + i1) / 2;
                let mj = (j0 + j1) / 2;
                let i_cuts = if span_i > 1 { vec![(i0, mi), (mi, i1)] } else { vec![(i0, i1)] };
                let j_cuts = if span_j > 1 { vec![(j0, mj), (mj, j1)] } else { vec![(j0, j1)] };
                for &(a0, a1) in &i_cuts {
                    for &(b0, b1) in &j_cuts {
                        next.push((a0, a1, b0, b1));
                    }
                }
            }
            blocks = next;
        }
        let points: Vec<DesignPoint> = memo.into_values().collect();
        AdaptiveSweep {
            evaluated: points.len(),
            dense_equivalent: g * g,
            levels,
            stats,
            points,
        }
    }

    /// Evaluates dense-lattice node `(i, j)` — axis index `i` is `vov_cs`,
    /// `j` is `vov_sw` — with the same kernel as the dense sweep (cold
    /// hint, so the point is bit-identical to its dense counterpart).
    fn eval_lattice(
        &self,
        axis: &[f64],
        i: usize,
        j: usize,
        stats: &mut SweepStats,
    ) -> DesignPoint {
        if self.mode == SweepMode::Reference {
            return self.evaluate_reference(axis[i], axis[j], stats);
        }
        let ctx = SweepCtx::new(self);
        let unit = CsSizing::for_spec(&self.spec, axis[i]);
        self.evaluate_in(&ctx, &unit, axis[j], None, stats).0
    }

    /// Best feasible point of an adaptive sweep — the fast-path analogue of
    /// [`DesignSpace::optimize_constrained`].
    ///
    /// # Errors
    ///
    /// As [`DesignSpace::optimize`], with `evaluated` reflecting the
    /// adaptive point count.
    pub fn optimize_adaptive(
        &self,
        objective: Objective,
        max_settling: f64,
    ) -> Result<DesignPoint, ExploreError> {
        let sweep = self.sweep_adaptive(objective);
        select_best(sweep.points.iter().copied(), objective, max_settling)
    }

    /// Digest of everything that determines sweep results, used as the
    /// checkpoint journal identity: resuming with a different spec, grid,
    /// range or condition is rejected instead of splicing wrong results.
    fn params_digest(&self) -> String {
        // The mode is part of the identity: warm and cold journals are
        // interchangeable by the bit-identity contract, but the reference
        // mode differs in the last bits and must not splice into them.
        format!(
            "cond={:?};grid={};vov=[{},{}];mode={:?};spec={:?}",
            self.condition,
            self.grid,
            encode_f64(self.vov_min),
            encode_f64(self.vov_max),
            self.mode,
            self.spec
        )
    }

    /// [`DesignSpace::sweep`] under runtime supervision: grid rows are the
    /// chunks (one per `vov_cs`), evaluated by the worker pool with panic
    /// isolation, retry, optional deadline, and checkpoint-resume per
    /// `policy`. Row results are assembled in row order, so the sweep is
    /// bit-identical to the sequential one for any job count and across
    /// resume.
    ///
    /// # Errors
    ///
    /// [`SweepError::Runtime`] when supervision fails (retry exhaustion,
    /// cancellation, journal error).
    pub fn sweep_supervised(
        &self,
        policy: &ExecPolicy,
    ) -> Result<Supervised<Vec<DesignPoint>>, SweepError> {
        self.sweep_supervised_scored(policy, None)
    }

    /// Supervised sweep that additionally publishes the best feasible
    /// objective score seen so far through the pool's progress gauge.
    fn sweep_supervised_scored(
        &self,
        policy: &ExecPolicy,
        gauge_objective: Option<Objective>,
    ) -> Result<Supervised<Vec<DesignPoint>>, SweepError> {
        let _span = obs::span("core.sweep.supervised");
        let axis = self.axis();
        let meta = JournalMeta {
            kind: "sweep".into(),
            seed: 0,
            chunks: axis.len() as u64,
            params: self.params_digest(),
        };
        let out = run_journaled(
            policy,
            &meta,
            decode_row,
            encode_row,
            |ctx| {
                let vov_cs = axis[ctx.chunk as usize];
                // The row-local warm-start chain is shared with the
                // sequential sweep; hints never cross the chunk (row)
                // boundary, so any job count produces identical bits.
                // Per-row solver stats stay local: putting them in the
                // journaled payload would break warm/cold bit-identity.
                let mut row_stats = SweepStats::default();
                let mut row = self.evaluate_row(vov_cs, &axis, &mut row_stats);
                ctx.add_units(row.len() as u64);
                if ctx.injected_nan() {
                    if let Some(p) = row.first_mut() {
                        p.total_area = f64::NAN;
                    }
                }
                for p in &row {
                    if !p.total_area.is_finite() {
                        return Err(format!(
                            "non-finite area at ({:.3} V, {:.3} V)",
                            p.vov_cs, p.vov_sw
                        ));
                    }
                }
                if let Some(objective) = gauge_objective {
                    for p in row.iter().filter(|p| p.feasible) {
                        let k = score(p, objective);
                        if k.is_finite() {
                            ctx.publish_gauge(k, f64::max);
                        }
                    }
                }
                Ok(row)
            },
        )?;
        Ok(out.map(|rows| rows.into_iter().flatten().collect()))
    }

    /// [`DesignSpace::optimize_constrained`] over a supervised sweep.
    ///
    /// # Errors
    ///
    /// [`SweepError::Runtime`] when supervision fails;
    /// [`SweepError::Explore`] when the sweep succeeds but admits no
    /// feasible point.
    pub fn optimize_supervised(
        &self,
        objective: Objective,
        max_settling: f64,
        policy: &ExecPolicy,
    ) -> Result<Supervised<DesignPoint>, SweepError> {
        let Supervised {
            value,
            faults,
            restored,
            computed,
            dropped,
        } = self.sweep_supervised_scored(policy, Some(objective))?;
        let best = select_best(value, objective, max_settling)?;
        Ok(Supervised {
            value: best,
            faults,
            restored,
            computed,
            dropped,
        })
    }

    /// [`DesignSpace::pareto_front`] over a supervised sweep.
    ///
    /// # Errors
    ///
    /// [`SweepError::Runtime`] when supervision fails.
    pub fn pareto_front_supervised(
        &self,
        policy: &ExecPolicy,
    ) -> Result<Supervised<Vec<DesignPoint>>, SweepError> {
        Ok(self.sweep_supervised(policy)?.map(pareto_of))
    }

    /// The constraint curve: for each grid `vov_cs`, the largest admissible
    /// `vov_sw` (the paper's Fig. 3 upper). Points with no admissible switch
    /// overdrive are omitted.
    pub fn constraint_curve(&self) -> Vec<(f64, f64)> {
        self.axis()
            .into_iter()
            .filter_map(|vov_cs| {
                self.condition
                    .max_vov_sw(&self.spec, vov_cs)
                    .map(|max_sw| (vov_cs, max_sw))
            })
            .collect()
    }

    /// The spec this explorer is bound to.
    pub fn spec(&self) -> &DacSpec {
        &self.spec
    }

    /// The saturation condition in use.
    pub fn condition(&self) -> SaturationCondition {
        self.condition
    }
}

/// Spec-level invariants hoisted out of the per-point sweep loop. Each
/// field is a pure function of the spec, so caching is bit-neutral.
struct SweepCtx {
    s_factor: f64,
    v_out_min: f64,
    unary_weight: u64,
    cells_at_output: usize,
}

impl SweepCtx {
    fn new(space: &DesignSpace) -> Self {
        Self {
            s_factor: SaturationCondition::s_factor(&space.spec),
            v_out_min: space.spec.env.v_out_min(),
            unary_weight: space.spec.unary_weight(),
            cells_at_output: space.spec.cells_at_output(),
        }
    }
}

/// Column-constant switch devices of a lanes sweep: the switch geometry
/// depends only on `(vov_sw, weight)`, so one table serves every grid row.
struct SwColumns {
    lsb: Vec<ctsdac_process::mosfet::Mosfet>,
    unary: Vec<ctsdac_process::mosfet::Mosfet>,
}

impl SwColumns {
    fn build(spec: &DacSpec, axis: &[f64], unary_weight: u64) -> Self {
        Self {
            lsb: axis.iter().map(|&v| sized_sw_with_weight(spec, v, 1)).collect(),
            unary: axis
                .iter()
                .map(|&v| sized_sw_with_weight(spec, v, unary_weight))
                .collect(),
        }
    }
}

fn score(p: &DesignPoint, objective: Objective) -> f64 {
    match objective {
        Objective::MinArea => -p.total_area,
        Objective::MaxSpeed => p.min_pole_hz,
        Objective::MaxImpedance => p.rout,
    }
}

/// Best feasible point of an evaluated sweep — shared by the sequential,
/// supervised, and adaptive optimisers so all apply identical selection
/// rules.
fn select_best(
    pts: impl IntoIterator<Item = DesignPoint>,
    objective: Objective,
    max_settling: f64,
) -> Result<DesignPoint, ExploreError> {
    let mut evaluated = 0usize;
    let mut failed = 0usize;
    let mut best: Option<DesignPoint> = None;
    for p in pts {
        evaluated += 1;
        if p.reason == Some(InfeasibleReason::NumericalFailure) {
            failed += 1;
            continue;
        }
        if !p.feasible || p.settling_s > max_settling {
            continue;
        }
        let k = score(&p, objective);
        if !k.is_finite() {
            failed += 1;
            continue;
        }
        // `total_cmp` gives a total order even on non-finite scores;
        // ties keep the later grid point, matching `Iterator::max_by`.
        let better = match &best {
            Some(b) => !k.total_cmp(&score(b, objective)).is_lt(),
            None => true,
        };
        if better {
            best = Some(p);
        }
    }
    match best {
        Some(p) => Ok(p),
        None if failed > 0 => Err(ExploreError::NumericalFailure { failed, evaluated }),
        None => Err(ExploreError::EmptyFeasibleRegion { evaluated }),
    }
}

/// Area–speed Pareto front of an evaluated sweep — shared by the
/// sequential and supervised front builders.
fn pareto_of(pts: Vec<DesignPoint>) -> Vec<DesignPoint> {
    let mut feasible: Vec<DesignPoint> = pts.into_iter().filter(|p| p.feasible).collect();
    feasible.sort_by(|a, b| a.total_area.total_cmp(&b.total_area));
    let mut front: Vec<DesignPoint> = Vec::new();
    let mut best_speed = f64::NEG_INFINITY;
    for p in feasible {
        if p.min_pole_hz > best_speed {
            best_speed = p.min_pole_hz;
            front.push(p);
        }
    }
    front
}

/// [`pareto_of`] over struct-of-arrays storage: sorts feasible *indices* by
/// the area column and materialises only the surviving front points, so no
/// intermediate point vector is allocated. Matches [`pareto_of`] exactly
/// (same stable sort, same comparator, same scan).
fn pareto_of_grid(grid: &DesignGrid) -> Vec<DesignPoint> {
    let mut idx: Vec<usize> = (0..grid.len())
        .filter(|&i| grid.reason[i].is_none())
        .collect();
    idx.sort_by(|&a, &b| grid.total_area[a].total_cmp(&grid.total_area[b]));
    let mut front: Vec<DesignPoint> = Vec::new();
    let mut best_speed = f64::NEG_INFINITY;
    for i in idx {
        if grid.min_pole_hz[i] > best_speed {
            best_speed = grid.min_pole_hz[i];
            front.push(grid.point(i));
        }
    }
    front
}

fn reason_code(reason: Option<InfeasibleReason>) -> &'static str {
    match reason {
        None => "-",
        Some(InfeasibleReason::ConstraintViolated) => "c",
        Some(InfeasibleReason::NoBiasPoint) => "b",
        Some(InfeasibleReason::NumericalFailure) => "n",
    }
}

fn encode_point(p: &DesignPoint) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}:{}:{}:{}",
        encode_f64(p.vov_cs),
        encode_f64(p.vov_sw),
        reason_code(p.reason),
        encode_f64(p.total_area),
        encode_f64(p.min_pole_hz),
        encode_f64(p.settling_s),
        encode_f64(p.rout),
        encode_f64(p.dc_i_out),
        if p.dc_saturated { "1" } else { "0" }
    )
}

fn decode_point(s: &str) -> Option<DesignPoint> {
    let mut fields = s.split(':');
    let vov_cs = decode_f64(fields.next()?)?;
    let vov_sw = decode_f64(fields.next()?)?;
    let reason = match fields.next()? {
        "-" => None,
        "c" => Some(InfeasibleReason::ConstraintViolated),
        "b" => Some(InfeasibleReason::NoBiasPoint),
        "n" => Some(InfeasibleReason::NumericalFailure),
        _ => return None,
    };
    let total_area = decode_f64(fields.next()?)?;
    let min_pole_hz = decode_f64(fields.next()?)?;
    let settling_s = decode_f64(fields.next()?)?;
    let rout = decode_f64(fields.next()?)?;
    let dc_i_out = decode_f64(fields.next()?)?;
    let dc_saturated = match fields.next()? {
        "1" => true,
        "0" => false,
        _ => return None,
    };
    if fields.next().is_some() {
        return None;
    }
    Some(DesignPoint {
        vov_cs,
        vov_sw,
        feasible: reason.is_none(),
        reason,
        total_area,
        min_pole_hz,
        settling_s,
        rout,
        dc_i_out,
        dc_saturated,
    })
}

fn encode_row(row: &Vec<DesignPoint>) -> String {
    row.iter().map(encode_point).collect::<Vec<_>>().join(";")
}

fn decode_row(s: &str) -> Option<Vec<DesignPoint>> {
    s.split(';').map(decode_point).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(cond: SaturationCondition) -> DesignSpace {
        DesignSpace::new(&DacSpec::paper_12bit(), cond).with_grid(20)
    }

    #[test]
    fn sweep_covers_grid() {
        let s = space(SaturationCondition::Exact);
        let pts = s.sweep();
        assert_eq!(pts.len(), 400);
        assert!(pts.iter().any(|p| p.feasible));
        assert!(pts.iter().any(|p| !p.feasible));
    }

    #[test]
    fn min_area_hugs_the_constraint() {
        // The area objective decreases with both overdrives, so the optimum
        // must sit at the admissible boundary, not in the interior.
        let s = space(SaturationCondition::Statistical);
        let best = s.optimize(Objective::MinArea).expect("feasible region");
        // Pushing either overdrive one grid step further must break
        // feasibility or leave the grid.
        let step = (s.vov_max - s.vov_min) / 19.0;
        let bumped = s.evaluate(best.vov_cs + step, best.vov_sw);
        assert!(
            !bumped.feasible || bumped.vov_cs > s.vov_max,
            "optimum not on the boundary: {best}"
        );
    }

    #[test]
    fn statistical_space_yields_smaller_area_than_legacy() {
        // The paper's headline: removing the arbitrary margin saves area.
        let stat = space(SaturationCondition::Statistical)
            .optimize(Objective::MinArea)
            .expect("feasible");
        let legacy = space(SaturationCondition::legacy())
            .optimize(Objective::MinArea)
            .expect("feasible");
        assert!(
            stat.total_area < legacy.total_area,
            "statistical {:.3e} >= legacy {:.3e}",
            stat.total_area,
            legacy.total_area
        );
    }

    #[test]
    fn max_speed_point_differs_from_min_area_point() {
        let s = space(SaturationCondition::Statistical);
        let fast = s.optimize(Objective::MaxSpeed).expect("feasible");
        let small = s.optimize(Objective::MinArea).expect("feasible");
        // They are distinct optima in general (Fig. 3 lower shows both).
        assert!(
            fast.min_pole_hz >= small.min_pole_hz,
            "speed optimum slower than area optimum"
        );
    }

    #[test]
    fn constraint_curves_are_ordered() {
        // At every vov_cs: exact ≥ statistical ≥ legacy.
        let spec = DacSpec::paper_12bit();
        let exact = DesignSpace::new(&spec, SaturationCondition::Exact).with_grid(12);
        let stat = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(12);
        let legacy = DesignSpace::new(&spec, SaturationCondition::legacy()).with_grid(12);
        let (ce, cs, cl) = (
            exact.constraint_curve(),
            stat.constraint_curve(),
            legacy.constraint_curve(),
        );
        for ((e, s), l) in ce.iter().zip(&cs).zip(&cl) {
            assert!(e.1 >= s.1 - 1e-9, "exact below statistical at {}", e.0);
            assert!(s.1 >= l.1 - 1e-9, "statistical below legacy at {}", s.0);
        }
    }

    #[test]
    fn pareto_front_is_monotone_and_spans_the_optima() {
        let s = space(SaturationCondition::Statistical);
        let front = s.pareto_front();
        assert!(front.len() >= 2, "degenerate front");
        // Monotone: area ascends, speed ascends.
        for w in front.windows(2) {
            assert!(w[1].total_area > w[0].total_area);
            assert!(w[1].min_pole_hz > w[0].min_pole_hz);
        }
        let min_area = s.optimize(Objective::MinArea).expect("feasible");
        let max_speed = s.optimize(Objective::MaxSpeed).expect("feasible");
        let first = front.first().expect("non-empty");
        let last = front.last().expect("non-empty");
        assert!((first.total_area - min_area.total_area).abs() < 1e-18);
        assert!((last.min_pole_hz - max_speed.min_pole_hz).abs() < 1.0);
    }

    #[test]
    fn pareto_points_are_not_dominated() {
        let s = space(SaturationCondition::Statistical);
        let front = s.pareto_front();
        let all: Vec<DesignPoint> = s.sweep().into_iter().filter(|p| p.feasible).collect();
        for f in &front {
            let dominated = all.iter().any(|p| {
                p.total_area < f.total_area - 1e-18 && p.min_pole_hz > f.min_pole_hz + 1e-9
            });
            assert!(!dominated, "dominated front point {f}");
        }
    }

    #[test]
    fn settling_constraint_trades_area_for_speed() {
        let s = space(SaturationCondition::Statistical);
        let unconstrained = s.optimize(Objective::MinArea).expect("feasible");
        // Require settling at 400 MS/s.
        let constrained = s
            .optimize_constrained(Objective::MinArea, 2.5e-9)
            .expect("a fast-enough point exists");
        assert!(constrained.settling_s <= 2.5e-9);
        assert!(
            constrained.total_area >= unconstrained.total_area,
            "constraint cannot shrink the optimum"
        );
        // An impossible bound empties the set with a typed error.
        assert_eq!(
            s.optimize_constrained(Objective::MinArea, 1e-12),
            Err(ExploreError::EmptyFeasibleRegion { evaluated: 400 })
        );
    }

    #[test]
    fn evaluate_marks_oversized_points_infeasible() {
        let s = space(SaturationCondition::Exact);
        let p = s.evaluate(1.5, 1.5);
        assert!(!p.feasible);
        assert!(p.settling_s.is_infinite());
        assert_eq!(p.reason, Some(InfeasibleReason::ConstraintViolated));
    }

    #[test]
    fn feasible_points_carry_no_reason() {
        let s = space(SaturationCondition::Statistical);
        let best = s.optimize(Objective::MinArea).expect("feasible region");
        assert!(best.feasible);
        assert_eq!(best.reason, None);
    }

    #[test]
    fn out_of_headroom_range_reports_empty_region() {
        // A sweep range entirely above the headroom has no feasible point;
        // the failure must be the typed empty-region error, not a panic.
        let s = space(SaturationCondition::Exact).with_range(2.0, 3.0);
        match s.optimize(Objective::MinArea) {
            Err(ExploreError::EmptyFeasibleRegion { evaluated }) => {
                assert_eq!(evaluated, 400);
            }
            other => panic!("expected empty region, got {other:?}"),
        }
    }

    #[test]
    fn explore_error_display_is_one_line() {
        let e = ExploreError::EmptyFeasibleRegion { evaluated: 64 };
        assert!(!format!("{e}").contains('\n'));
        let e = ExploreError::NumericalFailure { failed: 3, evaluated: 64 };
        let msg = format!("{e}");
        assert!(msg.contains('3') && msg.contains("64"), "{msg}");
    }

    #[test]
    fn supervised_sweep_matches_sequential_bitwise() {
        let s = space(SaturationCondition::Statistical);
        let sequential = s.sweep();
        for jobs in [1, 4] {
            let supervised = s
                .sweep_supervised(&ExecPolicy::with_jobs(jobs))
                .expect("supervised sweep");
            assert_eq!(supervised.value, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn supervised_optimum_matches_sequential_under_faults() {
        use ctsdac_runtime::FaultPlan;
        use std::sync::Arc;
        let s = space(SaturationCondition::Statistical);
        let sequential = s.optimize(Objective::MinArea).expect("feasible");
        let mut policy = ExecPolicy::with_jobs(4);
        policy.pool.faults = Some(Arc::new(FaultPlan::new().panic_at(1).nan_at(7)));
        let supervised = s
            .optimize_supervised(Objective::MinArea, f64::INFINITY, &policy)
            .expect("supervised optimum");
        assert_eq!(supervised.value, sequential);
        assert_eq!(supervised.faults.len(), 2);
        // The gauge carries the best objective score (negated area).
        let gauge = policy.pool.gauge.get().expect("gauge published");
        assert_eq!(gauge, -sequential.total_area);
    }

    #[test]
    fn supervised_sweep_resumes_from_corrupted_journal() {
        use ctsdac_runtime::truncate_tail;
        let dir = std::env::temp_dir().join("ctsdac-core-explore-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sweep.jsonl");
        std::fs::remove_file(&path).ok();
        let s = space(SaturationCondition::Statistical);
        let sequential = s.sweep();
        s.sweep_supervised(&ExecPolicy::with_jobs(2).checkpoint_at(&path))
            .expect("journaled sweep");
        truncate_tail(&path, 11).expect("corrupt the tail");
        let resumed = s
            .sweep_supervised(&ExecPolicy::with_jobs(4).checkpoint_at(&path).resuming())
            .expect("resumed sweep");
        assert_eq!(resumed.value, sequential);
        assert!(resumed.restored > 0, "resume must reuse journal rows");
        assert!(resumed.dropped >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn supervised_pareto_front_matches_sequential() {
        let s = space(SaturationCondition::Statistical);
        let front = s
            .pareto_front_supervised(&ExecPolicy::with_jobs(3))
            .expect("supervised front");
        assert_eq!(front.value, s.pareto_front());
    }

    #[test]
    fn design_point_codec_round_trips_bitwise() {
        let s = space(SaturationCondition::Statistical);
        for p in [s.evaluate(0.3, 0.4), s.evaluate(1.5, 1.5), s.evaluate(0.05, 0.05)] {
            let enc = encode_point(&p);
            let back = decode_point(&enc).expect("decodes");
            assert_eq!(back, p);
            assert_eq!(back.settling_s.to_bits(), p.settling_s.to_bits());
        }
        for bad in [
            "",
            "x",
            "0000000000000000:0:-:0:0:0:0",
            // A well-formed *7-field* line from a pre-DC-verification
            // journal must be dropped, not half-decoded.
            "0000000000000000:0000000000000000:-:0000000000000000:0000000000000000:\
             0000000000000000:0000000000000000",
        ] {
            assert_eq!(decode_point(bad), None, "accepted {bad:?}");
        }
        let enc = encode_point(&s.evaluate(0.3, 0.4));
        assert_eq!(decode_point(&format!("{enc}:00")), None, "extra field accepted");
    }

    #[test]
    fn warm_sweep_is_bit_identical_to_cold() {
        let warm = space(SaturationCondition::Statistical).with_grid(10);
        let cold = warm.clone().with_mode(SweepMode::Cold);
        let (wg, ws) = warm.sweep_with_stats();
        let (cg, cs) = cold.sweep_with_stats();
        assert_eq!(wg.len(), cg.len());
        for (a, b) in wg.iter_points().zip(cg.iter_points()) {
            assert_eq!(a.dc_i_out.to_bits(), b.dc_i_out.to_bits(), "at ({}, {})", a.vov_cs, a.vov_sw);
            assert_eq!(a.rout.to_bits(), b.rout.to_bits());
            assert_eq!(a.settling_s.to_bits(), b.settling_s.to_bits());
            assert_eq!(a, b);
        }
        assert!(ws.warm_hits > 0, "warm path never engaged: {ws:?}");
        assert_eq!(cs.warm_hits, 0, "cold sweep must not warm-start");
        // Since the saturation pre-solve landed, cold starts converge in a
        // handful of full-model iterations (the pre-solve's fixed smooth
        // steps are not counted), so warm no longer strictly beats cold on
        // the counter. Both must stay in the same few-iterations-per-solve
        // regime; the bit-identity above is the invariant that matters.
        assert!(
            ws.iterations_per_solve() < 12.0 && cs.iterations_per_solve() < 12.0,
            "iteration blow-up: warm {ws:?} vs cold {cs:?}"
        );
    }

    #[test]
    fn lanes_sweep_is_bit_identical_to_warm() {
        let warm = space(SaturationCondition::Statistical).with_grid(10);
        let lanes = warm.clone().with_mode(SweepMode::Lanes);
        let (wg, ws) = warm.sweep_with_stats();
        let (lg, ls) = lanes.sweep_with_stats();
        assert_eq!(wg.len(), lg.len());
        for (a, b) in wg.iter_points().zip(lg.iter_points()) {
            assert_eq!(a.dc_i_out.to_bits(), b.dc_i_out.to_bits(), "at ({}, {})", a.vov_cs, a.vov_sw);
            assert_eq!(a.rout.to_bits(), b.rout.to_bits());
            assert_eq!(a.settling_s.to_bits(), b.settling_s.to_bits());
            assert_eq!(a.total_area.to_bits(), b.total_area.to_bits());
            assert_eq!(a, b);
        }
        // Lanes start cold, so the solve/failure tallies match warm's and
        // no warm hits are possible.
        assert_eq!(ls.warm_hits, 0, "lane sweep must not warm-start");
        assert_eq!(ls.dc_solves, ws.dc_solves);
        assert_eq!(ls.dc_failures, ws.dc_failures);
    }

    #[test]
    fn lane_width_does_not_change_results_or_counters() {
        // Lane-width invariance of both the stored points and the solver
        // effort counters: W = 1 (pure scalar order), 4 and 8.
        let lanes = space(SaturationCondition::Statistical)
            .with_grid(10)
            .with_mode(SweepMode::Lanes);
        let (g8, s8) = lanes.sweep_with_stats_lane_width::<8>();
        let (g4, s4) = lanes.sweep_with_stats_lane_width::<4>();
        let (g1, s1) = lanes.sweep_with_stats_lane_width::<1>();
        assert_eq!(s8, s4, "stats differ between W=8 and W=4");
        assert_eq!(s8, s1, "stats differ between W=8 and W=1");
        assert_eq!(g8, g4);
        assert_eq!(g8, g1);
        // The production entry uses LANE_W and must match too.
        let (gp, sp) = lanes.sweep_with_stats();
        assert_eq!(sp, s8);
        assert_eq!(gp, g8);
    }

    #[test]
    fn supervised_lanes_sweep_matches_sequential_bitwise() {
        let s = space(SaturationCondition::Statistical).with_mode(SweepMode::Lanes);
        let sequential = s.sweep();
        for jobs in [1, 4] {
            let supervised = s
                .sweep_supervised(&ExecPolicy::with_jobs(jobs))
                .expect("supervised lanes sweep");
            assert_eq!(supervised.value, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn lanes_single_point_matches_the_lanes_sweep() {
        // `evaluate` falls back to the scalar kernel in lanes mode; the
        // lane kernel's scalar-equivalence contract makes that invisible.
        let s = space(SaturationCondition::Statistical)
            .with_grid(10)
            .with_mode(SweepMode::Lanes);
        let grid = s.sweep_grid();
        let axis = s.axis();
        for (i, &vov_cs) in axis.iter().enumerate().step_by(3) {
            for (j, &vov_sw) in axis.iter().enumerate().step_by(4) {
                let solo = s.evaluate(vov_cs, vov_sw);
                assert_eq!(solo, grid.point(i * axis.len() + j), "({i}, {j})");
            }
        }
    }

    #[test]
    fn reference_sweep_agrees_with_warm_kernel() {
        let warm = space(SaturationCondition::Statistical).with_grid(8);
        let reference = warm.clone().with_mode(SweepMode::Reference);
        let (wg, _) = warm.sweep_with_stats();
        let (rg, rs) = reference.sweep_with_stats();
        assert!(rs.dc_solves > 0);
        for (a, b) in wg.iter_points().zip(rg.iter_points()) {
            // Closed-form metrics are the same arithmetic in both kernels.
            assert_eq!(a.feasible, b.feasible);
            assert_eq!(a.reason, b.reason);
            assert_eq!(a.total_area.to_bits(), b.total_area.to_bits());
            assert_eq!(a.min_pole_hz.to_bits(), b.min_pole_hz.to_bits());
            // The DC solution only agrees to solver tolerance (different
            // Jacobian, no polish).
            if a.dc_i_out != 0.0 {
                assert!(
                    ((a.dc_i_out - b.dc_i_out) / a.dc_i_out).abs() < 1e-6,
                    "dc mismatch at ({}, {}): {} vs {}",
                    a.vov_cs,
                    a.vov_sw,
                    a.dc_i_out,
                    b.dc_i_out
                );
                assert_eq!(a.dc_saturated, b.dc_saturated);
            }
        }
    }

    #[test]
    fn dc_verification_confirms_unary_current() {
        let s = space(SaturationCondition::Statistical);
        let p = s.evaluate(0.2, 0.3);
        assert!(p.feasible, "{p}");
        assert!(p.dc_saturated, "devices should saturate well inside the region");
        let i_unary = s.spec().i_unary();
        assert!(
            ((p.dc_i_out - i_unary) / i_unary).abs() < 0.3,
            "solver current {} far from nominal {}",
            p.dc_i_out,
            i_unary
        );
        // Points without a bias point carry zeroed DC fields.
        let q = s.evaluate(1.5, 1.5);
        assert_eq!(q.dc_i_out, 0.0);
        assert!(!q.dc_saturated);
    }

    #[test]
    fn design_grid_matches_point_sweep() {
        let s = space(SaturationCondition::Statistical).with_grid(6);
        let (grid, _) = s.sweep_with_stats();
        let pts = s.sweep();
        assert_eq!(grid.len(), pts.len());
        assert!(!grid.is_empty());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(grid.point(i), *p);
            assert_eq!(grid.total_area()[i].to_bits(), p.total_area.to_bits());
            assert_eq!(grid.min_pole_hz()[i].to_bits(), p.min_pole_hz.to_bits());
            assert_eq!(grid.reason()[i], p.reason);
        }
        let collected: Vec<DesignPoint> = grid.iter_points().collect();
        assert_eq!(collected, pts);
        assert_eq!(grid.into_points(), pts);
    }

    #[test]
    fn adaptive_sweep_finds_the_dense_optimum() {
        let s = space(SaturationCondition::Statistical);
        for objective in [Objective::MinArea, Objective::MaxSpeed] {
            let dense = s.optimize(objective).expect("dense optimum");
            let adaptive = s
                .optimize_adaptive(objective, f64::INFINITY)
                .expect("adaptive optimum");
            let step = (s.vov_max - s.vov_min) / 19.0;
            assert!(
                (adaptive.vov_cs - dense.vov_cs).abs() <= step + 1e-12
                    && (adaptive.vov_sw - dense.vov_sw).abs() <= step + 1e-12,
                "{objective:?}: adaptive {adaptive} vs dense {dense}"
            );
        }
    }

    #[test]
    fn adaptive_sweep_evaluates_fewer_points() {
        let s = space(SaturationCondition::Statistical).with_grid(33);
        let sweep = s.sweep_adaptive(Objective::MinArea);
        assert_eq!(sweep.dense_equivalent, 33 * 33);
        assert_eq!(sweep.evaluated, sweep.points.len());
        assert!(
            sweep.evaluated < sweep.dense_equivalent / 2,
            "adaptive evaluated {} of {}",
            sweep.evaluated,
            sweep.dense_equivalent
        );
        assert!(sweep.levels > 1);
        // Every adaptive point coincides bitwise with its dense twin.
        let axis = s.axis();
        for p in &sweep.points {
            assert!(axis.iter().any(|&v| v.to_bits() == p.vov_cs.to_bits()));
            assert!(axis.iter().any(|&v| v.to_bits() == p.vov_sw.to_bits()));
        }
    }

    #[test]
    fn adaptive_empty_region_reports_typed_error() {
        let s = space(SaturationCondition::Exact).with_range(2.0, 3.0);
        match s.optimize_adaptive(Objective::MinArea, f64::INFINITY) {
            Err(ExploreError::EmptyFeasibleRegion { evaluated }) => {
                assert!(evaluated > 0);
            }
            other => panic!("expected empty region, got {other:?}"),
        }
    }

    #[test]
    fn axis_spans_requested_range() {
        let s = space(SaturationCondition::Exact).with_range(0.1, 1.0);
        let axis = s.axis();
        assert_eq!(axis.first().copied(), Some(0.1));
        assert!((axis.last().copied().expect("non-empty") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_grid_is_clamped() {
        let s = space(SaturationCondition::Exact).with_grid(1);
        assert_eq!(s.axis().len(), 2);
    }

    #[test]
    fn bogus_range_is_sanitised() {
        let s = space(SaturationCondition::Exact).with_range(-1.0, f64::NAN);
        let axis = s.axis();
        assert!(axis.iter().all(|v| v.is_finite()));
        assert!(axis.first().copied() >= Some(1e-3));
        assert!(axis.last() > axis.first());
    }
}
