//! Design-space exploration over the overdrive plane (the paper's Fig. 3).
//!
//! "In the proposed sizing procedure the whole range of possible CS and SW
//! overdrive voltages that verify (4) is explored including process
//! variations" (§2.1). Each admissible `(V_OD,CS, V_OD,SW)` pair fully
//! determines the cell — CS geometry from the mismatch spec, switch from
//! minimum length — so every optimisation metric (total area, pole
//! frequencies, output impedance, settling time) becomes a function on this
//! plane, and optimising is a grid search along/inside the constraint.

use crate::saturation::SaturationCondition;
use crate::sizing::{build_simple_cell, total_analog_area_simple};
use crate::spec::DacSpec;
use core::fmt;
use ctsdac_circuit::impedance::rout_at_optimum;
use ctsdac_circuit::poles::PoleModel;
use ctsdac_circuit::settling::settling_time_two_pole;
use ctsdac_runtime::{
    decode_f64, encode_f64, run_journaled, ExecPolicy, JournalMeta, RuntimeError, Supervised,
};

/// Why a grid point is excluded from the feasible set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InfeasibleReason {
    /// The saturation condition (eq. (4) plus margins) rejects the pair.
    ConstraintViolated,
    /// The overdrives exhaust the headroom: no nominal bias point exists.
    NoBiasPoint,
    /// The point passed the constraints but a metric evaluation failed
    /// numerically (bias solve error or non-finite figure of merit).
    NumericalFailure,
}

impl fmt::Display for InfeasibleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ConstraintViolated => write!(f, "saturation condition violated"),
            Self::NoBiasPoint => write!(f, "no bias point (headroom exhausted)"),
            Self::NumericalFailure => write!(f, "numerical failure"),
        }
    }
}

/// Failure modes of a design-space optimisation.
///
/// Distinguishing an *empty feasible region* (the spec is simply too hard
/// for this grid/range) from a *numerical failure* (candidate points
/// existed but their evaluation broke down) lets callers react differently:
/// relax the spec in the first case, inspect the solver in the second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreError {
    /// No grid point satisfies the constraints (saturation condition,
    /// headroom, and any settling bound).
    EmptyFeasibleRegion {
        /// Number of grid points evaluated.
        evaluated: usize,
    },
    /// Candidate points existed but every one failed numerically.
    NumericalFailure {
        /// Number of grid points whose evaluation failed.
        failed: usize,
        /// Number of grid points evaluated.
        evaluated: usize,
    },
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyFeasibleRegion { evaluated } => write!(
                f,
                "empty feasible region: none of the {evaluated} grid points \
                 satisfies the saturation condition, headroom, and settling bound"
            ),
            Self::NumericalFailure { failed, evaluated } => write!(
                f,
                "numerical failure: {failed} of {evaluated} grid points failed \
                 to evaluate and no feasible point remains"
            ),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Failure of a *supervised* sweep: either the exploration itself (domain
/// error) or the runtime supervising it (retry exhaustion, cancellation,
/// journal trouble).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// The exploration failed for a domain reason.
    Explore(ExploreError),
    /// The supervised runtime failed.
    Runtime(RuntimeError),
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Explore(e) => write!(f, "{e}"),
            Self::Runtime(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Explore(e) => Some(e),
            Self::Runtime(e) => Some(e),
        }
    }
}

impl From<ExploreError> for SweepError {
    fn from(e: ExploreError) -> Self {
        Self::Explore(e)
    }
}

impl From<RuntimeError> for SweepError {
    fn from(e: RuntimeError) -> Self {
        Self::Runtime(e)
    }
}

/// One evaluated design point of the overdrive plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// CS overdrive in V.
    pub vov_cs: f64,
    /// Switch overdrive in V.
    pub vov_sw: f64,
    /// Whether the saturation condition admits this point.
    pub feasible: bool,
    /// Why the point is infeasible (`None` when `feasible`).
    pub reason: Option<InfeasibleReason>,
    /// Total analog gate area of the converter in m².
    pub total_area: f64,
    /// Slower pole frequency of eq. (13) in Hz (the speed objective of
    /// Fig. 3 lower).
    pub min_pole_hz: f64,
    /// Half-LSB settling time from the two-pole model, in s.
    pub settling_s: f64,
    /// DC output impedance of the unary cell at the optimum bias, in Ω.
    pub rout: f64,
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(Vov_CS = {:.3} V, Vov_SW = {:.3} V): area = {:.1} kum2, f_min = {:.1} MHz, ts = {:.2} ns{}",
            self.vov_cs,
            self.vov_sw,
            self.total_area * 1e12 / 1e3,
            self.min_pole_hz / 1e6,
            self.settling_s * 1e9,
            if self.feasible { "" } else { " [infeasible]" }
        )
    }
}

/// Optimisation objective over the admissible region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimise the total analog area (the matching-driven objective).
    MinArea,
    /// Maximise the slower pole frequency (minimise settling time) — the
    /// "maximum speed" point of Fig. 3 lower.
    MaxSpeed,
    /// Maximise the DC output impedance of the unary cell.
    MaxImpedance,
}

/// Grid explorer over the simple-topology overdrive plane.
///
/// # Examples
///
/// ```
/// use ctsdac_core::explore::{DesignSpace, Objective};
/// use ctsdac_core::saturation::SaturationCondition;
/// use ctsdac_core::DacSpec;
///
/// let spec = DacSpec::paper_12bit();
/// let space = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(24);
/// let fast = space.optimize(Objective::MaxSpeed)?;
/// assert!(fast.min_pole_hz > 1e7);
/// # Ok::<(), ctsdac_core::explore::ExploreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DesignSpace {
    spec: DacSpec,
    condition: SaturationCondition,
    grid: usize,
    vov_min: f64,
    vov_max: f64,
}

impl DesignSpace {
    /// Creates an explorer with a default 32×32 grid over
    /// `[0.05 V, V_out,min]` per axis.
    pub fn new(spec: &DacSpec, condition: SaturationCondition) -> Self {
        Self {
            spec: *spec,
            condition,
            grid: 32,
            vov_min: 0.05,
            vov_max: spec.env.v_out_min(),
        }
    }

    /// Sets the grid resolution per axis; values below 2 are clamped to 2
    /// (one point per axis end).
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid.max(2);
        self
    }

    /// Sets the overdrive sweep range. The bounds are sanitised rather than
    /// trusted: non-finite values are ignored, the lower bound is clamped
    /// to at least 1 mV, and the upper bound to at least 1 mV above the
    /// lower.
    pub fn with_range(mut self, vov_min: f64, vov_max: f64) -> Self {
        if vov_min.is_finite() {
            self.vov_min = vov_min.max(1e-3);
        }
        if vov_max.is_finite() {
            self.vov_max = vov_max.max(self.vov_min + 1e-3);
        } else {
            self.vov_max = self.vov_max.max(self.vov_min + 1e-3);
        }
        self
    }

    /// The grid coordinates of one axis.
    pub fn axis(&self) -> Vec<f64> {
        (0..self.grid)
            .map(|i| {
                self.vov_min
                    + (self.vov_max - self.vov_min) * i as f64 / (self.grid - 1) as f64
            })
            .collect()
    }

    /// Evaluates one design point (feasible or not — infeasible points are
    /// still evaluated so constraint maps can be drawn). A point whose
    /// metric evaluation fails numerically is kept in the sweep but tagged
    /// [`InfeasibleReason::NumericalFailure`] instead of carrying fabricated
    /// figures of merit.
    pub fn evaluate(&self, vov_cs: f64, vov_sw: f64) -> DesignPoint {
        let spec = &self.spec;
        let admits = self.condition.admits_simple(spec, vov_cs, vov_sw);
        // The bias point must also exist for the *nominal* devices.
        let has_bias = vov_cs + vov_sw < spec.env.v_out_min();
        let mut reason = if !admits {
            Some(InfeasibleReason::ConstraintViolated)
        } else if !has_bias {
            Some(InfeasibleReason::NoBiasPoint)
        } else {
            None
        };
        let cell = build_simple_cell(spec, vov_cs, vov_sw, spec.unary_weight());
        let total_area = total_analog_area_simple(spec, vov_cs, vov_sw);
        let mut metrics = (0.0, f64::INFINITY, 0.0);
        if has_bias {
            let poles = PoleModel::new(spec.cells_at_output()).poles(&cell, &spec.env);
            let rout = rout_at_optimum(&cell, &spec.env);
            let mut failed = true;
            if let (Ok(p), Ok(r)) = (poles, rout) {
                let f_min = p.dominant_hz();
                let ts = settling_time_two_pole(&p, spec.n_bits);
                if f_min.is_finite() && f_min > 0.0 && ts.is_finite() && r.is_finite() {
                    metrics = (f_min, ts, r);
                    failed = false;
                }
            }
            // A failure on a point the constraints already excluded keeps
            // its constraint-side reason; only candidates are retagged.
            if failed && reason.is_none() {
                reason = Some(InfeasibleReason::NumericalFailure);
            }
        }
        let (min_pole_hz, settling_s, rout) = metrics;
        DesignPoint {
            vov_cs,
            vov_sw,
            feasible: reason.is_none(),
            reason,
            total_area,
            min_pole_hz,
            settling_s,
            rout,
        }
    }

    /// Evaluates the full grid, row-major in `vov_cs` then `vov_sw`.
    pub fn sweep(&self) -> Vec<DesignPoint> {
        let axis = self.axis();
        let mut out = Vec::with_capacity(axis.len() * axis.len());
        for &vov_cs in &axis {
            for &vov_sw in &axis {
                out.push(self.evaluate(vov_cs, vov_sw));
            }
        }
        out
    }

    /// Best feasible point under `objective`.
    ///
    /// # Errors
    ///
    /// [`ExploreError::EmptyFeasibleRegion`] when no grid point is
    /// admissible at this resolution; [`ExploreError::NumericalFailure`]
    /// when candidates existed but every one failed to evaluate.
    pub fn optimize(&self, objective: Objective) -> Result<DesignPoint, ExploreError> {
        self.optimize_constrained(objective, f64::INFINITY)
    }

    /// Best feasible point under `objective` among those settling within
    /// `max_settling` seconds — the practical formulation of the paper's
    /// trade: minimise area *subject to* the 400 MS/s settling target.
    /// A non-positive bound admits nothing and reports an empty region.
    ///
    /// # Errors
    ///
    /// As [`DesignSpace::optimize`].
    pub fn optimize_constrained(
        &self,
        objective: Objective,
        max_settling: f64,
    ) -> Result<DesignPoint, ExploreError> {
        select_best(self.sweep(), objective, max_settling)
    }

    /// The area–speed Pareto front of the admissible region: feasible
    /// points not dominated in (smaller area, faster dominant pole) by any
    /// other, sorted by ascending area. The ends of the front are the
    /// min-area and max-speed optima; everything between is the menu the
    /// designer actually chooses from.
    pub fn pareto_front(&self) -> Vec<DesignPoint> {
        pareto_of(self.sweep())
    }

    /// Digest of everything that determines sweep results, used as the
    /// checkpoint journal identity: resuming with a different spec, grid,
    /// range or condition is rejected instead of splicing wrong results.
    fn params_digest(&self) -> String {
        format!(
            "cond={:?};grid={};vov=[{},{}];spec={:?}",
            self.condition,
            self.grid,
            encode_f64(self.vov_min),
            encode_f64(self.vov_max),
            self.spec
        )
    }

    /// [`DesignSpace::sweep`] under runtime supervision: grid rows are the
    /// chunks (one per `vov_cs`), evaluated by the worker pool with panic
    /// isolation, retry, optional deadline, and checkpoint-resume per
    /// `policy`. Row results are assembled in row order, so the sweep is
    /// bit-identical to the sequential one for any job count and across
    /// resume.
    ///
    /// # Errors
    ///
    /// [`SweepError::Runtime`] when supervision fails (retry exhaustion,
    /// cancellation, journal error).
    pub fn sweep_supervised(
        &self,
        policy: &ExecPolicy,
    ) -> Result<Supervised<Vec<DesignPoint>>, SweepError> {
        self.sweep_supervised_scored(policy, None)
    }

    /// Supervised sweep that additionally publishes the best feasible
    /// objective score seen so far through the pool's progress gauge.
    fn sweep_supervised_scored(
        &self,
        policy: &ExecPolicy,
        gauge_objective: Option<Objective>,
    ) -> Result<Supervised<Vec<DesignPoint>>, SweepError> {
        let axis = self.axis();
        let meta = JournalMeta {
            kind: "sweep".into(),
            seed: 0,
            chunks: axis.len() as u64,
            params: self.params_digest(),
        };
        let out = run_journaled(
            policy,
            &meta,
            decode_row,
            encode_row,
            |ctx| {
                let vov_cs = axis[ctx.chunk as usize];
                let mut row: Vec<DesignPoint> = axis
                    .iter()
                    .map(|&vov_sw| self.evaluate(vov_cs, vov_sw))
                    .collect();
                if ctx.injected_nan() {
                    if let Some(p) = row.first_mut() {
                        p.total_area = f64::NAN;
                    }
                }
                for p in &row {
                    if !p.total_area.is_finite() {
                        return Err(format!(
                            "non-finite area at ({:.3} V, {:.3} V)",
                            p.vov_cs, p.vov_sw
                        ));
                    }
                }
                if let Some(objective) = gauge_objective {
                    for p in row.iter().filter(|p| p.feasible) {
                        let k = score(p, objective);
                        if k.is_finite() {
                            ctx.publish_gauge(k, f64::max);
                        }
                    }
                }
                Ok(row)
            },
        )?;
        Ok(out.map(|rows| rows.into_iter().flatten().collect()))
    }

    /// [`DesignSpace::optimize_constrained`] over a supervised sweep.
    ///
    /// # Errors
    ///
    /// [`SweepError::Runtime`] when supervision fails;
    /// [`SweepError::Explore`] when the sweep succeeds but admits no
    /// feasible point.
    pub fn optimize_supervised(
        &self,
        objective: Objective,
        max_settling: f64,
        policy: &ExecPolicy,
    ) -> Result<Supervised<DesignPoint>, SweepError> {
        let Supervised {
            value,
            faults,
            restored,
            computed,
            dropped,
        } = self.sweep_supervised_scored(policy, Some(objective))?;
        let best = select_best(value, objective, max_settling)?;
        Ok(Supervised {
            value: best,
            faults,
            restored,
            computed,
            dropped,
        })
    }

    /// [`DesignSpace::pareto_front`] over a supervised sweep.
    ///
    /// # Errors
    ///
    /// [`SweepError::Runtime`] when supervision fails.
    pub fn pareto_front_supervised(
        &self,
        policy: &ExecPolicy,
    ) -> Result<Supervised<Vec<DesignPoint>>, SweepError> {
        Ok(self.sweep_supervised(policy)?.map(pareto_of))
    }

    /// The constraint curve: for each grid `vov_cs`, the largest admissible
    /// `vov_sw` (the paper's Fig. 3 upper). Points with no admissible switch
    /// overdrive are omitted.
    pub fn constraint_curve(&self) -> Vec<(f64, f64)> {
        self.axis()
            .into_iter()
            .filter_map(|vov_cs| {
                self.condition
                    .max_vov_sw(&self.spec, vov_cs)
                    .map(|max_sw| (vov_cs, max_sw))
            })
            .collect()
    }

    /// The spec this explorer is bound to.
    pub fn spec(&self) -> &DacSpec {
        &self.spec
    }

    /// The saturation condition in use.
    pub fn condition(&self) -> SaturationCondition {
        self.condition
    }
}

fn score(p: &DesignPoint, objective: Objective) -> f64 {
    match objective {
        Objective::MinArea => -p.total_area,
        Objective::MaxSpeed => p.min_pole_hz,
        Objective::MaxImpedance => p.rout,
    }
}

/// Best feasible point of an evaluated sweep — shared by the sequential
/// and supervised optimisers so both apply identical selection rules.
fn select_best(
    pts: Vec<DesignPoint>,
    objective: Objective,
    max_settling: f64,
) -> Result<DesignPoint, ExploreError> {
    let evaluated = pts.len();
    let mut failed = 0usize;
    let mut best: Option<DesignPoint> = None;
    for p in pts {
        if p.reason == Some(InfeasibleReason::NumericalFailure) {
            failed += 1;
            continue;
        }
        if !p.feasible || p.settling_s > max_settling {
            continue;
        }
        let k = score(&p, objective);
        if !k.is_finite() {
            failed += 1;
            continue;
        }
        // `total_cmp` gives a total order even on non-finite scores;
        // ties keep the later grid point, matching `Iterator::max_by`.
        let better = match &best {
            Some(b) => !k.total_cmp(&score(b, objective)).is_lt(),
            None => true,
        };
        if better {
            best = Some(p);
        }
    }
    match best {
        Some(p) => Ok(p),
        None if failed > 0 => Err(ExploreError::NumericalFailure { failed, evaluated }),
        None => Err(ExploreError::EmptyFeasibleRegion { evaluated }),
    }
}

/// Area–speed Pareto front of an evaluated sweep — shared by the
/// sequential and supervised front builders.
fn pareto_of(pts: Vec<DesignPoint>) -> Vec<DesignPoint> {
    let mut feasible: Vec<DesignPoint> = pts.into_iter().filter(|p| p.feasible).collect();
    feasible.sort_by(|a, b| a.total_area.total_cmp(&b.total_area));
    let mut front: Vec<DesignPoint> = Vec::new();
    let mut best_speed = f64::NEG_INFINITY;
    for p in feasible {
        if p.min_pole_hz > best_speed {
            best_speed = p.min_pole_hz;
            front.push(p);
        }
    }
    front
}

fn reason_code(reason: Option<InfeasibleReason>) -> &'static str {
    match reason {
        None => "-",
        Some(InfeasibleReason::ConstraintViolated) => "c",
        Some(InfeasibleReason::NoBiasPoint) => "b",
        Some(InfeasibleReason::NumericalFailure) => "n",
    }
}

fn encode_point(p: &DesignPoint) -> String {
    format!(
        "{}:{}:{}:{}:{}:{}:{}",
        encode_f64(p.vov_cs),
        encode_f64(p.vov_sw),
        reason_code(p.reason),
        encode_f64(p.total_area),
        encode_f64(p.min_pole_hz),
        encode_f64(p.settling_s),
        encode_f64(p.rout)
    )
}

fn decode_point(s: &str) -> Option<DesignPoint> {
    let mut fields = s.split(':');
    let vov_cs = decode_f64(fields.next()?)?;
    let vov_sw = decode_f64(fields.next()?)?;
    let reason = match fields.next()? {
        "-" => None,
        "c" => Some(InfeasibleReason::ConstraintViolated),
        "b" => Some(InfeasibleReason::NoBiasPoint),
        "n" => Some(InfeasibleReason::NumericalFailure),
        _ => return None,
    };
    let total_area = decode_f64(fields.next()?)?;
    let min_pole_hz = decode_f64(fields.next()?)?;
    let settling_s = decode_f64(fields.next()?)?;
    let rout = decode_f64(fields.next()?)?;
    if fields.next().is_some() {
        return None;
    }
    Some(DesignPoint {
        vov_cs,
        vov_sw,
        feasible: reason.is_none(),
        reason,
        total_area,
        min_pole_hz,
        settling_s,
        rout,
    })
}

fn encode_row(row: &Vec<DesignPoint>) -> String {
    row.iter().map(encode_point).collect::<Vec<_>>().join(";")
}

fn decode_row(s: &str) -> Option<Vec<DesignPoint>> {
    s.split(';').map(decode_point).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(cond: SaturationCondition) -> DesignSpace {
        DesignSpace::new(&DacSpec::paper_12bit(), cond).with_grid(20)
    }

    #[test]
    fn sweep_covers_grid() {
        let s = space(SaturationCondition::Exact);
        let pts = s.sweep();
        assert_eq!(pts.len(), 400);
        assert!(pts.iter().any(|p| p.feasible));
        assert!(pts.iter().any(|p| !p.feasible));
    }

    #[test]
    fn min_area_hugs_the_constraint() {
        // The area objective decreases with both overdrives, so the optimum
        // must sit at the admissible boundary, not in the interior.
        let s = space(SaturationCondition::Statistical);
        let best = s.optimize(Objective::MinArea).expect("feasible region");
        // Pushing either overdrive one grid step further must break
        // feasibility or leave the grid.
        let step = (s.vov_max - s.vov_min) / 19.0;
        let bumped = s.evaluate(best.vov_cs + step, best.vov_sw);
        assert!(
            !bumped.feasible || bumped.vov_cs > s.vov_max,
            "optimum not on the boundary: {best}"
        );
    }

    #[test]
    fn statistical_space_yields_smaller_area_than_legacy() {
        // The paper's headline: removing the arbitrary margin saves area.
        let stat = space(SaturationCondition::Statistical)
            .optimize(Objective::MinArea)
            .expect("feasible");
        let legacy = space(SaturationCondition::legacy())
            .optimize(Objective::MinArea)
            .expect("feasible");
        assert!(
            stat.total_area < legacy.total_area,
            "statistical {:.3e} >= legacy {:.3e}",
            stat.total_area,
            legacy.total_area
        );
    }

    #[test]
    fn max_speed_point_differs_from_min_area_point() {
        let s = space(SaturationCondition::Statistical);
        let fast = s.optimize(Objective::MaxSpeed).expect("feasible");
        let small = s.optimize(Objective::MinArea).expect("feasible");
        // They are distinct optima in general (Fig. 3 lower shows both).
        assert!(
            fast.min_pole_hz >= small.min_pole_hz,
            "speed optimum slower than area optimum"
        );
    }

    #[test]
    fn constraint_curves_are_ordered() {
        // At every vov_cs: exact ≥ statistical ≥ legacy.
        let spec = DacSpec::paper_12bit();
        let exact = DesignSpace::new(&spec, SaturationCondition::Exact).with_grid(12);
        let stat = DesignSpace::new(&spec, SaturationCondition::Statistical).with_grid(12);
        let legacy = DesignSpace::new(&spec, SaturationCondition::legacy()).with_grid(12);
        let (ce, cs, cl) = (
            exact.constraint_curve(),
            stat.constraint_curve(),
            legacy.constraint_curve(),
        );
        for ((e, s), l) in ce.iter().zip(&cs).zip(&cl) {
            assert!(e.1 >= s.1 - 1e-9, "exact below statistical at {}", e.0);
            assert!(s.1 >= l.1 - 1e-9, "statistical below legacy at {}", s.0);
        }
    }

    #[test]
    fn pareto_front_is_monotone_and_spans_the_optima() {
        let s = space(SaturationCondition::Statistical);
        let front = s.pareto_front();
        assert!(front.len() >= 2, "degenerate front");
        // Monotone: area ascends, speed ascends.
        for w in front.windows(2) {
            assert!(w[1].total_area > w[0].total_area);
            assert!(w[1].min_pole_hz > w[0].min_pole_hz);
        }
        let min_area = s.optimize(Objective::MinArea).expect("feasible");
        let max_speed = s.optimize(Objective::MaxSpeed).expect("feasible");
        let first = front.first().expect("non-empty");
        let last = front.last().expect("non-empty");
        assert!((first.total_area - min_area.total_area).abs() < 1e-18);
        assert!((last.min_pole_hz - max_speed.min_pole_hz).abs() < 1.0);
    }

    #[test]
    fn pareto_points_are_not_dominated() {
        let s = space(SaturationCondition::Statistical);
        let front = s.pareto_front();
        let all: Vec<DesignPoint> = s.sweep().into_iter().filter(|p| p.feasible).collect();
        for f in &front {
            let dominated = all.iter().any(|p| {
                p.total_area < f.total_area - 1e-18 && p.min_pole_hz > f.min_pole_hz + 1e-9
            });
            assert!(!dominated, "dominated front point {f}");
        }
    }

    #[test]
    fn settling_constraint_trades_area_for_speed() {
        let s = space(SaturationCondition::Statistical);
        let unconstrained = s.optimize(Objective::MinArea).expect("feasible");
        // Require settling at 400 MS/s.
        let constrained = s
            .optimize_constrained(Objective::MinArea, 2.5e-9)
            .expect("a fast-enough point exists");
        assert!(constrained.settling_s <= 2.5e-9);
        assert!(
            constrained.total_area >= unconstrained.total_area,
            "constraint cannot shrink the optimum"
        );
        // An impossible bound empties the set with a typed error.
        assert_eq!(
            s.optimize_constrained(Objective::MinArea, 1e-12),
            Err(ExploreError::EmptyFeasibleRegion { evaluated: 400 })
        );
    }

    #[test]
    fn evaluate_marks_oversized_points_infeasible() {
        let s = space(SaturationCondition::Exact);
        let p = s.evaluate(1.5, 1.5);
        assert!(!p.feasible);
        assert!(p.settling_s.is_infinite());
        assert_eq!(p.reason, Some(InfeasibleReason::ConstraintViolated));
    }

    #[test]
    fn feasible_points_carry_no_reason() {
        let s = space(SaturationCondition::Statistical);
        let best = s.optimize(Objective::MinArea).expect("feasible region");
        assert!(best.feasible);
        assert_eq!(best.reason, None);
    }

    #[test]
    fn out_of_headroom_range_reports_empty_region() {
        // A sweep range entirely above the headroom has no feasible point;
        // the failure must be the typed empty-region error, not a panic.
        let s = space(SaturationCondition::Exact).with_range(2.0, 3.0);
        match s.optimize(Objective::MinArea) {
            Err(ExploreError::EmptyFeasibleRegion { evaluated }) => {
                assert_eq!(evaluated, 400);
            }
            other => panic!("expected empty region, got {other:?}"),
        }
    }

    #[test]
    fn explore_error_display_is_one_line() {
        let e = ExploreError::EmptyFeasibleRegion { evaluated: 64 };
        assert!(!format!("{e}").contains('\n'));
        let e = ExploreError::NumericalFailure { failed: 3, evaluated: 64 };
        let msg = format!("{e}");
        assert!(msg.contains('3') && msg.contains("64"), "{msg}");
    }

    #[test]
    fn supervised_sweep_matches_sequential_bitwise() {
        let s = space(SaturationCondition::Statistical);
        let sequential = s.sweep();
        for jobs in [1, 4] {
            let supervised = s
                .sweep_supervised(&ExecPolicy::with_jobs(jobs))
                .expect("supervised sweep");
            assert_eq!(supervised.value, sequential, "jobs = {jobs}");
        }
    }

    #[test]
    fn supervised_optimum_matches_sequential_under_faults() {
        use ctsdac_runtime::FaultPlan;
        use std::sync::Arc;
        let s = space(SaturationCondition::Statistical);
        let sequential = s.optimize(Objective::MinArea).expect("feasible");
        let mut policy = ExecPolicy::with_jobs(4);
        policy.pool.faults = Some(Arc::new(FaultPlan::new().panic_at(1).nan_at(7)));
        let supervised = s
            .optimize_supervised(Objective::MinArea, f64::INFINITY, &policy)
            .expect("supervised optimum");
        assert_eq!(supervised.value, sequential);
        assert_eq!(supervised.faults.len(), 2);
        // The gauge carries the best objective score (negated area).
        let gauge = policy.pool.gauge.get().expect("gauge published");
        assert_eq!(gauge, -sequential.total_area);
    }

    #[test]
    fn supervised_sweep_resumes_from_corrupted_journal() {
        use ctsdac_runtime::truncate_tail;
        let dir = std::env::temp_dir().join("ctsdac-core-explore-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sweep.jsonl");
        std::fs::remove_file(&path).ok();
        let s = space(SaturationCondition::Statistical);
        let sequential = s.sweep();
        s.sweep_supervised(&ExecPolicy::with_jobs(2).checkpoint_at(&path))
            .expect("journaled sweep");
        truncate_tail(&path, 11).expect("corrupt the tail");
        let resumed = s
            .sweep_supervised(&ExecPolicy::with_jobs(4).checkpoint_at(&path).resuming())
            .expect("resumed sweep");
        assert_eq!(resumed.value, sequential);
        assert!(resumed.restored > 0, "resume must reuse journal rows");
        assert!(resumed.dropped >= 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn supervised_pareto_front_matches_sequential() {
        let s = space(SaturationCondition::Statistical);
        let front = s
            .pareto_front_supervised(&ExecPolicy::with_jobs(3))
            .expect("supervised front");
        assert_eq!(front.value, s.pareto_front());
    }

    #[test]
    fn design_point_codec_round_trips_bitwise() {
        let s = space(SaturationCondition::Statistical);
        for p in [s.evaluate(0.3, 0.4), s.evaluate(1.5, 1.5), s.evaluate(0.05, 0.05)] {
            let enc = encode_point(&p);
            let back = decode_point(&enc).expect("decodes");
            assert_eq!(back, p);
            assert_eq!(back.settling_s.to_bits(), p.settling_s.to_bits());
        }
        for bad in ["", "x", "0000000000000000:0:-:0:0:0:0"] {
            assert_eq!(decode_point(bad), None, "accepted {bad:?}");
        }
    }

    #[test]
    fn axis_spans_requested_range() {
        let s = space(SaturationCondition::Exact).with_range(0.1, 1.0);
        let axis = s.axis();
        assert_eq!(axis.first().copied(), Some(0.1));
        assert!((axis.last().copied().expect("non-empty") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_grid_is_clamped() {
        let s = space(SaturationCondition::Exact).with_grid(1);
        assert_eq!(s.axis().len(), 2);
    }

    #[test]
    fn bogus_range_is_sanitised() {
        let s = space(SaturationCondition::Exact).with_range(-1.0, f64::NAN);
        let axis = s.axis();
        assert!(axis.iter().all(|v| v.is_finite()));
        assert!(axis.first().copied() >= Some(1e-3));
        assert!(axis.last() > axis.first());
    }
}
