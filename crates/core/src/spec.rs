//! Converter specification and the INL-yield mismatch budget (paper eq. (1)).
//!
//! The static accuracy of a current-steering DAC is dominated by the random
//! mismatch of its unit current sources. Van den Bosch et al. \[10] showed
//! that the INL < 0.5 LSB specification holds with parametric yield `Y` iff
//!
//! ```text
//! σ(I)/I ≤ 1 / (2·C·√(2ⁿ)),    C = inv_norm(0.5 + Y/2)
//! ```
//!
//! which is the entry point of the whole sizing flow: it fixes the relative
//! accuracy required of the unit (LSB) source and thereby (with eq. (2))
//! the CS gate area.

use core::fmt;
use ctsdac_circuit::cell::CellEnvironment;
use ctsdac_process::Technology;
use ctsdac_stats::normal::inv_phi;

/// Full specification of a segmented current-steering DAC design.
///
/// # Examples
///
/// ```
/// use ctsdac_core::DacSpec;
///
/// let spec = DacSpec::paper_12bit();
/// assert_eq!(spec.n_bits, 12);
/// assert_eq!(spec.unary_bits(), 8);
/// // eq. (1) for 12 bits at 99.7 % yield: σ(I)/I ≈ 0.263 %.
/// assert!((spec.sigma_unit_spec() - 2.632e-3).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DacSpec {
    /// Total resolution in bits (`n`).
    pub n_bits: u32,
    /// Number of binary-weighted LSBs (`b`); the remaining `m = n − b` bits
    /// drive the thermometer-decoded unary array.
    pub binary_bits: u32,
    /// Target parametric yield for INL < 0.5 LSB, in `(0, 1)`.
    pub inl_yield: f64,
    /// Electrical environment (supply, swing, load).
    pub env: CellEnvironment,
    /// Target technology.
    pub tech: Technology,
}

impl DacSpec {
    /// The paper's §3 design: 12 bits segmented 4 + 8, 99.7 % INL yield,
    /// 0.35 µm CMOS, `V_DD` = 3.3 V, `V_o` = 1 V, `R_L` = 50 Ω.
    pub fn paper_12bit() -> Self {
        Self {
            n_bits: 12,
            binary_bits: 4,
            inl_yield: 0.997,
            env: CellEnvironment::paper_12bit(),
            tech: Technology::c035(),
        }
    }

    /// Creates a spec, validating the arguments.
    ///
    /// # Panics
    ///
    /// Panics if `n_bits` is outside `1..=24`, `binary_bits > n_bits`, or
    /// `inl_yield` is not strictly inside `(0, 1)`.
    pub fn new(
        n_bits: u32,
        binary_bits: u32,
        inl_yield: f64,
        env: CellEnvironment,
        tech: Technology,
    ) -> Self {
        assert!((1..=24).contains(&n_bits), "unsupported resolution {n_bits}");
        assert!(
            binary_bits <= n_bits,
            "binary bits {binary_bits} exceed resolution {n_bits}"
        );
        assert!(
            inl_yield > 0.0 && inl_yield < 1.0,
            "yield {inl_yield} must be in (0, 1)"
        );
        Self {
            n_bits,
            binary_bits,
            inl_yield,
            env,
            tech,
        }
    }

    /// Number of thermometer-decoded bits `m = n − b`.
    pub fn unary_bits(&self) -> u32 {
        self.n_bits - self.binary_bits
    }

    /// Number of unary current sources, `2^m − 1`.
    pub fn unary_source_count(&self) -> usize {
        (1usize << self.unary_bits()) - 1
    }

    /// Weight of one unary source in LSBs, `2^b`.
    pub fn unary_weight(&self) -> u64 {
        1u64 << self.binary_bits
    }

    /// Total number of LSB units in the converter, `2ⁿ − ...` — more
    /// precisely `2ⁿ − 1` LSB equivalents are switchable; for variance
    /// bookkeeping the full-scale count `2ⁿ` is used.
    pub fn lsb_unit_count(&self) -> u64 {
        1u64 << self.n_bits
    }

    /// Number of cells with switch drains on each output line: the unary
    /// sources plus one switch per binary bit.
    pub fn cells_at_output(&self) -> usize {
        self.unary_source_count() + self.binary_bits as usize
    }

    /// LSB unit current in A.
    pub fn i_lsb(&self) -> f64 {
        self.env.lsb_current(self.n_bits)
    }

    /// Unary cell current in A, `2^b · I_LSB`.
    pub fn i_unary(&self) -> f64 {
        self.i_lsb() * self.unary_weight() as f64
    }

    /// The yield constant `C = inv_norm(0.5 + Y/2)` of eq. (1). A yield
    /// that escaped construction-time validation maps to an infinite
    /// constant, which drives the mismatch budget to zero (conservative).
    pub fn yield_constant(&self) -> f64 {
        inv_phi(0.5 + self.inl_yield / 2.0).unwrap_or(f64::INFINITY)
    }

    /// The unit-source relative mismatch budget of eq. (1):
    /// `σ(I)/I ≤ 1/(2·C·√(2ⁿ))`.
    pub fn sigma_unit_spec(&self) -> f64 {
        1.0 / (2.0 * self.yield_constant() * (self.lsb_unit_count() as f64).sqrt())
    }
}

impl Default for DacSpec {
    fn default() -> Self {
        Self::paper_12bit()
    }
}

impl fmt::Display for DacSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit DAC ({}+{} segmentation), INL yield {:.1}%, sigma(I)/I <= {:.4}%",
            self.n_bits,
            self.binary_bits,
            self.unary_bits(),
            self.inl_yield * 100.0,
            self.sigma_unit_spec() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_constants() {
        let s = DacSpec::paper_12bit();
        assert_eq!(s.unary_bits(), 8);
        assert_eq!(s.unary_source_count(), 255);
        assert_eq!(s.unary_weight(), 16);
        assert_eq!(s.cells_at_output(), 259);
        // I_LSB = 20 mA / 4096.
        assert!((s.i_lsb() - 4.8828e-6).abs() < 1e-9);
        assert!((s.i_unary() - 78.125e-6).abs() < 1e-8);
    }

    #[test]
    fn yield_constant_matches_inv_norm() {
        let s = DacSpec::paper_12bit();
        // inv_norm(0.9985) = 2.9677
        assert!((s.yield_constant() - 2.9677).abs() < 1e-3);
    }

    #[test]
    fn sigma_spec_tightens_with_resolution() {
        let base = DacSpec::paper_12bit();
        let s10 = DacSpec::new(10, 4, 0.997, base.env, base.tech);
        let s14 = DacSpec::new(14, 4, 0.997, base.env, base.tech);
        // Each added bit costs a factor √2 in matching.
        assert!((s10.sigma_unit_spec() / s14.sigma_unit_spec() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn sigma_spec_tightens_with_yield() {
        let base = DacSpec::paper_12bit();
        let relaxed = DacSpec::new(12, 4, 0.90, base.env, base.tech);
        let strict = DacSpec::new(12, 4, 0.9999, base.env, base.tech);
        assert!(relaxed.sigma_unit_spec() > strict.sigma_unit_spec());
    }

    #[test]
    fn fully_unary_and_fully_binary_extremes() {
        let base = DacSpec::paper_12bit();
        let unary = DacSpec::new(8, 0, 0.997, base.env, base.tech);
        assert_eq!(unary.unary_source_count(), 255);
        assert_eq!(unary.unary_weight(), 1);
        let binary = DacSpec::new(8, 8, 0.997, base.env, base.tech);
        assert_eq!(binary.unary_source_count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceed resolution")]
    fn binary_bits_cannot_exceed_n() {
        let base = DacSpec::paper_12bit();
        let _ = DacSpec::new(8, 9, 0.997, base.env, base.tech);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 1)")]
    fn yield_one_rejected() {
        let base = DacSpec::paper_12bit();
        let _ = DacSpec::new(12, 4, 1.0, base.env, base.tech);
    }

    #[test]
    fn display_summarises_spec() {
        let s = DacSpec::paper_12bit().to_string();
        assert!(s.contains("12-bit") && s.contains("4+8"), "{s}");
    }
}
