//! Cascoded-topology design space (the paper's Fig. 4).
//!
//! With three overdrives the admissible region becomes a volume; "it is
//! cumbersome to represent the optimization parameter ... since a 4th
//! dimension is required, so only the bounds for the overdrive voltages have
//! been plotted" (§3). This module computes exactly that limit surface —
//! for each `(V_OD,SW, V_OD,CAS)` grid point, the largest admissible
//! `V_OD,CS` under a chosen saturation condition — plus a volume-based
//! comparison of conditions and a min-area optimiser for the cascoded cell.

use crate::saturation::SaturationCondition;
use crate::sizing::total_analog_area_cascoded;
use crate::spec::DacSpec;
use core::fmt;

/// One sample of the Fig. 4 limit surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    /// Switch overdrive in V.
    pub vov_sw: f64,
    /// Cascode overdrive in V.
    pub vov_cas: f64,
    /// Largest admissible CS overdrive in V (`None` if the pair is already
    /// inadmissible at a minimal CS overdrive).
    pub max_vov_cs: Option<f64>,
}

impl fmt::Display for SurfacePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max_vov_cs {
            Some(v) => write!(
                f,
                "(sw = {:.2}, cas = {:.2}) -> cs_max = {:.3} V",
                self.vov_sw, self.vov_cas, v
            ),
            None => write!(
                f,
                "(sw = {:.2}, cas = {:.2}) -> infeasible",
                self.vov_sw, self.vov_cas
            ),
        }
    }
}

/// A min-area design point of the cascoded topology.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascodePoint {
    /// CS overdrive in V.
    pub vov_cs: f64,
    /// Cascode overdrive in V.
    pub vov_cas: f64,
    /// Switch overdrive in V.
    pub vov_sw: f64,
    /// Total analog gate area of the converter in m².
    pub total_area: f64,
}

/// Grid explorer for the cascoded design volume.
#[derive(Debug, Clone)]
pub struct CascodeSpace {
    spec: DacSpec,
    condition: SaturationCondition,
    grid: usize,
    vov_min: f64,
    vov_max: f64,
}

impl CascodeSpace {
    /// Creates an explorer with a default 16-point axis over
    /// `[0.05 V, V_out,min]`.
    pub fn new(spec: &DacSpec, condition: SaturationCondition) -> Self {
        Self {
            spec: *spec,
            condition,
            grid: 16,
            vov_min: 0.05,
            vov_max: spec.env.v_out_min(),
        }
    }

    /// Sets the grid resolution per axis; values below 2 are clamped to 2.
    pub fn with_grid(mut self, grid: usize) -> Self {
        self.grid = grid.max(2);
        self
    }

    /// The grid coordinates of one axis.
    pub fn axis(&self) -> Vec<f64> {
        (0..self.grid)
            .map(|i| {
                self.vov_min
                    + (self.vov_max - self.vov_min) * i as f64 / (self.grid - 1) as f64
            })
            .collect()
    }

    /// Largest admissible CS overdrive for one `(vov_sw, vov_cas)` pair,
    /// solved by bisection.
    pub fn max_vov_cs(&self, vov_sw: f64, vov_cas: f64) -> Option<f64> {
        const VOV_MIN: f64 = 0.02;
        if !self
            .condition
            .admits_cascoded(&self.spec, VOV_MIN, vov_cas, vov_sw)
        {
            return None;
        }
        let mut lo = VOV_MIN;
        let mut hi = self.spec.env.v_out_min();
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if self.condition.admits_cascoded(&self.spec, mid, vov_cas, vov_sw) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// One `vov_sw` row of the Fig. 4 limit surface (row `row` of the
    /// grid). Rows are the unit of work for supervised/parallel surface
    /// evaluation; [`CascodeSpace::surface`] is their concatenation.
    /// Returns an empty row when `row` is out of range.
    pub fn surface_row(&self, row: usize) -> Vec<SurfacePoint> {
        let axis = self.axis();
        let Some(&vov_sw) = axis.get(row) else {
            return Vec::new();
        };
        axis.iter()
            .map(|&vov_cas| SurfacePoint {
                vov_sw,
                vov_cas,
                max_vov_cs: self.max_vov_cs(vov_sw, vov_cas),
            })
            .collect()
    }

    /// The full Fig. 4 limit surface over the `(vov_sw, vov_cas)` grid.
    pub fn surface(&self) -> Vec<SurfacePoint> {
        (0..self.grid).flat_map(|row| self.surface_row(row)).collect()
    }

    /// Integral of the limit surface — the admissible design-space *volume*
    /// in V³. The statistical condition recovers volume the fixed margin
    /// forfeits.
    pub fn admissible_volume(&self) -> f64 {
        let axis = self.axis();
        let da = (self.vov_max - self.vov_min) / (self.grid - 1) as f64;
        self.surface()
            .iter()
            .map(|p| p.max_vov_cs.unwrap_or(0.0) * da * da)
            .sum::<f64>()
            .max(0.0)
            - axis.len() as f64 * 0.0 // explicit: no offset correction
    }

    /// Min-area cascoded design point over the admissible volume.
    pub fn min_area_point(&self) -> Option<CascodePoint> {
        let axis = self.axis();
        let mut best: Option<CascodePoint> = None;
        for &vov_cs in &axis {
            for &vov_cas in &axis {
                for &vov_sw in &axis {
                    if vov_cs + vov_cas + vov_sw >= self.spec.env.v_out_min() {
                        continue;
                    }
                    if !self
                        .condition
                        .admits_cascoded(&self.spec, vov_cs, vov_cas, vov_sw)
                    {
                        continue;
                    }
                    let area =
                        total_analog_area_cascoded(&self.spec, vov_cs, vov_cas, vov_sw);
                    if best.is_none_or(|b| area < b.total_area) {
                        best = Some(CascodePoint {
                            vov_cs,
                            vov_cas,
                            vov_sw,
                            total_area: area,
                        });
                    }
                }
            }
        }
        best
    }

    /// Max-speed cascoded design point: maximises the slower pole of
    /// eq. (13) for the unary cell over the admissible volume.
    pub fn max_speed_point(&self) -> Option<CascodePoint> {
        use ctsdac_circuit::poles::PoleModel;
        let axis = self.axis();
        let model = PoleModel::new(self.spec.cells_at_output());
        let mut best: Option<(CascodePoint, f64)> = None;
        for &vov_cs in &axis {
            for &vov_cas in &axis {
                for &vov_sw in &axis {
                    if vov_cs + vov_cas + vov_sw >= self.spec.env.v_out_min() {
                        continue;
                    }
                    if !self
                        .condition
                        .admits_cascoded(&self.spec, vov_cs, vov_cas, vov_sw)
                    {
                        continue;
                    }
                    let cell = crate::sizing::build_cascoded_cell(
                        &self.spec,
                        vov_cs,
                        vov_cas,
                        vov_sw,
                        self.spec.unary_weight(),
                    );
                    // A pole-model failure on one grid point must not sink
                    // the whole search: the point is simply skipped.
                    let Ok(poles) = model.poles(&cell, &self.spec.env) else {
                        continue;
                    };
                    let f = poles.dominant_hz();
                    if !f.is_finite() {
                        continue;
                    }
                    if best.as_ref().is_none_or(|&(_, bf)| f > bf) {
                        best = Some((
                            CascodePoint {
                                vov_cs,
                                vov_cas,
                                vov_sw,
                                total_area: total_analog_area_cascoded(
                                    &self.spec, vov_cs, vov_cas, vov_sw,
                                ),
                            },
                            f,
                        ));
                    }
                }
            }
        }
        best.map(|(p, _)| p)
    }

    /// The spec this explorer is bound to.
    pub fn spec(&self) -> &DacSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space(cond: SaturationCondition) -> CascodeSpace {
        CascodeSpace::new(&DacSpec::paper_12bit(), cond).with_grid(10)
    }

    #[test]
    fn surface_has_feasible_and_infeasible_regions() {
        let s = space(SaturationCondition::Statistical);
        let surf = s.surface();
        assert!(surf.iter().any(|p| p.max_vov_cs.is_some()));
        assert!(surf.iter().any(|p| p.max_vov_cs.is_none()));
    }

    #[test]
    fn exact_surface_is_the_plane_sum_vov_equals_headroom() {
        let s = space(SaturationCondition::Exact);
        let v_out_min = s.spec().env.v_out_min();
        for p in s.surface() {
            if let Some(cs) = p.max_vov_cs {
                assert!(
                    (cs + p.vov_sw + p.vov_cas - v_out_min).abs() < 1e-9,
                    "{p}"
                );
            }
        }
    }

    #[test]
    fn statistical_volume_exceeds_legacy_volume() {
        // Fig. 4's message: the statistical surface bounds a larger volume
        // than the arbitrary-margin one.
        let stat = space(SaturationCondition::Statistical).admissible_volume();
        let legacy = space(SaturationCondition::legacy()).admissible_volume();
        let exact = space(SaturationCondition::Exact).admissible_volume();
        assert!(stat > legacy, "stat {stat} <= legacy {legacy}");
        assert!(exact >= stat, "exact {exact} < stat {stat}");
    }

    #[test]
    fn min_area_point_is_feasible_and_on_grid() {
        let s = space(SaturationCondition::Statistical);
        let p = s.min_area_point().expect("feasible volume");
        assert!(s
            .spec()
            .env
            .v_out_min()
            .ge(&(p.vov_cs + p.vov_cas + p.vov_sw)));
        assert!(p.total_area > 0.0);
    }

    #[test]
    fn statistical_min_area_beats_legacy_min_area() {
        let stat = space(SaturationCondition::Statistical)
            .min_area_point()
            .expect("feasible");
        let legacy = space(SaturationCondition::legacy())
            .min_area_point()
            .expect("feasible");
        assert!(
            stat.total_area < legacy.total_area,
            "stat {:.3e} >= legacy {:.3e}",
            stat.total_area,
            legacy.total_area
        );
    }

    #[test]
    fn max_speed_point_is_faster_than_min_area_point() {
        use ctsdac_circuit::poles::PoleModel;
        let s = space(SaturationCondition::Statistical);
        let fast = s.max_speed_point().expect("feasible");
        let small = s.min_area_point().expect("feasible");
        let model = PoleModel::new(s.spec().unary_source_count() + 4);
        let f = |p: &CascodePoint| {
            let cell = crate::sizing::build_cascoded_cell(
                s.spec(),
                p.vov_cs,
                p.vov_cas,
                p.vov_sw,
                s.spec().unary_weight(),
            );
            model
                .poles(&cell, &s.spec().env)
                .expect("feasible")
                .dominant_hz()
        };
        assert!(f(&fast) >= f(&small));
        // The paper's design runs at 400 MS/s: the speed optimum must
        // support it comfortably (dominant pole well above 300 MHz).
        assert!(f(&fast) > 3e8, "dominant pole only {:.3e} Hz", f(&fast));
    }

    #[test]
    fn surface_is_the_concatenation_of_its_rows() {
        let s = space(SaturationCondition::Statistical);
        let whole = s.surface();
        let mut rows = Vec::new();
        for r in 0..10 {
            rows.extend(s.surface_row(r));
        }
        assert_eq!(rows, whole);
        assert!(s.surface_row(10).is_empty(), "out-of-range row");
    }

    #[test]
    fn tiny_grid_is_clamped() {
        let s = space(SaturationCondition::Exact).with_grid(0);
        assert_eq!(s.axis().len(), 2);
    }

    #[test]
    fn max_vov_cs_sits_on_the_boundary() {
        let s = space(SaturationCondition::Statistical);
        let cs = s.max_vov_cs(0.4, 0.3).expect("feasible");
        let cond = SaturationCondition::Statistical;
        assert!(cond.admits_cascoded(s.spec(), cs, 0.3, 0.4));
        assert!(!cond.admits_cascoded(s.spec(), cs + 2e-3, 0.3, 0.4));
    }
}
