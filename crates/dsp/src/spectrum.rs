//! Spectral metrics for data-converter characterisation.
//!
//! Computes the single-sided power spectrum of a real record and extracts
//! the metrics the converter literature reports: SFDR (the paper's Fig. 8
//! headline number), THD, SNR, SINAD and ENOB.

use crate::complex::Complex;
use crate::fft::fft_real_into;
use crate::window::Window;
use core::fmt;

/// Reusable scratch buffers for repeated spectral analyses.
///
/// A one-shot [`Spectrum::analyze_windowed`] allocates a windowed copy of
/// the record and an FFT output buffer per call; loops that analyze many
/// segments of the same length ([`welch`], Monte-Carlo sweeps) instead keep
/// one of these alive and call
/// [`Spectrum::analyze_windowed_scratch`], reusing both allocations across
/// iterations.
#[derive(Debug, Default, Clone)]
pub struct SpectrumScratch {
    /// Windowed copy of the input record.
    windowed: Vec<f64>,
    /// Full complex spectrum from the real-input FFT.
    spec: Vec<Complex>,
}

impl SpectrumScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Windows `samples` and writes its single-sided power spectrum (length
/// `n/2 + 1`, floored at 1e-300) into `power`, reusing `scratch`'s
/// buffers. The shared kernel behind [`Spectrum::analyze_windowed_scratch`]
/// and the [`welch`] segment loop.
fn windowed_power_into(
    samples: &[f64],
    window: Window,
    scratch: &mut SpectrumScratch,
    power: &mut Vec<f64>,
) {
    assert!(
        samples.len().is_power_of_two() && samples.len() >= 8,
        "record length {} must be a power of two >= 8",
        samples.len()
    );
    let n = samples.len();
    scratch.windowed.clear();
    scratch.windowed.extend_from_slice(samples);
    window.apply(&mut scratch.windowed);
    let gain = window.coherent_gain(n);
    fft_real_into(&scratch.windowed, &mut scratch.spec);
    // Single-sided power, normalised so a full-scale sine of amplitude A
    // shows A²/2 at its bin (windows compensated by coherent gain), with a
    // numerical floor to avoid log(0).
    let half = n / 2;
    let norm = 1.0 / (n as f64 * gain).powi(2);
    power.clear();
    power.extend((0..=half).map(|k| {
        let p = scratch.spec[k].norm_sqr() * norm;
        let p = if k == 0 || k == half { p } else { 2.0 * p };
        p.max(1e-300)
    }));
}

/// Picks the coherent test frequency closest to `f_target`: an odd number
/// of cycles `k` in the `n`-point record (odd keeps harmonics off the
/// fundamental's image bins). Returns `(bin, f_actual)`.
///
/// # Panics
///
/// Panics if `fs` or `f_target` is not positive, `f_target ≥ fs/2`, or
/// `n < 4`.
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::coherent_frequency;
///
/// let (bin, f0) = coherent_frequency(300e6, 53e6, 1024);
/// assert_eq!(bin % 2, 1); // odd number of cycles
/// assert!((f0 - 53e6).abs() < 300e6 / 1024.0);
/// ```
pub fn coherent_frequency(fs: f64, f_target: f64, n: usize) -> (usize, f64) {
    assert!(fs > 0.0 && f_target > 0.0, "invalid frequencies");
    assert!(f_target < fs / 2.0, "target above Nyquist");
    assert!(n >= 4, "record too short");
    let ideal = f_target * n as f64 / fs;
    let mut k = ideal.round() as usize;
    if k.is_multiple_of(2) {
        // Move to the nearer odd neighbour.
        k = if ideal >= k as f64 { k + 1 } else { k.saturating_sub(1) };
    }
    let k = k.clamp(1, n / 2 - 1);
    (k, k as f64 * fs / n as f64)
}

/// Single-sided power spectrum of a real record with converter metrics.
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::Spectrum;
///
/// let n = 512;
/// let samples: Vec<f64> = (0..n)
///     .map(|i| (2.0 * std::f64::consts::PI * 31.0 * i as f64 / n as f64).sin())
///     .collect();
/// let spec = Spectrum::analyze(&samples, 1.0);
/// assert_eq!(spec.fundamental_bin(), 31);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Single-sided power per bin (bin 0 = DC, bin `len-1` = Nyquist).
    power: Vec<f64>,
    /// Sample rate in Hz.
    fs: f64,
    /// Bin index of the fundamental (largest non-DC bin).
    fundamental: usize,
}

impl Spectrum {
    /// Analyzes a real record with a rectangular window (coherent
    /// sampling assumed, as in the paper's Fig. 8).
    ///
    /// # Panics
    ///
    /// Panics if the record length is not a power of two ≥ 8, or `fs` is
    /// not positive.
    pub fn analyze(samples: &[f64], fs: f64) -> Self {
        Self::analyze_windowed(samples, fs, Window::Rectangular)
    }

    /// Analyzes with an explicit window.
    ///
    /// # Panics
    ///
    /// As [`Spectrum::analyze`].
    pub fn analyze_windowed(samples: &[f64], fs: f64, window: Window) -> Self {
        Self::analyze_windowed_scratch(samples, fs, window, &mut SpectrumScratch::new())
    }

    /// As [`Spectrum::analyze_windowed`], but reuses caller-owned scratch
    /// buffers — the variant for loops that analyze many records of the
    /// same length, where the per-call window copy and FFT buffer would
    /// otherwise be reallocated every iteration.
    ///
    /// # Panics
    ///
    /// As [`Spectrum::analyze`].
    pub fn analyze_windowed_scratch(
        samples: &[f64],
        fs: f64,
        window: Window,
        scratch: &mut SpectrumScratch,
    ) -> Self {
        assert!(fs > 0.0, "invalid sample rate {fs}");
        let mut power = Vec::new();
        windowed_power_into(samples, window, scratch, &mut power);
        let half = power.len() - 1;
        let fundamental = power
            .iter()
            .enumerate()
            .skip(1)
            .take(half - 1)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite powers"))
            .map(|(k, _)| k)
            .expect("spectrum has at least one AC bin");
        Self {
            power,
            fs,
            fundamental,
        }
    }

    /// Per-bin single-sided power.
    pub fn power(&self) -> &[f64] {
        &self.power
    }

    /// Sample rate in Hz.
    pub fn fs(&self) -> f64 {
        self.fs
    }

    /// Bin index of the fundamental.
    pub fn fundamental_bin(&self) -> usize {
        self.fundamental
    }

    /// Frequency of bin `k` in Hz.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.fs / ((self.power.len() - 1) * 2) as f64
    }

    /// Fundamental power (linear).
    pub fn fundamental_power(&self) -> f64 {
        self.power[self.fundamental]
    }

    /// Spurious-free dynamic range in dB: fundamental over the largest
    /// other AC bin.
    pub fn sfdr_db(&self) -> f64 {
        let spur = self
            .power
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(k, _)| k != self.fundamental)
            .map(|(_, &p)| p)
            .fold(0.0f64, f64::max);
        10.0 * (self.fundamental_power() / spur.max(1e-300)).log10()
    }

    /// SFDR restricted to bins at or below `f_max` Hz — the right measure
    /// for an oversampled record of a held (ZOH) waveform, where only the
    /// first Nyquist band of the *update* rate is of interest.
    ///
    /// # Panics
    ///
    /// Panics if `f_max` is not positive or lies below the fundamental.
    pub fn sfdr_in_band_db(&self, f_max: f64) -> f64 {
        assert!(f_max > 0.0, "invalid band edge {f_max}");
        let f_fund = self.bin_frequency(self.fundamental);
        assert!(
            f_max >= f_fund,
            "band edge {f_max} below the fundamental {f_fund}"
        );
        let spur = self
            .power
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(k, _)| k != self.fundamental && self.bin_frequency(k) <= f_max)
            .map(|(_, &p)| p)
            .fold(0.0f64, f64::max);
        10.0 * (self.fundamental_power() / spur.max(1e-300)).log10()
    }

    /// Total harmonic distortion in dB (power of harmonics 2..=10 relative
    /// to the fundamental; aliased harmonics are folded back into the first
    /// Nyquist zone).
    pub fn thd_db(&self) -> f64 {
        let mut harm_power = 0.0;
        for h in 2..=10usize {
            if let Some(bin) = self.aliased_bin(self.fundamental * h) {
                harm_power += self.power[bin];
            }
        }
        10.0 * (harm_power.max(1e-300) / self.fundamental_power()).log10()
    }

    /// Signal-to-noise ratio in dB: fundamental over everything else
    /// excluding DC and harmonics 2..=10.
    pub fn snr_db(&self) -> f64 {
        let mut exclude = vec![false; self.power.len()];
        exclude[0] = true;
        exclude[self.fundamental] = true;
        for h in 2..=10usize {
            if let Some(bin) = self.aliased_bin(self.fundamental * h) {
                exclude[bin] = true;
            }
        }
        let noise: f64 = self
            .power
            .iter()
            .zip(&exclude)
            .filter(|&(_, &ex)| !ex)
            .map(|(&p, _)| p)
            .sum();
        10.0 * (self.fundamental_power() / noise.max(1e-300)).log10()
    }

    /// Signal-to-noise-and-distortion in dB: fundamental over everything
    /// else excluding DC.
    pub fn sinad_db(&self) -> f64 {
        let rest: f64 = self
            .power
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(k, _)| k != self.fundamental)
            .map(|(_, &p)| p)
            .sum();
        10.0 * (self.fundamental_power() / rest.max(1e-300)).log10()
    }

    /// Effective number of bits, `(SINAD − 1.76)/6.02`.
    pub fn enob(&self) -> f64 {
        (self.sinad_db() - 1.76) / 6.02
    }

    /// Folds a harmonic bin index back into the first Nyquist zone.
    /// Returns `None` if it folds onto DC or the fundamental.
    fn aliased_bin(&self, k: usize) -> Option<usize> {
        let n = (self.power.len() - 1) * 2;
        let m = k % n;
        let folded = if m <= n / 2 { m } else { n - m };
        if folded == 0 || folded == self.fundamental {
            None
        } else {
            Some(folded)
        }
    }
}

impl fmt::Display for Spectrum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f0 = {:.3} MHz: SFDR = {:.1} dB, SNR = {:.1} dB, THD = {:.1} dB, ENOB = {:.2}",
            self.bin_frequency(self.fundamental) / 1e6,
            self.sfdr_db(),
            self.snr_db(),
            self.thd_db(),
            self.enob()
        )
    }
}

/// Amplitude droop of a zero-order-hold (ZOH) reconstruction at frequency
/// `f` for update rate `fs`, in dB (non-positive): `20·log₁₀|sinc(f/fs)|`.
///
/// A current-steering DAC holds each sample for a full period, so its
/// analog output is attenuated by this factor — −3.9 dB at Nyquist. The
/// paper's 53 MHz @ 300 MS/s test tone droops by ~0.45 dB.
///
/// # Panics
///
/// Panics if `fs` is not positive or `f` is negative.
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::spectrum::zoh_droop_db;
///
/// assert_eq!(zoh_droop_db(0.0, 300e6), 0.0);
/// // Classic Nyquist droop: 20·log10(2/π) ≈ −3.92 dB.
/// assert!((zoh_droop_db(150e6, 300e6) + 3.92).abs() < 0.01);
/// ```
pub fn zoh_droop_db(f: f64, fs: f64) -> f64 {
    assert!(fs > 0.0, "invalid update rate {fs}");
    assert!(f >= 0.0, "negative frequency {f}");
    if f == 0.0 {
        return 0.0;
    }
    let x = core::f64::consts::PI * f / fs;
    20.0 * (x.sin() / x).abs().max(1e-300).log10()
}

/// Welch averaged periodogram: splits the record into 50 %-overlapping
/// windowed segments of length `segment_len` and averages their power
/// spectra. Reduces the variance of noise-floor estimates by roughly the
/// number of (independent) segments — the right tool for reading a
/// converter's noise floor out of a Monte-Carlo record.
///
/// Returns single-sided power per bin (length `segment_len/2 + 1`).
/// Normalisation is tone-calibrated (a coherent sine of amplitude `A`
/// integrates to `A²/2`); broadband noise totals are therefore scaled by
/// the window's noise-equivalent bandwidth (1.0 rectangular, 1.5 Hann).
///
/// # Panics
///
/// Panics if `segment_len` is not a power of two ≥ 8 or exceeds the record
/// length.
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::spectrum::welch;
/// use ctsdac_dsp::Window;
///
/// let x: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.3).sin()).collect();
/// let psd = welch(&x, 512, Window::Hann);
/// assert_eq!(psd.len(), 257);
/// ```
pub fn welch(samples: &[f64], segment_len: usize, window: Window) -> Vec<f64> {
    assert!(
        segment_len.is_power_of_two() && segment_len >= 8,
        "segment length {segment_len} must be a power of two >= 8"
    );
    assert!(
        segment_len <= samples.len(),
        "segment longer than the record"
    );
    let hop = segment_len / 2;
    let mut acc = vec![0.0f64; segment_len / 2 + 1];
    // One scratch + one power buffer for the whole loop: every segment has
    // the same length, so after the first iteration no segment allocates.
    let mut scratch = SpectrumScratch::new();
    let mut seg_power = Vec::with_capacity(acc.len());
    let mut n_segments = 0usize;
    let mut start = 0usize;
    while start + segment_len <= samples.len() {
        windowed_power_into(
            &samples[start..start + segment_len],
            window,
            &mut scratch,
            &mut seg_power,
        );
        for (a, &p) in acc.iter_mut().zip(&seg_power) {
            *a += p;
        }
        n_segments += 1;
        start += hop;
    }
    for a in &mut acc {
        *a /= n_segments as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    fn sine(n: usize, cycles: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * cycles as f64 * i as f64 / n as f64).sin())
            .collect()
    }

    #[test]
    fn pure_sine_metrics() {
        let x = sine(1024, 31, 1.0);
        let s = Spectrum::analyze(&x, 300e6);
        assert_eq!(s.fundamental_bin(), 31);
        // Power of a unit sine is 1/2.
        assert!((s.fundamental_power() - 0.5).abs() < 1e-9);
        assert!(s.sfdr_db() > 150.0, "sfdr = {}", s.sfdr_db());
        assert!(s.enob() > 20.0);
    }

    #[test]
    fn sine_plus_harmonic_gives_expected_sfdr_and_thd() {
        // Fundamental amplitude 1, 3rd harmonic amplitude 1e-3 → 60 dB.
        let n = 2048;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = 2.0 * PI * i as f64 / n as f64;
                (t * 11.0).sin() + 1e-3 * (t * 33.0).sin()
            })
            .collect();
        let s = Spectrum::analyze(&x, 1.0);
        assert_eq!(s.fundamental_bin(), 11);
        assert!((s.sfdr_db() - 60.0).abs() < 0.1, "sfdr = {}", s.sfdr_db());
        assert!((s.thd_db() + 60.0).abs() < 0.1, "thd = {}", s.thd_db());
    }

    #[test]
    fn white_noise_snr_tracks_sigma() {
        use ctsdac_stats::{sample::seeded_rng, NormalSampler};
        let n = 4096;
        let sigma = 1e-3;
        let mut rng = seeded_rng(5);
        let mut sampler = NormalSampler::new();
        let x: Vec<f64> = (0..n)
            .map(|i| {
                (2.0 * PI * 101.0 * i as f64 / n as f64).sin()
                    + sigma * sampler.sample(&mut rng)
            })
            .collect();
        let s = Spectrum::analyze(&x, 1.0);
        // SNR of unit sine vs white noise of power σ²: 10·log10(0.5/σ²).
        let expected = 10.0 * (0.5 / (sigma * sigma)).log10();
        assert!(
            (s.snr_db() - expected).abs() < 1.5,
            "snr = {}, expected {expected}",
            s.snr_db()
        );
    }

    #[test]
    fn enob_of_quantized_sine_matches_resolution() {
        // An ideally quantised full-scale sine has ENOB ≈ n bits.
        let n = 8192;
        let bits = 8u32;
        let levels = (1u64 << bits) as f64;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let v = (2.0 * PI * 1001.0 * i as f64 / n as f64).sin();
                ((v * 0.5 + 0.5) * (levels - 1.0)).round() / (levels - 1.0) * 2.0 - 1.0
            })
            .collect();
        let s = Spectrum::analyze(&x, 1.0);
        assert!(
            (s.enob() - bits as f64).abs() < 0.5,
            "enob = {} for {bits} bits",
            s.enob()
        );
    }

    #[test]
    fn coherent_frequency_picks_odd_bin() {
        let (bin, f0) = coherent_frequency(300e6, 53e6, 4096);
        assert_eq!(bin % 2, 1);
        let exact = bin as f64 * 300e6 / 4096.0;
        assert_eq!(f0, exact);
        assert!((f0 - 53e6).abs() < 2.0 * 300e6 / 4096.0);
    }

    #[test]
    fn windowed_analysis_recovers_amplitude() {
        // Coherent gain compensation: a windowed coherent tone still shows
        // ~A²/2 power.
        let x = sine(1024, 31, 2.0);
        let s = Spectrum::analyze_windowed(&x, 1.0, Window::Hann);
        // With coherent-gain compensation the centre bin recovers the full
        // A²/2 = 2.0 of the tone (the Hann sidebins carry extra energy).
        let p = s.fundamental_power();
        assert!((p - 2.0).abs() < 0.2, "p = {p}");
    }

    #[test]
    fn aliased_harmonics_are_found() {
        // Fundamental at bin 400 of 1024: 2nd harmonic at 800 folds to 224.
        let n = 1024;
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = 2.0 * PI * i as f64 / n as f64;
                (t * 401.0).sin() + 1e-2 * (t * 802.0).sin()
            })
            .collect();
        let s = Spectrum::analyze(&x, 1.0);
        assert_eq!(s.fundamental_bin(), 401);
        // THD must see the folded harmonic at bin 1024−802 = 222.
        assert!((s.thd_db() + 40.0).abs() < 0.5, "thd = {}", s.thd_db());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_length_rejected() {
        let _ = Spectrum::analyze(&vec![0.0; 1000], 1.0);
    }

    #[test]
    fn welch_reduces_noise_floor_variance() {
        use ctsdac_stats::{sample::seeded_rng, NormalSampler};
        let mut rng = seeded_rng(9);
        let mut sampler = NormalSampler::new();
        let noise: Vec<f64> = (0..16384).map(|_| sampler.sample(&mut rng)).collect();
        // Single long FFT: per-bin power scatters ~100 %; Welch with 63
        // segments scatters far less.
        let psd = welch(&noise, 512, Window::Hann);
        let mean = psd[1..].iter().sum::<f64>() / (psd.len() - 1) as f64;
        let var = psd[1..]
            .iter()
            .map(|p| (p - mean) * (p - mean))
            .sum::<f64>()
            / (psd.len() - 1) as f64;
        let rel_sd = var.sqrt() / mean;
        assert!(rel_sd < 0.4, "Welch noise scatter {rel_sd}");
        // With tone-calibrated normalisation, unit-variance white noise
        // totals to the Hann noise-equivalent bandwidth, 1.5.
        let total: f64 = psd.iter().sum();
        assert!((total - 1.5).abs() < 0.2, "total = {total}");
    }

    #[test]
    fn welch_finds_a_buried_tone() {
        use ctsdac_stats::{sample::seeded_rng, NormalSampler};
        let mut rng = seeded_rng(10);
        let mut sampler = NormalSampler::new();
        // Coherent-per-segment tone: 16 cycles per 512-sample segment.
        let x: Vec<f64> = (0..8192)
            .map(|i| {
                0.2 * (2.0 * PI * 16.0 * i as f64 / 512.0).sin()
                    + 0.5 * sampler.sample(&mut rng)
            })
            .collect();
        let psd = welch(&x, 512, Window::Hann);
        let peak_bin = psd
            .iter()
            .enumerate()
            .skip(1)
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(k, _)| k)
            .expect("non-empty");
        assert_eq!(peak_bin, 16);
    }

    #[test]
    #[should_panic(expected = "segment longer")]
    fn welch_rejects_oversized_segment() {
        let _ = welch(&[0.0; 64], 128, Window::Rectangular);
    }

    /// Reusing one scratch across records of different lengths gives the
    /// same spectra as the one-shot path — no stale state leaks between
    /// calls.
    #[test]
    fn scratch_reuse_matches_one_shot() {
        let mut scratch = SpectrumScratch::new();
        for (n, cycles) in [(1024usize, 31usize), (64, 5), (512, 13)] {
            let x = sine(n, cycles, 1.3);
            let fresh = Spectrum::analyze_windowed(&x, 1.0, Window::Hann);
            let reused = Spectrum::analyze_windowed_scratch(&x, 1.0, Window::Hann, &mut scratch);
            assert_eq!(fresh, reused, "n = {n}");
        }
    }

    #[test]
    fn zoh_droop_is_monotone_to_nyquist() {
        let fs = 300e6;
        let mut prev = 0.0;
        for i in 1..=15 {
            let d = zoh_droop_db(i as f64 * 10e6, fs);
            assert!(d < prev, "droop not monotone at {} MHz", i * 10);
            prev = d;
        }
        // The paper's 53 MHz tone: ~0.45 dB.
        let d53 = zoh_droop_db(53e6, fs);
        assert!((d53 + 0.45).abs() < 0.05, "droop at 53 MHz = {d53}");
    }
}
