//! Window functions for non-coherent spectral analysis.
//!
//! The paper's Fig. 8 uses coherent sampling (integer number of periods in
//! the record), where the rectangular window is exact. The other windows
//! are provided for the general case — e.g. sweeping input frequencies that
//! do not land on a bin.

use core::f64::consts::PI;
use core::fmt;

/// Spectral analysis window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Window {
    /// No tapering; exact for coherent sampling.
    #[default]
    Rectangular,
    /// Hann (raised cosine): −31 dB first sidelobe.
    Hann,
    /// Hamming: −43 dB first sidelobe.
    Hamming,
    /// Blackman: −58 dB first sidelobe.
    Blackman,
    /// 4-term Blackman–Harris: −92 dB sidelobes, the standard choice for
    /// data-converter spectra.
    BlackmanHarris,
}

impl Window {
    /// Window coefficient at sample `i` of an `n`-point record.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n == 0`.
    pub fn coefficient(&self, i: usize, n: usize) -> f64 {
        assert!(n > 0, "empty window");
        assert!(i < n, "index {i} out of {n}-point window");
        if n == 1 {
            return 1.0;
        }
        let x = 2.0 * PI * i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            Window::BlackmanHarris => {
                0.35875 - 0.48829 * x.cos() + 0.14128 * (2.0 * x).cos()
                    - 0.01168 * (3.0 * x).cos()
            }
        }
    }

    /// Applies the window in place.
    pub fn apply(&self, samples: &mut [f64]) {
        let n = samples.len();
        if n == 0 {
            return;
        }
        for (i, s) in samples.iter_mut().enumerate() {
            *s *= self.coefficient(i, n);
        }
    }

    /// Coherent gain: the mean window coefficient (amplitude scaling of a
    /// tone after windowing).
    pub fn coherent_gain(&self, n: usize) -> f64 {
        assert!(n > 0, "empty window");
        (0..n).map(|i| self.coefficient(i, n)).sum::<f64>() / n as f64
    }

    /// All window variants, for sweeps and tests.
    pub const ALL: [Window; 5] = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
        Window::BlackmanHarris,
    ];
}

impl fmt::Display for Window {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
            Window::BlackmanHarris => "blackman-harris",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        let w = Window::Rectangular;
        assert!((0..16).all(|i| w.coefficient(i, 16) == 1.0));
        assert_eq!(w.coherent_gain(16), 1.0);
    }

    #[test]
    fn tapered_windows_vanish_at_edges_and_peak_in_middle() {
        for w in [Window::Hann, Window::Blackman, Window::BlackmanHarris] {
            let n = 65;
            let edge = w.coefficient(0, n);
            let mid = w.coefficient(n / 2, n);
            assert!(edge < 0.01, "{w} edge = {edge}");
            assert!(mid > 0.9, "{w} mid = {mid}");
        }
    }

    #[test]
    fn windows_are_symmetric() {
        for w in Window::ALL {
            let n = 33;
            for i in 0..n {
                let a = w.coefficient(i, n);
                let b = w.coefficient(n - 1 - i, n);
                assert!((a - b).abs() < 1e-12, "{w} asymmetric at {i}");
            }
        }
    }

    #[test]
    fn coherent_gains_match_known_values() {
        // Asymptotic coherent gains: Hann 0.5, Hamming 0.54, Blackman 0.42.
        let n = 4096;
        assert!((Window::Hann.coherent_gain(n) - 0.5).abs() < 1e-3);
        assert!((Window::Hamming.coherent_gain(n) - 0.54).abs() < 1e-3);
        assert!((Window::Blackman.coherent_gain(n) - 0.42).abs() < 1e-3);
    }

    #[test]
    fn apply_matches_coefficients() {
        let mut x = vec![1.0; 32];
        Window::Hann.apply(&mut x);
        for (i, &v) in x.iter().enumerate() {
            assert_eq!(v, Window::Hann.coefficient(i, 32));
        }
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_index_panics() {
        let _ = Window::Hann.coefficient(16, 16);
    }
}
