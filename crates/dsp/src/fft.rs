//! Radix-2 decimation-in-time FFT.
//!
//! An iterative, in-place Cooley–Tukey transform: bit-reversal permutation
//! followed by `log₂N` butterfly stages with per-stage twiddle recurrence.
//! `O(N log N)`, no allocation beyond the caller's buffer, exact inverse via
//! conjugation.

use crate::complex::Complex;

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{−2πi·kn/N}` (no normalisation).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (or is zero).
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::{fft, Complex};
///
/// let mut data = vec![Complex::real(1.0); 8];
/// fft(&mut data);
/// // A DC vector transforms to a single spike of height N.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1..].iter().all(|z| z.abs() < 1e-12));
/// ```
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two() && n > 0, "FFT length {n} must be a power of two");
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let theta = -2.0 * core::f64::consts::PI / len as f64;
        let w_len = Complex::cis(theta);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let a = chunk[i];
                let b = chunk[i + half] * w;
                chunk[i] = a + b;
                chunk[i + half] = a - b;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (normalised by `1/N`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::{fft, ifft, Complex};
///
/// let original: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, -(i as f64))).collect();
/// let mut data = original.clone();
/// fft(&mut data);
/// ifft(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub fn ifft(data: &mut [Complex]) {
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft(data);
    for z in data.iter_mut() {
        *z = z.conj().scale(1.0 / n);
    }
}

/// FFT of a real signal: packs into complex, transforms, returns the full
/// complex spectrum (the caller typically uses only bins `0..N/2`).
///
/// # Panics
///
/// Panics if `samples.len()` is not a power of two.
pub fn fft_real(samples: &[f64]) -> Vec<Complex> {
    let mut data: Vec<Complex> = samples.iter().map(|&x| Complex::real(x)).collect();
    fft(&mut data);
    data
}

/// Bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    if n <= 2 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(N²) DFT reference.
    fn dft_reference(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (i, &xi) in x.iter().enumerate() {
                    let theta = -2.0 * core::f64::consts::PI * (k * i) as f64 / n as f64;
                    acc += xi * Complex::cis(theta);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_direct_dft() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.73).cos()))
            .collect();
        let want = dft_reference(&x);
        let mut got = x.clone();
        fft(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-10, "FFT disagrees with DFT");
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let k0 = 13;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x);
        // A coherent cosine has bins k0 and N−k0 at height N/2.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = x.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!(
            ((time_energy - freq_energy) / time_energy).abs() < 1e-12,
            "Parseval violated"
        );
    }

    #[test]
    fn fft_ifft_round_trip() {
        let original: Vec<Complex> = (0..512)
            .map(|i| Complex::new((i as f64 * 1.1).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn length_one_is_identity() {
        let mut data = [Complex::new(2.5, -1.0)];
        fft(&mut data);
        assert_eq!(data[0], Complex::new(2.5, -1.0));
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::real(i as f64)).collect();
        let b: Vec<Complex> = (0..32).map(|i| Complex::real((i * i % 7) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb, mut fs) = (a.clone(), b.clone(), sum.clone());
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fs);
        for ((x, y), s) in fa.iter().zip(&fb).zip(&fs) {
            assert!((*x + *y - *s).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }
}
