//! Radix-2 decimation-in-time FFT.
//!
//! An iterative, in-place Cooley–Tukey transform: bit-reversal permutation
//! followed by `log₂N` butterfly stages with per-stage twiddle recurrence.
//! `O(N log N)`, no allocation beyond the caller's buffer, exact inverse via
//! conjugation.

use crate::complex::Complex;

/// In-place forward FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{−2πi·kn/N}` (no normalisation).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two (or is zero).
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::{fft, Complex};
///
/// let mut data = vec![Complex::real(1.0); 8];
/// fft(&mut data);
/// // A DC vector transforms to a single spike of height N.
/// assert!((data[0].re - 8.0).abs() < 1e-12);
/// assert!(data[1..].iter().all(|z| z.abs() < 1e-12));
/// ```
pub fn fft(data: &mut [Complex]) {
    let n = data.len();
    assert!(n.is_power_of_two() && n > 0, "FFT length {n} must be a power of two");
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let theta = -2.0 * core::f64::consts::PI / len as f64;
        let w_len = Complex::cis(theta);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex::ONE;
            let half = len / 2;
            for i in 0..half {
                let a = chunk[i];
                let b = chunk[i + half] * w;
                chunk[i] = a + b;
                chunk[i + half] = a - b;
                w = w * w_len;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (normalised by `1/N`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::{fft, ifft, Complex};
///
/// let original: Vec<Complex> = (0..16).map(|i| Complex::new(i as f64, -(i as f64))).collect();
/// let mut data = original.clone();
/// fft(&mut data);
/// ifft(&mut data);
/// for (a, b) in data.iter().zip(&original) {
///     assert!((*a - *b).abs() < 1e-12);
/// }
/// ```
pub fn ifft(data: &mut [Complex]) {
    let n = data.len() as f64;
    for z in data.iter_mut() {
        *z = z.conj();
    }
    fft(data);
    for z in data.iter_mut() {
        *z = z.conj().scale(1.0 / n);
    }
}

/// FFT of a real signal, returning the full complex spectrum (the caller
/// typically uses only bins `0..N/2`).
///
/// Exploits realness with the classic packing trick: the `N` real samples
/// are folded into an `N/2`-point complex record `z[m] = x[2m] + i·x[2m+1]`,
/// transformed with one half-size FFT, and unpacked through the
/// decimation-in-time butterfly — about half the work and half the
/// footprint of the full-size complex path it replaced. Agrees with that
/// path to rounding error (see the cross-check test).
///
/// # Panics
///
/// Panics if `samples.len()` is not a power of two.
pub fn fft_real(samples: &[f64]) -> Vec<Complex> {
    let mut out = Vec::new();
    fft_real_into(samples, &mut out);
    out
}

/// [`fft_real`] writing into a caller-owned buffer — the hot-loop variant
/// for repeated analyses (e.g. Welch segment averaging), which reuses the
/// buffer's allocation across calls. `out` is cleared and resized; no other
/// allocation is performed.
///
/// # Panics
///
/// Panics if `samples.len()` is not a power of two.
pub fn fft_real_into(samples: &[f64], out: &mut Vec<Complex>) {
    let n = samples.len();
    assert!(n.is_power_of_two() && n > 0, "FFT length {n} must be a power of two");
    out.clear();
    if n == 1 {
        out.push(Complex::real(samples[0]));
        return;
    }
    if n == 2 {
        out.push(Complex::real(samples[0] + samples[1]));
        out.push(Complex::real(samples[0] - samples[1]));
        return;
    }
    let half = n / 2;
    // Pack the even samples into the real parts and the odd samples into
    // the imaginary parts of the first half of `out`, and transform that.
    out.extend((0..half).map(|m| Complex::new(samples[2 * m], samples[2 * m + 1])));
    fft(out);
    out.resize(n, Complex::ZERO);
    let z0 = out[0];
    // Unpack each symmetric pair (k, half − k) in one step: the even-sample
    // spectrum is E_k = (Z[k] + Z*[half−k])/2, the odd-sample spectrum is
    // O_k = −i·(Z[k] − Z*[half−k])/2, and the butterfly recombines them as
    // X[k] = E_k + e^{−2πik/N}·O_k. Both of the pair's inputs are read
    // before either output slot is overwritten, so the unpack is in place;
    // conjugate symmetry X[N−k] = X*[k] fills the upper half.
    let theta = -2.0 * core::f64::consts::PI / n as f64;
    for k in 1..=half / 2 {
        let j = half - k;
        let (a, b) = (out[k], out[j].conj());
        let (a2, b2) = (out[j], out[k].conj());
        let x_k = butterfly(a, b, Complex::cis(theta * k as f64));
        let x_j = butterfly(a2, b2, Complex::cis(theta * j as f64));
        out[k] = x_k;
        out[j] = x_j;
        out[n - k] = x_k.conj();
        out[n - j] = x_j.conj();
    }
    // Bin 0 and Nyquist come straight from Z[0] (both are real).
    out[0] = Complex::real(z0.re + z0.im);
    out[half] = Complex::real(z0.re - z0.im);
}

/// One unpack butterfly of the real-input FFT: recombines `a = Z[k]` and
/// `b = Z*[half−k]` with the twiddle `w = e^{−2πik/N}`.
fn butterfly(a: Complex, b: Complex, w: Complex) -> Complex {
    let e = (a + b).scale(0.5);
    let d = (a - b).scale(0.5);
    // O_k = −i·d.
    let o = Complex::new(d.im, -d.re);
    e + w * o
}

/// Bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Complex]) {
    let n = data.len();
    if n <= 2 {
        return;
    }
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Direct O(N²) DFT reference.
    fn dft_reference(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::ZERO;
                for (i, &xi) in x.iter().enumerate() {
                    let theta = -2.0 * core::f64::consts::PI * (k * i) as f64 / n as f64;
                    acc += xi * Complex::cis(theta);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn matches_direct_dft() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.73).cos()))
            .collect();
        let want = dft_reference(&x);
        let mut got = x.clone();
        fft(&mut got);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-10, "FFT disagrees with DFT");
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 256;
        let k0 = 13;
        let x: Vec<f64> = (0..n)
            .map(|i| (2.0 * core::f64::consts::PI * k0 as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&x);
        // A coherent cosine has bins k0 and N−k0 at height N/2.
        assert!((spec[k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k0].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, z) in spec.iter().enumerate() {
            if k != k0 && k != n - k0 {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {}", z.abs());
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex> = (0..128)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = x.clone();
        fft(&mut spec);
        let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / 128.0;
        assert!(
            ((time_energy - freq_energy) / time_energy).abs() < 1e-12,
            "Parseval violated"
        );
    }

    #[test]
    fn fft_ifft_round_trip() {
        let original: Vec<Complex> = (0..512)
            .map(|i| Complex::new((i as f64 * 1.1).sin(), (i as f64 * 0.9).cos()))
            .collect();
        let mut data = original.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-11);
        }
    }

    #[test]
    fn length_one_is_identity() {
        let mut data = [Complex::new(2.5, -1.0)];
        fft(&mut data);
        assert_eq!(data[0], Complex::new(2.5, -1.0));
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..32).map(|i| Complex::real(i as f64)).collect();
        let b: Vec<Complex> = (0..32).map(|i| Complex::real((i * i % 7) as f64)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let (mut fa, mut fb, mut fs) = (a.clone(), b.clone(), sum.clone());
        fft(&mut fa);
        fft(&mut fb);
        fft(&mut fs);
        for ((x, y), s) in fa.iter().zip(&fb).zip(&fs) {
            assert!((*x + *y - *s).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut data = vec![Complex::ZERO; 12];
        fft(&mut data);
    }

    /// The packed real-input path agrees bin-for-bin with the full-size
    /// complex transform it replaced, at every power-of-two length
    /// including the `n = 1` and `n = 2` special cases.
    #[test]
    fn real_packing_matches_full_size_path() {
        for n in [1usize, 2, 4, 8, 16, 64, 256, 1024] {
            let x: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.61).sin() + 0.3 * (i as f64 * 1.7).cos() - 0.1)
                .collect();
            let packed = fft_real(&x);
            let mut full: Vec<Complex> = x.iter().map(|&v| Complex::real(v)).collect();
            fft(&mut full);
            assert_eq!(packed.len(), n);
            let scale = n as f64;
            for (k, (p, f)) in packed.iter().zip(&full).enumerate() {
                assert!(
                    (*p - *f).abs() < 1e-10 * scale,
                    "n = {n}, bin {k}: packed {p:?} vs full {f:?}"
                );
            }
        }
    }

    /// `fft_real` followed by the inverse transform recovers the samples,
    /// and the reusable-buffer variant leaves no stale state behind when
    /// the buffer shrinks or grows between calls.
    #[test]
    fn fft_real_round_trips_and_buffer_is_reusable() {
        let mut scratch = Vec::new();
        for n in [512usize, 8, 64] {
            let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.83).sin()).collect();
            fft_real_into(&x, &mut scratch);
            assert_eq!(scratch.len(), n);
            let mut back = scratch.clone();
            ifft(&mut back);
            for (b, &want) in back.iter().zip(&x) {
                assert!((b.re - want).abs() < 1e-11, "n = {n}");
                assert!(b.im.abs() < 1e-11, "n = {n}");
            }
        }
    }

    /// Real input gives a conjugate-symmetric spectrum: `X[N−k] = X*[k]`.
    #[test]
    fn real_spectrum_is_conjugate_symmetric() {
        let n = 128;
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.29).cos() * (i as f64 * 0.05).sin()).collect();
        let spec = fft_real(&x);
        assert!(spec[0].im.abs() < 1e-10);
        assert!(spec[n / 2].im.abs() < 1e-10);
        for k in 1..n / 2 {
            assert!((spec[n - k] - spec[k].conj()).abs() < 1e-10, "bin {k}");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_real_rejects_non_power_of_two() {
        fft_real(&[0.0; 6]);
    }
}
