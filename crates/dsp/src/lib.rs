//! Signal-processing substrate for the `ctsdac` workspace.
//!
//! The paper evaluates the designed DAC by "applying the DFT to 50 periods
//! of the differential output waveform" (Fig. 8) and reading the SFDR off
//! the spectrum. This crate provides that tooling from scratch: a radix-2
//! FFT, window functions, coherent-sampling helpers, and the spectral
//! metrics (SFDR, THD, SNR, SINAD, ENOB) the data-converter literature
//! reports.
//!
//! # Example
//!
//! ```
//! use ctsdac_dsp::spectrum::{coherent_frequency, Spectrum};
//!
//! let n = 1024;
//! let fs = 300e6;
//! // Pick the coherent bin closest to 53 MHz (Fig. 8's test tone).
//! let (bin, f0) = coherent_frequency(fs, 53e6, n);
//! let samples: Vec<f64> = (0..n)
//!     .map(|i| (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
//!     .collect();
//! let spec = Spectrum::analyze(&samples, fs);
//! assert_eq!(spec.fundamental_bin(), bin);
//! // A pure sine has an enormous SFDR.
//! assert!(spec.sfdr_db() > 100.0);
//! ```

pub mod complex;
pub mod fft;
pub mod spectrum;
pub mod window;

pub use complex::Complex;
pub use fft::{fft, fft_real, fft_real_into, ifft};
pub use spectrum::{coherent_frequency, Spectrum, SpectrumScratch};
pub use window::Window;
