//! Minimal complex-number type for the FFT.
//!
//! Only the operations the workspace needs — no external numerics crate is
//! available, and a 30-line struct keeps the FFT readable.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number in rectangular form.
///
/// # Examples
///
/// ```
/// use ctsdac_dsp::Complex;
///
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!(a + b, Complex::new(4.0, 1.0));
/// assert_eq!(a * b, Complex::new(5.0, 5.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from rectangular coordinates.
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// A purely real number.
    pub fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ}` — the unit phasor at angle `theta` (radians).
    pub fn cis(theta: f64) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (cheaper than [`Self::abs`], used for power
    /// spectra).
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplication by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, o: Complex) {
        self.re += o.re;
        self.im += o.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn magnitude_and_conjugate() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        let p = z * z.conj();
        assert_eq!(p, Complex::real(25.0));
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..8 {
            let theta = k as f64 * core::f64::consts::PI / 4.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-15);
            assert!((z.arg() - theta.sin().atan2(theta.cos())).abs() < 1e-12);
        }
    }

    #[test]
    fn multiplication_rotates() {
        let i = Complex::new(0.0, 1.0);
        assert_eq!(i * i, Complex::real(-1.0));
        let z = Complex::new(1.0, 0.0);
        let rotated = z * Complex::cis(core::f64::consts::FRAC_PI_2);
        assert!((rotated.re).abs() < 1e-15);
        assert!((rotated.im - 1.0).abs() < 1e-15);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }
}
