//! Randomized property tests for the DSP substrate.
//!
//! Driven by the in-tree deterministic PRNG; enable with
//! `cargo test --features proptests`.
#![cfg(feature = "proptests")]

use ctsdac_dsp::spectrum::{coherent_frequency, Spectrum};
use ctsdac_dsp::window::Window;
use ctsdac_dsp::{fft, ifft, Complex};
use ctsdac_stats::rng::{seeded_rng, Rng};

const CASES: usize = 32;

fn arb_signal<R: Rng>(rng: &mut R, max_pow: u32) -> Vec<Complex> {
    let p = rng.gen_range(3u32..max_pow + 1);
    (0..1usize << p)
        .map(|_| Complex::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3)))
        .collect()
}

/// FFT followed by IFFT is the identity.
#[test]
fn fft_round_trip() {
    let mut rng = seeded_rng(0xD5B0_0001);
    for _ in 0..CASES {
        let signal = arb_signal(&mut rng, 10);
        let mut data = signal.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&signal) {
            assert!((*a - *b).abs() < 1e-7);
        }
    }
}

/// Parseval: time-domain and frequency-domain energies agree.
#[test]
fn parseval() {
    let mut rng = seeded_rng(0xD5B0_0002);
    for _ in 0..CASES {
        let signal = arb_signal(&mut rng, 10);
        let n = signal.len() as f64;
        let time: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = signal.clone();
        fft(&mut spec);
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
    }
}

/// FFT is linear.
#[test]
fn fft_linearity() {
    let mut rng = seeded_rng(0xD5B0_0003);
    for _ in 0..CASES {
        let a = arb_signal(&mut rng, 8);
        let k = rng.gen_range(-10.0..10.0);
        let scaled: Vec<Complex> = a.iter().map(|z| z.scale(k)).collect();
        let (mut fa, mut fs) = (a.clone(), scaled.clone());
        fft(&mut fa);
        fft(&mut fs);
        for (x, y) in fa.iter().zip(&fs) {
            assert!((x.scale(k) - *y).abs() < 1e-6 * (1.0 + x.abs() * k.abs()));
        }
    }
}

/// A coherent full-scale sine always lands its fundamental on the
/// chosen bin and shows a huge SFDR.
#[test]
fn coherent_sine_is_clean() {
    let mut rng = seeded_rng(0xD5B0_0004);
    for _ in 0..CASES {
        let p = rng.gen_range(6u32..13);
        let f_frac = rng.gen_range(0.02..0.45);
        let amp = rng.gen_range(0.1..10.0);
        let n = 1usize << p;
        let fs = 1.0;
        let (bin, f0) = coherent_frequency(fs, f_frac * fs, n);
        let x: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        let s = Spectrum::analyze(&x, fs);
        assert_eq!(s.fundamental_bin(), bin);
        assert!(s.sfdr_db() > 100.0);
        // Power recovers A²/2.
        assert!((s.fundamental_power() - amp * amp / 2.0).abs() < 1e-6 * amp * amp);
    }
}

/// Window coefficients are within [0, ~1.09] (Hamming's peak ≤ 1) and
/// symmetric for every window and length.
/// `n = 2` is excluded: the cosine windows are identically zero there
/// (both samples sit on the zeros of the taper), a degenerate record no
/// analysis would use.
#[test]
fn window_properties() {
    let mut rng = seeded_rng(0xD5B0_0005);
    for _ in 0..CASES {
        let n = rng.gen_range(3usize..512);
        for w in Window::ALL {
            for i in 0..n {
                let c = w.coefficient(i, n);
                // Allow f64 rounding at the exact zeros of the tapers.
                assert!((-1e-12..=1.000001).contains(&c), "{w}[{i}] = {c}");
                let mirror = w.coefficient(n - 1 - i, n);
                assert!((c - mirror).abs() < 1e-12);
            }
            let gain = w.coherent_gain(n);
            assert!(gain > 0.0 && gain <= 1.0 + 1e-12);
        }
    }
}

/// SFDR of a two-tone signal equals the amplitude ratio in dB.
#[test]
fn sfdr_measures_amplitude_ratio() {
    let mut rng = seeded_rng(0xD5B0_0006);
    for _ in 0..CASES {
        let ratio_db = rng.gen_range(10.0..100.0);
        let n = 4096;
        let a2 = 10f64.powf(-ratio_db / 20.0);
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (101.0 * t).sin() + a2 * (317.0 * t).sin()
            })
            .collect();
        let s = Spectrum::analyze(&x, 1.0);
        assert!(
            (s.sfdr_db() - ratio_db).abs() < 0.01,
            "sfdr {} vs ratio {}",
            s.sfdr_db(),
            ratio_db
        );
    }
}
