//! Property-based tests for the DSP substrate.

use ctsdac_dsp::spectrum::{coherent_frequency, Spectrum};
use ctsdac_dsp::window::Window;
use ctsdac_dsp::{fft, ifft, Complex};
use proptest::prelude::*;

fn arb_signal(max_pow: u32) -> impl Strategy<Value = Vec<Complex>> {
    (3u32..=max_pow).prop_flat_map(|p| {
        proptest::collection::vec(
            (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
            1usize << p,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// FFT followed by IFFT is the identity.
    #[test]
    fn fft_round_trip(signal in arb_signal(10)) {
        let mut data = signal.clone();
        fft(&mut data);
        ifft(&mut data);
        for (a, b) in data.iter().zip(&signal) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    /// Parseval: time-domain and frequency-domain energies agree.
    #[test]
    fn parseval(signal in arb_signal(10)) {
        let n = signal.len() as f64;
        let time: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = signal.clone();
        fft(&mut spec);
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time - freq).abs() <= 1e-9 * time.max(1.0));
    }

    /// FFT is linear.
    #[test]
    fn fft_linearity(a in arb_signal(8), k in -10.0f64..10.0) {
        let scaled: Vec<Complex> = a.iter().map(|z| z.scale(k)).collect();
        let (mut fa, mut fs) = (a.clone(), scaled.clone());
        fft(&mut fa);
        fft(&mut fs);
        for (x, y) in fa.iter().zip(&fs) {
            prop_assert!((x.scale(k) - *y).abs() < 1e-6 * (1.0 + x.abs() * k.abs()));
        }
    }

    /// A coherent full-scale sine always lands its fundamental on the
    /// chosen bin and shows a huge SFDR.
    #[test]
    fn coherent_sine_is_clean(p in 6u32..=12, f_frac in 0.02f64..0.45, amp in 0.1f64..10.0) {
        let n = 1usize << p;
        let fs = 1.0;
        let (bin, f0) = coherent_frequency(fs, f_frac * fs, n);
        let x: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * f0 * i as f64 / fs).sin())
            .collect();
        let s = Spectrum::analyze(&x, fs);
        prop_assert_eq!(s.fundamental_bin(), bin);
        prop_assert!(s.sfdr_db() > 100.0);
        // Power recovers A²/2.
        prop_assert!((s.fundamental_power() - amp * amp / 2.0).abs() < 1e-6 * amp * amp);
    }

    /// Window coefficients are within [0, ~1.09] (Hamming's peak ≤ 1) and
    /// symmetric for every window and length.
    /// `n = 2` is excluded: the cosine windows are identically zero there
    /// (both samples sit on the zeros of the taper), a degenerate record no
    /// analysis would use.
    #[test]
    fn window_properties(n in 3usize..512) {
        for w in Window::ALL {
            for i in 0..n {
                let c = w.coefficient(i, n);
                // Allow f64 rounding at the exact zeros of the tapers.
                prop_assert!((-1e-12..=1.000001).contains(&c), "{w}[{i}] = {c}");
                let mirror = w.coefficient(n - 1 - i, n);
                prop_assert!((c - mirror).abs() < 1e-12);
            }
            let gain = w.coherent_gain(n);
            prop_assert!(gain > 0.0 && gain <= 1.0 + 1e-12);
        }
    }

    /// SFDR of a two-tone signal equals the amplitude ratio in dB.
    #[test]
    fn sfdr_measures_amplitude_ratio(ratio_db in 10.0f64..100.0) {
        let n = 4096;
        let a2 = 10f64.powf(-ratio_db / 20.0);
        let x: Vec<f64> = (0..n)
            .map(|i| {
                let t = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
                (101.0 * t).sin() + a2 * (317.0 * t).sin()
            })
            .collect();
        let s = Spectrum::analyze(&x, 1.0);
        prop_assert!((s.sfdr_db() - ratio_db).abs() < 0.01,
                     "sfdr {} vs ratio {}", s.sfdr_db(), ratio_db);
    }
}
