//! Randomized property tests for the process substrate.
//!
//! Driven by the in-tree deterministic PRNG; enable with
//! `cargo test --features proptests`.
#![cfg(feature = "proptests")]

use ctsdac_process::mosfet::{aspect_for_current, Mosfet, Region};
use ctsdac_process::{DeviceCaps, Pelgrom, ProcessCorner, Technology};
use ctsdac_stats::rng::{seeded_rng, Rng};

const CASES: usize = 64;

fn arb_geometry<R: Rng>(rng: &mut R) -> (f64, f64) {
    (rng.gen_range(0.4e-6..100e-6), rng.gen_range(0.35e-6..50e-6))
}

/// The square law is monotone in V_ov and quadratic: doubling the
/// overdrive quadruples the saturation current.
#[test]
fn square_law_scaling() {
    let mut rng = seeded_rng(0x9005_0001);
    for _ in 0..CASES {
        let (w, l) = arb_geometry(&mut rng);
        let vov = rng.gen_range(0.05..1.0);
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let i1 = m.id_saturation(vov);
        let i2 = m.id_saturation(2.0 * vov);
        assert!((i2 / i1 - 4.0).abs() < 1e-9);
    }
}

/// Triode current never exceeds the saturation current at the same
/// overdrive, and meets it exactly at the boundary.
#[test]
fn triode_below_saturation() {
    let mut rng = seeded_rng(0x9005_0002);
    for _ in 0..CASES {
        let (w, l) = arb_geometry(&mut rng);
        let vov = rng.gen_range(0.05..1.0);
        let frac = rng.gen_range(0.01..1.0);
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let vds = vov * frac;
        assert!(m.id_triode(vov, vds) <= m.id_saturation(vov) * (1.0 + 1e-12));
    }
}

/// Current is continuous across the triode/saturation boundary for any
/// geometry and bias (no CLM at the exact boundary).
#[test]
fn region_boundary_continuity() {
    let mut rng = seeded_rng(0x9005_0003);
    for _ in 0..CASES {
        let (w, l) = arb_geometry(&mut rng);
        let vov = rng.gen_range(0.05..1.5);
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let tri = m.id_triode(vov, vov);
        let sat = m.id_saturation(vov);
        assert!(((tri - sat) / sat).abs() < 1e-12);
    }
}

/// vov_for_current inverts the square law exactly.
#[test]
fn overdrive_inversion() {
    let mut rng = seeded_rng(0x9005_0004);
    for _ in 0..CASES {
        let (w, l) = arb_geometry(&mut rng);
        let vov = rng.gen_range(0.05..1.5);
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let id = m.id_saturation(vov);
        assert!((m.vov_for_current(id) - vov).abs() < 1e-10);
    }
}

/// aspect_for_current and the square law agree for any current/bias.
#[test]
fn aspect_round_trip() {
    let mut rng = seeded_rng(0x9005_0005);
    for _ in 0..CASES {
        let id = rng.gen_range(1e-7..1e-2);
        let vov = rng.gen_range(0.05..1.5);
        let tech = Technology::c035();
        let aspect = aspect_for_current(&tech.nmos, id, vov);
        let back = 0.5 * tech.nmos.kp * aspect * vov * vov;
        assert!(((back - id) / id).abs() < 1e-12);
    }
}

/// Body effect is monotone: more back bias, higher threshold.
#[test]
fn body_effect_monotone() {
    let mut rng = seeded_rng(0x9005_0006);
    for _ in 0..CASES {
        let (w, l) = arb_geometry(&mut rng);
        let a = rng.gen_range(0.0..2.0);
        let b = rng.gen_range(0.0..2.0);
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(m.vt(lo) <= m.vt(hi) + 1e-15);
    }
}

/// Pelgrom area requirement inverts sigma exactly and scales as 1/σ².
#[test]
fn pelgrom_inversion() {
    let mut rng = seeded_rng(0x9005_0007);
    for _ in 0..CASES {
        let vov = rng.gen_range(0.05..1.5);
        let sigma = rng.gen_range(1e-4..0.1);
        let p = Pelgrom::new(&Technology::c035().nmos);
        let wl = p.required_area(vov, sigma);
        assert!(((p.sigma_id_rel(wl, vov) - sigma) / sigma).abs() < 1e-9);
        let wl_half = p.required_area(vov, sigma / 2.0);
        assert!((wl_half / wl - 4.0).abs() < 1e-9);
    }
}

/// Parasitic capacitances are positive and monotone in width.
#[test]
fn caps_monotone_in_width() {
    let mut rng = seeded_rng(0x9005_0008);
    for _ in 0..CASES {
        let w = rng.gen_range(1e-6..50e-6);
        let l = rng.gen_range(0.35e-6..5e-6);
        let tech = Technology::c035();
        let small = DeviceCaps::of(&tech, &Mosfet::nmos(&tech, w, l));
        let large = DeviceCaps::of(&tech, &Mosfet::nmos(&tech, 2.0 * w, l));
        assert!(small.cgs > 0.0 && small.cdb > 0.0);
        assert!(large.cgs > small.cgs);
        assert!(large.cdb > small.cdb);
    }
}

/// Corners preserve matching data and only move K'/V_T, and the region
/// classification stays consistent under any corner.
#[test]
fn corners_are_well_behaved() {
    let mut rng = seeded_rng(0x9005_0009);
    for _ in 0..CASES {
        let vgs = rng.gen_range(0.0..3.0);
        let vds = rng.gen_range(0.0..3.0);
        let tt = Technology::c035();
        for corner in ProcessCorner::ALL {
            let shifted = corner.apply(&tt);
            assert_eq!(shifted.nmos.a_vt, tt.nmos.a_vt);
            let m = Mosfet::nmos(&shifted, 10e-6, 1e-6);
            let region = m.region(vgs, vds, 0.0);
            // Region implies current behaviour.
            match region {
                Region::Cutoff => assert_eq!(m.id(vgs, vds, 0.0), 0.0),
                _ => assert!(m.id(vgs, vds, 0.0) >= 0.0),
            }
        }
    }
}
