//! Property-based tests for the process substrate.

use ctsdac_process::mosfet::{aspect_for_current, Mosfet, Region};
use ctsdac_process::{DeviceCaps, Pelgrom, ProcessCorner, Technology};
use proptest::prelude::*;

fn arb_geometry() -> impl Strategy<Value = (f64, f64)> {
    (0.4e-6..100e-6, 0.35e-6..50e-6)
}

proptest! {
    /// The square law is monotone in V_ov and quadratic: doubling the
    /// overdrive quadruples the saturation current.
    #[test]
    fn square_law_scaling((w, l) in arb_geometry(), vov in 0.05f64..1.0) {
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let i1 = m.id_saturation(vov);
        let i2 = m.id_saturation(2.0 * vov);
        prop_assert!((i2 / i1 - 4.0).abs() < 1e-9);
    }

    /// Triode current never exceeds the saturation current at the same
    /// overdrive, and meets it exactly at the boundary.
    #[test]
    fn triode_below_saturation((w, l) in arb_geometry(),
                               vov in 0.05f64..1.0,
                               frac in 0.01f64..1.0) {
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let vds = vov * frac;
        prop_assert!(m.id_triode(vov, vds) <= m.id_saturation(vov) * (1.0 + 1e-12));
    }

    /// Current is continuous across the triode/saturation boundary for any
    /// geometry and bias (no CLM at the exact boundary).
    #[test]
    fn region_boundary_continuity((w, l) in arb_geometry(), vov in 0.05f64..1.5) {
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let tri = m.id_triode(vov, vov);
        let sat = m.id_saturation(vov);
        prop_assert!(((tri - sat) / sat).abs() < 1e-12);
    }

    /// vov_for_current inverts the square law exactly.
    #[test]
    fn overdrive_inversion((w, l) in arb_geometry(), vov in 0.05f64..1.5) {
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let id = m.id_saturation(vov);
        prop_assert!((m.vov_for_current(id) - vov).abs() < 1e-10);
    }

    /// aspect_for_current and the square law agree for any current/bias.
    #[test]
    fn aspect_round_trip(id in 1e-7f64..1e-2, vov in 0.05f64..1.5) {
        let tech = Technology::c035();
        let aspect = aspect_for_current(&tech.nmos, id, vov);
        let back = 0.5 * tech.nmos.kp * aspect * vov * vov;
        prop_assert!(((back - id) / id).abs() < 1e-12);
    }

    /// Body effect is monotone: more back bias, higher threshold.
    #[test]
    fn body_effect_monotone((w, l) in arb_geometry(), a in 0.0f64..2.0, b in 0.0f64..2.0) {
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, w, l);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.vt(lo) <= m.vt(hi) + 1e-15);
    }

    /// Pelgrom area requirement inverts sigma exactly and scales as 1/σ².
    #[test]
    fn pelgrom_inversion(vov in 0.05f64..1.5, sigma in 1e-4f64..0.1) {
        let p = Pelgrom::new(&Technology::c035().nmos);
        let wl = p.required_area(vov, sigma);
        prop_assert!(((p.sigma_id_rel(wl, vov) - sigma) / sigma).abs() < 1e-9);
        let wl_half = p.required_area(vov, sigma / 2.0);
        prop_assert!((wl_half / wl - 4.0).abs() < 1e-9);
    }

    /// Parasitic capacitances are positive and monotone in width.
    #[test]
    fn caps_monotone_in_width(w in 1e-6f64..50e-6, l in 0.35e-6f64..5e-6) {
        let tech = Technology::c035();
        let small = DeviceCaps::of(&tech, &Mosfet::nmos(&tech, w, l));
        let large = DeviceCaps::of(&tech, &Mosfet::nmos(&tech, 2.0 * w, l));
        prop_assert!(small.cgs > 0.0 && small.cdb > 0.0);
        prop_assert!(large.cgs > small.cgs);
        prop_assert!(large.cdb > small.cdb);
    }

    /// Corners preserve matching data and only move K'/V_T, and the region
    /// classification stays consistent under any corner.
    #[test]
    fn corners_are_well_behaved(vgs in 0.0f64..3.0, vds in 0.0f64..3.0) {
        let tt = Technology::c035();
        for corner in ProcessCorner::ALL {
            let shifted = corner.apply(&tt);
            prop_assert_eq!(shifted.nmos.a_vt, tt.nmos.a_vt);
            let m = Mosfet::nmos(&shifted, 10e-6, 1e-6);
            let region = m.region(vgs, vds, 0.0);
            // Region implies current behaviour.
            match region {
                Region::Cutoff => prop_assert_eq!(m.id(vgs, vds, 0.0), 0.0),
                _ => prop_assert!(m.id(vgs, vds, 0.0) >= 0.0),
            }
        }
    }
}
