//! Parasitic capacitance estimation for the pole model of the paper's
//! eq. (13).
//!
//! The settling behaviour of the current cell is set by two poles: the
//! output node (load + total switch drain junction capacitance) and the
//! internal node (CS drain junction + switch gate-source + interconnect).
//! These estimates use the standard hand-analysis formulas: in saturation
//! `C_GS = ⅔·W·L·C_ox + W·C_ov`, `C_GD = W·C_ov`, and junction capacitance
//! from a `W × l_diff` diffusion with sidewall on three sides.

use crate::mosfet::Mosfet;
use crate::technology::Technology;

/// Parasitic capacitances of one sized device, in farads.
///
/// # Examples
///
/// ```
/// use ctsdac_process::{Technology, mosfet::Mosfet, DeviceCaps};
///
/// let tech = Technology::c035();
/// let m = Mosfet::nmos(&tech, 10e-6, 0.35e-6);
/// let caps = DeviceCaps::of(&tech, &m);
/// assert!(caps.cgs > caps.cgd); // saturation: CGS dominated by channel
/// assert!(caps.cdb > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeviceCaps {
    /// Gate-source capacitance in saturation (channel + overlap).
    pub cgs: f64,
    /// Gate-drain capacitance (overlap only in saturation).
    pub cgd: f64,
    /// Drain-bulk junction capacitance (area + sidewall).
    pub cdb: f64,
    /// Source-bulk junction capacitance (area + sidewall).
    pub csb: f64,
}

impl DeviceCaps {
    /// Computes the saturation-region parasitics of `m` in `tech`.
    pub fn of(tech: &Technology, m: &Mosfet) -> Self {
        let w = m.w();
        let l = m.l();
        let channel = (2.0 / 3.0) * w * l * tech.cox;
        let overlap = w * tech.c_overlap;
        let junction = junction_cap(tech, w);
        Self {
            cgs: channel + overlap,
            cgd: overlap,
            cdb: junction,
            csb: junction,
        }
    }

    /// Total capacitance hanging on the gate node.
    pub fn gate_total(&self) -> f64 {
        self.cgs + self.cgd
    }
}

/// Junction capacitance of a `w × l_diff` source/drain diffusion:
/// area term `C_j·W·l_diff` plus sidewall `C_jsw·(W + 2·l_diff)`.
///
/// # Panics
///
/// Panics if `w` is not finite and strictly positive.
///
/// # Examples
///
/// ```
/// use ctsdac_process::{Technology, capacitance::junction_cap};
///
/// let tech = Technology::c035();
/// // Junction capacitance grows with width.
/// assert!(junction_cap(&tech, 20e-6) > junction_cap(&tech, 10e-6));
/// ```
pub fn junction_cap(tech: &Technology, w: f64) -> f64 {
    assert!(w.is_finite() && w > 0.0, "invalid width {w}");
    tech.cj * w * tech.l_diff + tech.cjsw * (w + 2.0 * tech.l_diff)
}

/// Gate oxide capacitance of a `w × l` gate, `C_ox·W·L` (the full
/// gate-to-channel capacitance, used for triode-region or total-charge
/// estimates).
///
/// # Panics
///
/// Panics if `w` or `l` is not finite and strictly positive.
pub fn gate_oxide_cap(tech: &Technology, w: f64, l: f64) -> f64 {
    assert!(w.is_finite() && w > 0.0, "invalid width {w}");
    assert!(l.is_finite() && l > 0.0, "invalid length {l}");
    tech.cox * w * l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_scale_with_width() {
        let tech = Technology::c035();
        let small = DeviceCaps::of(&tech, &Mosfet::nmos(&tech, 5e-6, 0.35e-6));
        let large = DeviceCaps::of(&tech, &Mosfet::nmos(&tech, 50e-6, 0.35e-6));
        assert!(large.cgs > small.cgs);
        assert!(large.cdb > small.cdb);
        assert!(large.cgd > small.cgd);
    }

    #[test]
    fn cgs_has_channel_term() {
        let tech = Technology::c035();
        // Long device: channel term dominates overlap.
        let long = Mosfet::nmos(&tech, 10e-6, 10e-6);
        let caps = DeviceCaps::of(&tech, &long);
        let channel_only = (2.0 / 3.0) * 10e-6 * 10e-6 * tech.cox;
        assert!(caps.cgs > channel_only);
        assert!(caps.cgs < channel_only * 1.1);
    }

    #[test]
    fn junction_cap_magnitude_is_plausible() {
        let tech = Technology::c035();
        // A 10 µm wide drain should be in the low-fF range.
        let c = junction_cap(&tech, 10e-6);
        assert!(c > 1e-15 && c < 50e-15, "cdb = {c}");
    }

    #[test]
    fn gate_oxide_cap_matches_area_product() {
        let tech = Technology::c035();
        let c = gate_oxide_cap(&tech, 10e-6, 1e-6);
        assert!((c - tech.cox * 1e-11).abs() < 1e-22);
    }

    #[test]
    fn gate_total_sums_components() {
        let tech = Technology::c035();
        let caps = DeviceCaps::of(&tech, &Mosfet::nmos(&tech, 8e-6, 0.7e-6));
        assert_eq!(caps.gate_total(), caps.cgs + caps.cgd);
    }

    #[test]
    #[should_panic(expected = "invalid width")]
    fn junction_rejects_zero_width() {
        let _ = junction_cap(&Technology::c035(), 0.0);
    }
}
