//! Pelgrom mismatch model and the paper's inverse sizing relation (eq. (2)).
//!
//! Random (fast-gradient) mismatch of two identically drawn transistors
//! follows Pelgrom's law: `σ(ΔV_T) = A_VT/√(WL)` and
//! `σ(Δβ/β) = A_β/√(WL)`. For a current source biased at overdrive `V_ov`
//! the two combine into
//!
//! ```text
//! σ²(ΔI/I) = (A_β² + 4·A_VT²/V_ov²) / (W·L)
//! ```
//!
//! The paper inverts this to obtain the minimum gate area that meets the
//! INL-driven current-accuracy target (eq. (2)), one of the two equations
//! that fully determine the CS transistor.

use crate::technology::DeviceParams;
use ctsdac_stats::NormalSampler;
use ctsdac_stats::rng::Rng;

/// Pelgrom mismatch calculator for one device flavour.
///
/// # Examples
///
/// ```
/// use ctsdac_process::{Technology, Pelgrom};
///
/// let tech = Technology::c035();
/// let p = Pelgrom::new(&tech.nmos);
/// // A 1 µm × 1 µm device has σ(VT) = A_VT = 9.5 mV.
/// assert!((p.sigma_vt(1e-12) - 9.5e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pelgrom {
    a_vt: f64,
    a_beta: f64,
}

impl Pelgrom {
    /// Builds the calculator from a device's matching constants.
    pub fn new(params: &DeviceParams) -> Self {
        Self {
            a_vt: params.a_vt,
            a_beta: params.a_beta,
        }
    }

    /// Builds the calculator from raw constants (`A_VT` in V·m, `A_β` in m).
    ///
    /// # Panics
    ///
    /// Panics if either constant is negative or non-finite.
    pub fn from_constants(a_vt: f64, a_beta: f64) -> Self {
        assert!(a_vt.is_finite() && a_vt >= 0.0, "invalid A_VT {a_vt}");
        assert!(a_beta.is_finite() && a_beta >= 0.0, "invalid A_beta {a_beta}");
        Self { a_vt, a_beta }
    }

    /// Threshold-voltage mismatch σ(ΔV_T) for gate area `wl` (m²).
    ///
    /// # Panics
    ///
    /// Panics if `wl` is not finite and strictly positive.
    pub fn sigma_vt(&self, wl: f64) -> f64 {
        assert!(wl.is_finite() && wl > 0.0, "invalid gate area {wl}");
        self.a_vt / wl.sqrt()
    }

    /// Relative gain mismatch σ(Δβ/β) for gate area `wl` (m²).
    ///
    /// # Panics
    ///
    /// Panics if `wl` is not finite and strictly positive.
    pub fn sigma_beta_rel(&self, wl: f64) -> f64 {
        assert!(wl.is_finite() && wl > 0.0, "invalid gate area {wl}");
        self.a_beta / wl.sqrt()
    }

    /// Relative current mismatch σ(ΔI/I) of a saturated current source at
    /// overdrive `vov`:
    /// `σ²(ΔI/I) = σ²(Δβ/β) + (2/V_ov)²·σ²(ΔV_T)`.
    ///
    /// # Panics
    ///
    /// Panics if `wl` or `vov` is not finite and strictly positive.
    pub fn sigma_id_rel(&self, wl: f64, vov: f64) -> f64 {
        assert!(vov.is_finite() && vov > 0.0, "invalid overdrive {vov}");
        let sb = self.sigma_beta_rel(wl);
        let svt = self.sigma_vt(wl);
        (sb * sb + (2.0 * svt / vov).powi(2)).sqrt()
    }

    /// Minimum gate area `W·L` such that `σ(ΔI/I) ≤ sigma_rel` at overdrive
    /// `vov` — the paper's eq. (2) area relation:
    /// `(W·L)_min = (A_β² + 4·A_VT²/V_ov²) / σ²(ΔI/I)`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_rel` or `vov` is not finite and strictly positive.
    ///
    /// # Examples
    ///
    /// ```
    /// use ctsdac_process::{Technology, Pelgrom};
    ///
    /// let p = Pelgrom::new(&Technology::c035().nmos);
    /// let wl = p.required_area(0.5, 2.63e-3);
    /// // Forward check: the area indeed meets the target.
    /// assert!(p.sigma_id_rel(wl, 0.5) <= 2.63e-3 * (1.0 + 1e-12));
    /// ```
    pub fn required_area(&self, vov: f64, sigma_rel: f64) -> f64 {
        assert!(vov.is_finite() && vov > 0.0, "invalid overdrive {vov}");
        assert!(
            sigma_rel.is_finite() && sigma_rel > 0.0,
            "invalid sigma target {sigma_rel}"
        );
        (self.a_beta * self.a_beta + 4.0 * self.a_vt * self.a_vt / (vov * vov))
            / (sigma_rel * sigma_rel)
    }

    /// Draws one mismatch realisation for a device of gate area `wl`.
    pub fn draw<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sampler: &mut NormalSampler,
        wl: f64,
    ) -> MismatchDraw {
        MismatchDraw {
            delta_vt: self.sigma_vt(wl) * sampler.sample(rng),
            delta_beta_rel: self.sigma_beta_rel(wl) * sampler.sample(rng),
        }
    }
}

/// One sampled mismatch realisation of a device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MismatchDraw {
    /// Threshold-voltage deviation ΔV_T in V.
    pub delta_vt: f64,
    /// Relative gain deviation Δβ/β (dimensionless).
    pub delta_beta_rel: f64,
}

impl MismatchDraw {
    /// Relative current error of a saturated source at overdrive `vov`
    /// under this realisation (first-order):
    /// `ΔI/I = Δβ/β − 2·ΔV_T/V_ov`.
    ///
    /// # Panics
    ///
    /// Panics if `vov` is not finite and strictly positive.
    pub fn delta_id_rel(&self, vov: f64) -> f64 {
        assert!(vov.is_finite() && vov > 0.0, "invalid overdrive {vov}");
        self.delta_beta_rel - 2.0 * self.delta_vt / vov
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technology::Technology;
    use ctsdac_stats::sample::seeded_rng;
    use ctsdac_stats::Summary;

    fn pelgrom() -> Pelgrom {
        Pelgrom::new(&Technology::c035().nmos)
    }

    #[test]
    fn sigma_scales_inverse_sqrt_area() {
        let p = pelgrom();
        let s1 = p.sigma_vt(1e-12);
        let s4 = p.sigma_vt(4e-12);
        assert!((s1 / s4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn required_area_is_exact_inverse() {
        let p = pelgrom();
        for &vov in &[0.1, 0.3, 0.5, 1.0] {
            for &target in &[1e-3, 2.63e-3, 1e-2] {
                let wl = p.required_area(vov, target);
                let achieved = p.sigma_id_rel(wl, vov);
                assert!(
                    ((achieved - target) / target).abs() < 1e-12,
                    "vov = {vov}, target = {target}: achieved {achieved}"
                );
            }
        }
    }

    #[test]
    fn larger_overdrive_needs_less_area() {
        // The V_T term dominates at small overdrive, so area shrinks as V_ov
        // grows — the driving force behind the paper's push for the largest
        // feasible V_OD,CS.
        let p = pelgrom();
        let a_small = p.required_area(0.2, 2.63e-3);
        let a_large = p.required_area(0.8, 2.63e-3);
        assert!(a_small > a_large * 2.0);
    }

    #[test]
    fn twelve_bit_sizing_magnitude() {
        // Sanity: the 12-bit/99.7 % spec (sigma = 0.263 %) at V_ov = 0.5 V
        // needs a gate area of a few hundred µm² in 0.35 µm CMOS.
        let p = pelgrom();
        let wl = p.required_area(0.5, 2.63e-3);
        let wl_um2 = wl * 1e12;
        assert!(
            wl_um2 > 100.0 && wl_um2 < 1000.0,
            "unexpected area {wl_um2} um^2"
        );
    }

    #[test]
    fn draw_statistics_match_model() {
        let p = pelgrom();
        let wl = 25e-12; // 5 µm × 5 µm
        let mut rng = seeded_rng(42);
        let mut sampler = NormalSampler::new();
        let n = 50_000;
        let vts: Summary = (0..n)
            .map(|_| p.draw(&mut rng, &mut sampler, wl).delta_vt)
            .collect();
        assert!(vts.mean().abs() < 5e-5);
        let expected = p.sigma_vt(wl);
        assert!(
            ((vts.std_dev() - expected) / expected).abs() < 0.02,
            "sd = {}, expected {expected}",
            vts.std_dev()
        );
    }

    #[test]
    fn delta_id_rel_combines_linearly() {
        let d = MismatchDraw {
            delta_vt: 5e-3,
            delta_beta_rel: 0.01,
        };
        let e = d.delta_id_rel(0.5);
        assert!((e - (0.01 - 2.0 * 5e-3 / 0.5)).abs() < 1e-15);
    }

    #[test]
    fn sampled_current_error_sigma_matches_formula() {
        let p = pelgrom();
        let wl = 100e-12;
        let vov = 0.4;
        let mut rng = seeded_rng(7);
        let mut sampler = NormalSampler::new();
        let errors: Summary = (0..50_000)
            .map(|_| p.draw(&mut rng, &mut sampler, wl).delta_id_rel(vov))
            .collect();
        let expected = p.sigma_id_rel(wl, vov);
        assert!(
            ((errors.std_dev() - expected) / expected).abs() < 0.02,
            "sd = {}, expected {expected}",
            errors.std_dev()
        );
    }

    #[test]
    #[should_panic(expected = "invalid gate area")]
    fn zero_area_rejected() {
        let _ = pelgrom().sigma_vt(0.0);
    }
}
