//! CMOS process substrate for the `ctsdac` workspace.
//!
//! The paper sizes the current-source cell with the *square-law* MOS
//! transistor model ("because the matching data provided by the manufacturer
//! are intended for this transistor model", §5) plus the Pelgrom mismatch
//! model. This crate provides exactly that physics:
//!
//! * [`technology`] — a parametric [`Technology`] description (supply,
//!   gain factor, threshold, channel-length modulation, body effect, oxide
//!   and junction capacitances, matching constants) with calibrated defaults
//!   for a generic 0.35 µm CMOS node ([`Technology::c035`]), the node the
//!   paper designs in.
//! * [`mosfet`] — square-law device equations: drain current, saturation
//!   boundary, overdrive from current, transconductances `g_m`, `g_mb`,
//!   output conductance `g_ds`, threshold shift with back bias.
//! * [`capacitance`] — oxide, overlap, and junction parasitic capacitance
//!   estimates used by the pole model of the paper's eq. (13).
//! * [`mismatch`] — Pelgrom σ(V_T), σ(β)/β, the combined σ(I_D)/I_D, the
//!   *inverse* problem (minimum gate area for a current-accuracy target,
//!   paper eq. (2)) and per-device mismatch sampling for Monte Carlo.
//! * [`corner`] — slow/fast process corners for worst-case checks.
//!
//! All quantities are SI (volts, amperes, metres, farads); e.g. an
//! `A_VT` of 9.5 mV·µm is stored as `9.5e-9` V·m.
//!
//! # Example
//!
//! ```
//! use ctsdac_process::{Technology, mosfet::Mosfet};
//!
//! let tech = Technology::c035();
//! let m = Mosfet::nmos(&tech, 10e-6, 1e-6); // W = 10 µm, L = 1 µm
//! let id = m.id_saturation(0.8); // V_ov = 0.8 V
//! assert!(id > 0.0);
//! ```

pub mod capacitance;
pub mod corner;
pub mod extract;
pub mod mismatch;
pub mod mosfet;
pub mod technology;

pub use capacitance::DeviceCaps;
pub use corner::ProcessCorner;
pub use mismatch::{MismatchDraw, Pelgrom};
pub use mosfet::{MosType, Mosfet, Region};
pub use technology::{DeviceParams, Technology};
