//! Extraction of Pelgrom matching constants from measured mismatch data.
//!
//! The paper's flow *consumes* `A_VT` and `A_β` ("the matching data
//! provided by the manufacturer"); this module solves the inverse problem a
//! designer faces when only silicon measurements exist: given per-geometry
//! current-mismatch sigmas at known overdrives, least-squares fit the two
//! constants through the model
//!
//! ```text
//! σ²(ΔI/I) = A_β²·(1/WL) + A_VT²·(4/(V_ov²·WL))
//! ```
//!
//! which is linear in `(A_β², A_VT²)` — a 2×2 normal-equation solve.

use core::fmt;

/// One mismatch measurement: device geometry, bias, and the observed
/// relative current sigma.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MismatchSample {
    /// Gate area `W·L` in m².
    pub wl: f64,
    /// Overdrive voltage in V.
    pub vov: f64,
    /// Measured σ(ΔI/I) (dimensionless).
    pub sigma_id_rel: f64,
}

/// Fitted Pelgrom constants with the fit quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PelgromFit {
    /// Fitted `A_VT` in V·m.
    pub a_vt: f64,
    /// Fitted `A_β` in m.
    pub a_beta: f64,
    /// Root-mean-square relative residual of σ² over the samples.
    pub rms_residual_rel: f64,
}

impl fmt::Display for PelgromFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "A_VT = {:.2} mV.um, A_beta = {:.2} %.um (rms residual {:.1} %)",
            self.a_vt * 1e9,
            self.a_beta * 1e8,
            self.rms_residual_rel * 100.0
        )
    }
}

/// Error returned when the sample set cannot determine both constants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractPelgromError {
    /// Fewer than two samples were provided.
    TooFewSamples,
    /// The regressors are (numerically) collinear — e.g. all samples share
    /// one overdrive, which cannot separate `A_VT` from `A_β`.
    Degenerate,
    /// The least-squares solution has a negative squared constant — the
    /// data contradicts the Pelgrom model.
    NegativeVariance,
}

impl fmt::Display for ExtractPelgromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractPelgromError::TooFewSamples => write!(f, "need at least two samples"),
            ExtractPelgromError::Degenerate => {
                write!(f, "samples cannot separate A_VT from A_beta (vary the overdrive)")
            }
            ExtractPelgromError::NegativeVariance => {
                write!(f, "fit produced a negative squared matching constant")
            }
        }
    }
}

impl std::error::Error for ExtractPelgromError {}

/// Fits `(A_VT, A_β)` to the samples by linear least squares on σ².
///
/// # Errors
///
/// See [`ExtractPelgromError`].
///
/// # Examples
///
/// ```
/// use ctsdac_process::extract::{extract_pelgrom, MismatchSample};
/// use ctsdac_process::{Pelgrom, Technology};
///
/// // Synthesise "measurements" from known constants and recover them.
/// let p = Pelgrom::new(&Technology::c035().nmos);
/// let samples: Vec<MismatchSample> = [(1e-12, 0.2), (4e-12, 0.4), (16e-12, 0.8)]
///     .iter()
///     .map(|&(wl, vov)| MismatchSample { wl, vov, sigma_id_rel: p.sigma_id_rel(wl, vov) })
///     .collect();
/// let fit = extract_pelgrom(&samples).expect("well-posed");
/// assert!((fit.a_vt - 9.5e-9).abs() / 9.5e-9 < 1e-6);
/// ```
pub fn extract_pelgrom(samples: &[MismatchSample]) -> Result<PelgromFit, ExtractPelgromError> {
    if samples.len() < 2 {
        return Err(ExtractPelgromError::TooFewSamples);
    }
    // Regressors: x1 = 1/WL (for A_β²), x2 = 4/(V_ov²·WL) (for A_VT²);
    // response y = σ². Normal equations for [a, b] = [A_β², A_VT²].
    let (mut s11, mut s12, mut s22, mut sy1, mut sy2) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for s in samples {
        assert!(s.wl > 0.0 && s.vov > 0.0, "invalid sample {s:?}");
        let x1 = 1.0 / s.wl;
        let x2 = 4.0 / (s.vov * s.vov * s.wl);
        let y = s.sigma_id_rel * s.sigma_id_rel;
        s11 += x1 * x1;
        s12 += x1 * x2;
        s22 += x2 * x2;
        sy1 += x1 * y;
        sy2 += x2 * y;
    }
    let det = s11 * s22 - s12 * s12;
    if det.abs() < 1e-12 * s11 * s22 {
        return Err(ExtractPelgromError::Degenerate);
    }
    let a_beta_sq = (sy1 * s22 - sy2 * s12) / det;
    let a_vt_sq = (s11 * sy2 - s12 * sy1) / det;
    if a_beta_sq < 0.0 || a_vt_sq < 0.0 {
        return Err(ExtractPelgromError::NegativeVariance);
    }
    // Fit quality: relative residual of σ² per sample.
    let mut sum_sq = 0.0;
    for s in samples {
        let x1 = 1.0 / s.wl;
        let x2 = 4.0 / (s.vov * s.vov * s.wl);
        let y = s.sigma_id_rel * s.sigma_id_rel;
        let model = a_beta_sq * x1 + a_vt_sq * x2;
        if y > 0.0 {
            let rel = (model - y) / y;
            sum_sq += rel * rel;
        }
    }
    Ok(PelgromFit {
        a_vt: a_vt_sq.sqrt(),
        a_beta: a_beta_sq.sqrt(),
        rms_residual_rel: (sum_sq / samples.len() as f64).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mismatch::Pelgrom;
    use crate::technology::Technology;
    use ctsdac_stats::sample::seeded_rng;
    use ctsdac_stats::NormalSampler;

    fn truth() -> Pelgrom {
        Pelgrom::new(&Technology::c035().nmos)
    }

    fn synth_samples(geometries: &[(f64, f64)]) -> Vec<MismatchSample> {
        let p = truth();
        geometries
            .iter()
            .map(|&(wl, vov)| MismatchSample {
                wl,
                vov,
                sigma_id_rel: p.sigma_id_rel(wl, vov),
            })
            .collect()
    }

    #[test]
    fn exact_data_recovers_exact_constants() {
        let samples = synth_samples(&[
            (0.5e-12, 0.15),
            (1e-12, 0.3),
            (2e-12, 0.5),
            (8e-12, 0.8),
            (20e-12, 1.0),
        ]);
        let fit = extract_pelgrom(&samples).expect("well-posed");
        assert!((fit.a_vt - 9.5e-9).abs() / 9.5e-9 < 1e-9, "{fit}");
        assert!((fit.a_beta - 1.9e-8).abs() / 1.9e-8 < 1e-9, "{fit}");
        assert!(fit.rms_residual_rel < 1e-9);
    }

    #[test]
    fn noisy_data_recovers_constants_within_tolerance() {
        // Each σ estimated from "N = 200 device pairs": relative error of a
        // sigma estimate is ~1/√(2N) ≈ 5 %.
        let p = truth();
        let mut rng = seeded_rng(8);
        let mut sampler = NormalSampler::new();
        let samples: Vec<MismatchSample> = [
            (0.5e-12, 0.15),
            (1e-12, 0.3),
            (2e-12, 0.5),
            (4e-12, 0.2),
            (8e-12, 0.8),
            (20e-12, 1.0),
            (50e-12, 0.4),
            // β only dominates the mismatch above V_ov ≈ 1.4 V in this
            // technology, so A_β extraction needs large-overdrive samples.
            (10e-12, 1.5),
            (30e-12, 1.8),
        ]
        .iter()
        .map(|&(wl, vov)| MismatchSample {
            wl,
            vov,
            sigma_id_rel: p.sigma_id_rel(wl, vov) * (1.0 + 0.05 * sampler.sample(&mut rng)),
        })
        .collect();
        let fit = extract_pelgrom(&samples).expect("well-posed");
        assert!((fit.a_vt - 9.5e-9).abs() / 9.5e-9 < 0.2, "{fit}");
        // A_VT is the constant the sizing needs; A_β stays weakly observable
        // even with the high-V_ov points, so a factor-2 band is realistic.
        assert!((fit.a_beta - 1.9e-8).abs() / 1.9e-8 < 1.0, "{fit}");
    }

    #[test]
    fn single_overdrive_is_degenerate() {
        // With one V_ov the two regressors are proportional.
        let samples = synth_samples(&[(1e-12, 0.5), (4e-12, 0.5), (9e-12, 0.5)]);
        assert_eq!(
            extract_pelgrom(&samples),
            Err(ExtractPelgromError::Degenerate)
        );
    }

    #[test]
    fn too_few_samples_rejected() {
        let samples = synth_samples(&[(1e-12, 0.5)]);
        assert_eq!(
            extract_pelgrom(&samples),
            Err(ExtractPelgromError::TooFewSamples)
        );
    }

    #[test]
    fn round_trip_through_sizing() {
        // Extracted constants drive the same sizing as the originals.
        let samples = synth_samples(&[(1e-12, 0.2), (4e-12, 0.5), (16e-12, 0.9)]);
        let fit = extract_pelgrom(&samples).expect("well-posed");
        let fitted = Pelgrom::from_constants(fit.a_vt, fit.a_beta);
        let wl_true = truth().required_area(0.5, 2.63e-3);
        let wl_fit = fitted.required_area(0.5, 2.63e-3);
        assert!(((wl_fit - wl_true) / wl_true).abs() < 1e-6);
    }
}
