//! Square-law MOSFET model.
//!
//! The paper's sizing equations are expressed in the long-channel square-law
//! model (`I_D = ½K'(W/L)V_ov²(1 + λV_DS)` in saturation), because foundry
//! matching data targets that model (§5). This module implements the model
//! with channel-length modulation and body effect, in both directions: bias
//! → current and current → required overdrive / aspect ratio.

use crate::technology::{DeviceParams, Technology};
use core::fmt;

/// Device flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel device.
    Nmos,
    /// P-channel device (all voltages handled as magnitudes).
    Pmos,
}

impl fmt::Display for MosType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MosType::Nmos => write!(f, "NMOS"),
            MosType::Pmos => write!(f, "PMOS"),
        }
    }
}

/// Operating region of the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// `V_GS ≤ V_T`: no channel.
    Cutoff,
    /// `0 < V_DS < V_ov`: resistive channel.
    Triode,
    /// `V_DS ≥ V_ov`: current source behaviour — where every transistor of
    /// the current cell must sit (paper eq. (3)/(4)).
    Saturation,
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Cutoff => write!(f, "cutoff"),
            Region::Triode => write!(f, "triode"),
            Region::Saturation => write!(f, "saturation"),
        }
    }
}

/// A sized square-law MOSFET in a given technology.
///
/// Voltages are magnitudes relative to the source terminal, so the same code
/// path covers NMOS and PMOS.
///
/// # Examples
///
/// ```
/// use ctsdac_process::{Technology, mosfet::Mosfet};
///
/// let tech = Technology::c035();
/// let m = Mosfet::nmos(&tech, 20e-6, 2e-6);
/// let i = m.id_saturation(0.5);
/// // I = 0.5 * 175 µA/V² * 10 * 0.25 = 219 µA
/// assert!((i - 218.75e-6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    kind: MosType,
    params: DeviceParams,
    w: f64,
    l: f64,
}

impl Mosfet {
    /// Creates an NMOS device of width `w` and length `l` (metres).
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not finite and strictly positive.
    pub fn nmos(tech: &Technology, w: f64, l: f64) -> Self {
        Self::new(MosType::Nmos, tech, w, l)
    }

    /// Creates a PMOS device of width `w` and length `l` (metres).
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not finite and strictly positive.
    pub fn pmos(tech: &Technology, w: f64, l: f64) -> Self {
        Self::new(MosType::Pmos, tech, w, l)
    }

    /// Creates a device of the given flavour.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not finite and strictly positive.
    pub fn new(kind: MosType, tech: &Technology, w: f64, l: f64) -> Self {
        assert!(w.is_finite() && w > 0.0, "invalid width {w}");
        assert!(l.is_finite() && l > 0.0, "invalid length {l}");
        Self {
            kind,
            params: *tech.device(kind),
            w,
            l,
        }
    }

    /// Device flavour.
    pub fn kind(&self) -> MosType {
        self.kind
    }

    /// Channel width in m.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Channel length in m.
    pub fn l(&self) -> f64 {
        self.l
    }

    /// Gate area `W·L` in m².
    pub fn area(&self) -> f64 {
        self.w * self.l
    }

    /// Aspect ratio `W/L`.
    pub fn aspect(&self) -> f64 {
        self.w / self.l
    }

    /// Device parameters in use.
    pub fn params(&self) -> &DeviceParams {
        &self.params
    }

    /// Channel-length-modulation coefficient `λ = λ_L / L` in 1/V.
    pub fn lambda(&self) -> f64 {
        self.params.lambda_l / self.l
    }

    /// Threshold voltage with back bias `V_SB` (magnitude), via the body
    /// effect: `V_T = V_T0 + γ(√(2φ_F + V_SB) − √(2φ_F))`.
    ///
    /// # Panics
    ///
    /// Panics if `vsb` is negative (forward-biased bulk is outside the
    /// model's validity).
    pub fn vt(&self, vsb: f64) -> f64 {
        assert!(vsb >= 0.0, "negative V_SB {vsb} not modelled");
        let p = &self.params;
        p.vt0 + p.gamma * ((p.phi2f + vsb).sqrt() - p.phi2f.sqrt())
    }

    /// Saturation drain current at overdrive `V_ov = V_GS − V_T`, ignoring
    /// channel-length modulation. Returns zero for non-positive overdrive.
    pub fn id_saturation(&self, vov: f64) -> f64 {
        if vov <= 0.0 {
            return 0.0;
        }
        0.5 * self.params.kp * self.aspect() * vov * vov
    }

    /// Saturation drain current including channel-length modulation
    /// `(1 + λ·V_DS)`.
    pub fn id_saturation_clm(&self, vov: f64, vds: f64) -> f64 {
        self.id_saturation(vov) * (1.0 + self.lambda() * vds.max(0.0))
    }

    /// Triode drain current `K'(W/L)(V_ov·V_DS − V_DS²/2)`.
    pub fn id_triode(&self, vov: f64, vds: f64) -> f64 {
        if vov <= 0.0 || vds <= 0.0 {
            return 0.0;
        }
        let vds = vds.min(vov);
        self.params.kp * self.aspect() * (vov * vds - 0.5 * vds * vds)
    }

    /// Drain current in whichever region the bias puts the device.
    pub fn id(&self, vgs: f64, vds: f64, vsb: f64) -> f64 {
        let vov = vgs - self.vt(vsb);
        match self.region(vgs, vds, vsb) {
            Region::Cutoff => 0.0,
            Region::Triode => self.id_triode(vov, vds),
            Region::Saturation => self.id_saturation_clm(vov, vds),
        }
    }

    /// Operating region for the given bias.
    pub fn region(&self, vgs: f64, vds: f64, vsb: f64) -> Region {
        let vov = vgs - self.vt(vsb);
        if vov <= 0.0 {
            Region::Cutoff
        } else if vds < vov {
            Region::Triode
        } else {
            Region::Saturation
        }
    }

    /// Overdrive voltage needed to conduct `id` in saturation:
    /// `V_ov = √(2·I_D / (K'·W/L))`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is negative or non-finite.
    pub fn vov_for_current(&self, id: f64) -> f64 {
        assert!(id.is_finite() && id >= 0.0, "invalid current {id}");
        (2.0 * id / (self.params.kp * self.aspect())).sqrt()
    }

    /// Transconductance in saturation `g_m = 2·I_D / V_ov`.
    ///
    /// Returns zero for non-positive overdrive.
    pub fn gm(&self, id: f64, vov: f64) -> f64 {
        if vov <= 0.0 {
            0.0
        } else {
            2.0 * id / vov
        }
    }

    /// Bulk transconductance `g_mb = η·g_m` with
    /// `η = γ / (2√(2φ_F + V_SB))`.
    ///
    /// # Panics
    ///
    /// Panics if `vsb` is negative.
    pub fn gmb(&self, id: f64, vov: f64, vsb: f64) -> f64 {
        assert!(vsb >= 0.0, "negative V_SB {vsb} not modelled");
        let p = &self.params;
        let eta = p.gamma / (2.0 * (p.phi2f + vsb).sqrt());
        eta * self.gm(id, vov)
    }

    /// Output conductance in saturation `g_ds = λ·I_D`.
    pub fn gds(&self, id: f64) -> f64 {
        self.lambda() * id
    }

    /// Small-signal output resistance `r_o = 1/g_ds`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not strictly positive.
    pub fn ro(&self, id: f64) -> f64 {
        assert!(id > 0.0, "output resistance undefined at zero current");
        1.0 / self.gds(id)
    }

    /// Returns a copy resized to the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is not finite and strictly positive.
    pub fn resized(&self, w: f64, l: f64) -> Self {
        assert!(w.is_finite() && w > 0.0, "invalid width {w}");
        assert!(l.is_finite() && l > 0.0, "invalid length {l}");
        Self { w, l, ..*self }
    }
}

/// Computes the aspect ratio `W/L` that conducts `id` at overdrive `vov`:
/// `W/L = 2·I_D / (K'·V_ov²)` (inverse of the square law).
///
/// # Panics
///
/// Panics if any argument is non-positive or non-finite.
///
/// # Examples
///
/// ```
/// use ctsdac_process::{Technology, mosfet::aspect_for_current};
///
/// let tech = Technology::c035();
/// let wl = aspect_for_current(&tech.nmos, 78.1e-6, 0.5);
/// assert!(wl > 0.0);
/// ```
pub fn aspect_for_current(params: &DeviceParams, id: f64, vov: f64) -> f64 {
    assert!(id.is_finite() && id > 0.0, "invalid current {id}");
    assert!(vov.is_finite() && vov > 0.0, "invalid overdrive {vov}");
    2.0 * id / (params.kp * vov * vov)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos_10x1() -> (Technology, Mosfet) {
        let tech = Technology::c035();
        let m = Mosfet::nmos(&tech, 10e-6, 1e-6);
        (tech, m)
    }

    #[test]
    fn square_law_current() {
        let (_, m) = nmos_10x1();
        // I = 0.5 * 175e-6 * 10 * 0.25
        let i = m.id_saturation(0.5);
        assert!((i - 218.75e-6).abs() < 1e-12);
        assert_eq!(m.id_saturation(-0.1), 0.0);
    }

    #[test]
    fn clm_increases_current_with_vds() {
        let (_, m) = nmos_10x1();
        let i1 = m.id_saturation_clm(0.5, 0.5);
        let i2 = m.id_saturation_clm(0.5, 2.0);
        assert!(i2 > i1);
        assert!(i1 > m.id_saturation(0.5));
    }

    #[test]
    fn triode_current_continuous_at_boundary() {
        let (_, m) = nmos_10x1();
        let vov = 0.4;
        let at_edge_triode = m.id_triode(vov, vov);
        let at_edge_sat = m.id_saturation(vov);
        assert!(
            ((at_edge_triode - at_edge_sat) / at_edge_sat).abs() < 1e-12,
            "triode/saturation discontinuity"
        );
    }

    #[test]
    fn region_classification() {
        let (_, m) = nmos_10x1();
        let vt = m.vt(0.0);
        assert_eq!(m.region(vt - 0.1, 1.0, 0.0), Region::Cutoff);
        assert_eq!(m.region(vt + 0.5, 0.2, 0.0), Region::Triode);
        assert_eq!(m.region(vt + 0.5, 1.0, 0.0), Region::Saturation);
    }

    #[test]
    fn id_dispatches_by_region() {
        let (_, m) = nmos_10x1();
        let vt = m.vt(0.0);
        assert_eq!(m.id(vt - 0.2, 1.0, 0.0), 0.0);
        let tri = m.id(vt + 0.5, 0.1, 0.0);
        let sat = m.id(vt + 0.5, 1.0, 0.0);
        assert!(tri > 0.0 && sat > tri);
    }

    #[test]
    fn vov_for_current_inverts_square_law() {
        let (_, m) = nmos_10x1();
        let vov = 0.37;
        let id = m.id_saturation(vov);
        assert!((m.vov_for_current(id) - vov).abs() < 1e-12);
    }

    #[test]
    fn body_effect_raises_threshold() {
        let (_, m) = nmos_10x1();
        assert!(m.vt(1.0) > m.vt(0.0));
        assert_eq!(m.vt(0.0), m.params().vt0);
    }

    #[test]
    fn gm_and_gds_scale_with_current() {
        let (_, m) = nmos_10x1();
        let vov = 0.5;
        let id = m.id_saturation(vov);
        assert!((m.gm(id, vov) - 2.0 * id / vov).abs() < 1e-18);
        assert!((m.gds(id) - m.lambda() * id).abs() < 1e-20);
        assert!((m.ro(id) * m.gds(id) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gmb_is_fraction_of_gm() {
        let (_, m) = nmos_10x1();
        let vov = 0.5;
        let id = m.id_saturation(vov);
        let ratio = m.gmb(id, vov, 0.5) / m.gm(id, vov);
        // η is typically 0.1–0.3 for this technology.
        assert!(ratio > 0.05 && ratio < 0.5, "eta = {ratio}");
    }

    #[test]
    fn aspect_for_current_round_trips() {
        let tech = Technology::c035();
        let wl = aspect_for_current(&tech.nmos, 100e-6, 0.4);
        let m = Mosfet::nmos(&tech, wl * 1e-6, 1e-6);
        assert!((m.id_saturation(0.4) - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn lambda_scales_inversely_with_length() {
        let tech = Technology::c035();
        let short = Mosfet::nmos(&tech, 10e-6, 0.35e-6);
        let long = Mosfet::nmos(&tech, 10e-6, 3.5e-6);
        assert!((short.lambda() / long.lambda() - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid width")]
    fn zero_width_rejected() {
        let tech = Technology::c035();
        let _ = Mosfet::nmos(&tech, 0.0, 1e-6);
    }

    #[test]
    fn pmos_uses_pmos_parameters() {
        let tech = Technology::c035();
        let p = Mosfet::pmos(&tech, 10e-6, 1e-6);
        assert_eq!(p.params().kp, tech.pmos.kp);
        assert!(p.id_saturation(0.5) < Mosfet::nmos(&tech, 10e-6, 1e-6).id_saturation(0.5));
    }
}
