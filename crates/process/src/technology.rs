//! Technology description: the per-process constants every model in the
//! workspace consumes.
//!
//! The paper targets "a 0.35 µm CMOS process" without publishing the foundry
//! deck, so [`Technology::c035`] carries public-literature values for that
//! node (see `DESIGN.md`, substitution table). Every constant can be
//! overridden through the builder-style `with_*` methods, which keeps the
//! methodology parametric in the technology, as the paper requires for
//! porting it to "other models ... provided that the process matching
//! parameters are available".

use core::fmt;

/// Parameters of one device flavour (NMOS or PMOS).
///
/// All values SI. `kp` is the gain factor `K' = µ·C_ox` of the square-law
/// current equation `I_D = ½·K'·(W/L)·V_ov²`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceParams {
    /// Gain factor `K' = µ·C_ox` in A/V².
    pub kp: f64,
    /// Zero-bias threshold voltage magnitude in V.
    pub vt0: f64,
    /// Channel-length-modulation coefficient expressed as the
    /// length-independent product `λ·L` in m/V; `λ(L) = lambda_l / L`.
    pub lambda_l: f64,
    /// Body-effect coefficient `γ` in √V.
    pub gamma: f64,
    /// Surface potential `2·φ_F` in V.
    pub phi2f: f64,
    /// Pelgrom threshold-matching constant `A_VT` in V·m.
    pub a_vt: f64,
    /// Pelgrom gain-matching constant `A_β` in m (relative mismatch · m).
    pub a_beta: f64,
}

/// A CMOS technology: supply, geometry limits, capacitances, matching.
///
/// Obtain one from [`Technology::c035`] and customise with the `with_*`
/// methods:
///
/// ```
/// use ctsdac_process::Technology;
///
/// let tech = Technology::c035().with_vdd(3.0);
/// assert_eq!(tech.vdd, 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Technology {
    /// Nominal supply voltage in V.
    pub vdd: f64,
    /// Minimum drawn channel length in m.
    pub l_min: f64,
    /// Minimum drawn channel width in m.
    pub w_min: f64,
    /// Gate-oxide capacitance per unit area in F/m².
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per unit width in F/m.
    pub c_overlap: f64,
    /// Junction (area) capacitance in F/m².
    pub cj: f64,
    /// Junction sidewall capacitance in F/m.
    pub cjsw: f64,
    /// Source/drain diffusion extent in m (sets junction area `W·l_diff`).
    pub l_diff: f64,
    /// Relative 1-σ tolerance of the (external or on-chip) load resistor.
    pub sigma_rl_rel: f64,
    /// NMOS device parameters.
    pub nmos: DeviceParams,
    /// PMOS device parameters.
    pub pmos: DeviceParams,
}

impl Technology {
    /// Generic 0.35 µm CMOS technology — the node of the paper's design.
    ///
    /// Values are typical published numbers for a 3.3 V, 0.35 µm process:
    /// t_ox ≈ 7.6 nm ⇒ C_ox ≈ 4.54 fF/µm², K'ₙ ≈ 175 µA/V²,
    /// V_Tn ≈ 0.55 V, A_VT ≈ 9.5 mV·µm, A_β ≈ 1.9 %·µm.
    pub fn c035() -> Self {
        Self {
            vdd: 3.3,
            l_min: 0.35e-6,
            w_min: 0.4e-6,
            cox: 4.54e-3,
            c_overlap: 0.25e-9,
            cj: 0.9e-3,
            cjsw: 0.28e-9,
            l_diff: 0.85e-6,
            sigma_rl_rel: 0.01,
            nmos: DeviceParams {
                kp: 175e-6,
                vt0: 0.55,
                lambda_l: 0.06e-6,
                gamma: 0.58,
                phi2f: 0.85,
                a_vt: 9.5e-9,
                a_beta: 1.9e-8,
            },
            pmos: DeviceParams {
                kp: 58e-6,
                vt0: 0.70,
                lambda_l: 0.09e-6,
                gamma: 0.45,
                phi2f: 0.85,
                a_vt: 14.0e-9,
                a_beta: 2.4e-8,
            },
        }
    }

    /// Replaces the supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not finite and positive.
    pub fn with_vdd(mut self, vdd: f64) -> Self {
        assert!(vdd.is_finite() && vdd > 0.0, "invalid supply {vdd}");
        self.vdd = vdd;
        self
    }

    /// Replaces the NMOS parameters.
    pub fn with_nmos(mut self, params: DeviceParams) -> Self {
        self.nmos = params;
        self
    }

    /// Replaces the PMOS parameters.
    pub fn with_pmos(mut self, params: DeviceParams) -> Self {
        self.pmos = params;
        self
    }

    /// Replaces the load-resistor relative tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or not finite.
    pub fn with_sigma_rl_rel(mut self, sigma: f64) -> Self {
        assert!(sigma.is_finite() && sigma >= 0.0, "invalid sigma {sigma}");
        self.sigma_rl_rel = sigma;
        self
    }

    /// Replaces the NMOS Pelgrom matching constants (`A_VT` in V·m, `A_β`
    /// in m).
    ///
    /// # Panics
    ///
    /// Panics if either constant is negative or non-finite.
    pub fn with_nmos_matching(mut self, a_vt: f64, a_beta: f64) -> Self {
        assert!(a_vt.is_finite() && a_vt >= 0.0, "invalid A_VT {a_vt}");
        assert!(a_beta.is_finite() && a_beta >= 0.0, "invalid A_beta {a_beta}");
        self.nmos.a_vt = a_vt;
        self.nmos.a_beta = a_beta;
        self
    }

    /// Returns the technology re-evaluated at junction temperature
    /// `temp_k`: mobility scales as `(T/300)^{-1.5}` and threshold drops
    /// ~2 mV/K — the standard first-order temperature model. Matching
    /// constants and capacitances are temperature-independent.
    ///
    /// # Panics
    ///
    /// Panics if `temp_k` is outside `150..=500` K (outside the model's
    /// validity).
    pub fn at_temperature(&self, temp_k: f64) -> Self {
        assert!(
            (150.0..=500.0).contains(&temp_k),
            "temperature {temp_k} K outside model validity"
        );
        let mobility = (temp_k / 300.0).powf(-1.5);
        let dvt = -2e-3 * (temp_k - 300.0);
        let mut out = *self;
        out.nmos.kp = self.nmos.kp * mobility;
        out.nmos.vt0 = self.nmos.vt0 + dvt;
        out.pmos.kp = self.pmos.kp * mobility;
        out.pmos.vt0 = self.pmos.vt0 + dvt;
        out
    }

    /// Parameters for the requested device flavour.
    pub fn device(&self, kind: crate::mosfet::MosType) -> &DeviceParams {
        match kind {
            crate::mosfet::MosType::Nmos => &self.nmos,
            crate::mosfet::MosType::Pmos => &self.pmos,
        }
    }
}

impl Default for Technology {
    fn default() -> Self {
        Self::c035()
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CMOS Lmin={:.2}um Vdd={:.2}V K'n={:.0}uA/V2 VTn={:.2}V A_VT={:.1}mV.um",
            self.l_min * 1e6,
            self.vdd,
            self.nmos.kp * 1e6,
            self.nmos.vt0,
            self.nmos.a_vt * 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mosfet::MosType;

    #[test]
    fn c035_defaults_are_sane() {
        let t = Technology::c035();
        assert_eq!(t.vdd, 3.3);
        assert!(t.l_min < t.w_min * 2.0);
        assert!(t.nmos.kp > t.pmos.kp, "NMOS must be faster than PMOS");
        assert!(t.nmos.vt0 > 0.0 && t.nmos.vt0 < 1.0);
        // A_VT of 9.5 mV·µm in SI:
        assert!((t.nmos.a_vt - 9.5e-9).abs() < 1e-12);
    }

    #[test]
    fn builder_methods_replace_fields() {
        let t = Technology::c035()
            .with_vdd(2.5)
            .with_sigma_rl_rel(0.02)
            .with_nmos_matching(8.0e-9, 1.5e-8);
        assert_eq!(t.vdd, 2.5);
        assert_eq!(t.sigma_rl_rel, 0.02);
        assert_eq!(t.nmos.a_vt, 8.0e-9);
        assert_eq!(t.nmos.a_beta, 1.5e-8);
    }

    #[test]
    fn device_lookup_selects_flavour() {
        let t = Technology::c035();
        assert_eq!(t.device(MosType::Nmos).vt0, t.nmos.vt0);
        assert_eq!(t.device(MosType::Pmos).vt0, t.pmos.vt0);
    }

    #[test]
    #[should_panic(expected = "invalid supply")]
    fn negative_vdd_rejected() {
        let _ = Technology::c035().with_vdd(-1.0);
    }

    #[test]
    fn hot_silicon_is_slower_with_lower_threshold() {
        let t = Technology::c035();
        let hot = t.at_temperature(400.0);
        assert!(hot.nmos.kp < t.nmos.kp);
        assert!(hot.nmos.vt0 < t.nmos.vt0);
        // ~2 mV/K over 100 K.
        assert!((t.nmos.vt0 - hot.nmos.vt0 - 0.2).abs() < 1e-12);
        // Matching constants unchanged.
        assert_eq!(hot.nmos.a_vt, t.nmos.a_vt);
    }

    #[test]
    fn room_temperature_is_identity() {
        let t = Technology::c035();
        let same = t.at_temperature(300.0);
        assert!((same.nmos.kp - t.nmos.kp).abs() < 1e-18);
        assert_eq!(same.nmos.vt0, t.nmos.vt0);
    }

    #[test]
    #[should_panic(expected = "outside model validity")]
    fn cryogenic_rejected() {
        let _ = Technology::c035().at_temperature(4.0);
    }

    #[test]
    fn display_mentions_node() {
        let s = Technology::c035().to_string();
        assert!(s.contains("0.35um"), "display = {s}");
    }
}
