//! Process corners: deterministic slow/fast excursions of the device
//! parameters.
//!
//! The paper's statistical saturation condition replaces the classic
//! "subtract 0.5 V so the slow corner still saturates" recipe; the corner
//! model here lets the test suite and the ablation benches check exactly
//! that claim — a design sized by eq. (9) must still keep every transistor
//! saturated at the yield-equivalent corner.

use crate::technology::{DeviceParams, Technology};
use core::fmt;

/// Classic five-corner process space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessCorner {
    /// Typical NMOS, typical PMOS.
    #[default]
    Tt,
    /// Fast NMOS, fast PMOS.
    Ff,
    /// Slow NMOS, slow PMOS.
    Ss,
    /// Fast NMOS, slow PMOS.
    Fs,
    /// Slow NMOS, fast PMOS.
    Sf,
}

impl ProcessCorner {
    /// All five corners, for exhaustive sweeps.
    pub const ALL: [ProcessCorner; 5] = [
        ProcessCorner::Tt,
        ProcessCorner::Ff,
        ProcessCorner::Ss,
        ProcessCorner::Fs,
        ProcessCorner::Sf,
    ];

    /// Multiplicative K' and additive V_T excursions `(kp_scale, vt_shift)`
    /// for the NMOS device at this corner.
    pub fn nmos_shift(self) -> (f64, f64) {
        match self {
            ProcessCorner::Tt => (1.0, 0.0),
            ProcessCorner::Ff | ProcessCorner::Fs => (1.12, -0.05),
            ProcessCorner::Ss | ProcessCorner::Sf => (0.88, 0.05),
        }
    }

    /// Multiplicative K' and additive |V_T| excursions for the PMOS device.
    pub fn pmos_shift(self) -> (f64, f64) {
        match self {
            ProcessCorner::Tt => (1.0, 0.0),
            ProcessCorner::Ff | ProcessCorner::Sf => (1.12, -0.05),
            ProcessCorner::Ss | ProcessCorner::Fs => (0.88, 0.05),
        }
    }

    /// Applies the corner to a technology, returning the shifted copy.
    ///
    /// # Examples
    ///
    /// ```
    /// use ctsdac_process::{Technology, ProcessCorner};
    ///
    /// let tt = Technology::c035();
    /// let ss = ProcessCorner::Ss.apply(&tt);
    /// assert!(ss.nmos.kp < tt.nmos.kp);
    /// assert!(ss.nmos.vt0 > tt.nmos.vt0);
    /// ```
    pub fn apply(self, tech: &Technology) -> Technology {
        let mut out = *tech;
        let (kn, dvtn) = self.nmos_shift();
        let (kp, dvtp) = self.pmos_shift();
        out.nmos = DeviceParams {
            kp: tech.nmos.kp * kn,
            vt0: tech.nmos.vt0 + dvtn,
            ..tech.nmos
        };
        out.pmos = DeviceParams {
            kp: tech.pmos.kp * kp,
            vt0: tech.pmos.vt0 + dvtp,
            ..tech.pmos
        };
        out
    }
}

impl fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessCorner::Tt => "TT",
            ProcessCorner::Ff => "FF",
            ProcessCorner::Ss => "SS",
            ProcessCorner::Fs => "FS",
            ProcessCorner::Sf => "SF",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tt_is_identity() {
        let t = Technology::c035();
        assert_eq!(ProcessCorner::Tt.apply(&t), t);
    }

    #[test]
    fn ss_slows_both_devices() {
        let t = Technology::c035();
        let ss = ProcessCorner::Ss.apply(&t);
        assert!(ss.nmos.kp < t.nmos.kp && ss.pmos.kp < t.pmos.kp);
        assert!(ss.nmos.vt0 > t.nmos.vt0 && ss.pmos.vt0 > t.pmos.vt0);
    }

    #[test]
    fn cross_corners_diverge() {
        let t = Technology::c035();
        let fs = ProcessCorner::Fs.apply(&t);
        assert!(fs.nmos.kp > t.nmos.kp);
        assert!(fs.pmos.kp < t.pmos.kp);
    }

    #[test]
    fn corners_preserve_matching_constants() {
        // Pelgrom constants describe local variation; corners are global.
        let t = Technology::c035();
        for c in ProcessCorner::ALL {
            let shifted = c.apply(&t);
            assert_eq!(shifted.nmos.a_vt, t.nmos.a_vt);
            assert_eq!(shifted.nmos.a_beta, t.nmos.a_beta);
        }
    }

    #[test]
    fn all_lists_five_distinct_corners() {
        let mut names: Vec<String> = ProcessCorner::ALL.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }
}
