//! The converter floorplan of the paper's Fig. 5.
//!
//! The unary current-source array occupies a square grid; "the binary
//! latches & switches are placed in the middle of the array, and the binary
//! current source transistors are also distributed in four dedicated
//! columns of the current source array" (§4). The floorplan assigns every
//! DAC cell — binary and unary — a physical position, from which the
//! systematic per-cell errors under any gradient follow.

use crate::gradient::GradientModel;
use crate::grid::ArrayGrid;
use crate::schemes::Scheme;
use core::fmt;

/// A concrete placement of every current source of the segmented DAC.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    grid: ArrayGrid,
    /// `unary_order[rank]` = grid site of the unary source that switches on
    /// `rank`-th.
    unary_order: Vec<usize>,
    /// Positions (normalised coordinates) of the binary cells, LSB first.
    binary_positions: Vec<(f64, f64)>,
    scheme: Scheme,
}

impl Floorplan {
    /// Builds the Fig. 5 floorplan: `n_unary` unary sources on the smallest
    /// square grid that also reserves 4 central columns' worth of sites for
    /// the `n_binary` binary cells (placed at the grid centre).
    ///
    /// # Panics
    ///
    /// Panics if `n_unary == 0`.
    pub fn paper_fig5(n_unary: usize, n_binary: usize, scheme: Scheme, seed: u64) -> Self {
        assert!(n_unary > 0, "need at least one unary source");
        // Binary sources are physically interleaved in the central columns
        // (Fig. 5), so the grid is sized by the unary count alone.
        let grid = ArrayGrid::square_for(n_unary);
        let unary_order = scheme.order(&grid, n_unary, seed);
        // Binary cells sit in central columns near the array middle: place
        // them at small offsets around the origin (between the central
        // rows/columns), matching the "four dedicated columns" of Fig. 5.
        let binary_positions = (0..n_binary)
            .map(|i| {
                let col = i % 4;
                let row = i / 4;
                (-0.075 + 0.05 * col as f64, -0.025 + 0.05 * row as f64)
            })
            .collect();
        Self {
            grid,
            unary_order,
            binary_positions,
            scheme,
        }
    }

    /// The array grid.
    pub fn grid(&self) -> &ArrayGrid {
        &self.grid
    }

    /// The switching scheme used.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// The unary switching order (rank → grid site).
    pub fn unary_order(&self) -> &[usize] {
        &self.unary_order
    }

    /// Physical positions of the unary sources in switching order.
    pub fn unary_positions(&self) -> Vec<(f64, f64)> {
        self.unary_order
            .iter()
            .map(|&s| self.grid.coords(s))
            .collect()
    }

    /// Physical positions of the binary cells, LSB first.
    pub fn binary_positions(&self) -> &[(f64, f64)] {
        &self.binary_positions
    }

    /// Per-cell systematic relative errors of the full converter under
    /// `gradient`, in DAC cell order (binary LSB..MSB, then unary cells by
    /// *cell index*, i.e. matching `SegmentedDac::with_unary_order` with
    /// the identity order and this floorplan's switching order installed).
    ///
    /// Returns `(binary_errors, unary_errors_in_rank_order)`, both jointly
    /// recentred to zero mean weighted by cell currents.
    pub fn systematic_errors(
        &self,
        gradient: &GradientModel,
        unary_weight: f64,
    ) -> (Vec<f64>, Vec<f64>) {
        assert!(unary_weight > 0.0, "invalid unary weight {unary_weight}");
        let binary_raw: Vec<f64> = self
            .binary_positions
            .iter()
            .map(|&(x, y)| gradient.error_at(x, y))
            .collect();
        let unary_raw: Vec<f64> = self
            .unary_positions()
            .iter()
            .map(|&(x, y)| gradient.error_at(x, y))
            .collect();
        // Current-weighted mean (binary weights 1, 2, 4, ...).
        let mut w_total = 0.0;
        let mut w_err = 0.0;
        for (i, &e) in binary_raw.iter().enumerate() {
            let w = (1u64 << i) as f64;
            w_total += w;
            w_err += w * e;
        }
        for &e in &unary_raw {
            w_total += unary_weight;
            w_err += unary_weight * e;
        }
        let mean = w_err / w_total;
        (
            binary_raw.iter().map(|e| e - mean).collect(),
            unary_raw.iter().map(|e| e - mean).collect(),
        )
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "floorplan: {} unary on {} ({} scheme), {} binary central",
            self.unary_order.len(),
            self.grid,
            self.scheme,
            self.binary_positions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_floorplan_dimensions() {
        let fp = Floorplan::paper_fig5(255, 4, Scheme::CentroSymmetric, 0);
        assert_eq!(fp.grid().n_sites(), 256);
        assert_eq!(fp.unary_order().len(), 255);
        assert_eq!(fp.binary_positions().len(), 4);
    }

    #[test]
    fn binary_cells_are_central() {
        let fp = Floorplan::paper_fig5(255, 4, Scheme::Sequential, 0);
        for &(x, y) in fp.binary_positions() {
            assert!(x.abs() < 0.2 && y.abs() < 0.2, "binary at ({x},{y})");
        }
    }

    #[test]
    fn systematic_errors_have_weighted_zero_mean() {
        let fp = Floorplan::paper_fig5(255, 4, Scheme::Snake, 0);
        let g = GradientModel::combined(0.01, 0.7, 0.01, (0.2, 0.2));
        let (bin, unary) = fp.systematic_errors(&g, 16.0);
        let mut w_err = 0.0;
        let mut w_tot = 0.0;
        for (i, &e) in bin.iter().enumerate() {
            let w = (1u64 << i) as f64;
            w_err += w * e;
            w_tot += w;
        }
        for &e in &unary {
            w_err += 16.0 * e;
            w_tot += 16.0;
        }
        assert!((w_err / w_tot).abs() < 1e-12);
    }

    #[test]
    fn central_binary_cells_see_small_gradient_error() {
        // Being central, binary cells sit near the zero of a linear
        // gradient — the reason the paper puts them there.
        let fp = Floorplan::paper_fig5(255, 4, Scheme::Sequential, 0);
        let g = GradientModel::linear(0.02, 0.3);
        let (bin, unary) = fp.systematic_errors(&g, 16.0);
        let max_bin = bin.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let max_unary = unary.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(
            max_bin < max_unary / 3.0,
            "bin {max_bin}, unary {max_unary}"
        );
    }

    #[test]
    fn scheme_changes_unary_order_not_positions_set() {
        let a = Floorplan::paper_fig5(255, 4, Scheme::Sequential, 0);
        let b = Floorplan::paper_fig5(255, 4, Scheme::Snake, 0);
        let mut sa = a.unary_order().to_vec();
        let mut sb = b.unary_order().to_vec();
        assert_ne!(a.unary_order(), b.unary_order());
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb, "same set of sites");
    }
}
