//! Double-centroid sub-unit placement.
//!
//! "Each current source transistor has been also divided in 16 sub units
//! that have been placed following a double centroid distribution \[12]"
//! (§4). Splitting a source into `4k` sub-units placed point- and
//! axis-symmetrically about the array centre cancels *any* linear gradient
//! exactly (the centroid of the sub-unit positions is the array centre) and
//! strongly attenuates centred quadratic bowls (every source samples the
//! bowl at the same mean radius pattern).

use crate::gradient::GradientModel;

/// Sub-unit positions of one logical source under a double-centroid split.
///
/// Given the source's nominal position `(x, y)` (normalised coordinates),
/// the 16 sub-units sit at the four axis/point mirrors of four jittered
/// copies: `(±x+δ, ±y+δ')`. The `spread` parameter models the residual
/// placement scatter of the sub-units within their local group.
///
/// # Panics
///
/// Panics if `spread` is negative.
///
/// # Examples
///
/// ```
/// use ctsdac_layout::centroid::double_centroid_positions;
///
/// let subs = double_centroid_positions(0.5, -0.25, 0.0);
/// assert_eq!(subs.len(), 16);
/// // The centroid of the sub-units is the array centre.
/// let (cx, cy) = subs.iter().fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
/// assert!(cx.abs() < 1e-12 && cy.abs() < 1e-12);
/// ```
pub fn double_centroid_positions(x: f64, y: f64, spread: f64) -> Vec<(f64, f64)> {
    assert!(spread >= 0.0, "negative spread {spread}");
    let mut out = Vec::with_capacity(16);
    // Four local offsets (a 2×2 sub-pattern), mirrored into all four
    // quadrant images → 16 sub-units.
    let offsets = [
        (-spread, -spread),
        (spread, -spread),
        (-spread, spread),
        (spread, spread),
    ];
    for &(dx, dy) in &offsets {
        out.push((x + dx, y + dy));
        out.push((-x + dx, y + dy));
        out.push((x + dx, -y + dy));
        out.push((-x + dx, -y + dy));
    }
    out
}

/// Effective relative error of a source whose sub-units sit at `positions`
/// under `gradient` (the mean of the sub-unit errors; sub-units carry equal
/// currents).
///
/// # Panics
///
/// Panics if `positions` is empty.
pub fn effective_error(gradient: &GradientModel, positions: &[(f64, f64)]) -> f64 {
    assert!(!positions.is_empty(), "no sub-unit positions");
    positions
        .iter()
        .map(|&(x, y)| gradient.error_at(x, y))
        .sum::<f64>()
        / positions.len() as f64
}

/// Per-source effective errors for an array of nominal positions, with and
/// without the double-centroid split; the "without" case is a single unit
/// at the nominal position. Returns `(split, unsplit)` error vectors,
/// both recentred to zero mean.
pub fn array_errors_with_split(
    gradient: &GradientModel,
    nominal: &[(f64, f64)],
    spread: f64,
) -> (Vec<f64>, Vec<f64>) {
    assert!(!nominal.is_empty(), "no source positions");
    let mut split: Vec<f64> = nominal
        .iter()
        .map(|&(x, y)| effective_error(gradient, &double_centroid_positions(x, y, spread)))
        .collect();
    let mut unsplit: Vec<f64> = nominal
        .iter()
        .map(|&(x, y)| gradient.error_at(x, y))
        .collect();
    for v in [&mut split, &mut unsplit] {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        for e in v.iter_mut() {
            *e -= mean;
        }
    }
    (split, unsplit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal_positions() -> Vec<(f64, f64)> {
        let mut v = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                v.push((2.0 * i as f64 / 7.0 - 1.0, 2.0 * j as f64 / 7.0 - 1.0));
            }
        }
        v
    }

    #[test]
    fn split_cancels_linear_gradient_exactly() {
        let g = GradientModel::linear(0.05, 0.8);
        let (split, unsplit) = array_errors_with_split(&g, &nominal_positions(), 0.01);
        let max_split = split.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let max_unsplit = unsplit.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(max_split < 1e-12, "residual = {max_split}");
        assert!(max_unsplit > 0.01);
    }

    #[test]
    fn split_attenuates_centred_quadratic() {
        let g = GradientModel::quadratic(0.05, (0.0, 0.0));
        let (split, unsplit) = array_errors_with_split(&g, &nominal_positions(), 0.0);
        // With a centred bowl every mirrored image has the same radius, so
        // the source error equals the nominal one — but after mean removal
        // the residual *spread* is what matters.
        let spread = |v: &[f64]| v.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(spread(&split) <= spread(&unsplit) + 1e-15);
    }

    #[test]
    fn split_attenuates_off_centre_quadratic() {
        // The linear component of an off-centre bowl is cancelled; only the
        // pure quadratic part remains.
        let g = GradientModel::quadratic(0.05, (0.5, -0.4));
        let (split, unsplit) = array_errors_with_split(&g, &nominal_positions(), 0.0);
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        assert!(
            rms(&split) < rms(&unsplit),
            "split rms {} >= unsplit rms {}",
            rms(&split),
            rms(&unsplit)
        );
    }

    #[test]
    fn sixteen_subunits_per_source() {
        assert_eq!(double_centroid_positions(0.3, 0.3, 0.02).len(), 16);
    }

    #[test]
    fn centroid_is_origin_regardless_of_spread() {
        for spread in [0.0, 0.01, 0.1] {
            let subs = double_centroid_positions(0.7, -0.2, spread);
            let (cx, cy) = subs
                .iter()
                .fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
            assert!(cx.abs() < 1e-12 && cy.abs() < 1e-12, "spread {spread}");
        }
    }

    #[test]
    #[should_panic(expected = "negative spread")]
    fn negative_spread_rejected() {
        let _ = double_centroid_positions(0.0, 0.0, -0.1);
    }
}
