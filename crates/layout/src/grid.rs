//! Array geometry: a rows × cols grid of current-source sites with
//! normalised die coordinates.

use core::fmt;

/// A rectangular array of current-source sites.
///
/// Site index is row-major; coordinates are normalised to `[−1, 1]` in each
/// axis with the array centre at the origin, so gradient amplitudes read as
/// "fraction of error across half the array".
///
/// # Examples
///
/// ```
/// use ctsdac_layout::ArrayGrid;
///
/// let g = ArrayGrid::new(16, 16);
/// assert_eq!(g.n_sites(), 256);
/// let (x, y) = g.coords(0);
/// assert!(x < 0.0 && y < 0.0); // first site is a corner
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayGrid {
    rows: usize,
    cols: usize,
}

impl ArrayGrid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty grid {rows}x{cols}");
        Self { rows, cols }
    }

    /// The square grid that holds at least `n` sites.
    pub fn square_for(n: usize) -> Self {
        assert!(n > 0, "empty grid");
        let side = (n as f64).sqrt().ceil() as usize;
        Self::new(side, side)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of sites.
    pub fn n_sites(&self) -> usize {
        self.rows * self.cols
    }

    /// Row and column of site `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_col(&self, i: usize) -> (usize, usize) {
        assert!(i < self.n_sites(), "site {i} out of range");
        (i / self.cols, i % self.cols)
    }

    /// Site index of `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn site(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of range"
        );
        row * self.cols + col
    }

    /// Normalised coordinates of site `i`: both axes in `[−1, 1]`, centre
    /// of the array at the origin.
    pub fn coords(&self, i: usize) -> (f64, f64) {
        let (r, c) = self.row_col(i);
        let x = if self.cols == 1 {
            0.0
        } else {
            2.0 * c as f64 / (self.cols - 1) as f64 - 1.0
        };
        let y = if self.rows == 1 {
            0.0
        } else {
            2.0 * r as f64 / (self.rows - 1) as f64 - 1.0
        };
        (x, y)
    }

    /// The site whose coordinates are point-symmetric to `i` about the
    /// array centre.
    pub fn mirror_site(&self, i: usize) -> usize {
        let (r, c) = self.row_col(i);
        self.site(self.rows - 1 - r, self.cols - 1 - c)
    }
}

impl fmt::Display for ArrayGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} array", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_col_round_trip() {
        let g = ArrayGrid::new(5, 7);
        for i in 0..g.n_sites() {
            let (r, c) = g.row_col(i);
            assert_eq!(g.site(r, c), i);
        }
    }

    #[test]
    fn coords_are_centered_and_bounded() {
        let g = ArrayGrid::new(16, 16);
        let mut sum = (0.0, 0.0);
        for i in 0..g.n_sites() {
            let (x, y) = g.coords(i);
            assert!((-1.0..=1.0).contains(&x) && (-1.0..=1.0).contains(&y));
            sum.0 += x;
            sum.1 += y;
        }
        assert!(sum.0.abs() < 1e-9 && sum.1.abs() < 1e-9, "not centred");
    }

    #[test]
    fn mirror_site_negates_coordinates() {
        let g = ArrayGrid::new(8, 8);
        for i in 0..g.n_sites() {
            let (x, y) = g.coords(i);
            let (mx, my) = g.coords(g.mirror_site(i));
            assert!((x + mx).abs() < 1e-12 && (y + my).abs() < 1e-12);
        }
    }

    #[test]
    fn mirror_is_involution() {
        let g = ArrayGrid::new(9, 5);
        for i in 0..g.n_sites() {
            assert_eq!(g.mirror_site(g.mirror_site(i)), i);
        }
    }

    #[test]
    fn square_for_covers_requested_count() {
        assert_eq!(ArrayGrid::square_for(255).n_sites(), 256);
        assert_eq!(ArrayGrid::square_for(256).n_sites(), 256);
        assert_eq!(ArrayGrid::square_for(257).n_sites(), 289);
    }

    #[test]
    fn degenerate_single_column_has_zero_x() {
        let g = ArrayGrid::new(4, 1);
        for i in 0..4 {
            assert_eq!(g.coords(i).0, 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_site_panics() {
        let _ = ArrayGrid::new(2, 2).row_col(4);
    }
}
