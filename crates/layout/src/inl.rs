//! INL of a thermometer-decoded array under systematic errors.
//!
//! For a unary array switched in a given sequence, the output at
//! thermometer code `k` is the sum of the first `k` sources in switching
//! order; with per-source relative errors `e_i` the endpoint-fit INL is the
//! cumulative error sum re-centred so that both endpoints are exact. This
//! is the objective the switching-scheme optimisation of Cong & Geiger \[3]
//! minimises.

use core::fmt;

/// Ill-posed switching-order / error-map combinations, reported as typed
/// errors instead of panics so layout search loops can skip bad candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InlError {
    /// The switching order contains no sites.
    EmptyOrder,
    /// The order references a site index outside the error map.
    SiteOutOfRange {
        /// Offending site index from the order.
        site: usize,
        /// Number of sites the error map covers.
        sites: usize,
    },
}

impl fmt::Display for InlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InlError::EmptyOrder => write!(f, "empty switching order"),
            InlError::SiteOutOfRange { site, sites } => {
                write!(f, "site {site} out of range for {sites} error sites")
            }
        }
    }
}

impl std::error::Error for InlError {}

/// Endpoint-fit INL (in units of one unary source current) at every
/// thermometer code `0..=n`, for sources switched in `order` with per-site
/// errors `site_errors`.
///
/// # Errors
///
/// [`InlError::EmptyOrder`] if `order` is empty,
/// [`InlError::SiteOutOfRange`] if it references a site outside
/// `site_errors`.
///
/// # Examples
///
/// ```
/// use ctsdac_layout::inl::{unary_inl, InlError};
///
/// // Two sources, +1 % and −1 %: worst INL halfway, zero at the ends.
/// let inl = unary_inl(&[0, 1], &[0.01, -0.01])?;
/// assert_eq!(inl.len(), 3);
/// assert!(inl[0].abs() < 1e-15 && inl[2].abs() < 1e-15);
/// assert!((inl[1] - 0.01).abs() < 1e-15);
///
/// // A stale order referencing a site outside the error map is rejected.
/// assert_eq!(
///     unary_inl(&[5], &[0.0; 3]),
///     Err(InlError::SiteOutOfRange { site: 5, sites: 3 }),
/// );
/// # Ok::<(), InlError>(())
/// ```
pub fn unary_inl(order: &[usize], site_errors: &[f64]) -> Result<Vec<f64>, InlError> {
    if order.is_empty() {
        return Err(InlError::EmptyOrder);
    }
    let n = order.len();
    let mut errors_in_order = Vec::with_capacity(n);
    for &site in order {
        if site >= site_errors.len() {
            return Err(InlError::SiteOutOfRange {
                site,
                sites: site_errors.len(),
            });
        }
        errors_in_order.push(site_errors[site]);
    }
    let total: f64 = errors_in_order.iter().sum();
    let mean = total / n as f64;
    let mut inl = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    inl.push(0.0);
    for e in errors_in_order {
        acc += e - mean;
        inl.push(acc);
    }
    Ok(inl)
}

/// Worst absolute INL over all thermometer codes.
///
/// # Errors
///
/// As [`unary_inl`].
pub fn unary_inl_max(order: &[usize], site_errors: &[f64]) -> Result<f64, InlError> {
    Ok(unary_inl(order, site_errors)?
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::GradientModel;
    use crate::grid::ArrayGrid;

    #[test]
    fn zero_errors_give_zero_inl() {
        let inl = unary_inl(&[0, 1, 2, 3], &[0.0; 4]).expect("valid order");
        assert!(inl.iter().all(|&v| v.abs() < 1e-15));
    }

    #[test]
    fn endpoints_are_always_zero() {
        let errors = [0.01, -0.03, 0.02, 0.005, -0.004];
        let inl = unary_inl(&[4, 2, 0, 1, 3], &errors).expect("valid order");
        assert!(inl[0].abs() < 1e-15);
        assert!(inl.last().copied().expect("non-empty").abs() < 1e-12);
    }

    #[test]
    fn order_changes_inl_but_not_endpoints() {
        let grid = ArrayGrid::new(4, 4);
        let errors = GradientModel::linear(0.02, 0.0).sample_grid(&grid);
        let seq: Vec<usize> = (0..16).collect();
        let alt: Vec<usize> = (0..8).flat_map(|i| [i, 15 - i]).collect();
        let inl_seq = unary_inl_max(&seq, &errors).expect("valid order");
        let inl_alt = unary_inl_max(&alt, &errors).expect("valid order");
        assert!(
            inl_alt < inl_seq,
            "pairing {inl_alt} >= sequential {inl_seq}"
        );
    }

    #[test]
    fn inl_scales_linearly_with_gradient_amplitude() {
        let grid = ArrayGrid::new(8, 8);
        let order: Vec<usize> = (0..64).collect();
        let small = unary_inl_max(&order, &GradientModel::linear(0.01, 0.5).sample_grid(&grid))
            .expect("valid order");
        let large = unary_inl_max(&order, &GradientModel::linear(0.02, 0.5).sample_grid(&grid))
            .expect("valid order");
        assert!((large / small - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ill_posed_inputs_are_typed_errors() {
        assert_eq!(
            unary_inl(&[5], &[0.0; 3]),
            Err(InlError::SiteOutOfRange { site: 5, sites: 3 })
        );
        assert_eq!(unary_inl(&[], &[0.0; 3]), Err(InlError::EmptyOrder));
        assert_eq!(unary_inl_max(&[], &[]), Err(InlError::EmptyOrder));
        let msg = InlError::SiteOutOfRange { site: 5, sites: 3 }.to_string();
        assert!(msg.contains("site 5"), "{msg}");
        assert!(msg.contains('3'), "{msg}");
    }
}
