//! INL of a thermometer-decoded array under systematic errors.
//!
//! For a unary array switched in a given sequence, the output at
//! thermometer code `k` is the sum of the first `k` sources in switching
//! order; with per-source relative errors `e_i` the endpoint-fit INL is the
//! cumulative error sum re-centred so that both endpoints are exact. This
//! is the objective the switching-scheme optimisation of Cong & Geiger \[3]
//! minimises.

/// Endpoint-fit INL (in units of one unary source current) at every
/// thermometer code `0..=n`, for sources switched in `order` with per-site
/// errors `site_errors`.
///
/// # Panics
///
/// Panics if `order` is empty or references a site outside `site_errors`.
///
/// # Examples
///
/// ```
/// use ctsdac_layout::inl::unary_inl;
///
/// // Two sources, +1 % and −1 %: worst INL halfway, zero at the ends.
/// let inl = unary_inl(&[0, 1], &[0.01, -0.01]);
/// assert_eq!(inl.len(), 3);
/// assert!(inl[0].abs() < 1e-15 && inl[2].abs() < 1e-15);
/// assert!((inl[1] - 0.01).abs() < 1e-15);
/// ```
pub fn unary_inl(order: &[usize], site_errors: &[f64]) -> Vec<f64> {
    assert!(!order.is_empty(), "empty switching order");
    let n = order.len();
    let errors_in_order: Vec<f64> = order
        .iter()
        .map(|&site| {
            assert!(site < site_errors.len(), "site {site} out of range");
            site_errors[site]
        })
        .collect();
    let total: f64 = errors_in_order.iter().sum();
    let mean = total / n as f64;
    let mut inl = Vec::with_capacity(n + 1);
    let mut acc = 0.0;
    inl.push(0.0);
    for e in errors_in_order {
        acc += e - mean;
        inl.push(acc);
    }
    inl
}

/// Worst absolute INL over all thermometer codes.
///
/// # Panics
///
/// As [`unary_inl`].
pub fn unary_inl_max(order: &[usize], site_errors: &[f64]) -> f64 {
    unary_inl(order, site_errors)
        .iter()
        .fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::GradientModel;
    use crate::grid::ArrayGrid;

    #[test]
    fn zero_errors_give_zero_inl() {
        let inl = unary_inl(&[0, 1, 2, 3], &[0.0; 4]);
        assert!(inl.iter().all(|&v| v.abs() < 1e-15));
    }

    #[test]
    fn endpoints_are_always_zero() {
        let errors = [0.01, -0.03, 0.02, 0.005, -0.004];
        let inl = unary_inl(&[4, 2, 0, 1, 3], &errors);
        assert!(inl[0].abs() < 1e-15);
        assert!(inl.last().copied().expect("non-empty").abs() < 1e-12);
    }

    #[test]
    fn order_changes_inl_but_not_endpoints() {
        let grid = ArrayGrid::new(4, 4);
        let errors = GradientModel::linear(0.02, 0.0).sample_grid(&grid);
        let seq: Vec<usize> = (0..16).collect();
        let alt: Vec<usize> = (0..8).flat_map(|i| [i, 15 - i]).collect();
        let inl_seq = unary_inl_max(&seq, &errors);
        let inl_alt = unary_inl_max(&alt, &errors);
        assert!(inl_alt < inl_seq, "pairing {inl_alt} >= sequential {inl_seq}");
    }

    #[test]
    fn inl_scales_linearly_with_gradient_amplitude() {
        let grid = ArrayGrid::new(8, 8);
        let order: Vec<usize> = (0..64).collect();
        let small = unary_inl_max(&order, &GradientModel::linear(0.01, 0.5).sample_grid(&grid));
        let large = unary_inl_max(&order, &GradientModel::linear(0.02, 0.5).sample_grid(&grid));
        assert!((large / small - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_site_index_panics() {
        let _ = unary_inl(&[5], &[0.0; 3]);
    }
}
