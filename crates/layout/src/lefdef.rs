//! Minimal LEF/DEF writers.
//!
//! The paper's flow emits "a Cadence LEF format file describing the
//! relevant geometrical information for placement and routing ... then the
//! switching sequence ... is programmed in a C script that generates a file
//! in the Cadence DEF format that describes the placement of the cells and
//! also their interconnection" (§4). These writers produce syntactically
//! valid LEF 5.x macro definitions and DEF placement/net sections for the
//! current-source array, parameterised by the floorplan — enough for a
//! downstream P&R tool or for regression-testing the generated geometry.

use crate::floorplan::Floorplan;
use core::fmt::Write as _;

/// Geometry of the unit current-source macro, in µm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGeometry {
    /// Macro width, µm.
    pub width_um: f64,
    /// Macro height, µm.
    pub height_um: f64,
}

impl Default for CellGeometry {
    fn default() -> Self {
        Self {
            width_um: 12.0,
            height_um: 20.0,
        }
    }
}

/// Emits a LEF file with the current-source macro definition.
///
/// # Examples
///
/// ```
/// use ctsdac_layout::lefdef::{write_lef, CellGeometry};
///
/// let lef = write_lef("CSCELL", CellGeometry::default());
/// assert!(lef.contains("MACRO CSCELL"));
/// assert!(lef.contains("END CSCELL"));
/// ```
pub fn write_lef(macro_name: &str, geometry: CellGeometry) -> String {
    assert!(!macro_name.is_empty(), "empty macro name");
    assert!(
        geometry.width_um > 0.0 && geometry.height_um > 0.0,
        "invalid geometry"
    );
    let mut out = String::new();
    let w = geometry.width_um;
    let h = geometry.height_um;
    let _ = writeln!(out, "VERSION 5.7 ;");
    let _ = writeln!(out, "BUSBITCHARS \"[]\" ;");
    let _ = writeln!(out, "DIVIDERCHAR \"/\" ;");
    let _ = writeln!(out, "UNITS\n  DATABASE MICRONS 1000 ;\nEND UNITS");
    let _ = writeln!(out, "MACRO {macro_name}");
    let _ = writeln!(out, "  CLASS BLOCK ;");
    let _ = writeln!(out, "  ORIGIN 0 0 ;");
    let _ = writeln!(out, "  SIZE {w:.3} BY {h:.3} ;");
    for (pin, layer, y0, y1) in [
        ("IOUT", "METAL3", h - 1.0, h),
        ("IOUTB", "METAL3", h - 2.5, h - 1.5),
        ("VBIAS", "METAL2", 1.5, 2.5),
        ("SWIN", "METAL2", 0.0, 1.0),
    ] {
        let _ = writeln!(out, "  PIN {pin}");
        let _ = writeln!(out, "    DIRECTION INOUT ;");
        let _ = writeln!(out, "    PORT");
        let _ = writeln!(out, "      LAYER {layer} ;");
        let _ = writeln!(out, "        RECT 0.000 {y0:.3} {w:.3} {y1:.3} ;");
        let _ = writeln!(out, "    END");
        let _ = writeln!(out, "  END {pin}");
    }
    let _ = writeln!(out, "END {macro_name}");
    let _ = writeln!(out, "END LIBRARY");
    out
}

/// Emits a DEF file placing every unary source of the floorplan on its grid
/// site and wiring the bias and output nets.
///
/// Component names encode the switching rank (`U_<rank>`), so the
/// thermometer decoder connectivity is implicit in the names — the same
/// convention the paper's C script uses.
pub fn write_def(design_name: &str, floorplan: &Floorplan, geometry: CellGeometry) -> String {
    assert!(!design_name.is_empty(), "empty design name");
    let grid = floorplan.grid();
    let pitch_x = (geometry.width_um * 1000.0) as i64;
    let pitch_y = (geometry.height_um * 1000.0) as i64;
    let mut out = String::new();
    let _ = writeln!(out, "VERSION 5.7 ;");
    let _ = writeln!(out, "DESIGN {design_name} ;");
    let _ = writeln!(out, "UNITS DISTANCE MICRONS 1000 ;");
    let _ = writeln!(
        out,
        "DIEAREA ( 0 0 ) ( {} {} ) ;",
        grid.cols() as i64 * pitch_x,
        grid.rows() as i64 * pitch_y
    );

    let n_unary = floorplan.unary_order().len();
    let n_binary = floorplan.binary_positions().len();
    let _ = writeln!(out, "COMPONENTS {} ;", n_unary + n_binary);
    for (rank, &site) in floorplan.unary_order().iter().enumerate() {
        let (row, col) = grid.row_col(site);
        let _ = writeln!(
            out,
            "  - U_{rank} CSCELL + PLACED ( {} {} ) N ;",
            col as i64 * pitch_x,
            row as i64 * pitch_y
        );
    }
    for (i, &(x, y)) in floorplan.binary_positions().iter().enumerate() {
        // Binary cells live between the central columns; snap to the grid.
        let col = (((x + 1.0) / 2.0) * (grid.cols() - 1) as f64).round() as i64;
        let row = (((y + 1.0) / 2.0) * (grid.rows() - 1) as f64).round() as i64;
        let _ = writeln!(
            out,
            "  - B_{i} CSCELL_BIN + PLACED ( {} {} ) N ;",
            col * pitch_x,
            row * pitch_y
        );
    }
    let _ = writeln!(out, "END COMPONENTS");

    let _ = writeln!(out, "NETS 3 ;");
    for net in ["IOUT", "IOUTB", "VBIAS"] {
        let _ = write!(out, "  - {net}");
        for rank in 0..n_unary {
            let _ = write!(out, " ( U_{rank} {net} )");
        }
        let _ = writeln!(out, " ;");
    }
    let _ = writeln!(out, "END NETS");
    let _ = writeln!(out, "END DESIGN");
    out
}

/// A parsed DEF placement, for round-trip verification of [`write_def`]
/// output and for ingesting externally produced placements.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedDef {
    /// DESIGN name.
    pub design: String,
    /// Components: `(instance, macro, x_dbu, y_dbu)`.
    pub components: Vec<(String, String, i64, i64)>,
    /// Nets: `(name, pin references)`.
    pub nets: Vec<(String, usize)>,
}

/// Error from [`parse_def`] with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDefError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ParseDefError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DEF parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseDefError {}

/// Parses the subset of DEF that [`write_def`] emits (DESIGN, COMPONENTS
/// with `PLACED` coordinates, NETS with pin references).
///
/// # Errors
///
/// Returns [`ParseDefError`] on malformed component or net records or a
/// missing `DESIGN` statement.
pub fn parse_def(text: &str) -> Result<ParsedDef, ParseDefError> {
    let mut design = None;
    let mut components = Vec::new();
    let mut nets = Vec::new();
    #[derive(PartialEq)]
    enum Section {
        Top,
        Components,
        Nets,
    }
    let mut section = Section::Top;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = idx + 1;
        let err = |message: &str| ParseDefError {
            line: lineno,
            message: message.to_string(),
        };
        if line.starts_with("DESIGN ") && section == Section::Top {
            let name = line
                .strip_prefix("DESIGN ")
                .and_then(|s| s.strip_suffix(" ;"))
                .ok_or_else(|| err("malformed DESIGN"))?;
            design = Some(name.to_string());
        } else if line.starts_with("COMPONENTS") {
            section = Section::Components;
        } else if line == "END COMPONENTS" {
            section = Section::Top;
        } else if line.starts_with("NETS") {
            section = Section::Nets;
        } else if line == "END NETS" {
            section = Section::Top;
        } else if section == Section::Components && line.starts_with("- ") {
            // - <inst> <macro> + PLACED ( x y ) N ;
            let tokens: Vec<&str> = line.split_whitespace().collect();
            if tokens.len() < 11 || tokens[3] != "+" || tokens[4] != "PLACED" {
                return Err(err("malformed component record"));
            }
            let x: i64 = tokens[6].parse().map_err(|_| err("bad x coordinate"))?;
            let y: i64 = tokens[7].parse().map_err(|_| err("bad y coordinate"))?;
            components.push((tokens[1].to_string(), tokens[2].to_string(), x, y));
        } else if section == Section::Nets && line.starts_with("- ") {
            let name = line
                .split_whitespace()
                .nth(1)
                .ok_or_else(|| err("missing net name"))?;
            let pins = line.matches("( ").count();
            nets.push((name.to_string(), pins));
        }
    }
    Ok(ParsedDef {
        design: design.ok_or(ParseDefError {
            line: 0,
            message: "no DESIGN statement".to_string(),
        })?,
        components,
        nets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Scheme;

    fn floorplan() -> Floorplan {
        Floorplan::paper_fig5(255, 4, Scheme::CentroSymmetric, 1)
    }

    #[test]
    fn lef_has_macro_structure() {
        let lef = write_lef("CSCELL", CellGeometry::default());
        assert!(lef.contains("MACRO CSCELL"));
        assert!(lef.contains("SIZE 12.000 BY 20.000 ;"));
        assert!(lef.contains("PIN IOUT"));
        assert!(lef.contains("END LIBRARY"));
    }

    #[test]
    fn def_places_all_components() {
        let def = write_def("DAC12_CSARRAY", &floorplan(), CellGeometry::default());
        assert!(def.contains("DESIGN DAC12_CSARRAY ;"));
        assert!(def.contains("COMPONENTS 259 ;"));
        assert!(def.contains("- U_0 CSCELL + PLACED"));
        assert!(def.contains("- U_254 CSCELL + PLACED"));
        assert!(def.contains("- B_3 CSCELL_BIN + PLACED"));
        assert!(def.contains("END DESIGN"));
    }

    #[test]
    fn def_placements_are_on_the_pitch_grid() {
        let geometry = CellGeometry::default();
        let def = write_def("D", &floorplan(), geometry);
        let pitch_x = (geometry.width_um * 1000.0) as i64;
        for line in def.lines().filter(|l| l.contains("+ PLACED")) {
            let coords: Vec<i64> = line
                .split(['(', ')'])
                .nth(1)
                .expect("coordinate group")
                .split_whitespace()
                .map(|t| t.parse().expect("integer coordinate"))
                .collect();
            assert_eq!(coords.len(), 2, "line: {line}");
            assert_eq!(coords[0] % pitch_x, 0, "off-pitch x in {line}");
        }
    }

    #[test]
    fn def_nets_reference_every_unary_component() {
        let def = write_def("D", &floorplan(), CellGeometry::default());
        let iout_line = def
            .lines()
            .find(|l| l.trim_start().starts_with("- IOUT"))
            .expect("IOUT net");
        assert_eq!(iout_line.matches("( U_").count(), 255);
    }

    #[test]
    fn unique_placement_sites() {
        let def = write_def("D", &floorplan(), CellGeometry::default());
        let mut sites = std::collections::HashSet::new();
        for line in def.lines().filter(|l| l.contains("CSCELL + PLACED")) {
            let coords = line.split(['(', ')']).nth(1).expect("coords").to_string();
            assert!(sites.insert(coords), "duplicate placement: {line}");
        }
        assert_eq!(sites.len(), 255);
    }

    #[test]
    #[should_panic(expected = "empty macro name")]
    fn empty_macro_rejected() {
        let _ = write_lef("", CellGeometry::default());
    }

    #[test]
    fn def_round_trips_through_the_parser() {
        let fp = floorplan();
        let geometry = CellGeometry::default();
        let def = write_def("DAC12_CSARRAY", &fp, geometry);
        let parsed = parse_def(&def).expect("own output parses");
        assert_eq!(parsed.design, "DAC12_CSARRAY");
        assert_eq!(parsed.components.len(), 259);
        assert_eq!(parsed.nets.len(), 3);
        // Placement coordinates reproduce the floorplan's grid sites.
        let pitch_x = (geometry.width_um * 1000.0) as i64;
        let pitch_y = (geometry.height_um * 1000.0) as i64;
        for (rank, &site) in fp.unary_order().iter().enumerate() {
            let (row, col) = fp.grid().row_col(site);
            let (name, mac, x, y) = &parsed.components[rank];
            assert_eq!(name, &format!("U_{rank}"));
            assert_eq!(mac, "CSCELL");
            assert_eq!(*x, col as i64 * pitch_x);
            assert_eq!(*y, row as i64 * pitch_y);
        }
        // Every net touches all 255 unary components.
        for (name, pins) in &parsed.nets {
            assert_eq!(*pins, 255, "net {name}");
        }
    }

    #[test]
    fn parser_rejects_garbage_component() {
        let bad = "DESIGN D ;\nCOMPONENTS 1 ;\n  - U_0 CSCELL broken ;\nEND COMPONENTS\n";
        let e = parse_def(bad).expect_err("malformed record");
        assert_eq!(e.line, 3);
    }

    #[test]
    fn parser_requires_design_statement() {
        let e = parse_def("COMPONENTS 0 ;\nEND COMPONENTS\n").expect_err("no design");
        assert!(e.message.contains("DESIGN"));
    }
}
