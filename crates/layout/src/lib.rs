//! Physical-design substrate: current-source array floorplanning,
//! switching-sequence optimisation, systematic-gradient modelling and
//! LEF/DEF emission.
//!
//! Section 4 of the paper compensates *systematic* mismatch (slow
//! process/temperature/electrical gradients across the die) at layout time:
//! an optimal two-dimensional switching scheme for the unary array (after
//! Cong & Geiger \[3]), each source split into 16 sub-units in a double
//! centroid (after van der Plas \[12]), binary cells in dedicated central
//! columns (Fig. 5), and automated placement via Cadence LEF/DEF. This
//! crate rebuilds all of it:
//!
//! * [`grid`] — the array geometry and cell coordinates.
//! * [`gradient`] — linear + quadratic systematic error profiles.
//! * [`schemes`] — switching sequences: sequential, snake, centro-symmetric
//!   pairing, hierarchical, random-walk, and a simulated-annealing
//!   gradient-optimised sequence.
//! * [`centroid`] — double-centroid sub-unit placement and its residual
//!   error under gradients.
//! * [`inl`] — INL of a unary array under a gradient for a given sequence.
//! * [`floorplan`] — the Fig. 5 floorplan: unary grid with central binary
//!   columns; per-cell systematic errors for the full converter.
//! * [`lefdef`] — minimal LEF macro and DEF placement/net writers.
//!
//! # Example
//!
//! ```
//! use ctsdac_layout::grid::ArrayGrid;
//! use ctsdac_layout::gradient::GradientModel;
//! use ctsdac_layout::inl::unary_inl_max;
//! use ctsdac_layout::schemes::Scheme;
//!
//! let grid = ArrayGrid::new(16, 16);
//! let gradient = GradientModel::linear(0.01, 0.3); // 1 % across the die
//! let seq = Scheme::Sequential.order(&grid, 255, 7);
//! let sym = Scheme::CentroSymmetric.order(&grid, 255, 7);
//! let errors = gradient.sample_grid(&grid);
//! // The symmetric sequence cancels the linear gradient far better.
//! let inl_sym = unary_inl_max(&sym, &errors)?;
//! let inl_seq = unary_inl_max(&seq, &errors)?;
//! assert!(inl_sym < inl_seq / 3.0);
//! # Ok::<(), ctsdac_layout::inl::InlError>(())
//! ```

pub mod centroid;
pub mod floorplan;
pub mod gradient;
pub mod grid;
pub mod inl;
pub mod interconnect;
pub mod lefdef;
pub mod routing;
pub mod schemes;

pub use floorplan::Floorplan;
pub use gradient::GradientModel;
pub use grid::ArrayGrid;
pub use inl::InlError;
pub use schemes::Scheme;
