//! Systematic (deterministic) error profiles across the die.
//!
//! "The deterministic process-induced variations (systematic mismatch)
//! produce systematic parameter fluctuations across the surface of the
//! chip" (§4). The standard model (Cong & Geiger \[3]) is a linear gradient
//! (doping/temperature slope) plus a quadratic bowl (die stress, oxide
//! thickness), both expressed as relative current errors.

use crate::grid::ArrayGrid;
use core::fmt;

/// A linear + quadratic gradient profile.
///
/// The relative error at normalised die coordinates `(x, y)` is
///
/// ```text
/// e(x, y) = a_lin·(x·cosθ + y·sinθ) + a_quad·((x−x₀)² + (y−y₀)² − c̄)
/// ```
///
/// where `c̄` recentres the quadratic term to zero mean over the array (a
/// common-mode current error is a gain error, not a linearity error).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientModel {
    /// Linear amplitude (relative error per normalised unit distance).
    pub a_lin: f64,
    /// Direction of the linear gradient, radians.
    pub theta: f64,
    /// Quadratic amplitude.
    pub a_quad: f64,
    /// Centre of the quadratic bowl (normalised coordinates).
    pub center: (f64, f64),
}

impl GradientModel {
    /// A pure linear gradient of amplitude `a_lin` at angle `theta`.
    pub fn linear(a_lin: f64, theta: f64) -> Self {
        Self {
            a_lin,
            theta,
            a_quad: 0.0,
            center: (0.0, 0.0),
        }
    }

    /// A pure quadratic bowl of amplitude `a_quad` centred at `center`.
    pub fn quadratic(a_quad: f64, center: (f64, f64)) -> Self {
        Self {
            a_lin: 0.0,
            theta: 0.0,
            a_quad,
            center,
        }
    }

    /// A combined profile.
    pub fn combined(a_lin: f64, theta: f64, a_quad: f64, center: (f64, f64)) -> Self {
        Self {
            a_lin,
            theta,
            a_quad,
            center,
        }
    }

    /// Raw (non-recentred) error at `(x, y)`.
    pub fn error_at(&self, x: f64, y: f64) -> f64 {
        let lin = self.a_lin * (x * self.theta.cos() + y * self.theta.sin());
        let dx = x - self.center.0;
        let dy = y - self.center.1;
        lin + self.a_quad * (dx * dx + dy * dy)
    }

    /// Per-site relative errors over a grid, recentred to zero mean (a
    /// common shift is a gain error and does not affect linearity).
    pub fn sample_grid(&self, grid: &ArrayGrid) -> Vec<f64> {
        let mut errors: Vec<f64> = (0..grid.n_sites())
            .map(|i| {
                let (x, y) = grid.coords(i);
                self.error_at(x, y)
            })
            .collect();
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        for e in &mut errors {
            *e -= mean;
        }
        errors
    }

    /// Error at a set of explicit positions, recentred to zero mean.
    pub fn sample_positions(&self, positions: &[(f64, f64)]) -> Vec<f64> {
        assert!(!positions.is_empty(), "no positions");
        let mut errors: Vec<f64> = positions
            .iter()
            .map(|&(x, y)| self.error_at(x, y))
            .collect();
        let mean = errors.iter().sum::<f64>() / errors.len() as f64;
        for e in &mut errors {
            *e -= mean;
        }
        errors
    }
}

impl fmt::Display for GradientModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gradient: lin {:.2}% @ {:.0} deg, quad {:.2}% @ ({:.2},{:.2})",
            self.a_lin * 100.0,
            self.theta.to_degrees(),
            self.a_quad * 100.0,
            self.center.0,
            self.center.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_gradient_is_linear() {
        let g = GradientModel::linear(0.02, 0.0);
        assert_eq!(g.error_at(0.0, 0.5), 0.0);
        assert!((g.error_at(1.0, 0.0) - 0.02).abs() < 1e-15);
        assert!((g.error_at(-1.0, 0.0) + 0.02).abs() < 1e-15);
    }

    #[test]
    fn direction_rotates_the_gradient() {
        let g = GradientModel::linear(0.01, core::f64::consts::FRAC_PI_2);
        assert!(g.error_at(1.0, 0.0).abs() < 1e-15);
        assert!((g.error_at(0.0, 1.0) - 0.01).abs() < 1e-15);
    }

    #[test]
    fn quadratic_grows_from_center() {
        let g = GradientModel::quadratic(0.01, (0.2, -0.1));
        assert_eq!(g.error_at(0.2, -0.1), 0.0);
        assert!(g.error_at(1.0, 1.0) > 0.0);
    }

    #[test]
    fn sampled_grid_has_zero_mean() {
        let grid = ArrayGrid::new(16, 16);
        for model in [
            GradientModel::linear(0.01, 0.7),
            GradientModel::quadratic(0.02, (0.3, 0.3)),
            GradientModel::combined(0.01, 1.0, 0.02, (0.0, 0.0)),
        ] {
            let e = model.sample_grid(&grid);
            let mean = e.iter().sum::<f64>() / e.len() as f64;
            assert!(mean.abs() < 1e-15, "mean = {mean} for {model}");
        }
    }

    #[test]
    fn linear_grid_errors_antisymmetric_about_center() {
        let grid = ArrayGrid::new(8, 8);
        let e = GradientModel::linear(0.01, 0.4).sample_grid(&grid);
        for i in 0..grid.n_sites() {
            let j = grid.mirror_site(i);
            assert!((e[i] + e[j]).abs() < 1e-12, "site {i} vs mirror {j}");
        }
    }

    #[test]
    fn sample_positions_matches_grid_sampling() {
        let grid = ArrayGrid::new(4, 4);
        let model = GradientModel::combined(0.01, 0.5, 0.005, (0.1, 0.1));
        let by_grid = model.sample_grid(&grid);
        let positions: Vec<(f64, f64)> = (0..grid.n_sites()).map(|i| grid.coords(i)).collect();
        let by_pos = model.sample_positions(&positions);
        for (a, b) in by_grid.iter().zip(&by_pos) {
            assert!((a - b).abs() < 1e-15);
        }
    }
}
