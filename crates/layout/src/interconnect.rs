//! Interconnect regularity analysis.
//!
//! "It is very important to preserve the regularity in the placement and
//! routing structure ... this equalizes the interconnection length and
//! capacitance for any current source transistor, minimizing in such a way
//! the synchronization errors." (§5.) This module quantifies that: each
//! cell's switch-control wire runs from the latch & switch array (modelled
//! at the top edge of the current-source array, per Fig. 5) down to the
//! cell; the Manhattan length spread across cells translates into per-cell
//! RC skew, which feeds the transient model's timing-error input.

use crate::floorplan::Floorplan;
use core::fmt;

/// Wire-length statistics of a floorplan's control routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireStats {
    /// Mean control-wire length (normalised array units, 2.0 = full side).
    pub mean: f64,
    /// Worst-case spread `max − min`.
    pub spread: f64,
    /// Standard deviation across cells.
    pub sigma: f64,
}

impl fmt::Display for WireStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire length: mean {:.3}, spread {:.3}, sigma {:.3} (normalised)",
            self.mean, self.spread, self.sigma
        )
    }
}

/// Control-wire length of a cell at normalised coordinates `(x, y)` under
/// the Fig. 5 routing style: vertical drop from the latch row (at `y = 1`,
/// the array's top edge) plus the horizontal run along the latch row.
pub fn control_wire_length(x: f64, y: f64) -> f64 {
    (1.0 - y) + x.abs()
}

/// Wire statistics over the unary cells of a floorplan.
pub fn wire_stats(floorplan: &Floorplan) -> WireStats {
    let lengths: Vec<f64> = floorplan
        .unary_positions()
        .iter()
        .map(|&(x, y)| control_wire_length(x, y))
        .collect();
    assert!(!lengths.is_empty(), "empty floorplan");
    let n = lengths.len() as f64;
    let mean = lengths.iter().sum::<f64>() / n;
    let var = lengths.iter().map(|l| (l - mean) * (l - mean)).sum::<f64>() / n;
    let min = lengths.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = lengths.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    WireStats {
        mean,
        spread: max - min,
        sigma: var.sqrt(),
    }
}

/// Per-rank timing skews (s) induced by the wire-length differences:
/// `skew_i = rc_per_unit · (len_i − mean_len)`, where `rc_per_unit` is the
/// RC delay of one normalised length unit. Equalised routing (the paper's
/// tree/regular style) corresponds to `rc_per_unit → 0`.
pub fn timing_skews(floorplan: &Floorplan, rc_per_unit: f64) -> Vec<f64> {
    assert!(
        rc_per_unit.is_finite() && rc_per_unit >= 0.0,
        "invalid RC {rc_per_unit}"
    );
    let lengths: Vec<f64> = floorplan
        .unary_positions()
        .iter()
        .map(|&(x, y)| control_wire_length(x, y))
        .collect();
    let mean = lengths.iter().sum::<f64>() / lengths.len() as f64;
    lengths.iter().map(|l| rc_per_unit * (l - mean)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Scheme;

    fn floorplan(scheme: Scheme) -> Floorplan {
        Floorplan::paper_fig5(255, 4, scheme, 3)
    }

    #[test]
    fn lengths_are_positive_and_bounded() {
        let stats = wire_stats(&floorplan(Scheme::Sequential));
        assert!(stats.mean > 0.0 && stats.mean < 3.0);
        // Corner-to-corner worst case: vertical 2 + horizontal 1 = 3.
        assert!(stats.spread > 0.0 && stats.spread <= 3.0);
    }

    #[test]
    fn wire_stats_are_scheme_independent() {
        // The stats are a property of the *placement set*, not the
        // switching order — every scheme uses the same sites.
        let a = wire_stats(&floorplan(Scheme::Sequential));
        let b = wire_stats(&floorplan(Scheme::GradientOptimized));
        assert!((a.mean - b.mean).abs() < 1e-12);
        assert!((a.sigma - b.sigma).abs() < 1e-12);
    }

    #[test]
    fn skews_are_zero_mean_and_scale_with_rc() {
        let fp = floorplan(Scheme::Snake);
        let skews = timing_skews(&fp, 10e-12);
        let mean: f64 = skews.iter().sum::<f64>() / skews.len() as f64;
        assert!(mean.abs() < 1e-22);
        let doubled = timing_skews(&fp, 20e-12);
        for (a, b) in skews.iter().zip(&doubled) {
            assert!((2.0 * a - b).abs() < 1e-24);
        }
    }

    #[test]
    fn equalised_routing_has_zero_skew() {
        let fp = floorplan(Scheme::Snake);
        assert!(timing_skews(&fp, 0.0).iter().all(|&s| s == 0.0));
    }

    #[test]
    fn nearest_cell_has_shortest_wire() {
        // A cell at the top centre is closest to the latch row.
        assert!(control_wire_length(0.0, 1.0) < control_wire_length(0.9, -1.0));
        assert_eq!(control_wire_length(0.0, 1.0), 0.0);
    }
}
