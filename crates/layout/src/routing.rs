//! Three-metal interconnect model of the current-source array.
//!
//! "The same interconnection scheme proposed in \[12] based on three metal
//! layers is used here" (§4): metal-1 stubs inside the cell, metal-2
//! vertical trunks per column, metal-3 horizontal distribution along the
//! latch row. This module estimates each cell's control-wire capacitance
//! from that scheme and implements the *equalisation* the paper stresses —
//! extending every route to the worst-case length so all cells see the
//! same interconnect delay ("equalizes the interconnection length and
//! capacitance for any current source transistor").

use crate::floorplan::Floorplan;
use crate::lefdef::CellGeometry;
use core::fmt;

/// Per-layer wiring capacitances (F/µm) and the cell pitch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutingModel {
    /// Metal-1 capacitance per µm (dense, close to substrate).
    pub c_m1_per_um: f64,
    /// Metal-2 capacitance per µm.
    pub c_m2_per_um: f64,
    /// Metal-3 capacitance per µm (top layer, lightest).
    pub c_m3_per_um: f64,
    /// Cell geometry (sets the physical pitch of the array).
    pub geometry: CellGeometry,
}

impl Default for RoutingModel {
    fn default() -> Self {
        Self {
            c_m1_per_um: 0.20e-15,
            c_m2_per_um: 0.16e-15,
            c_m3_per_um: 0.12e-15,
            geometry: CellGeometry::default(),
        }
    }
}

/// One cell's routed control wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoutedWire {
    /// Metal-2 (vertical) length, µm.
    pub m2_um: f64,
    /// Metal-3 (horizontal) length, µm.
    pub m3_um: f64,
    /// Fixed metal-1 stub inside the cell, µm.
    pub m1_um: f64,
}

impl RoutedWire {
    /// Total wire capacitance under `model`, in F.
    pub fn capacitance(&self, model: &RoutingModel) -> f64 {
        self.m1_um * model.c_m1_per_um
            + self.m2_um * model.c_m2_per_um
            + self.m3_um * model.c_m3_per_um
    }

    /// Total length in µm.
    pub fn length_um(&self) -> f64 {
        self.m1_um + self.m2_um + self.m3_um
    }
}

impl fmt::Display for RoutedWire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "M1 {:.1} + M2 {:.1} + M3 {:.1} um",
            self.m1_um, self.m2_um, self.m3_um
        )
    }
}

/// Routes every unary cell of the floorplan in switching-rank order:
/// an M2 trunk from the cell up to the latch row plus an M3 run along it,
/// with a fixed 5 µm M1 stub.
pub fn route_cells(floorplan: &Floorplan, model: &RoutingModel) -> Vec<RoutedWire> {
    let grid = floorplan.grid();
    let w = model.geometry.width_um;
    let h = model.geometry.height_um;
    floorplan
        .unary_order()
        .iter()
        .map(|&site| {
            let (row, col) = grid.row_col(site);
            // Latch row sits above the last row; M3 runs from the array's
            // horizontal centre to the cell's column.
            let m2 = (grid.rows() - row) as f64 * h;
            let centre = (grid.cols() as f64 - 1.0) / 2.0;
            let m3 = (col as f64 - centre).abs() * w;
            RoutedWire {
                m1_um: 5.0,
                m2_um: m2,
                m3_um: m3,
            }
        })
        .collect()
}

/// The paper's equalisation: every wire is extended (serpentine dummies on
/// its own layers, preserving the per-layer mix proportionally) until all
/// reach the longest route's capacitance. Returns the equalised wires.
pub fn equalize(wires: &[RoutedWire], model: &RoutingModel) -> Vec<RoutedWire> {
    assert!(!wires.is_empty(), "no wires to equalise");
    let c_max = wires
        .iter()
        .map(|w| w.capacitance(model))
        .fold(f64::NEG_INFINITY, f64::max);
    wires
        .iter()
        .map(|w| {
            let c = w.capacitance(model);
            if c <= 0.0 {
                return *w;
            }
            let scale = c_max / c;
            RoutedWire {
                m1_um: w.m1_um * scale,
                m2_um: w.m2_um * scale,
                m3_um: w.m3_um * scale,
            }
        })
        .collect()
}

/// Capacitance spread statistics `(mean, max − min)` of a routed set, F.
pub fn capacitance_spread(wires: &[RoutedWire], model: &RoutingModel) -> (f64, f64) {
    assert!(!wires.is_empty(), "no wires");
    let caps: Vec<f64> = wires.iter().map(|w| w.capacitance(model)).collect();
    let mean = caps.iter().sum::<f64>() / caps.len() as f64;
    let min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = caps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, max - min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::Scheme;

    fn setup() -> (Vec<RoutedWire>, RoutingModel) {
        let fp = Floorplan::paper_fig5(255, 4, Scheme::Snake, 0);
        let model = RoutingModel::default();
        (route_cells(&fp, &model), model)
    }

    #[test]
    fn every_cell_gets_a_route() {
        let (wires, _) = setup();
        assert_eq!(wires.len(), 255);
        assert!(wires.iter().all(|w| w.length_um() > 0.0));
    }

    #[test]
    fn raw_routes_have_large_capacitance_spread() {
        // Before equalisation the near and far cells differ strongly — the
        // synchronisation hazard the paper warns about.
        let (wires, model) = setup();
        let (mean, spread) = capacitance_spread(&wires, &model);
        assert!(
            spread > 0.3 * mean,
            "spread {spread:.3e} vs mean {mean:.3e}"
        );
    }

    #[test]
    fn equalisation_kills_the_spread() {
        let (wires, model) = setup();
        let eq = equalize(&wires, &model);
        let (_, spread_raw) = capacitance_spread(&wires, &model);
        let (mean_eq, spread_eq) = capacitance_spread(&eq, &model);
        assert!(
            spread_eq < 1e-6 * mean_eq,
            "residual spread {spread_eq:.3e}"
        );
        assert!(spread_eq < spread_raw / 1e3);
    }

    #[test]
    fn equalisation_only_extends() {
        let (wires, model) = setup();
        let eq = equalize(&wires, &model);
        for (raw, e) in wires.iter().zip(&eq) {
            assert!(e.capacitance(&model) >= raw.capacitance(&model) - 1e-24);
        }
    }

    #[test]
    fn cap_magnitude_is_tens_of_ff() {
        // A 16×16 array of 12×20 µm cells: worst route ~350 µm → ~60 fF.
        let (wires, model) = setup();
        let (mean, _) = capacitance_spread(&wires, &model);
        assert!(mean > 5e-15 && mean < 200e-15, "mean cap {mean:.3e} F");
    }

    #[test]
    fn corner_cell_is_the_longest_route() {
        let fp = Floorplan::paper_fig5(255, 4, Scheme::Sequential, 0);
        let model = RoutingModel::default();
        let wires = route_cells(&fp, &model);
        let longest = wires
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.length_um()
                    .partial_cmp(&b.1.length_um())
                    .expect("finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty");
        let site = fp.unary_order()[longest];
        let (row, col) = fp.grid().row_col(site);
        // Bottom row, extreme column.
        assert_eq!(row, 0);
        assert!(col == 0 || col == fp.grid().cols() - 1);
    }
}
