//! Switching sequences for the unary current-source array.
//!
//! The sequence decides how systematic gradient errors accumulate over the
//! thermometer code: a naive row-major scan integrates a linear gradient
//! into a large INL bow, while symmetric and optimised sequences cancel
//! it. The paper uses "an optimal two-dimensional switching scheme" after
//! Cong & Geiger \[3]; here the classic schemes are implemented alongside a
//! simulated-annealing optimiser that directly minimises the worst INL over
//! a canonical set of gradients.

use crate::gradient::GradientModel;
use crate::grid::ArrayGrid;
use crate::inl::unary_inl_max;
use core::fmt;
use ctsdac_stats::rng::{Rng, SliceRandom};

/// A switching-sequence strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Row-major scan — the worst case under a linear gradient.
    Sequential,
    /// Boustrophedon (snake) scan — cancels the row-direction gradient
    /// within row pairs.
    Snake,
    /// Centro-symmetric pairing: sources turn on in point-symmetric pairs
    /// about the array centre, cancelling any linear gradient pairwise.
    CentroSymmetric,
    /// Quadrant round-robin (the spirit of van der Plas' Q² random walk
    /// \[12]): consecutive sources come from different quadrants so no
    /// quadrant's gradient bias accumulates.
    QuadrantRoundRobin,
    /// Seeded random shuffle — spreads gradients statistically.
    Random,
    /// Inward spiral from the array corner — a common manual layout habit,
    /// included as a (poor) baseline.
    Spiral,
    /// Hilbert space-filling curve — keeps consecutive sources physically
    /// close, trading gradient accumulation for routing locality.
    Hilbert,
    /// Simulated-annealing sequence minimising the worst INL over a
    /// canonical gradient set (the Cong–Geiger objective).
    GradientOptimized,
}

impl Scheme {
    /// All schemes, for comparison sweeps.
    pub const ALL: [Scheme; 8] = [
        Scheme::Sequential,
        Scheme::Snake,
        Scheme::CentroSymmetric,
        Scheme::QuadrantRoundRobin,
        Scheme::Random,
        Scheme::Spiral,
        Scheme::Hilbert,
        Scheme::GradientOptimized,
    ];

    /// Produces the switching order: `order[rank]` = grid site switched on
    /// `rank`-th. Exactly `n_sources` distinct sites are used; when the
    /// grid is larger, the sites *furthest from the centre* are dropped
    /// first (dummies live at the periphery, as in real arrays).
    ///
    /// `seed` feeds the stochastic schemes (`Random`,
    /// `GradientOptimized`); deterministic schemes ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `n_sources` is zero or exceeds the grid capacity.
    pub fn order(&self, grid: &ArrayGrid, n_sources: usize, seed: u64) -> Vec<usize> {
        assert!(n_sources > 0, "need at least one source");
        assert!(
            n_sources <= grid.n_sites(),
            "{n_sources} sources exceed {} sites",
            grid.n_sites()
        );
        let usable = usable_sites(grid, n_sources);
        let order = match self {
            Scheme::Sequential => usable,
            Scheme::Snake => snake_order(grid, &usable),
            Scheme::CentroSymmetric => centro_symmetric_order(grid, &usable),
            Scheme::QuadrantRoundRobin => quadrant_order(grid, &usable),
            Scheme::Random => {
                let mut v = usable;
                let mut rng = ctsdac_stats::sample::seeded_rng(seed);
                v.shuffle(&mut rng);
                v
            }
            Scheme::Spiral => spiral_order(grid, &usable),
            Scheme::Hilbert => hilbert_order(grid, &usable),
            Scheme::GradientOptimized => {
                let start = centro_symmetric_order(grid, &usable);
                anneal_order(grid, start, seed)
            }
        };
        debug_assert_eq!(order.len(), n_sources);
        order
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::Sequential => "sequential",
            Scheme::Snake => "snake",
            Scheme::CentroSymmetric => "centro-symmetric",
            Scheme::QuadrantRoundRobin => "quadrant-round-robin",
            Scheme::Random => "random",
            Scheme::Spiral => "spiral",
            Scheme::Hilbert => "hilbert",
            Scheme::GradientOptimized => "gradient-optimized",
        };
        write!(f, "{s}")
    }
}

/// The `n` sites closest to the array centre (row-major order), the rest
/// being dummies.
fn usable_sites(grid: &ArrayGrid, n: usize) -> Vec<usize> {
    let mut sites: Vec<usize> = (0..grid.n_sites()).collect();
    if n < grid.n_sites() {
        sites.sort_by(|&a, &b| {
            let da = dist2(grid, a);
            let db = dist2(grid, b);
            da.total_cmp(&db).then(a.cmp(&b))
        });
        sites.truncate(n);
        sites.sort_unstable(); // restore row-major order
    }
    sites
}

fn dist2(grid: &ArrayGrid, site: usize) -> f64 {
    let (x, y) = grid.coords(site);
    x * x + y * y
}

fn snake_order(grid: &ArrayGrid, usable: &[usize]) -> Vec<usize> {
    let mut order = usable.to_vec();
    order.sort_by_key(|&s| {
        let (r, c) = grid.row_col(s);
        let col_key = if r % 2 == 0 { c } else { grid.cols() - 1 - c };
        (r, col_key)
    });
    order
}

fn centro_symmetric_order(grid: &ArrayGrid, usable: &[usize]) -> Vec<usize> {
    let in_use: std::collections::HashSet<usize> = usable.iter().copied().collect();
    let mut visited = vec![false; grid.n_sites()];
    // Pairs sorted by distance from the centre, innermost first, so the
    // quadratic component also alternates sign early.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    let mut singles: Vec<usize> = Vec::new();
    let mut sorted = usable.to_vec();
    sorted.sort_by(|&a, &b| dist2(grid, a).total_cmp(&dist2(grid, b)).then(a.cmp(&b)));
    for &s in &sorted {
        if visited[s] {
            continue;
        }
        let m = grid.mirror_site(s);
        if m != s && in_use.contains(&m) && !visited[m] {
            visited[s] = true;
            visited[m] = true;
            pairs.push((s, m));
        } else {
            visited[s] = true;
            singles.push(s);
        }
    }
    let mut order = Vec::with_capacity(usable.len());
    // Unpaired (central) sites first, then symmetric pairs.
    order.extend(singles);
    for (a, b) in pairs {
        order.push(a);
        order.push(b);
    }
    order
}

fn quadrant_order(grid: &ArrayGrid, usable: &[usize]) -> Vec<usize> {
    // Partition into quadrants; round-robin in the diagonal-balanced order
    // Q0, Q3, Q1, Q2 so consecutive pairs straddle the centre.
    let mut quadrants: [Vec<usize>; 4] = Default::default();
    for &s in usable {
        let (x, y) = grid.coords(s);
        let q = match (x >= 0.0, y >= 0.0) {
            (false, false) => 0,
            (true, true) => 3,
            (true, false) => 1,
            (false, true) => 2,
        };
        quadrants[q].push(s);
    }
    // Within each quadrant, walk outward from the centre.
    for q in &mut quadrants {
        q.sort_by(|&a, &b| dist2(grid, a).total_cmp(&dist2(grid, b)).then(a.cmp(&b)));
    }
    let mut order = Vec::with_capacity(usable.len());
    let sequence = [0usize, 3, 1, 2];
    let mut idx = [0usize; 4];
    while order.len() < usable.len() {
        for &q in &sequence {
            if idx[q] < quadrants[q].len() {
                order.push(quadrants[q][idx[q]]);
                idx[q] += 1;
            }
        }
    }
    order
}

/// Clockwise inward spiral starting at the top-left corner, restricted to
/// the usable sites.
fn spiral_order(grid: &ArrayGrid, usable: &[usize]) -> Vec<usize> {
    let in_use: std::collections::HashSet<usize> = usable.iter().copied().collect();
    let (rows, cols) = (grid.rows() as i64, grid.cols() as i64);
    let mut order = Vec::with_capacity(usable.len());
    let (mut top, mut bottom, mut left, mut right) = (0i64, rows - 1, 0i64, cols - 1);
    while top <= bottom && left <= right {
        let push = |r: i64, c: i64, order: &mut Vec<usize>| {
            let site = grid.site(r as usize, c as usize);
            if in_use.contains(&site) {
                order.push(site);
            }
        };
        for c in left..=right {
            push(top, c, &mut order);
        }
        for r in top + 1..=bottom {
            push(r, right, &mut order);
        }
        if top < bottom {
            for c in (left..right).rev() {
                push(bottom, c, &mut order);
            }
        }
        if left < right {
            for r in (top + 1..bottom).rev() {
                push(r, left, &mut order);
            }
        }
        top += 1;
        bottom -= 1;
        left += 1;
        right -= 1;
    }
    order
}

/// Hilbert-curve distance of cell `(x, y)` on a `2^k × 2^k` grid.
fn hilbert_d(order_pow: u32, mut x: u64, mut y: u64) -> u64 {
    let n = 1u64 << order_pow;
    let mut d = 0u64;
    let mut s = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate quadrant.
        if ry == 0 {
            if rx == 1 {
                x = s.wrapping_sub(1).wrapping_sub(x) & (n - 1);
                y = s.wrapping_sub(1).wrapping_sub(y) & (n - 1);
            }
            core::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Order along a Hilbert curve covering the smallest `2^k × 2^k` square
/// that contains the grid; sites outside the grid (or unused) are skipped.
fn hilbert_order(grid: &ArrayGrid, usable: &[usize]) -> Vec<usize> {
    let side = grid.rows().max(grid.cols()).next_power_of_two();
    let pow = side.trailing_zeros();
    let mut keyed: Vec<(u64, usize)> = usable
        .iter()
        .map(|&s| {
            let (r, c) = grid.row_col(s);
            (hilbert_d(pow, c as u64, r as u64), s)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().map(|(_, s)| s).collect()
}

/// The canonical gradient set the annealer optimises against (and the
/// comparison sweeps report): two axis-aligned linears, one diagonal, one
/// centred bowl and one off-centre bowl, all at 1 % amplitude.
pub fn canonical_gradients() -> Vec<GradientModel> {
    vec![
        GradientModel::linear(0.01, 0.0),
        GradientModel::linear(0.01, core::f64::consts::FRAC_PI_2),
        GradientModel::linear(0.01, core::f64::consts::FRAC_PI_4),
        GradientModel::quadratic(0.01, (0.0, 0.0)),
        GradientModel::quadratic(0.01, (0.4, -0.3)),
    ]
}

/// Worst INL of an order over the canonical gradient set. Ill-posed
/// candidates (sites outside the grid) cost `+∞` so minimisers discard
/// them instead of panicking.
pub fn canonical_cost(grid: &ArrayGrid, order: &[usize]) -> f64 {
    canonical_gradients()
        .iter()
        .map(|g| unary_inl_max(order, &g.sample_grid(grid)).unwrap_or(f64::INFINITY))
        .fold(0.0f64, f64::max)
}

fn anneal_order(grid: &ArrayGrid, start: Vec<usize>, seed: u64) -> Vec<usize> {
    let mut rng = ctsdac_stats::sample::seeded_rng(seed ^ 0x5eed);
    let gradients: Vec<Vec<f64>> = canonical_gradients()
        .iter()
        .map(|g| g.sample_grid(grid))
        .collect();
    let cost = |order: &[usize]| -> f64 {
        gradients
            .iter()
            .map(|e| unary_inl_max(order, e).unwrap_or(f64::INFINITY))
            .fold(0.0f64, f64::max)
    };
    let mut current = start;
    let mut best = current.clone();
    let mut c_cur = cost(&current);
    let mut c_best = c_cur;
    let n = current.len();
    let iterations = 30_000usize;
    for step in 0..iterations {
        let t = 0.02 * (1.0 - step as f64 / iterations as f64) + 1e-6;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        current.swap(i, j);
        let c_new = cost(&current);
        let accept = c_new <= c_cur || rng.gen_range(0.0..1.0) < ((c_cur - c_new) / t).exp();
        if accept {
            c_cur = c_new;
            if c_new < c_best {
                c_best = c_new;
                best = current.clone();
            }
        } else {
            current.swap(i, j);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_is_permutation(order: &[usize], grid: &ArrayGrid) {
        let mut seen = vec![false; grid.n_sites()];
        for &s in order {
            assert!(s < grid.n_sites());
            assert!(!seen[s], "site {s} repeated");
            seen[s] = true;
        }
    }

    #[test]
    fn all_schemes_produce_valid_orders() {
        let grid = ArrayGrid::new(16, 16);
        for scheme in Scheme::ALL {
            let order = scheme.order(&grid, 255, 3);
            assert_eq!(order.len(), 255, "{scheme}");
            check_is_permutation(&order, &grid);
        }
    }

    #[test]
    fn snake_reverses_odd_rows() {
        let grid = ArrayGrid::new(4, 4);
        let order = Scheme::Snake.order(&grid, 16, 0);
        assert_eq!(&order[..8], &[0, 1, 2, 3, 7, 6, 5, 4]);
    }

    #[test]
    fn centro_symmetric_cancels_linear_gradient() {
        let grid = ArrayGrid::new(16, 16);
        for theta in [0.0, 0.5, 1.2, 2.8] {
            let errors = GradientModel::linear(0.02, theta).sample_grid(&grid);
            let sym = Scheme::CentroSymmetric.order(&grid, 256, 0);
            let seq = Scheme::Sequential.order(&grid, 256, 0);
            let inl_sym = unary_inl_max(&sym, &errors).expect("valid order");
            let inl_seq = unary_inl_max(&seq, &errors).expect("valid order");
            // Pairwise cancellation bounds the symmetric INL by the largest
            // single-site error (0.02 here); sequential integrates the
            // gradient over half the array.
            assert!(
                inl_sym < inl_seq / 3.0,
                "theta {theta}: symmetric {inl_sym} vs sequential {inl_seq}"
            );
            assert!(inl_sym <= 0.02 * 2f64.sqrt() + 1e-12);
        }
    }

    #[test]
    fn quadrant_round_robin_beats_sequential_under_linear_gradient() {
        let grid = ArrayGrid::new(16, 16);
        let errors = GradientModel::linear(0.01, 0.9).sample_grid(&grid);
        let quad = Scheme::QuadrantRoundRobin.order(&grid, 255, 0);
        let seq = Scheme::Sequential.order(&grid, 255, 0);
        let inl_quad = unary_inl_max(&quad, &errors).expect("valid order");
        let inl_seq = unary_inl_max(&seq, &errors).expect("valid order");
        assert!(inl_quad < inl_seq / 2.0);
    }

    #[test]
    fn random_scheme_is_seed_deterministic() {
        let grid = ArrayGrid::new(8, 8);
        let a = Scheme::Random.order(&grid, 63, 42);
        let b = Scheme::Random.order(&grid, 63, 42);
        let c = Scheme::Random.order(&grid, 63, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn annealed_scheme_beats_its_centro_symmetric_start() {
        let grid = ArrayGrid::new(8, 8);
        let start = Scheme::CentroSymmetric.order(&grid, 63, 0);
        let optimized = Scheme::GradientOptimized.order(&grid, 63, 0);
        let c_start = canonical_cost(&grid, &start);
        let c_opt = canonical_cost(&grid, &optimized);
        assert!(
            c_opt <= c_start + 1e-12,
            "annealing regressed: {c_opt} > {c_start}"
        );
    }

    #[test]
    fn optimized_scheme_dominates_sequential_across_gradient_set() {
        let grid = ArrayGrid::new(16, 16);
        let seq = Scheme::Sequential.order(&grid, 255, 0);
        let opt = Scheme::GradientOptimized.order(&grid, 255, 0);
        let c_seq = canonical_cost(&grid, &seq);
        let c_opt = canonical_cost(&grid, &opt);
        assert!(
            c_opt < c_seq / 5.0,
            "optimized {c_opt} not clearly below sequential {c_seq}"
        );
    }

    #[test]
    fn spiral_starts_at_corner_and_ends_central() {
        let grid = ArrayGrid::new(8, 8);
        let order = Scheme::Spiral.order(&grid, 64, 0);
        assert_eq!(order[0], 0);
        let (x, y) = grid.coords(order[63]);
        assert!(x.abs() < 0.3 && y.abs() < 0.3, "ends at ({x},{y})");
    }

    #[test]
    fn hilbert_neighbours_are_physically_adjacent() {
        let grid = ArrayGrid::new(16, 16);
        let order = Scheme::Hilbert.order(&grid, 256, 0);
        for w in order.windows(2) {
            let (r1, c1) = grid.row_col(w[0]);
            let (r2, c2) = grid.row_col(w[1]);
            let dist = r1.abs_diff(r2) + c1.abs_diff(c2);
            assert_eq!(dist, 1, "non-adjacent Hilbert step {w:?}");
        }
    }

    #[test]
    fn hilbert_visits_every_site_once() {
        let grid = ArrayGrid::new(16, 16);
        let order = Scheme::Hilbert.order(&grid, 256, 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256);
    }

    #[test]
    fn locality_schemes_accumulate_gradients_badly() {
        // Spiral and Hilbert keep consecutive sources close, so they behave
        // like sequential under at least one linear gradient — the reason
        // gradient-aware schemes exist.
        let grid = ArrayGrid::new(16, 16);
        let errors = GradientModel::linear(0.01, 0.9).sample_grid(&grid);
        let opt = Scheme::GradientOptimized.order(&grid, 255, 0);
        for scheme in [Scheme::Spiral, Scheme::Hilbert] {
            let order = scheme.order(&grid, 255, 0);
            let inl = unary_inl_max(&order, &errors).expect("valid order");
            let inl_opt = unary_inl_max(&opt, &errors).expect("valid order");
            assert!(inl > 3.0 * inl_opt, "{scheme} unexpectedly good");
        }
    }

    #[test]
    fn dummies_are_peripheral() {
        let grid = ArrayGrid::new(16, 16);
        let order = Scheme::Sequential.order(&grid, 255, 0);
        let used: std::collections::HashSet<usize> = order.iter().copied().collect();
        // The single unused (dummy) site must be a corner (furthest out).
        let dummy = (0..256).find(|s| !used.contains(s)).expect("one dummy");
        let (x, y) = grid.coords(dummy);
        assert!(x.abs() == 1.0 && y.abs() == 1.0, "dummy at ({x},{y})");
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_many_sources_rejected() {
        let grid = ArrayGrid::new(4, 4);
        let _ = Scheme::Sequential.order(&grid, 17, 0);
    }
}
