//! Randomized property tests for the layout substrate.
//!
//! Driven by the in-tree deterministic PRNG; enable with
//! `cargo test --features proptests`.
#![cfg(feature = "proptests")]

use ctsdac_layout::gradient::GradientModel;
use ctsdac_layout::grid::ArrayGrid;
use ctsdac_layout::inl::{unary_inl, unary_inl_max};
use ctsdac_layout::schemes::Scheme;
use ctsdac_stats::rng::{seeded_rng, Rng};

const CASES: usize = 48;

fn arb_grid<R: Rng>(rng: &mut R) -> ArrayGrid {
    ArrayGrid::new(rng.gen_range(2usize..20), rng.gen_range(2usize..20))
}

fn arb_gradient<R: Rng>(rng: &mut R) -> GradientModel {
    GradientModel::combined(
        rng.gen_range(0.0..0.05),
        rng.gen_range(0.0..6.3),
        rng.gen_range(0.0..0.05),
        (rng.gen_range(-0.9..0.9), rng.gen_range(-0.9..0.9)),
    )
}

/// Every scheme yields a valid permutation of distinct sites for any
/// grid and source count.
#[test]
fn schemes_are_permutations() {
    let mut rng = seeded_rng(0x1A40_0001);
    for _ in 0..CASES {
        let grid = arb_grid(&mut rng);
        let frac = rng.gen_range(0.3..1.0);
        let seed = rng.gen_range(0u64..100);
        let n = ((grid.n_sites() as f64 * frac) as usize).max(1);
        for scheme in [
            Scheme::Sequential,
            Scheme::Snake,
            Scheme::CentroSymmetric,
            Scheme::QuadrantRoundRobin,
            Scheme::Random,
            Scheme::Spiral,
            Scheme::Hilbert,
        ] {
            let order = scheme.order(&grid, n, seed);
            assert_eq!(order.len(), n, "{}", scheme);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "{} repeats sites", scheme);
        }
    }
}

/// Sampled gradients always have zero mean (gain, not linearity).
#[test]
fn gradients_zero_mean() {
    let mut rng = seeded_rng(0x1A40_0002);
    for _ in 0..CASES {
        let grid = arb_grid(&mut rng);
        let g = arb_gradient(&mut rng);
        let e = g.sample_grid(&grid);
        let mean = e.iter().sum::<f64>() / e.len() as f64;
        assert!(mean.abs() < 1e-12);
    }
}

/// INL endpoints are exactly zero for any order and error set.
#[test]
fn inl_endpoints_zero() {
    let mut rng = seeded_rng(0x1A40_0003);
    for _ in 0..CASES {
        let grid = arb_grid(&mut rng);
        let g = arb_gradient(&mut rng);
        let seed = rng.gen_range(0u64..100);
        let n = grid.n_sites();
        let order = Scheme::Random.order(&grid, n, seed);
        let errors = g.sample_grid(&grid);
        let inl = unary_inl(&order, &errors).expect("valid order");
        assert!(inl[0].abs() < 1e-12);
        assert!(inl.last().copied().expect("non-empty").abs() < 1e-9);
    }
}

/// INL is invariant under reversing the switching order (the INL
/// profile mirrors, its maximum magnitude is identical).
#[test]
fn inl_reverse_symmetry() {
    let mut rng = seeded_rng(0x1A40_0004);
    for _ in 0..CASES {
        let grid = arb_grid(&mut rng);
        let g = arb_gradient(&mut rng);
        let seed = rng.gen_range(0u64..100);
        let n = grid.n_sites();
        let order = Scheme::Random.order(&grid, n, seed);
        let reversed: Vec<usize> = order.iter().rev().copied().collect();
        let errors = g.sample_grid(&grid);
        let a = unary_inl_max(&order, &errors).expect("valid order");
        let b = unary_inl_max(&reversed, &errors).expect("valid order");
        assert!((a - b).abs() < 1e-9);
    }
}

/// The centro-symmetric scheme bounds the INL under any *linear*
/// gradient by twice the largest single-site error.
#[test]
fn centro_symmetric_bound() {
    let mut rng = seeded_rng(0x1A40_0005);
    for _ in 0..CASES {
        let amp = rng.gen_range(0.001..0.05);
        let theta = rng.gen_range(0.0..6.3);
        let grid = ArrayGrid::new(16, 16);
        let errors = GradientModel::linear(amp, theta).sample_grid(&grid);
        let order = Scheme::CentroSymmetric.order(&grid, 256, 0);
        let max_site = errors.iter().fold(0.0f64, |m, &e| m.max(e.abs()));
        let inl = unary_inl_max(&order, &errors).expect("valid order");
        assert!(inl <= 2.0 * max_site + 1e-12);
    }
}

/// Mirror sites have exactly opposite linear-gradient errors.
#[test]
fn mirror_antisymmetry() {
    let mut rng = seeded_rng(0x1A40_0006);
    for _ in 0..CASES {
        let grid = arb_grid(&mut rng);
        let amp = rng.gen_range(0.001..0.05);
        let theta = rng.gen_range(0.0..6.3);
        let errors = GradientModel::linear(amp, theta).sample_grid(&grid);
        for i in 0..grid.n_sites() {
            let j = grid.mirror_site(i);
            assert!((errors[i] + errors[j]).abs() < 1e-12);
        }
    }
}
