//! Property-based tests for the layout substrate.

use ctsdac_layout::gradient::GradientModel;
use ctsdac_layout::grid::ArrayGrid;
use ctsdac_layout::inl::{unary_inl, unary_inl_max};
use ctsdac_layout::schemes::Scheme;
use proptest::prelude::*;

fn arb_grid() -> impl Strategy<Value = ArrayGrid> {
    (2usize..20, 2usize..20).prop_map(|(r, c)| ArrayGrid::new(r, c))
}

fn arb_gradient() -> impl Strategy<Value = GradientModel> {
    (0.0f64..0.05, 0.0f64..6.3, 0.0f64..0.05, -0.9f64..0.9, -0.9f64..0.9)
        .prop_map(|(al, th, aq, cx, cy)| GradientModel::combined(al, th, aq, (cx, cy)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every scheme yields a valid permutation of distinct sites for any
    /// grid and source count.
    #[test]
    fn schemes_are_permutations(grid in arb_grid(), frac in 0.3f64..1.0, seed in 0u64..100) {
        let n = ((grid.n_sites() as f64 * frac) as usize).max(1);
        for scheme in [Scheme::Sequential, Scheme::Snake, Scheme::CentroSymmetric,
                       Scheme::QuadrantRoundRobin, Scheme::Random, Scheme::Spiral,
                       Scheme::Hilbert] {
            let order = scheme.order(&grid, n, seed);
            prop_assert_eq!(order.len(), n, "{}", scheme);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), n, "{} repeats sites", scheme);
        }
    }

    /// Sampled gradients always have zero mean (gain, not linearity).
    #[test]
    fn gradients_zero_mean(grid in arb_grid(), g in arb_gradient()) {
        let e = g.sample_grid(&grid);
        let mean = e.iter().sum::<f64>() / e.len() as f64;
        prop_assert!(mean.abs() < 1e-12);
    }

    /// INL endpoints are exactly zero for any order and error set.
    #[test]
    fn inl_endpoints_zero(grid in arb_grid(), g in arb_gradient(), seed in 0u64..100) {
        let n = grid.n_sites();
        let order = Scheme::Random.order(&grid, n, seed);
        let errors = g.sample_grid(&grid);
        let inl = unary_inl(&order, &errors);
        prop_assert!(inl[0].abs() < 1e-12);
        prop_assert!(inl.last().copied().expect("non-empty").abs() < 1e-9);
    }

    /// INL is invariant under reversing the switching order (the INL
    /// profile mirrors, its maximum magnitude is identical).
    #[test]
    fn inl_reverse_symmetry(grid in arb_grid(), g in arb_gradient(), seed in 0u64..100) {
        let n = grid.n_sites();
        let order = Scheme::Random.order(&grid, n, seed);
        let reversed: Vec<usize> = order.iter().rev().copied().collect();
        let errors = g.sample_grid(&grid);
        let a = unary_inl_max(&order, &errors);
        let b = unary_inl_max(&reversed, &errors);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// The centro-symmetric scheme bounds the INL under any *linear*
    /// gradient by twice the largest single-site error.
    #[test]
    fn centro_symmetric_bound(amp in 0.001f64..0.05, theta in 0.0f64..6.3) {
        let grid = ArrayGrid::new(16, 16);
        let errors = GradientModel::linear(amp, theta).sample_grid(&grid);
        let order = Scheme::CentroSymmetric.order(&grid, 256, 0);
        let max_site = errors.iter().fold(0.0f64, |m, &e| m.max(e.abs()));
        prop_assert!(unary_inl_max(&order, &errors) <= 2.0 * max_site + 1e-12);
    }

    /// Mirror sites have exactly opposite linear-gradient errors.
    #[test]
    fn mirror_antisymmetry(grid in arb_grid(), amp in 0.001f64..0.05, theta in 0.0f64..6.3) {
        let errors = GradientModel::linear(amp, theta).sample_grid(&grid);
        for i in 0..grid.n_sites() {
            let j = grid.mirror_site(i);
            prop_assert!((errors[i] + errors[j]).abs() < 1e-12);
        }
    }
}
