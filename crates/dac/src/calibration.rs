//! Current-source calibration (trimming) — an extension along the papers
//! the DATE 2003 flow cites as the alternative to intrinsic matching
//! (e.g. Cong & Geiger's self-calibrated 14-bit DAC).
//!
//! Intrinsic accuracy buys INL with silicon area (the whole point of the
//! sizing methodology); calibration buys it with a measure-and-trim loop:
//! each source's error is measured (with finite accuracy) and a small
//! trim DAC subtracts it (with finite resolution and range). This module
//! models that loop so the area-vs-calibration trade can be explored.

use crate::architecture::SegmentedDac;
use crate::errors::CellErrors;
use ctsdac_stats::rng::Rng;
use ctsdac_stats::NormalSampler;

/// Parameters of the measure-and-trim loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Resolution of the per-cell trim DAC in bits.
    pub trim_bits: u32,
    /// Full trim range as a relative current correction (e.g. `0.02` trims
    /// up to ±2 %).
    pub trim_range_rel: f64,
    /// 1-σ error of the current measurement, as a relative current.
    pub sigma_measure: f64,
}

impl CalibrationConfig {
    /// Creates a config, validating the arguments.
    ///
    /// # Panics
    ///
    /// Panics if `trim_bits` is outside `1..=16`, or either analog
    /// parameter is negative/non-finite.
    pub fn new(trim_bits: u32, trim_range_rel: f64, sigma_measure: f64) -> Self {
        assert!((1..=16).contains(&trim_bits), "unsupported trim resolution");
        assert!(
            trim_range_rel.is_finite() && trim_range_rel > 0.0,
            "invalid trim range {trim_range_rel}"
        );
        assert!(
            sigma_measure.is_finite() && sigma_measure >= 0.0,
            "invalid measurement sigma {sigma_measure}"
        );
        Self {
            trim_bits,
            trim_range_rel,
            sigma_measure,
        }
    }

    /// The trim DAC step size (relative current per LSB of trim).
    pub fn trim_step(&self) -> f64 {
        2.0 * self.trim_range_rel / ((1u64 << self.trim_bits) - 1) as f64
    }

    /// Quantises and clamps a requested correction to the trim DAC grid.
    pub fn quantize(&self, correction: f64) -> f64 {
        let step = self.trim_step();
        let code = (correction / step).round();
        let max_code = ((1u64 << self.trim_bits) - 1) as f64 / 2.0;
        code.clamp(-max_code, max_code) * step
    }
}

/// Runs one calibration pass: measures each cell (with noise), programs the
/// nearest trim code, and returns the residual error vector.
pub fn calibrate<R: Rng + ?Sized>(
    dac: &SegmentedDac,
    errors: &CellErrors,
    config: &CalibrationConfig,
    rng: &mut R,
) -> CellErrors {
    let mut sampler = NormalSampler::new();
    let residual = errors
        .rel()
        .iter()
        .map(|&true_err| {
            let measured = true_err + config.sigma_measure * sampler.sample(rng);
            let trim = config.quantize(-measured);
            true_err + trim
        })
        .collect();
    CellErrors::from_rel(dac, residual)
}

/// Residual 1-σ error after ideal-range calibration: the RSS of the trim
/// quantisation noise (`step/√12`) and the measurement error.
pub fn residual_sigma_prediction(config: &CalibrationConfig) -> f64 {
    let q = config.trim_step() / 12f64.sqrt();
    (q * q + config.sigma_measure * config.sigma_measure).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_metrics::{inl_yield_mc, TransferFunction};
    use ctsdac_core::DacSpec;
    use ctsdac_stats::sample::seeded_rng;
    use ctsdac_stats::Summary;

    fn dac() -> SegmentedDac {
        SegmentedDac::new(&DacSpec::paper_12bit())
    }

    #[test]
    fn fine_trim_with_perfect_measurement_leaves_quantisation_noise() {
        let d = dac();
        let config = CalibrationConfig::new(8, 0.05, 0.0);
        let mut rng = seeded_rng(1);
        let raw = CellErrors::random(&d, 0.01, &mut rng);
        let fixed = calibrate(&d, &raw, &config, &mut rng);
        let residual: Summary = fixed.rel().iter().copied().collect();
        let predicted = residual_sigma_prediction(&config);
        assert!(
            residual.std_dev() < 2.0 * predicted,
            "residual sd {} vs predicted {predicted}",
            residual.std_dev()
        );
        let raw_sd: Summary = raw.rel().iter().copied().collect();
        assert!(residual.std_dev() < raw_sd.std_dev() / 10.0);
    }

    #[test]
    fn calibration_rescues_an_undersized_converter() {
        // A converter sized 4× too loose fails the INL yield; calibration
        // recovers it — the trade the calibration literature exploits.
        let spec = DacSpec::paper_12bit();
        let d = dac();
        let sigma = spec.sigma_unit_spec() * 4.0;
        let config = CalibrationConfig::new(6, 4.0 * sigma, sigma / 50.0);
        let mut rng = seeded_rng(2);

        let mut pass_raw = 0u32;
        let mut pass_cal = 0u32;
        let trials = 60;
        for _ in 0..trials {
            let raw = CellErrors::random(&d, sigma, &mut rng);
            if TransferFunction::compute_fast(&d, &raw).inl_max_abs() < 0.5 {
                pass_raw += 1;
            }
            let fixed = calibrate(&d, &raw, &config, &mut rng);
            if TransferFunction::compute_fast(&d, &fixed).inl_max_abs() < 0.5 {
                pass_cal += 1;
            }
        }
        assert!(
            pass_cal > pass_raw,
            "calibration did not help: raw {pass_raw}/{trials}, cal {pass_cal}/{trials}"
        );
        assert!(pass_cal as f64 / trials as f64 > 0.9);
    }

    #[test]
    fn measurement_noise_limits_the_residual() {
        let d = dac();
        let noisy = CalibrationConfig::new(10, 0.05, 5e-3);
        let mut rng = seeded_rng(3);
        let raw = CellErrors::random(&d, 0.01, &mut rng);
        let fixed = calibrate(&d, &raw, &noisy, &mut rng);
        let residual: Summary = fixed.rel().iter().copied().collect();
        // The residual cannot beat the measurement noise.
        assert!(
            residual.std_dev() > 0.5 * 5e-3,
            "residual sd {} below measurement floor",
            residual.std_dev()
        );
    }

    #[test]
    fn out_of_range_errors_are_clamped_not_overcorrected() {
        let d = dac();
        let config = CalibrationConfig::new(8, 0.01, 0.0);
        let mut rel = vec![0.0; d.n_cells()];
        rel[0] = 0.05; // 5 % error, trim range only ±1 %
        let raw = CellErrors::from_rel(&d, rel);
        let mut rng = seeded_rng(4);
        let fixed = calibrate(&d, &raw, &config, &mut rng);
        assert!((fixed.rel()[0] - 0.04).abs() < config.trim_step());
    }

    #[test]
    fn quantize_is_odd_and_bounded() {
        let config = CalibrationConfig::new(4, 0.02, 0.0);
        for &x in &[0.0, 0.003, -0.003, 0.05, -0.05] {
            let q = config.quantize(x);
            assert!((config.quantize(-x) + q).abs() < 1e-15);
            assert!(q.abs() <= 0.02 + 1e-12);
        }
    }

    #[test]
    fn calibrated_yield_via_mc_path() {
        // End-to-end: the calibrated residual sigma, fed back into the
        // analytic yield machinery, predicts near-unity INL yield.
        let spec = DacSpec::paper_12bit();
        let d = dac();
        let config = CalibrationConfig::new(8, 0.02, 1e-4);
        let residual = residual_sigma_prediction(&config);
        let mut rng = seeded_rng(5);
        let y = inl_yield_mc(&d, residual, 0.5, 100, &mut rng).expect("valid MC setup");
        assert!(y.estimate() > 0.95, "yield {}", y.estimate());
        assert!(residual < spec.sigma_unit_spec());
    }

    #[test]
    #[should_panic(expected = "unsupported trim resolution")]
    fn zero_trim_bits_rejected() {
        let _ = CalibrationConfig::new(0, 0.01, 0.0);
    }
}
