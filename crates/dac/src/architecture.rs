//! Segmented DAC architecture: cells, weights, thermometer decoding.
//!
//! The converter of the paper's Fig. 1: `b` binary-weighted cells driven
//! straight from the input word (behind a delay-equalising dummy decoder)
//! plus `2^m − 1` unary cells of weight `2^b` driven by a thermometer
//! decoder. The order in which unary cells turn on (the *switching
//! sequence*) is irrelevant for random mismatch but decides how systematic
//! gradients accumulate — the layout crate optimises it; this module just
//! honours an arbitrary permutation.

use core::fmt;
use ctsdac_core::DacSpec;

/// A segmented current-steering DAC: cell inventory and decoder.
///
/// Cells are indexed `0..n_cells()`: first the `b` binary cells (weights
/// `1, 2, …, 2^{b−1}`), then the `2^m − 1` unary cells (weight `2^b` each).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedDac {
    spec: DacSpec,
    weights: Vec<u64>,
    /// `unary_order[rank]` = cell index (within the unary block) that turns
    /// on `rank`-th.
    unary_order: Vec<usize>,
}

impl SegmentedDac {
    /// Builds the architecture of `spec` with the natural (sequential)
    /// unary switching order.
    pub fn new(spec: &DacSpec) -> Self {
        let b = spec.binary_bits;
        let mut weights: Vec<u64> = (0..b).map(|i| 1u64 << i).collect();
        weights.extend(std::iter::repeat_n(
            spec.unary_weight(),
            spec.unary_source_count(),
        ));
        let unary_order: Vec<usize> = (0..spec.unary_source_count()).collect();
        Self {
            spec: *spec,
            weights,
            unary_order,
        }
    }

    /// Replaces the unary switching order. `order[rank]` names the unary
    /// cell (0-based within the unary block) that turns on `rank`-th.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..unary_source_count()`.
    pub fn with_unary_order(mut self, order: Vec<usize>) -> Self {
        let n = self.spec.unary_source_count();
        assert_eq!(order.len(), n, "order length {} != {n}", order.len());
        let mut seen = vec![false; n];
        for &cell in &order {
            assert!(cell < n, "cell index {cell} out of range");
            assert!(!seen[cell], "cell {cell} appears twice");
            seen[cell] = true;
        }
        self.unary_order = order;
        self
    }

    /// The spec the architecture was built from.
    pub fn spec(&self) -> &DacSpec {
        &self.spec
    }

    /// Total number of cells (binary + unary).
    pub fn n_cells(&self) -> usize {
        self.weights.len()
    }

    /// Number of binary cells.
    pub fn n_binary(&self) -> usize {
        self.spec.binary_bits as usize
    }

    /// Number of unary cells.
    pub fn n_unary(&self) -> usize {
        self.spec.unary_source_count()
    }

    /// Per-cell LSB weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Largest representable code, `2ⁿ − 1`.
    pub fn max_code(&self) -> u64 {
        (1u64 << self.spec.n_bits) - 1
    }

    /// True if `cell` is a binary cell.
    pub fn is_binary(&self, cell: usize) -> bool {
        cell < self.n_binary()
    }

    /// Decodes `code` into per-cell switch states.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds [`Self::max_code`].
    pub fn decode(&self, code: u64) -> Vec<bool> {
        assert!(code <= self.max_code(), "code {code} out of range");
        let b = self.spec.binary_bits;
        let mut states = vec![false; self.n_cells()];
        for (i, state) in states.iter_mut().take(b as usize).enumerate() {
            *state = (code >> i) & 1 == 1;
        }
        let thermometer = (code >> b) as usize;
        for rank in 0..thermometer {
            states[b as usize + self.unary_order[rank]] = true;
        }
        states
    }

    /// Ideal output level in LSBs for `code` (sanity: equals `code`).
    pub fn ideal_level(&self, code: u64) -> f64 {
        self.decode(code)
            .iter()
            .zip(&self.weights)
            .filter(|&(&on, _)| on)
            .map(|(_, &w)| w as f64)
            .sum()
    }

    /// Output level in LSBs for `code` under per-cell relative current
    /// errors (`errors[i]` = ΔI/I of cell `i`).
    ///
    /// # Panics
    ///
    /// Panics if `errors.len() != n_cells()`.
    pub fn output_level(&self, code: u64, errors: &[f64]) -> f64 {
        assert_eq!(errors.len(), self.n_cells(), "error vector length mismatch");
        self.decode(code)
            .iter()
            .zip(self.weights.iter().zip(errors))
            .filter(|&(&on, _)| on)
            .map(|(_, (&w, &e))| w as f64 * (1.0 + e))
            .sum()
    }

    /// The global cell index of the unary source that turns on `rank`-th.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= n_unary()`.
    pub fn unary_cell_at_rank(&self, rank: usize) -> usize {
        assert!(rank < self.n_unary(), "rank {rank} out of range");
        self.n_binary() + self.unary_order[rank]
    }

    /// Which cells change state between two codes: `(turning_on,
    /// turning_off)` cell indices.
    pub fn switching_cells(&self, from: u64, to: u64) -> (Vec<usize>, Vec<usize>) {
        let a = self.decode(from);
        let b = self.decode(to);
        let mut on = Vec::new();
        let mut off = Vec::new();
        for i in 0..self.n_cells() {
            match (a[i], b[i]) {
                (false, true) => on.push(i),
                (true, false) => off.push(i),
                _ => {}
            }
        }
        (on, off)
    }
}

impl fmt::Display for SegmentedDac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-bit segmented DAC: {} binary + {} unary cells",
            self.spec.n_bits,
            self.n_binary(),
            self.n_unary()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dac() -> SegmentedDac {
        SegmentedDac::new(&DacSpec::paper_12bit())
    }

    #[test]
    fn cell_inventory_matches_spec() {
        let d = dac();
        assert_eq!(d.n_cells(), 259);
        assert_eq!(d.n_binary(), 4);
        assert_eq!(d.n_unary(), 255);
        assert_eq!(&d.weights()[..4], &[1, 2, 4, 8]);
        assert!(d.weights()[4..].iter().all(|&w| w == 16));
    }

    #[test]
    fn total_weight_covers_full_scale() {
        let d = dac();
        let total: u64 = d.weights().iter().sum();
        assert_eq!(total, d.max_code());
    }

    #[test]
    fn ideal_level_equals_code_for_every_code() {
        let spec = DacSpec::new(
            8,
            3,
            0.99,
            DacSpec::paper_12bit().env,
            DacSpec::paper_12bit().tech,
        );
        let d = SegmentedDac::new(&spec);
        for code in 0..=d.max_code() {
            assert_eq!(d.ideal_level(code), code as f64, "code {code}");
        }
    }

    #[test]
    fn decode_is_monotone_in_on_count_within_unary() {
        let d = dac();
        let at = |code: u64| d.decode(code).iter().filter(|&&s| s).count();
        // Stepping by one unary weight adds exactly one unary cell.
        let base = 16 * 7;
        assert_eq!(at(base as u64 + 16) - at(base as u64), 1);
    }

    #[test]
    fn custom_unary_order_changes_which_cell_fires_first() {
        let spec = DacSpec::new(
            6,
            2,
            0.99,
            DacSpec::paper_12bit().env,
            DacSpec::paper_12bit().tech,
        );
        let n = spec.unary_source_count();
        let reversed: Vec<usize> = (0..n).rev().collect();
        let d = SegmentedDac::new(&spec).with_unary_order(reversed);
        let states = d.decode(4); // one unary cell on
        let unary_states = &states[2..];
        assert!(unary_states[n - 1]);
        assert!(!unary_states[0]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_rejected() {
        let spec = DacSpec::new(
            6,
            2,
            0.99,
            DacSpec::paper_12bit().env,
            DacSpec::paper_12bit().tech,
        );
        let n = spec.unary_source_count();
        let mut order: Vec<usize> = (0..n).collect();
        order[1] = 0;
        let _ = SegmentedDac::new(&spec).with_unary_order(order);
    }

    #[test]
    fn output_level_applies_errors_with_weight() {
        let d = dac();
        let mut errors = vec![0.0; d.n_cells()];
        errors[3] = 0.01; // binary weight-8 cell 1 % heavy
        let level = d.output_level(8, &errors);
        assert!((level - 8.08).abs() < 1e-12);
    }

    #[test]
    fn switching_cells_at_major_carry() {
        let d = dac();
        // 15 -> 16: all four binary cells turn off, one unary turns on.
        let (on, off) = d.switching_cells(15, 16);
        assert_eq!(on.len(), 1);
        assert_eq!(off.len(), 4);
        assert!(on[0] >= 4);
        assert!(off.iter().all(|&c| c < 4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_code_rejected() {
        let d = dac();
        let _ = d.decode(4096);
    }
}
