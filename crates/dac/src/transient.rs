//! Sample-accurate transient simulation of the converter output.
//!
//! The output waveform is the superposition of per-edge transitions, each
//! settling with the exact two-pole step response of eq. (13), plus switch
//! feedthrough kicks and binary-path timing skew. Cells switching at the
//! same instant are aggregated into one transition, so the active-event
//! list stays tiny regardless of resolution.
//!
//! This is the behavioural stand-in for the paper's transistor-level
//! transient simulation: Fig. 6 (full-scale settling ≈ 2.5 ns) and the
//! waveform behind Fig. 8 are regenerated from it.

use crate::architecture::SegmentedDac;
use crate::errors::CellErrors;
use ctsdac_circuit::poles::TwoPoles;
use ctsdac_circuit::settling::two_pole_step_response;
use ctsdac_stats::rng::Rng;
use ctsdac_stats::NormalSampler;

/// Configuration of the transient model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Update (clock) rate in S/s.
    pub fs: f64,
    /// Dense-waveform points per clock period (power of two for FFTs).
    pub oversample: usize,
    /// Time constant of the output pole, s.
    pub tau1: f64,
    /// Time constant of the internal pole, s.
    pub tau2: f64,
    /// Extra delay of the binary path relative to the thermometer path, s
    /// (the dummy decoder equalises it; residual skew remains).
    pub binary_skew: f64,
    /// Feedthrough kick amplitude per switching cell, in LSB.
    pub feedthrough_lsb: f64,
    /// RMS clock jitter, s.
    pub jitter_sigma: f64,
}

impl TransientConfig {
    /// Builds a config at clock rate `fs` from a sized cell's pole model,
    /// with zero skew/feedthrough/jitter (add them with the `with_*`
    /// methods).
    ///
    /// # Panics
    ///
    /// Panics if `fs` is not positive.
    pub fn from_poles(fs: f64, poles: &TwoPoles) -> Self {
        assert!(fs > 0.0, "invalid sample rate {fs}");
        let (tau1, tau2) = poles.taus();
        Self {
            fs,
            oversample: 8,
            tau1,
            tau2,
            binary_skew: 0.0,
            feedthrough_lsb: 0.0,
            jitter_sigma: 0.0,
        }
    }

    /// Sets the binary-path skew.
    pub fn with_binary_skew(mut self, skew: f64) -> Self {
        self.binary_skew = skew;
        self
    }

    /// Sets the feedthrough kick amplitude.
    pub fn with_feedthrough(mut self, lsb: f64) -> Self {
        self.feedthrough_lsb = lsb;
        self
    }

    /// Sets the RMS clock jitter.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative.
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "negative jitter {sigma}");
        self.jitter_sigma = sigma;
        self
    }

    /// Sets the oversampling factor.
    ///
    /// # Panics
    ///
    /// Panics if `osr` is not a power of two.
    pub fn with_oversample(mut self, osr: usize) -> Self {
        assert!(
            osr.is_power_of_two(),
            "oversample {osr} must be a power of two"
        );
        self.oversample = osr;
        self
    }

    /// Clock period, s.
    pub fn period(&self) -> f64 {
        1.0 / self.fs
    }
}

/// One aggregated settling transition or feedthrough kick.
#[derive(Debug, Clone, Copy)]
struct Event {
    t0: f64,
    /// Step amplitude in LSB (zero for pure kicks).
    step_lsb: f64,
    /// Feedthrough kick amplitude in LSB (zero for pure steps).
    kick_lsb: f64,
}

/// The transient simulator.
///
/// # Examples
///
/// ```
/// use ctsdac_core::DacSpec;
/// use ctsdac_dac::architecture::SegmentedDac;
/// use ctsdac_dac::errors::CellErrors;
/// use ctsdac_dac::transient::{TransientConfig, TransientSim};
/// use ctsdac_circuit::poles::TwoPoles;
/// use ctsdac_stats::sample::seeded_rng;
///
/// let spec = DacSpec::paper_12bit();
/// let dac = SegmentedDac::new(&spec);
/// let errors = CellErrors::ideal(&dac);
/// let poles = TwoPoles { p1_hz: 300e6, p2_hz: 900e6 };
/// let config = TransientConfig::from_poles(400e6, &poles);
/// let sim = TransientSim::new(&dac, &errors, config);
/// let mut rng = seeded_rng(0);
/// let wave = sim.dense_waveform(&[0, 4095, 4095, 4095], &mut rng);
/// // The full-scale step eventually reaches the top code.
/// assert!((wave.last().copied().unwrap() - 4095.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TransientSim<'a> {
    dac: &'a SegmentedDac,
    errors: &'a CellErrors,
    config: TransientConfig,
}

impl<'a> TransientSim<'a> {
    /// Creates a simulator over one converter realisation.
    pub fn new(dac: &'a SegmentedDac, errors: &'a CellErrors, config: TransientConfig) -> Self {
        Self {
            dac,
            errors,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TransientConfig {
        &self.config
    }

    /// Dense output waveform for the given code sequence:
    /// `codes.len() × oversample` points at spacing `T/oversample`, in LSB.
    ///
    /// The first code is applied as the initial (settled) state.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty.
    pub fn dense_waveform<R: Rng + ?Sized>(&self, codes: &[u64], rng: &mut R) -> Vec<f64> {
        assert!(!codes.is_empty(), "empty code sequence");
        let cfg = &self.config;
        let period = cfg.period();
        let dt = period / cfg.oversample as f64;
        let tau_slow = cfg.tau1.max(cfg.tau2);
        // After this age a transition is ≥ 12τ settled: fold into baseline.
        let horizon = 14.0 * tau_slow;
        let mut sampler = NormalSampler::new();

        let mut baseline = self.dac.output_level(codes[0], self.errors.rel());
        let mut prev_code = codes[0];
        let mut active: Vec<Event> = Vec::new();
        let mut out = Vec::with_capacity(codes.len() * cfg.oversample);

        for (k, &code) in codes.iter().enumerate() {
            let t_edge = k as f64 * period
                + if cfg.jitter_sigma > 0.0 {
                    cfg.jitter_sigma * sampler.sample(rng)
                } else {
                    0.0
                };
            if k > 0 && code != prev_code {
                self.push_edge_events(prev_code, code, t_edge, &mut active);
            }
            prev_code = code;

            for i in 0..cfg.oversample {
                let t = k as f64 * period + (i as f64 + 1.0) * dt;
                // Fold fully settled events into the baseline.
                active.retain(|e| {
                    if t - e.t0 > horizon {
                        baseline += e.step_lsb;
                        false
                    } else {
                        true
                    }
                });
                let mut y = baseline;
                for e in &active {
                    let age = t - e.t0;
                    if age <= 0.0 {
                        continue;
                    }
                    y += e.step_lsb * two_pole_step_response(age, cfg.tau1, cfg.tau2);
                    if e.kick_lsb != 0.0 {
                        // Feedthrough: impulse through the output pole.
                        y += e.kick_lsb
                            * (age / cfg.tau1)
                            * (-age / cfg.tau1).exp()
                            * core::f64::consts::E;
                    }
                }
                out.push(y);
            }
        }
        out
    }

    /// Output sampled once per clock, at the end of each period (the value
    /// a following coherent sampler would capture). Length = `codes.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty.
    pub fn sampled_output<R: Rng + ?Sized>(&self, codes: &[u64], rng: &mut R) -> Vec<f64> {
        let dense = self.dense_waveform(codes, rng);
        dense
            .chunks(self.config.oversample)
            .filter_map(|chunk| chunk.last().copied())
            .collect()
    }

    /// Dense *differential* output waveform — what the paper actually
    /// DFTs ("the differential output waveform", §3). The complementary
    /// output carries the complement code `FS − code`; switch feedthrough
    /// couples with the *same* polarity into both sides (both gates slew
    /// at every edge), so it cancels in the difference, while the wanted
    /// steps and the skew-induced code errors are differential and double.
    ///
    /// Returned in LSB, centred on zero (`+FS/2 … −FS/2`).
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty.
    pub fn dense_waveform_differential<R: Rng + ?Sized>(
        &self,
        codes: &[u64],
        rng: &mut R,
    ) -> Vec<f64> {
        assert!(!codes.is_empty(), "empty code sequence");
        let fs_code = self.dac.max_code();
        let complement: Vec<u64> = codes.iter().map(|&c| fs_code - c).collect();
        // One shared jitter stream must drive both phases: with jitter off
        // this is exact; with jitter on, clone the RNG state by re-seeding
        // is not possible generically, so jitter is required to be off.
        assert!(
            self.config.jitter_sigma == 0.0,
            "differential waveform requires jitter applied at code generation \
             (see SineTest::run_jittered), not edge jitter"
        );
        let plus = self.dense_waveform(codes, rng);
        let minus = self.dense_waveform(&complement, rng);
        plus.iter()
            .zip(&minus)
            .map(|(p, m)| (p - m) / 2.0)
            .collect()
    }

    /// Full-scale settling measurement (the paper's Fig. 6 inset): applies
    /// a zero→full-scale step and returns `(waveform, settling_time)` where
    /// the settling time is the last instant the output deviates more than
    /// half an LSB from its final value.
    pub fn full_scale_settling<R: Rng + ?Sized>(&self, rng: &mut R) -> (Vec<f64>, f64) {
        let cfg = &self.config;
        // Hold the step long enough to settle: enough periods to cover 16τ.
        let periods_needed = ((16.0 * cfg.tau1.max(cfg.tau2)) / cfg.period()).ceil() as usize + 2;
        let mut codes = vec![0u64];
        codes.extend(std::iter::repeat_n(self.dac.max_code(), periods_needed));
        let wave = self.dense_waveform(&codes, rng);
        let final_level = wave.last().copied().unwrap_or(0.0);
        let dt = cfg.period() / cfg.oversample as f64;
        let step_start = cfg.period(); // the edge fires at t = T
        let mut t_settle = 0.0;
        for (i, &y) in wave.iter().enumerate() {
            let t = (i + 1) as f64 * dt;
            if t > step_start && (y - final_level).abs() > 0.5 {
                t_settle = t - step_start;
            }
        }
        (wave, t_settle)
    }

    fn push_edge_events(&self, from: u64, to: u64, t_edge: f64, active: &mut Vec<Event>) {
        let (on, off) = self.dac.switching_cells(from, to);
        let mut unary_step = 0.0;
        let mut binary_step = 0.0;
        let mut unary_count = 0usize;
        let mut binary_count = 0usize;
        let weights = self.dac.weights();
        let rel = self.errors.rel();
        for &cell in &on {
            let amp = weights[cell] as f64 * (1.0 + rel[cell]);
            if self.dac.is_binary(cell) {
                binary_step += amp;
                binary_count += 1;
            } else {
                unary_step += amp;
                unary_count += 1;
            }
        }
        for &cell in &off {
            let amp = weights[cell] as f64 * (1.0 + rel[cell]);
            if self.dac.is_binary(cell) {
                binary_step -= amp;
                binary_count += 1;
            } else {
                unary_step -= amp;
                unary_count += 1;
            }
        }
        let ft = self.config.feedthrough_lsb;
        if unary_step != 0.0 || unary_count > 0 {
            active.push(Event {
                t0: t_edge,
                step_lsb: unary_step,
                kick_lsb: ft * unary_count as f64,
            });
        }
        if binary_step != 0.0 || binary_count > 0 {
            active.push(Event {
                t0: t_edge + self.config.binary_skew,
                step_lsb: binary_step,
                kick_lsb: ft * binary_count as f64,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsdac_core::DacSpec;
    use ctsdac_stats::sample::seeded_rng;

    fn setup() -> (SegmentedDac, TransientConfig) {
        let spec = DacSpec::paper_12bit();
        let dac = SegmentedDac::new(&spec);
        let poles = TwoPoles {
            p1_hz: 250e6,
            p2_hz: 800e6,
        };
        let config = TransientConfig::from_poles(400e6, &poles);
        (dac, config)
    }

    #[test]
    fn constant_code_is_flat() {
        let (dac, config) = setup();
        let errors = CellErrors::ideal(&dac);
        let sim = TransientSim::new(&dac, &errors, config);
        let mut rng = seeded_rng(1);
        let wave = sim.dense_waveform(&[2048; 8], &mut rng);
        assert!(wave.iter().all(|&y| (y - 2048.0).abs() < 1e-9));
    }

    #[test]
    fn step_settles_to_target() {
        let (dac, config) = setup();
        let errors = CellErrors::ideal(&dac);
        let sim = TransientSim::new(&dac, &errors, config);
        let mut rng = seeded_rng(2);
        let codes = vec![0, 4095, 4095, 4095, 4095, 4095, 4095, 4095];
        let wave = sim.dense_waveform(&codes, &mut rng);
        let last = *wave.last().expect("non-empty");
        assert!((last - 4095.0).abs() < 0.5, "final = {last}");
        // Just after the edge the response is still far from the target
        // (two-pole settling, not an instantaneous step).
        let just_after_edge = config.oversample;
        assert!(wave[just_after_edge] > 0.0 && wave[just_after_edge] < 2000.0);
    }

    #[test]
    fn full_scale_settling_matches_two_pole_theory() {
        let (dac, config) = setup();
        let errors = CellErrors::ideal(&dac);
        let sim = TransientSim::new(&dac, &errors, config);
        let mut rng = seeded_rng(3);
        let (_, t_settle) = sim.full_scale_settling(&mut rng);
        let poles = TwoPoles {
            p1_hz: 250e6,
            p2_hz: 800e6,
        };
        let expected = ctsdac_circuit::settling::settling_time_two_pole(&poles, 12);
        // The dense grid quantises the measurement to dt.
        let dt = config.period() / config.oversample as f64;
        assert!(
            (t_settle - expected).abs() < 4.0 * dt,
            "measured {t_settle}, expected {expected}"
        );
    }

    #[test]
    fn binary_skew_creates_carry_glitch() {
        let (dac, base) = setup();
        let errors = CellErrors::ideal(&dac);
        let mut rng = seeded_rng(4);
        // Code 15 -> 16: binary off (−15), unary on (+16). With skew the
        // unary fires first: momentary overshoot above 16.
        let codes = vec![15, 16, 16, 16];
        let clean = TransientSim::new(&dac, &errors, base).dense_waveform(&codes, &mut rng);
        let skewed_cfg = base.with_binary_skew(0.3e-9).with_oversample(64);
        let mut rng2 = seeded_rng(4);
        let skewed = TransientSim::new(&dac, &errors, skewed_cfg).dense_waveform(&codes, &mut rng2);
        let max_clean = clean.iter().fold(f64::MIN, |m, &y| m.max(y));
        let max_skewed = skewed.iter().fold(f64::MIN, |m, &y| m.max(y));
        assert!(
            max_skewed > max_clean + 1.0,
            "no glitch: clean max {max_clean}, skewed max {max_skewed}"
        );
    }

    #[test]
    fn feedthrough_adds_spikes_on_otherwise_clean_transition() {
        let (dac, base) = setup();
        let errors = CellErrors::ideal(&dac);
        // Unary-only step (code 16 -> 32): one cell on, no binary activity.
        let codes = vec![16, 32, 32, 32];
        let mut rng = seeded_rng(5);
        let clean = TransientSim::new(&dac, &errors, base).dense_waveform(&codes, &mut rng);
        let ft_cfg = base.with_feedthrough(2.0);
        let mut rng2 = seeded_rng(5);
        let kicked = TransientSim::new(&dac, &errors, ft_cfg).dense_waveform(&codes, &mut rng2);
        let overshoot = kicked
            .iter()
            .zip(&clean)
            .map(|(a, b)| a - b)
            .fold(f64::MIN, f64::max);
        assert!(overshoot > 0.5, "overshoot = {overshoot}");
    }

    #[test]
    fn sampled_output_tracks_codes_when_settled() {
        let (dac, config) = setup();
        let errors = CellErrors::ideal(&dac);
        let sim = TransientSim::new(&dac, &errors, config);
        let mut rng = seeded_rng(6);
        // Slow code changes (every sample small step): end-of-period values
        // should be close to the codes.
        let codes: Vec<u64> = (0..32).map(|i| 100 + i).collect();
        let sampled = sim.sampled_output(&codes, &mut rng);
        for (k, (&code, &y)) in codes.iter().zip(&sampled).enumerate().skip(1) {
            assert!(
                (y - code as f64).abs() < 0.6,
                "sample {k}: y = {y} for code {code}"
            );
        }
    }

    #[test]
    fn mismatch_shifts_settled_levels() {
        let (dac, config) = setup();
        let mut rng = seeded_rng(9);
        let errors = CellErrors::random(&dac, 0.01, &mut rng);
        let sim = TransientSim::new(&dac, &errors, config);
        let codes = vec![2048; 4];
        let wave = sim.dense_waveform(&codes, &mut rng);
        let expected = dac.output_level(2048, errors.rel());
        assert!((wave[0] - expected).abs() < 1e-9);
        assert!((expected - 2048.0).abs() > 1e-3, "mismatch had no effect");
    }

    #[test]
    fn differential_output_is_centred_and_doubled() {
        let (dac, config) = setup();
        let errors = CellErrors::ideal(&dac);
        let sim = TransientSim::new(&dac, &errors, config);
        let mut rng = seeded_rng(31);
        // Settled mid-scale: differential reads ~+0.5 LSB (2048 vs 2047).
        let wave = sim.dense_waveform_differential(&[2048; 4], &mut rng);
        assert!(
            wave.iter().all(|&y| (y - 0.5).abs() < 1e-9),
            "{:?}",
            &wave[..2]
        );
        // Full scale: +FS/2.
        let mut rng2 = seeded_rng(31);
        let top = sim.dense_waveform_differential(&[4095; 4], &mut rng2);
        assert!((top[0] - 4095.0 / 2.0 * 2.0 + 4095.0 / 2.0).abs() < 4096.0); // sanity
        assert!((top.last().copied().expect("non-empty") - 2047.5).abs() < 1e-6);
    }

    #[test]
    fn feedthrough_cancels_differentially() {
        let (dac, base) = setup();
        let errors = CellErrors::ideal(&dac);
        let config = base.with_feedthrough(1.0).with_oversample(64);
        let sim = TransientSim::new(&dac, &errors, config);
        let codes = vec![16, 32, 32, 32];
        let mut rng = seeded_rng(32);
        let single = sim.dense_waveform(&codes, &mut rng);
        let mut rng2 = seeded_rng(32);
        let diff = sim.dense_waveform_differential(&codes, &mut rng2);
        // Single-ended: kicks overshoot the settled value. Differential:
        // the common-mode kick cancels, so the worst overshoot above the
        // final level is much smaller.
        let overshoot = |w: &[f64], target: f64| w.iter().fold(0.0f64, |m, &y| m.max(y - target));
        let os_single = overshoot(&single, 32.0);
        let os_diff = overshoot(&diff, (32.0 - (4095.0 - 32.0)) / 2.0 + 2047.5);
        assert!(
            os_diff < os_single / 5.0,
            "differential overshoot {os_diff} vs single-ended {os_single}"
        );
    }

    #[test]
    #[should_panic(expected = "requires jitter applied at code generation")]
    fn differential_rejects_edge_jitter() {
        let (dac, base) = setup();
        let errors = CellErrors::ideal(&dac);
        let sim = TransientSim::new(&dac, &errors, base.with_jitter(1e-12));
        let mut rng = seeded_rng(0);
        let _ = sim.dense_waveform_differential(&[0, 1], &mut rng);
    }

    #[test]
    #[should_panic(expected = "empty code sequence")]
    fn empty_codes_rejected() {
        let (dac, config) = setup();
        let errors = CellErrors::ideal(&dac);
        let sim = TransientSim::new(&dac, &errors, config);
        let mut rng = seeded_rng(0);
        let _ = sim.dense_waveform(&[], &mut rng);
    }
}
