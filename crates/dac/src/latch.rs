//! Latch and reduced-swing driver model: the crossing-point study.
//!
//! "A latch is placed just before the switch transistors ... to minimize
//! any timing error. ... A driver circuit with a reduced swing placed
//! between the latch and the switch reduces the clock feedthrough to the
//! output node as well. The latch circuit complementary output levels and
//! crossing point are designed to minimize glitches." (§1–2.)
//!
//! The model: the two complementary gate drives are linear ramps crossing
//! at a programmable fraction of the swing. Three glitch mechanisms are
//! evaluated over the transition window:
//!
//! * **current dip** — if the crossing is too *low*, both switches turn off
//!   momentarily and the cell current has nowhere to go (the CS node
//!   collapses): charge is missing from the output;
//! * **both-on interval** — if the crossing is too *high*, both switches
//!   conduct for a while, splitting the cell current and smearing the
//!   switching instant (a code-dependent timing error);
//! * **clock feedthrough** — gate-drain coupling of the ramps, proportional
//!   to swing and C_GD, independent of the crossing point (the reason for
//!   the reduced-swing driver).

use core::fmt;
use ctsdac_circuit::cell::{CellEnvironment, SizedCell};
use ctsdac_process::capacitance::DeviceCaps;

/// The latch/driver output stage driving one differential switch pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatchDriver {
    /// Low gate level in V.
    pub v_low: f64,
    /// High gate level in V.
    pub v_high: f64,
    /// 10–90 % ramp time of the gate drive, s.
    pub rise_time: f64,
    /// Crossing point of the complementary outputs, as a fraction of the
    /// swing (0 = cross at `v_low`, 1 = at `v_high`).
    pub crossing: f64,
}

impl LatchDriver {
    /// Creates a driver, validating the arguments.
    ///
    /// # Panics
    ///
    /// Panics if the levels are not ordered, `rise_time` is not positive,
    /// or `crossing` is outside `[0, 1]`.
    pub fn new(v_low: f64, v_high: f64, rise_time: f64, crossing: f64) -> Self {
        assert!(v_high > v_low, "levels not ordered: {v_low}..{v_high}");
        assert!(
            rise_time.is_finite() && rise_time > 0.0,
            "invalid rise time {rise_time}"
        );
        assert!(
            (0.0..=1.0).contains(&crossing),
            "invalid crossing {crossing}"
        );
        Self {
            v_low,
            v_high,
            rise_time,
            crossing,
        }
    }

    /// Swing of the driver output.
    pub fn swing(&self) -> f64 {
        self.v_high - self.v_low
    }

    /// The two complementary gate voltages at time `t`; the ramps are timed
    /// so they *cross* at the requested fraction of the swing at `t = 0`.
    pub fn gates(&self, t: f64) -> (f64, f64) {
        let swing = self.swing();
        let slope = swing / self.rise_time;
        let v_cross = self.v_low + self.crossing * swing;
        // Rising gate passes v_cross at t = 0; falling gate likewise.
        let rising = (v_cross + slope * t).clamp(self.v_low, self.v_high);
        let falling = (v_cross - slope * t).clamp(self.v_low, self.v_high);
        (rising, falling)
    }
}

impl fmt::Display for LatchDriver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "driver {:.2}-{:.2} V, tr = {:.0} ps, crossing {:.0} %",
            self.v_low,
            self.v_high,
            self.rise_time * 1e12,
            self.crossing * 100.0
        )
    }
}

/// Glitch metrics of one switching event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchEventMetrics {
    /// Charge missing from the output because the cell current had no path
    /// (both switches starved), in C.
    pub dip_charge: f64,
    /// Time both switches conduct more than 10 % of the cell current, s.
    pub both_on_time: f64,
    /// Feedthrough charge coupled to the output through both C_GD, in C.
    pub feedthrough_charge: f64,
}

impl SwitchEventMetrics {
    /// A single scalar glitch figure: dip charge plus the timing-smear
    /// charge (`I·t_both_on/2`) plus feedthrough.
    pub fn total_charge(&self, i_unit: f64) -> f64 {
        self.dip_charge + 0.5 * i_unit * self.both_on_time + self.feedthrough_charge
    }
}

/// Evaluates a switching event of `cell` driven by `driver`.
///
/// The switch source (node A/B) is held at the cell's optimum bias value —
/// valid while the transition is fast against the internal time constant.
///
/// # Errors
///
/// Propagates [`ctsdac_circuit::bias::BiasError`] when the cell has no
/// bias point (infeasible in `env`).
pub fn switching_event(
    cell: &SizedCell,
    env: &CellEnvironment,
    driver: &LatchDriver,
) -> Result<SwitchEventMetrics, ctsdac_circuit::bias::BiasError> {
    let opt = ctsdac_circuit::bias::OptimumBias::of(cell, env)?;
    let v_source = opt.v_node_b;
    let sw = cell.sw();
    let vt = sw.vt(v_source.max(0.0));
    let i_unit = cell.i_unit();
    let caps = DeviceCaps::of(cell.technology(), sw);

    // Integrate over ±1.5 rise times around the crossing.
    let t_span = 3.0 * driver.rise_time;
    let n = 600;
    let dt = t_span / n as f64;
    let mut dip_charge = 0.0;
    let mut both_on_time = 0.0;
    for k in 0..n {
        let t = -0.5 * t_span + (k as f64 + 0.5) * dt;
        let (vg_rise, vg_fall) = driver.gates(t);
        // Saturation-limited capability of each switch at the held node.
        let cap = |vg: f64| {
            let vov = vg - v_source - vt;
            if vov <= 0.0 {
                0.0
            } else {
                0.5 * sw.params().kp * sw.aspect() * vov * vov
            }
        };
        let c1 = cap(vg_rise);
        let c2 = cap(vg_fall);
        let total = c1 + c2;
        if total < i_unit {
            dip_charge += (i_unit - total) * dt;
        }
        if c1 > 0.1 * i_unit && c2 > 0.1 * i_unit {
            both_on_time += dt;
        }
    }
    // Feedthrough: both gates slew by the full swing; the coupled charge per
    // drain is C_GD·swing (the complementary edges partially cancel at the
    // differential output; the single-ended figure is reported).
    let feedthrough_charge = caps.cgd * driver.swing();
    Ok(SwitchEventMetrics {
        dip_charge,
        both_on_time,
        feedthrough_charge,
    })
}

/// Sweeps the crossing point and returns `(crossing, total glitch charge)`
/// pairs — the §2 design study ("complementary output levels and crossing
/// point are designed to minimize glitches").
///
/// # Errors
///
/// Propagates the bias failure of the first infeasible evaluation.
pub fn crossing_sweep(
    cell: &SizedCell,
    env: &CellEnvironment,
    v_low: f64,
    v_high: f64,
    rise_time: f64,
    points: usize,
) -> Result<Vec<(f64, f64)>, ctsdac_circuit::bias::BiasError> {
    assert!(points >= 2, "need at least two sweep points");
    (0..points)
        .map(|i| {
            let xc = i as f64 / (points - 1) as f64;
            let driver = LatchDriver::new(v_low, v_high, rise_time, xc);
            let m = switching_event(cell, env, &driver)?;
            Ok((xc, m.total_charge(cell.i_unit())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsdac_process::Technology;

    fn setup() -> (SizedCell, CellEnvironment, f64, f64) {
        let tech = Technology::c035();
        let env = CellEnvironment::paper_12bit();
        let cell = SizedCell::simple_from_overdrives(&tech, 78.1e-6, 0.5, 0.4, 400e-12, None);
        let opt = ctsdac_circuit::bias::OptimumBias::of(&cell, &env).expect("feasible");
        // Drive between "just off" and the nominal ON gate voltage.
        (cell, env, opt.v_node_b * 0.5, opt.v_gate_sw)
    }

    #[test]
    fn gates_cross_at_the_programmed_fraction() {
        let d = LatchDriver::new(0.5, 2.5, 100e-12, 0.7);
        let (r, f) = d.gates(0.0);
        assert!((r - f).abs() < 1e-12);
        assert!((r - (0.5 + 0.7 * 2.0)).abs() < 1e-12);
        // Long after the edge both rails are reached.
        let (r_end, f_end) = d.gates(1e-9);
        assert_eq!(r_end, 2.5);
        assert_eq!(f_end, 0.5);
    }

    #[test]
    fn low_crossing_starves_the_cell() {
        let (cell, env, v_low, v_high) = setup();
        let low = LatchDriver::new(v_low, v_high, 100e-12, 0.05);
        let high = LatchDriver::new(v_low, v_high, 100e-12, 0.95);
        let m_low = switching_event(&cell, &env, &low).expect("feasible");
        let m_high = switching_event(&cell, &env, &high).expect("feasible");
        assert!(
            m_low.dip_charge > 10.0 * m_high.dip_charge.max(1e-30),
            "low {:.3e} vs high {:.3e}",
            m_low.dip_charge,
            m_high.dip_charge
        );
    }

    #[test]
    fn high_crossing_extends_the_both_on_interval() {
        let (cell, env, v_low, v_high) = setup();
        let low = LatchDriver::new(v_low, v_high, 100e-12, 0.2);
        let high = LatchDriver::new(v_low, v_high, 100e-12, 0.95);
        let m_low = switching_event(&cell, &env, &low).expect("feasible");
        let m_high = switching_event(&cell, &env, &high).expect("feasible");
        assert!(m_high.both_on_time > m_low.both_on_time);
    }

    #[test]
    fn crossing_sweep_has_interior_optimum() {
        // The total glitch charge must be minimised strictly inside (0, 1):
        // too low starves, too high smears.
        let (cell, env, v_low, v_high) = setup();
        let sweep = crossing_sweep(&cell, &env, v_low, v_high, 100e-12, 21).expect("feasible");
        let (best_x, best_q) = sweep
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite charges"))
            .expect("non-empty sweep");
        assert!(
            best_x > 0.05 && best_x < 0.999,
            "optimum at the boundary: {best_x}"
        );
        let endpoints = sweep[0].1.min(sweep.last().expect("non-empty").1);
        assert!(best_q < endpoints, "no interior improvement");
    }

    #[test]
    fn reduced_swing_reduces_feedthrough() {
        let (cell, env, v_low, v_high) = setup();
        let full = LatchDriver::new(0.0, env.vdd, 100e-12, 0.6);
        let reduced = LatchDriver::new(v_low, v_high, 100e-12, 0.6);
        let m_full = switching_event(&cell, &env, &full).expect("feasible");
        let m_reduced = switching_event(&cell, &env, &reduced).expect("feasible");
        assert!(
            m_reduced.feedthrough_charge < m_full.feedthrough_charge,
            "reduced swing did not reduce feedthrough"
        );
    }

    #[test]
    #[should_panic(expected = "invalid crossing")]
    fn out_of_range_crossing_rejected() {
        let _ = LatchDriver::new(0.0, 1.0, 1e-10, 1.5);
    }
}
