//! Behavioural simulator for segmented current-steering DACs.
//!
//! The paper validates its sized 12-bit design with transistor-level
//! transient simulation (Fig. 6 settling, Fig. 8 spectrum). That simulator
//! is not available here, so this crate provides the behavioural equivalent
//! built on the *same physics the sizing uses*: per-cell currents with
//! injected random mismatch (σ from the sizing) and systematic errors (from
//! the layout position), the two-pole settling dynamics of eq. (13),
//! binary/thermometer timing skew, switch feedthrough glitches and clock
//! jitter.
//!
//! # Modules
//!
//! * [`architecture`] — the [`SegmentedDac`]: cell weights, thermometer
//!   decoding, unary switching order.
//! * [`errors`] — per-cell current-error vectors: random mismatch draws and
//!   systematic components.
//! * [`static_metrics`] — transfer function, INL (endpoint and best-fit),
//!   DNL, and Monte-Carlo INL yield (validates the paper's eq. (1)).
//! * [`yield_engine`] — batched, allocation-free Monte-Carlo yield engine:
//!   one mismatch draw per trial, INL/DNL/monotonicity fused into a single
//!   pass (bit-identical to the scalar reference path), variance-reduced
//!   draws, sequential early stopping and the supervised pooled driver.
//! * [`transient`] — sample-accurate output waveform with two-pole
//!   settling, skew and feedthrough; full-scale settling measurement
//!   (Fig. 6).
//! * [`sine`] — coherent sine test and spectrum extraction (Fig. 8).
//! * [`glitch`] — glitch energy at code transitions.
//! * [`jitter`] — clock-jitter induced SNR degradation (the authors' SCAS
//!   2001 companion analysis, ref. \[6]).
//!
//! # Example
//!
//! ```
//! use ctsdac_core::DacSpec;
//! use ctsdac_dac::architecture::SegmentedDac;
//! use ctsdac_dac::errors::CellErrors;
//! use ctsdac_dac::static_metrics::TransferFunction;
//! use ctsdac_stats::sample::seeded_rng;
//!
//! let spec = DacSpec::paper_12bit();
//! let dac = SegmentedDac::new(&spec);
//! let mut rng = seeded_rng(1);
//! let errors = CellErrors::random(&dac, spec.sigma_unit_spec(), &mut rng);
//! let tf = TransferFunction::compute(&dac, &errors);
//! // A spec-compliant mismatch draw usually keeps INL below 0.5 LSB.
//! assert!(tf.inl_max_abs() < 2.0);
//! ```

pub mod architecture;
pub mod calibration;
pub mod decoder;
pub mod errors;
pub mod glitch;
pub mod jitter;
pub mod latch;
pub mod measurement;
pub mod sine;
pub mod static_metrics;
pub mod transient;
pub mod yield_engine;

pub use architecture::SegmentedDac;
pub use errors::CellErrors;
pub use sine::SineTest;
pub use static_metrics::TransferFunction;
pub use transient::{TransientConfig, TransientSim};
pub use yield_engine::{
    fused_yields_crn, fused_yields_supervised, FusedMetrics, FusedYieldError, FusedYields,
    YieldEngine, YieldLimits, YieldMetric, YieldMode, YieldScratch,
};
