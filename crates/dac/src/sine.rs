//! Coherent sine test: the experiment behind the paper's Fig. 8.
//!
//! "Simulation results ... indicate an SFDR ... for a sinusoidal input of
//! 53 MHz sampled at 300 MHz ... The spectrum obtained by applying the DFT
//! to 50 periods of the differential output waveform is shown in Fig. 8."
//!
//! The test generates a coherently sampled full-scale sine code sequence,
//! runs it through the transient model (settling + skew + feedthrough +
//! jitter + mismatch) and analyses the once-per-clock sampled output.

use crate::architecture::SegmentedDac;
use crate::errors::CellErrors;
use crate::transient::{TransientConfig, TransientSim};
use ctsdac_dsp::spectrum::{coherent_frequency, Spectrum};
use ctsdac_stats::rng::Rng;

/// A configured sine test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SineTest {
    /// Number of clock periods in the record (power of two).
    pub n_samples: usize,
    /// Requested input frequency in Hz (snapped to a coherent bin).
    pub f_target: f64,
    /// Amplitude as a fraction of full scale (0–1].
    pub amplitude: f64,
}

impl SineTest {
    /// The paper's Fig. 8 test: 53 MHz near-full-scale input. The record
    /// length is a power of two (the paper's 50 periods are not FFT-
    /// friendly; the coherent bin count plays the same role).
    pub fn paper_fig8() -> Self {
        Self {
            n_samples: 4096,
            f_target: 53e6,
            amplitude: 0.98,
        }
    }

    /// Creates a test, validating the arguments.
    ///
    /// # Panics
    ///
    /// Panics if `n_samples` is not a power of two ≥ 16 or `amplitude` is
    /// not in `(0, 1]`.
    pub fn new(n_samples: usize, f_target: f64, amplitude: f64) -> Self {
        assert!(
            n_samples.is_power_of_two() && n_samples >= 16,
            "record length {n_samples} must be a power of two >= 16"
        );
        assert!(
            amplitude > 0.0 && amplitude <= 1.0,
            "amplitude {amplitude} must be in (0, 1]"
        );
        Self {
            n_samples,
            f_target,
            amplitude,
        }
    }

    /// The coherent `(cycles, f_actual)` for clock rate `fs`.
    pub fn coherent(&self, fs: f64) -> (usize, f64) {
        coherent_frequency(fs, self.f_target, self.n_samples)
    }

    /// The quantised code sequence of the test sine for clock rate `fs`.
    pub fn codes(&self, dac: &SegmentedDac, fs: f64) -> Vec<u64> {
        let (_, f0) = self.coherent(fs);
        let max = dac.max_code() as f64;
        let mid = max / 2.0;
        let amp = self.amplitude * max / 2.0;
        (0..self.n_samples)
            .map(|i| {
                let phase = 2.0 * core::f64::consts::PI * f0 * i as f64 / fs;
                let v = mid + amp * phase.sin();
                v.round().clamp(0.0, max) as u64
            })
            .collect()
    }

    /// Runs the full test: codes → transient → once-per-clock samples →
    /// spectrum.
    pub fn run<R: Rng + ?Sized>(
        &self,
        dac: &SegmentedDac,
        errors: &CellErrors,
        config: TransientConfig,
        rng: &mut R,
    ) -> Spectrum {
        let codes = self.codes(dac, config.fs);
        let sim = TransientSim::new(dac, errors, config);
        let samples = sim.sampled_output(&codes, rng);
        Spectrum::analyze(&samples, config.fs)
    }

    /// Runs the test on the *continuous* (dense, oversampled) waveform — the
    /// paper's Fig. 8 methodology ("applying the DFT to 50 periods of the
    /// differential output waveform"). Glitches, skew and intra-period
    /// settling all appear in this spectrum; use
    /// [`Spectrum::sfdr_in_band_db`] with the update-rate Nyquist edge to
    /// read the SFDR the paper reports.
    pub fn run_dense<R: Rng + ?Sized>(
        &self,
        dac: &SegmentedDac,
        errors: &CellErrors,
        config: TransientConfig,
        rng: &mut R,
    ) -> Spectrum {
        let codes = self.codes(dac, config.fs);
        let sim = TransientSim::new(dac, errors, config);
        let dense = sim.dense_waveform(&codes, rng);
        Spectrum::analyze(&dense, config.fs * config.oversample as f64)
    }

    /// Differential dense-waveform variant — the paper's exact Fig. 8
    /// methodology ("the DFT ... of the differential output waveform"):
    /// even-order artefacts (feedthrough common mode) cancel between the
    /// complementary outputs.
    ///
    /// # Panics
    ///
    /// Panics if the config carries edge jitter (see
    /// [`TransientSim::dense_waveform_differential`]).
    pub fn run_dense_differential<R: Rng + ?Sized>(
        &self,
        dac: &SegmentedDac,
        errors: &CellErrors,
        config: TransientConfig,
        rng: &mut R,
    ) -> Spectrum {
        let codes = self.codes(dac, config.fs);
        let sim = TransientSim::new(dac, errors, config);
        let dense = sim.dense_waveform_differential(&codes, rng);
        Spectrum::analyze(&dense, config.fs * config.oversample as f64)
    }

    /// Static-only variant: ignores dynamics, maps codes through the
    /// (mismatched) transfer characteristic. Isolates the mismatch-limited
    /// SFDR from the dynamic effects.
    pub fn run_static(&self, dac: &SegmentedDac, errors: &CellErrors, fs: f64) -> Spectrum {
        let codes = self.codes(dac, fs);
        let samples: Vec<f64> = codes
            .iter()
            .map(|&c| dac.output_level(c, errors.rel()))
            .collect();
        Spectrum::analyze(&samples, fs)
    }

    /// Jittered variant: each update instant `t_k` carries a Gaussian
    /// timing error of RMS `sigma_t`, which (per the standard DAC-jitter
    /// model, ref. \[6]) is a phase error of the reconstructed waveform —
    /// the code generated at `t_k` is the sine value at `t_k + δt_k`.
    /// Codes are mapped through the static transfer characteristic so the
    /// jitter effect is isolated from settling.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_t` is negative.
    pub fn run_jittered<R: Rng + ?Sized>(
        &self,
        dac: &SegmentedDac,
        errors: &CellErrors,
        fs: f64,
        sigma_t: f64,
        rng: &mut R,
    ) -> Spectrum {
        assert!(sigma_t >= 0.0, "negative jitter {sigma_t}");
        let (_, f0) = self.coherent(fs);
        let max = dac.max_code() as f64;
        let mid = max / 2.0;
        let amp = self.amplitude * max / 2.0;
        let mut sampler = ctsdac_stats::NormalSampler::new();
        let samples: Vec<f64> = (0..self.n_samples)
            .map(|i| {
                let t = i as f64 / fs + sigma_t * sampler.sample(rng);
                let phase = 2.0 * core::f64::consts::PI * f0 * t;
                let code = (mid + amp * phase.sin()).round().clamp(0.0, max) as u64;
                dac.output_level(code, errors.rel())
            })
            .collect();
        Spectrum::analyze(&samples, fs)
    }
}

/// Monte-Carlo SFDR yield: fraction of mismatch realisations whose static
/// sine-test SFDR meets `sfdr_spec_db`. The dynamic-linearity counterpart
/// of the INL yield of eq. (1).
///
/// # Errors
///
/// [`MetricError::Stats`](crate::static_metrics::MetricError) if
/// `trials == 0`.
pub fn sfdr_yield_mc<R: Rng + ?Sized>(
    dac: &SegmentedDac,
    test: &SineTest,
    fs: f64,
    sigma_unit: f64,
    sfdr_spec_db: f64,
    trials: u64,
    rng: &mut R,
) -> Result<ctsdac_stats::YieldEstimate, crate::static_metrics::MetricError> {
    Ok(ctsdac_stats::YieldEstimate::run(rng, trials, |rng, _| {
        let errors = CellErrors::random(dac, sigma_unit, rng);
        test.run_static(dac, &errors, fs).sfdr_db() >= sfdr_spec_db
    })?)
}

/// Two-tone intermodulation test: two equal-amplitude coherent tones; the
/// third-order products `2f₁ − f₂` and `2f₂ − f₁` land close to the
/// carriers, where no filtering can help — the standard linearity stress
/// for communication DACs (the application domain of the paper's §1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoToneTest {
    /// Record length in samples (power of two).
    pub n_samples: usize,
    /// Requested first tone frequency, Hz.
    pub f1_target: f64,
    /// Requested second tone frequency, Hz.
    pub f2_target: f64,
    /// Per-tone amplitude as a fraction of full scale (the pair peaks at
    /// twice this).
    pub amplitude: f64,
}

impl TwoToneTest {
    /// Creates a two-tone test.
    ///
    /// # Panics
    ///
    /// Panics if the record length is not a power of two ≥ 64, the tones
    /// coincide, or `amplitude` exceeds 0.5 (the sum would clip).
    pub fn new(n_samples: usize, f1_target: f64, f2_target: f64, amplitude: f64) -> Self {
        assert!(
            n_samples.is_power_of_two() && n_samples >= 64,
            "record length {n_samples} must be a power of two >= 64"
        );
        assert!(
            amplitude > 0.0 && amplitude <= 0.5,
            "per-tone amplitude {amplitude} must be in (0, 0.5]"
        );
        assert!(f1_target != f2_target, "tones must differ");
        Self {
            n_samples,
            f1_target,
            f2_target,
            amplitude,
        }
    }

    /// The coherent bins `(k1, k2)` of the two tones at clock rate `fs`.
    pub fn coherent_bins(&self, fs: f64) -> (usize, usize) {
        let (k1, _) = coherent_frequency(fs, self.f1_target, self.n_samples);
        let (mut k2, _) = coherent_frequency(fs, self.f2_target, self.n_samples);
        if k2 == k1 {
            k2 += 2; // keep the bins distinct and both odd
        }
        (k1, k2)
    }

    /// Runs the test through the static transfer characteristic and
    /// returns `(spectrum, imd3_dbc)` where `imd3_dbc` is the worst
    /// third-order product relative to a carrier.
    pub fn run_static(&self, dac: &SegmentedDac, errors: &CellErrors, fs: f64) -> (Spectrum, f64) {
        let (k1, k2) = self.coherent_bins(fs);
        let n = self.n_samples;
        let max = dac.max_code() as f64;
        let mid = max / 2.0;
        let amp = self.amplitude * max;
        let codes: Vec<u64> = (0..n)
            .map(|i| {
                let t = 2.0 * core::f64::consts::PI * i as f64 / n as f64;
                let v = mid + 0.5 * amp * (k1 as f64 * t).sin() + 0.5 * amp * (k2 as f64 * t).sin();
                v.round().clamp(0.0, max) as u64
            })
            .collect();
        let samples: Vec<f64> = codes
            .iter()
            .map(|&c| dac.output_level(c, errors.rel()))
            .collect();
        let spectrum = Spectrum::analyze(&samples, fs);
        // IMD3 products at |2k1 − k2| and |2k2 − k1| (folded if needed).
        let fold = |k: i64| -> usize {
            let nn = n as i64;
            let m = k.rem_euclid(nn);
            (if m <= nn / 2 { m } else { nn - m }) as usize
        };
        let p_carrier = spectrum.power()[k1].max(spectrum.power()[k2]);
        let imd_bins = [
            fold(2 * k1 as i64 - k2 as i64),
            fold(2 * k2 as i64 - k1 as i64),
        ];
        let p_imd = imd_bins
            .iter()
            .map(|&b| spectrum.power()[b])
            .fold(0.0f64, f64::max);
        let imd3_dbc = 10.0 * (p_imd.max(1e-300) / p_carrier).log10();
        (spectrum, imd3_dbc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsdac_circuit::poles::TwoPoles;
    use ctsdac_core::DacSpec;
    use ctsdac_stats::sample::seeded_rng;

    fn setup() -> (SegmentedDac, TransientConfig) {
        let spec = DacSpec::paper_12bit();
        let dac = SegmentedDac::new(&spec);
        let poles = TwoPoles {
            p1_hz: 400e6,
            p2_hz: 1.2e9,
        };
        (dac, TransientConfig::from_poles(300e6, &poles))
    }

    #[test]
    fn codes_are_full_range_sine() {
        let (dac, config) = setup();
        let test = SineTest::paper_fig8();
        let codes = test.codes(&dac, config.fs);
        assert_eq!(codes.len(), 4096);
        let max = *codes.iter().max().expect("non-empty");
        let min = *codes.iter().min().expect("non-empty");
        assert!(max > 4000 && min < 100, "range [{min}, {max}]");
    }

    #[test]
    fn ideal_static_test_is_quantisation_limited() {
        // An ideal 12-bit DAC shows ENOB ≈ 12 and SFDR well above 70 dB.
        let (dac, config) = setup();
        let test = SineTest::paper_fig8();
        let errors = CellErrors::ideal(&dac);
        let spec = test.run_static(&dac, &errors, config.fs);
        assert!(spec.enob() > 11.0, "enob = {}", spec.enob());
        assert!(spec.sfdr_db() > 70.0, "sfdr = {}", spec.sfdr_db());
    }

    #[test]
    fn mismatch_degrades_static_sfdr() {
        let (dac, config) = setup();
        let test = SineTest::paper_fig8();
        let mut rng = seeded_rng(21);
        let bad = CellErrors::random(&dac, 0.05, &mut rng); // gross mismatch
        let ideal = CellErrors::ideal(&dac);
        let sfdr_bad = test.run_static(&dac, &bad, config.fs).sfdr_db();
        let sfdr_ideal = test.run_static(&dac, &ideal, config.fs).sfdr_db();
        assert!(
            sfdr_bad < sfdr_ideal - 10.0,
            "bad {sfdr_bad} vs ideal {sfdr_ideal}"
        );
    }

    #[test]
    fn fundamental_lands_on_coherent_bin() {
        let (dac, config) = setup();
        let test = SineTest::new(1024, 53e6, 0.9);
        let (cycles, _) = test.coherent(config.fs);
        let errors = CellErrors::ideal(&dac);
        let spec = test.run_static(&dac, &errors, config.fs);
        assert_eq!(spec.fundamental_bin(), cycles);
    }

    #[test]
    fn dynamic_test_runs_and_degrades_with_feedthrough() {
        let (dac, base) = setup();
        let test = SineTest::new(512, 53e6, 0.9);
        let errors = CellErrors::ideal(&dac);
        let mut rng = seeded_rng(5);
        let clean = test.run(&dac, &errors, base, &mut rng).sfdr_db();
        let dirty_cfg = base.with_feedthrough(0.5).with_binary_skew(0.2e-9);
        let mut rng2 = seeded_rng(5);
        let dirty = test.run(&dac, &errors, dirty_cfg, &mut rng2).sfdr_db();
        assert!(
            dirty < clean,
            "feedthrough/skew did not degrade SFDR: {dirty} vs {clean}"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_record_length_rejected() {
        let _ = SineTest::new(1000, 1e6, 0.5);
    }

    #[test]
    fn ideal_two_tone_has_deep_imd_floor() {
        let (dac, config) = setup();
        let test = TwoToneTest::new(4096, 50e6, 55e6, 0.45);
        let errors = CellErrors::ideal(&dac);
        let (_, imd) = test.run_static(&dac, &errors, config.fs);
        // Quantisation-only floor: well below −60 dBc.
        assert!(imd < -60.0, "imd = {imd}");
    }

    #[test]
    fn mismatch_raises_imd3() {
        // A single realisation's IMD3 depends on the draw's third-order
        // symmetry, so judge the median of several seeds instead of one
        // lucky stream.
        let (dac, config) = setup();
        let test = TwoToneTest::new(4096, 50e6, 55e6, 0.45);
        let (_, imd_ideal) = test.run_static(&dac, &CellErrors::ideal(&dac), config.fs);
        let mut imds: Vec<f64> = (0..5)
            .map(|seed| {
                let mut rng = seeded_rng(seed);
                let bad = CellErrors::random(&dac, 0.05, &mut rng);
                test.run_static(&dac, &bad, config.fs).1
            })
            .collect();
        imds.sort_by(|a, b| a.total_cmp(b));
        let median = imds[imds.len() / 2];
        assert!(
            median > imd_ideal + 10.0,
            "median {median} (all {imds:?}) vs ideal {imd_ideal}"
        );
    }

    #[test]
    fn two_tone_bins_are_distinct_and_odd() {
        let test = TwoToneTest::new(1024, 50e6, 55e6, 0.4);
        let (k1, k2) = test.coherent_bins(300e6);
        assert_ne!(k1, k2);
        assert_eq!(k1 % 2, 1);
    }

    #[test]
    #[should_panic(expected = "must be in (0, 0.5]")]
    fn clipping_amplitude_rejected() {
        let _ = TwoToneTest::new(1024, 50e6, 55e6, 0.6);
    }

    #[test]
    fn sfdr_yield_falls_with_mismatch() {
        let (dac, config) = setup();
        let test = SineTest::new(512, 53e6, 0.98);
        let sigma_spec = DacSpec::paper_12bit().sigma_unit_spec();
        let mut rng = seeded_rng(12);
        let tight = sfdr_yield_mc(&dac, &test, config.fs, sigma_spec, 70.0, 30, &mut rng)
            .expect("valid MC setup");
        let mut rng2 = seeded_rng(12);
        let loose = sfdr_yield_mc(
            &dac,
            &test,
            config.fs,
            sigma_spec * 8.0,
            70.0,
            30,
            &mut rng2,
        )
        .expect("valid MC setup");
        assert!(tight.estimate() > loose.estimate());
        assert!(tight.estimate() > 0.9, "tight yield {}", tight.estimate());
    }
}
