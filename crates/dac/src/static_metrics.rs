//! Static converter metrics: transfer function, INL, DNL, parametric yield.
//!
//! INL is reported against the endpoint-fit line (the convention behind the
//! eq. (1) yield formula); a best-fit variant is provided for comparison.
//! The Monte-Carlo yield estimator closes the loop on the paper's eq. (1):
//! sizing the unit source at `σ = 1/(2·C·√2ⁿ)` must deliver (at least) the
//! target yield.

use crate::architecture::SegmentedDac;
use crate::errors::CellErrors;
use core::fmt;
use ctsdac_stats::rng::Rng;
use ctsdac_stats::{StatsError, YieldEstimate};

/// Failure modes of the Monte-Carlo metric-yield estimators.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricError {
    /// The pass/fail limit is not a positive finite number.
    InvalidLimit {
        /// Which limit was rejected (`"INL"`, `"DNL"`, …).
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The unit-source mismatch sigma is negative or non-finite.
    InvalidSigma {
        /// The offending value.
        value: f64,
    },
    /// The underlying yield statistics were ill-posed (e.g. zero trials).
    Stats(StatsError),
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidLimit { name, value } => {
                write!(
                    f,
                    "invalid {name} limit {value}: must be positive and finite"
                )
            }
            Self::InvalidSigma { value } => {
                write!(
                    f,
                    "invalid unit-source sigma {value}: must be non-negative and finite"
                )
            }
            Self::Stats(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for MetricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidLimit { .. } | Self::InvalidSigma { .. } => None,
            Self::Stats(e) => Some(e),
        }
    }
}

impl From<StatsError> for MetricError {
    fn from(e: StatsError) -> Self {
        Self::Stats(e)
    }
}

pub(crate) fn positive_limit(name: &'static str, value: f64) -> Result<(), MetricError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(MetricError::InvalidLimit { name, value })
    }
}

/// The measured transfer function of one converter realisation.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFunction {
    levels: Vec<f64>,
}

impl TransferFunction {
    /// Evaluates the output level at every code (reference path: each
    /// code is decoded and summed independently, `O(2ⁿ·cells)`).
    ///
    /// The summation convention is fixed: a code's binary cells accumulate
    /// in index order, its unary cells in switching-rank order, and the
    /// level is `binary_part + unary_part`. [`Self::compute_fast`] uses
    /// the same convention, so the two paths agree **bitwise** — a
    /// property the batched yield engine's cross-checks rely on (see the
    /// `proptests` suite).
    pub fn compute(dac: &SegmentedDac, errors: &CellErrors) -> Self {
        let b = dac.spec().binary_bits;
        let n_bin = b as usize;
        let rel = errors.rel();
        let weights = dac.weights();
        let levels = (0..=dac.max_code())
            .map(|code| {
                let mut bin = 0.0;
                for i in 0..n_bin {
                    if (code >> i) & 1 == 1 {
                        bin += weights[i] as f64 * (1.0 + rel[i]);
                    }
                }
                let mut unary = 0.0;
                for rank in 0..(code >> b) as usize {
                    let cell = dac.unary_cell_at_rank(rank);
                    unary += weights[cell] as f64 * (1.0 + rel[cell]);
                }
                bin + unary
            })
            .collect();
        Self { levels }
    }

    /// Fast path exploiting the segmented structure: the level of
    /// `code = t·2^b + r` is `binary_sum[r] + unary_cumsum[t]`. Exact for
    /// this architecture and `O(2ⁿ)` instead of `O(2ⁿ·cells)`.
    pub fn compute_fast(dac: &SegmentedDac, errors: &CellErrors) -> Self {
        let b = dac.spec().binary_bits;
        let rel = errors.rel();
        let weights = dac.weights();
        // Binary sums for every residue.
        let n_bin = b as usize;
        let bin_levels: Vec<f64> = (0..(1u64 << b))
            .map(|r| {
                (0..n_bin)
                    .filter(|i| (r >> i) & 1 == 1)
                    .map(|i| weights[i] as f64 * (1.0 + rel[i]))
                    .sum()
            })
            .collect();
        // Unary cumulative sums in switching-rank order.
        let mut unary_cum = Vec::with_capacity(dac.n_unary() + 1);
        unary_cum.push(0.0);
        let mut acc = 0.0;
        for rank in 0..dac.n_unary() {
            let cell = dac.unary_cell_at_rank(rank);
            acc += weights[cell] as f64 * (1.0 + rel[cell]);
            unary_cum.push(acc);
        }
        let levels = (0..=dac.max_code())
            .map(|code| {
                let r = (code & ((1u64 << b) - 1)) as usize;
                let t = (code >> b) as usize;
                bin_levels[r] + unary_cum[t]
            })
            .collect();
        Self { levels }
    }

    /// Output levels in LSBs, indexed by code.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Differential nonlinearity per step (LSB): `DNL[k] = L[k+1] − L[k] − 1`.
    pub fn dnl(&self) -> Vec<f64> {
        self.levels.windows(2).map(|w| w[1] - w[0] - 1.0).collect()
    }

    /// Endpoint-fit integral nonlinearity per code (LSB).
    pub fn inl_endpoint(&self) -> Vec<f64> {
        let n = self.levels.len();
        let first = self.levels[0];
        let last = self.levels[n - 1];
        let gain = (last - first) / (n - 1) as f64;
        self.levels
            .iter()
            .enumerate()
            .map(|(k, &l)| l - (first + gain * k as f64))
            .collect()
    }

    /// Best-fit (least-squares line) integral nonlinearity per code (LSB).
    pub fn inl_best_fit(&self) -> Vec<f64> {
        let n = self.levels.len() as f64;
        let mean_x = (n - 1.0) / 2.0;
        let mean_y = self.levels.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (k, &l) in self.levels.iter().enumerate() {
            let dx = k as f64 - mean_x;
            sxx += dx * dx;
            sxy += dx * (l - mean_y);
        }
        let slope = sxy / sxx;
        self.levels
            .iter()
            .enumerate()
            .map(|(k, &l)| l - (mean_y + slope * (k as f64 - mean_x)))
            .collect()
    }

    /// Worst absolute endpoint-fit INL (LSB).
    pub fn inl_max_abs(&self) -> f64 {
        self.inl_endpoint()
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Worst absolute DNL (LSB).
    pub fn dnl_max_abs(&self) -> f64 {
        self.dnl().iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// True if the converter is monotone.
    pub fn is_monotone(&self) -> bool {
        self.levels.windows(2).all(|w| w[1] >= w[0])
    }
}

/// Monte-Carlo INL yield: fraction of mismatch realisations with
/// `max|INL| < inl_limit` (LSB). This is the experiment that validates the
/// analytic spec of eq. (1).
///
/// # Errors
///
/// [`MetricError::InvalidLimit`] if `inl_limit` is not positive and finite;
/// [`MetricError::Stats`] if `trials == 0`.
///
/// # Examples
///
/// ```
/// use ctsdac_core::DacSpec;
/// use ctsdac_dac::architecture::SegmentedDac;
/// use ctsdac_dac::static_metrics::inl_yield_mc;
/// use ctsdac_stats::sample::seeded_rng;
///
/// let spec = DacSpec::new(8, 4, 0.997, DacSpec::paper_12bit().env,
///                         DacSpec::paper_12bit().tech);
/// let dac = SegmentedDac::new(&spec);
/// let mut rng = seeded_rng(42);
/// let y = inl_yield_mc(&dac, spec.sigma_unit_spec(), 0.5, 200, &mut rng).unwrap();
/// // Sizing at the eq. (1) budget must deliver (at least) the target yield.
/// assert!(y.estimate() > 0.95);
/// ```
pub fn inl_yield_mc<R: Rng + ?Sized>(
    dac: &SegmentedDac,
    sigma_unit: f64,
    inl_limit: f64,
    trials: u64,
    rng: &mut R,
) -> Result<YieldEstimate, MetricError> {
    positive_limit("INL", inl_limit)?;
    Ok(YieldEstimate::run(rng, trials, |rng, _| {
        let errors = CellErrors::random(dac, sigma_unit, rng);
        let tf = TransferFunction::compute_fast(dac, &errors);
        tf.inl_max_abs() < inl_limit
    })?)
}

/// Monte-Carlo DNL yield: fraction of mismatch realisations with
/// `max|DNL| < dnl_limit` (LSB). The paper's §1: "The DNL specification
/// depends on the segmentation ratio but it is always satisfied provided
/// that the INL is below 0.5 LSB for reasonable segmentation ratios" —
/// this estimator lets that claim be checked numerically.
///
/// # Errors
///
/// [`MetricError::InvalidLimit`] if `dnl_limit` is not positive and finite;
/// [`MetricError::Stats`] if `trials == 0`.
pub fn dnl_yield_mc<R: Rng + ?Sized>(
    dac: &SegmentedDac,
    sigma_unit: f64,
    dnl_limit: f64,
    trials: u64,
    rng: &mut R,
) -> Result<YieldEstimate, MetricError> {
    positive_limit("DNL", dnl_limit)?;
    Ok(YieldEstimate::run(rng, trials, |rng, _| {
        let errors = CellErrors::random(dac, sigma_unit, rng);
        let tf = TransferFunction::compute_fast(dac, &errors);
        tf.dnl_max_abs() < dnl_limit
    })?)
}

/// Monte-Carlo monotonicity yield: fraction of realisations with a
/// monotone transfer characteristic (equivalently `DNL > −1` everywhere).
///
/// # Errors
///
/// [`MetricError::Stats`] if `trials == 0`.
pub fn monotonicity_yield_mc<R: Rng + ?Sized>(
    dac: &SegmentedDac,
    sigma_unit: f64,
    trials: u64,
    rng: &mut R,
) -> Result<YieldEstimate, MetricError> {
    Ok(YieldEstimate::run(rng, trials, |rng, _| {
        let errors = CellErrors::random(dac, sigma_unit, rng);
        TransferFunction::compute_fast(dac, &errors).is_monotone()
    })?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctsdac_core::DacSpec;
    use ctsdac_stats::sample::seeded_rng;

    fn small_spec() -> DacSpec {
        let base = DacSpec::paper_12bit();
        DacSpec::new(8, 4, 0.997, base.env, base.tech)
    }

    #[test]
    fn ideal_converter_has_zero_inl_dnl() {
        let dac = SegmentedDac::new(&small_spec());
        let tf = TransferFunction::compute(&dac, &CellErrors::ideal(&dac));
        assert!(tf.inl_max_abs() < 1e-12);
        assert!(tf.dnl_max_abs() < 1e-12);
        assert!(tf.is_monotone());
    }

    #[test]
    fn single_heavy_unary_cell_bends_the_transfer() {
        let dac = SegmentedDac::new(&small_spec());
        let mut rel = vec![0.0; dac.n_cells()];
        rel[4] = 0.05; // first unary cell (weight 16) 5 % heavy: +0.8 LSB
        let tf = TransferFunction::compute(&dac, &CellErrors::from_rel(&dac, rel));
        // DNL spike of +0.8 LSB where that cell turns on.
        assert!(
            (tf.dnl_max_abs() - 0.8).abs() < 0.01,
            "dnl = {}",
            tf.dnl_max_abs()
        );
        assert!(tf.inl_max_abs() > 0.3);
    }

    #[test]
    fn endpoint_inl_is_zero_at_endpoints() {
        let dac = SegmentedDac::new(&small_spec());
        let mut rng = seeded_rng(7);
        let errors = CellErrors::random(&dac, 0.02, &mut rng);
        let inl = TransferFunction::compute(&dac, &errors).inl_endpoint();
        assert!(inl[0].abs() < 1e-12);
        assert!(inl.last().copied().expect("non-empty").abs() < 1e-12);
    }

    #[test]
    fn best_fit_inl_never_exceeds_endpoint_rms() {
        let dac = SegmentedDac::new(&small_spec());
        let mut rng = seeded_rng(17);
        let errors = CellErrors::random(&dac, 0.02, &mut rng);
        let tf = TransferFunction::compute(&dac, &errors);
        let rms = |v: &[f64]| (v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64).sqrt();
        assert!(rms(&tf.inl_best_fit()) <= rms(&tf.inl_endpoint()) + 1e-12);
    }

    #[test]
    fn binary_dnl_spike_at_major_carry() {
        let dac = SegmentedDac::new(&small_spec());
        let mut rel = vec![0.0; dac.n_cells()];
        // All binary cells 3 % light: worst step at the binary-to-unary
        // carry (code 15 -> 16): step = 16·1 − 15·0.97 = 1.45 ⇒ DNL = +0.45.
        for r in rel.iter_mut().take(4) {
            *r = -0.03;
        }
        let tf = TransferFunction::compute(&dac, &CellErrors::from_rel(&dac, rel));
        let dnl = tf.dnl();
        assert!((dnl[15] - 0.45).abs() < 1e-9, "dnl[15] = {}", dnl[15]);
    }

    #[test]
    fn yield_grows_as_sigma_shrinks() {
        let dac = SegmentedDac::new(&small_spec());
        let mut rng = seeded_rng(11);
        let spec_sigma = small_spec().sigma_unit_spec();
        let tight = inl_yield_mc(&dac, spec_sigma / 2.0, 0.5, 150, &mut rng).unwrap();
        let loose = inl_yield_mc(&dac, spec_sigma * 4.0, 0.5, 150, &mut rng).unwrap();
        assert!(tight.estimate() > loose.estimate());
        assert!(tight.estimate() > 0.99);
    }

    #[test]
    fn fast_transfer_matches_reference() {
        let dac = SegmentedDac::new(&small_spec());
        let mut rng = seeded_rng(31);
        let errors = CellErrors::random(&dac, 0.02, &mut rng);
        let slow = TransferFunction::compute(&dac, &errors);
        let fast = TransferFunction::compute_fast(&dac, &errors);
        for (a, b) in slow.levels().iter().zip(fast.levels()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn fast_transfer_matches_reference_with_custom_order() {
        let spec = small_spec();
        let n = spec.unary_source_count();
        let order: Vec<usize> = (0..n).rev().collect();
        let dac = SegmentedDac::new(&spec).with_unary_order(order);
        let mut rng = seeded_rng(32);
        let errors = CellErrors::random(&dac, 0.02, &mut rng);
        let slow = TransferFunction::compute(&dac, &errors);
        let fast = TransferFunction::compute_fast(&dac, &errors);
        for (a, b) in slow.levels().iter().zip(fast.levels()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn dnl_yield_exceeds_inl_yield_at_spec_sigma() {
        // The paper's §1 claim: INL < 0.5 LSB implies the DNL spec for
        // reasonable segmentations. At the spec sigma, DNL yield must be at
        // least the INL yield.
        let spec = small_spec();
        let dac = SegmentedDac::new(&spec);
        let sigma = spec.sigma_unit_spec();
        let mut rng = seeded_rng(71);
        let inl = inl_yield_mc(&dac, sigma, 0.5, 200, &mut rng).unwrap();
        let mut rng2 = seeded_rng(71);
        let dnl = dnl_yield_mc(&dac, sigma, 0.5, 200, &mut rng2).unwrap();
        assert!(
            dnl.estimate() >= inl.estimate(),
            "DNL yield {} below INL yield {}",
            dnl.estimate(),
            inl.estimate()
        );
    }

    #[test]
    fn monotonicity_is_easier_than_half_lsb_dnl() {
        // Monotone ⟺ DNL > −1 LSB, strictly weaker than |DNL| < 0.5.
        let spec = small_spec();
        let dac = SegmentedDac::new(&spec);
        let sigma = spec.sigma_unit_spec() * 3.0;
        let mut rng = seeded_rng(72);
        let dnl = dnl_yield_mc(&dac, sigma, 0.5, 200, &mut rng).unwrap();
        let mut rng2 = seeded_rng(72);
        let mono = monotonicity_yield_mc(&dac, sigma, 200, &mut rng2).unwrap();
        assert!(mono.estimate() >= dnl.estimate());
    }

    #[test]
    fn spec_sigma_achieves_target_yield() {
        // The eq. (1) validation at 8 bits: MC yield at the analytic budget
        // must be at least the target (the formula is conservative).
        let spec = small_spec();
        let dac = SegmentedDac::new(&spec);
        let mut rng = seeded_rng(2024);
        let y = inl_yield_mc(&dac, spec.sigma_unit_spec(), 0.5, 400, &mut rng).unwrap();
        assert!(
            y.estimate() >= 0.98,
            "MC yield {} below expectation for target {}",
            y.estimate(),
            spec.inl_yield
        );
    }

    #[test]
    fn ill_posed_yield_inputs_are_typed_errors_not_panics() {
        let dac = SegmentedDac::new(&small_spec());
        let mut rng = seeded_rng(1);
        assert_eq!(
            inl_yield_mc(&dac, 0.01, -0.5, 10, &mut rng),
            Err(MetricError::InvalidLimit {
                name: "INL",
                value: -0.5
            })
        );
        assert_eq!(
            dnl_yield_mc(&dac, 0.01, f64::NAN, 10, &mut rng).map_err(|e| match e {
                MetricError::InvalidLimit { name, .. } => name,
                MetricError::InvalidSigma { .. } => "sigma",
                MetricError::Stats(_) => "stats",
            }),
            Err("DNL")
        );
        assert_eq!(
            monotonicity_yield_mc(&dac, 0.01, 0, &mut rng),
            Err(MetricError::Stats(StatsError::NoTrials))
        );
    }
}
